//! SSB design-space exploration on one kernel: sweep the speculative state
//! buffer's size and granule, showing the capacity-stall and false-sharing
//! effects of §6.6 interactively on a single workload.
//!
//! Run with: `cargo run --release --example ssb_explorer [kernel]`

use lf_compiler::{annotate, SelectOptions};
use lf_workloads::{by_name, Scale};
use loopfrog::{simulate, LoopFrogConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "fotonik_fdtd".to_string());
    let Some(workload) = by_name(&name, Scale::Smoke) else {
        eprintln!("error: unknown kernel `{name}`");
        eprintln!("available kernels:");
        for w in lf_workloads::all(Scale::Smoke) {
            eprintln!("  {:<16} ({})", w.name, w.spec_analog);
        }
        std::process::exit(2);
    };
    println!("workload: {}\n", workload.name);

    let emu = workload.reference_emulator()?;
    let annotated = annotate(&workload.program, emu.profile(), &SelectOptions::default());
    let base = simulate(&annotated.program, workload.mem.clone(), LoopFrogConfig::baseline())?;

    println!("SSB size sweep (granule fixed at 4 B):");
    println!("{:>10}  {:>8}  {:>8}  {:>14}", "size", "cycles", "speedup", "overflow stalls");
    for size in [512usize, 2 << 10, 8 << 10, 32 << 10] {
        let mut cfg = LoopFrogConfig::default();
        cfg.ssb.size_bytes = size;
        let r = simulate(&annotated.program, workload.mem.clone(), cfg)?;
        assert_eq!(r.checksum, emu.state_checksum());
        println!(
            "{:>9}B  {:>8}  {:>+7.1}%  {:>14}",
            size,
            r.stats.cycles,
            (base.stats.cycles as f64 / r.stats.cycles as f64 - 1.0) * 100.0,
            r.stats.squashes_overflow
        );
    }

    println!("\ngranule sweep (size fixed at 8 KiB):");
    println!("{:>10}  {:>8}  {:>8}  {:>14}", "granule", "cycles", "speedup", "conflicts");
    for granule in [1usize, 2, 4, 8, 16, 32] {
        let mut cfg = LoopFrogConfig::default();
        cfg.ssb.granule = granule;
        let r = simulate(&annotated.program, workload.mem.clone(), cfg)?;
        assert_eq!(r.checksum, emu.state_checksum());
        println!(
            "{:>9}B  {:>8}  {:>+7.1}%  {:>14}",
            granule,
            r.stats.cycles,
            (base.stats.cycles as f64 / r.stats.cycles as f64 - 1.0) * 100.0,
            r.stats.squashes_conflict
        );
    }
    Ok(())
}
