//! Quickstart: hand-annotate a loop with LoopFrog hints and compare the
//! baseline (hints as NOPs) against speculative threadlet execution.
//!
//! Run with: `cargo run --release --example quickstart`

use lf_isa::{reg, AluOp, BranchCond, Emulator, MemSize, Memory, ProgramBuilder};
use loopfrog::{simulate, LoopFrogConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // for i in 0..512 { a[i] = a[i] * 3 + 7 }  — independent iterations.
    //
    // The iteration is split into
    //   header       (nothing before the detach here),
    //   body         load / multiply / add / store,
    //   continuation induction-variable update + backedge,
    // with `sync` on the exit edge. The hints never change sequential
    // semantics; the core may use them to run future iterations early.
    let elems: i64 = 512;
    let base = 0x1000;
    let mut b = ProgramBuilder::new();
    let cont = b.label("continuation");
    let head = b.label("head");
    b.li(reg::x(1), 0); // i (byte offset)
    b.li(reg::x(2), elems * 8);
    b.bind(head);
    b.detach(cont); // ---- header → body boundary
    b.load(reg::x(3), reg::x(1), base, MemSize::B8);
    b.alui(AluOp::Mul, reg::x(3), reg::x(3), 3);
    b.alui(AluOp::Add, reg::x(3), reg::x(3), 7);
    b.store(reg::x(3), reg::x(1), base, MemSize::B8);
    b.reattach(cont); // ---- body → continuation boundary
    b.bind(cont);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), head);
    b.sync(cont); // ---- loop exit edge
    b.halt();
    let program = b.build()?;

    let mut mem = Memory::new(0x4000);
    for i in 0..elems as u64 {
        mem.write_u64(0x1000 + i * 8, i * 17 + 1)?;
    }

    // Golden reference: the sequential emulator.
    let mut emu = Emulator::new(&program, mem.clone());
    emu.run(10_000_000)?;

    // Baseline: same core, hints ignored.
    let base_run = simulate(&program, mem.clone(), LoopFrogConfig::baseline())?;
    // LoopFrog: 4 threadlet contexts, SSB, conflict detection, packing.
    let lf_run = simulate(&program, mem, LoopFrogConfig::default())?;

    assert_eq!(base_run.checksum, emu.state_checksum(), "baseline must match the emulator");
    assert_eq!(lf_run.checksum, emu.state_checksum(), "speculation must preserve semantics");

    println!("sequential semantics preserved: all three runs agree\n");
    println!("baseline cycles: {:>8}  (IPC {:.2})", base_run.stats.cycles, base_run.stats.ipc());
    println!("loopfrog cycles: {:>8}  (IPC {:.2})", lf_run.stats.cycles, lf_run.stats.ipc());
    println!(
        "speedup: {:.1}%",
        (base_run.stats.cycles as f64 / lf_run.stats.cycles as f64 - 1.0) * 100.0
    );
    println!(
        "\nthreadlets spawned: {}, packed spawns: {} (mean factor {:.1})",
        lf_run.stats.spawns,
        lf_run.stats.packed_spawns,
        lf_run.stats.mean_pack_factor()
    );
    println!(
        "cycles with >=2 threadlets active: {:.0}%",
        lf_run.stats.frac_active_at_least(2) * 100.0
    );
    Ok(())
}
