//! Image-processing scenario (the paper's biggest winner class, mirroring
//! 538.imagick_r): run the stencil-blur kernel through the *full* pipeline
//! — profile on the golden emulator, let the compiler pass select loops and
//! insert hints automatically, then simulate baseline vs LoopFrog.
//!
//! Run with: `cargo run --release --example image_pipeline`
//! Add `--trace` to print the first lines of the pipeline event trace
//! (spawns, squashes, retirements; see `loopfrog::trace`).

use lf_compiler::{annotate, SelectOptions};
use lf_workloads::{by_name, Scale};
use loopfrog::{simulate, LoopFrogConfig, LoopFrogCore, TextTracer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = by_name("stencil_blur", Scale::Smoke).expect("kernel exists");
    println!("workload: {} (analog of {})", workload.name, workload.spec_analog);
    println!("  {}\n", workload.description);

    // 1. Profile the sequential run (paper §5.1: profile-guided selection).
    let emu = workload.reference_emulator()?;
    println!("profiled {} dynamic instructions", emu.inst_count());

    // 2. Select loops and insert detach/reattach/sync hints (§5.3).
    let annotated = annotate(&workload.program, emu.profile(), &SelectOptions::default());
    for report in &annotated.reports {
        match (&report.placement, &report.rejected) {
            (Some(p), _) => println!(
                "loop @{}: selected — coverage {:.0}%, trip {:.0}, body ≈{:.1} insts/iter",
                report.header_addr,
                report.coverage * 100.0,
                report.trip,
                p.body_score
            ),
            (None, Some(why)) => {
                println!("loop @{}: rejected — {why}", report.header_addr)
            }
            _ => {}
        }
    }

    // 3. Simulate both configurations on the hinted binary.
    let base = simulate(&annotated.program, workload.mem.clone(), LoopFrogConfig::baseline())?;
    let trace = std::env::args().any(|a| a == "--trace");
    let lf = if trace {
        // Keep a shared handle to the tracer so the captured buffer can be
        // read back after the run.
        let sink = std::rc::Rc::new(std::cell::RefCell::new(TextTracer::new(Vec::new())));
        let mut core =
            LoopFrogCore::new(&annotated.program, workload.mem.clone(), LoopFrogConfig::default());
        core.set_tracer(Box::new(std::rc::Rc::clone(&sink)));
        let r = core.run()?;
        let buf = std::mem::take(sink.borrow_mut().sink_mut());
        let text = String::from_utf8_lossy(&buf);
        println!("\npipeline trace (threadlet lifecycle, first 12 lines):");
        for line in text
            .lines()
            .filter(|l| l.contains("spawn") || l.contains("retire") || l.contains("squash"))
            .take(12)
        {
            println!("  {line}");
        }
        r
    } else {
        simulate(&annotated.program, workload.mem.clone(), LoopFrogConfig::default())?
    };
    assert_eq!(base.checksum, emu.state_checksum());
    assert_eq!(lf.checksum, emu.state_checksum());

    println!("\nbaseline: {} cycles | loopfrog: {} cycles", base.stats.cycles, lf.stats.cycles);
    println!(
        "whole-program speedup: {:.1}% (paper reports +87% for imagick on real SPEC inputs)",
        (base.stats.cycles as f64 / lf.stats.cycles as f64 - 1.0) * 100.0
    );
    println!(
        "squash breakdown: {} conflicts, {} sync exits, {} wrong-path",
        lf.stats.squashes_conflict, lf.stats.squashes_sync, lf.stats.squashes_wrong_path
    );
    Ok(())
}
