//! Multicore-interaction scenario (paper §4.1.4): LoopFrog hides all
//! speculation from the memory system and squashes threadlets whose lines
//! another core touches. Here a simulated remote agent flips a shared flag
//! mid-run and observes memory while threadlets speculate over it.
//!
//! Run with: `cargo run --release --example coherence_demo`

use lf_isa::{reg, AluOp, BranchCond, MemSize, Memory, ProgramBuilder};
use loopfrog::{LoopFrogConfig, LoopFrogCore, SimStop};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // for i in 0..96 { a[i] = a[i] + flag }  — every iteration reads the
    // shared flag, so speculative epochs hold it in their read sets.
    let (base, flag, trip) = (0x1000, 0x3000i64, 96i64);
    let mut b = ProgramBuilder::new();
    let cont = b.label("cont");
    let head = b.label("head");
    b.li(reg::x(1), 0);
    b.li(reg::x(2), trip * 8);
    b.li(reg::x(9), flag);
    b.bind(head);
    b.detach(cont);
    b.load(reg::x(3), reg::x(9), 0, MemSize::B8);
    b.load(reg::x(4), reg::x(1), base, MemSize::B8);
    b.alu(AluOp::Add, reg::x(4), reg::x(4), reg::x(3));
    b.store(reg::x(4), reg::x(1), base, MemSize::B8);
    b.reattach(cont);
    b.bind(cont);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), head);
    b.sync(cont);
    b.halt();
    let program = b.build()?;

    let mut mem = Memory::new(0x4000);
    for i in 0..trip as u64 {
        mem.write_u64(0x1000 + i * 8, 1000)?;
    }
    mem.write_u64(0x3000, 5)?;

    let mut core = LoopFrogCore::new(&program, mem, LoopFrogConfig::default());

    // Let the core speculate partway into the loop...
    core.run_until_committed(150)?;
    println!(
        "mid-run: {} committed, {} threadlets spawned",
        core.committed_insts(),
        core.stats().spawns
    );

    // ...then a remote core observes an element far ahead: speculative
    // stores must be invisible.
    let probe = core.external_read(0x1000 + 90 * 8, 8)?;
    println!("remote read of a[90] mid-run: {probe} (1000 = untouched, 1005 = committed)");
    assert!(probe == 1000 || probe == 1005, "speculative state leaked");

    // ...and a remote core flips the shared flag: threadlets holding it in
    // their read sets are squashed and re-execute against the new value.
    core.external_write(0x3000, 8, 9)?;
    println!(
        "remote write flag 5→9: {} coherence squash event(s)",
        core.stats().counters.get("external_squashes")
    );

    let stop = core.run_until_committed(u64::MAX)?;
    assert_eq!(stop, SimStop::Halted);

    // Memory-model check: a prefix of elements saw the old flag, the rest
    // the new one — never a mix out of order, never a torn value.
    let mut flip_at = None;
    for i in 0..trip as u64 {
        let v = core.mem().read_u64(0x1000 + i * 8)?;
        match (v, flip_at) {
            (1005, None) => {}
            (1009, None) => flip_at = Some(i),
            (1009, Some(_)) => {}
            _ => panic!("element {i} = {v}: ordering violated"),
        }
    }
    println!(
        "final memory consistent: elements 0..{} saw flag 5, {}..{trip} saw flag 9",
        flip_at.unwrap_or(trip as u64),
        flip_at.unwrap_or(trip as u64)
    );
    Ok(())
}
