//! Discrete-event-simulation scenario (mirroring 520.omnetpp_r, the
//! paper's +54% benchmark): data-dependent dispatch branches dominate, so
//! LoopFrog's gains come largely from *branch-condition prefetching* —
//! speculative threadlets compute the loads feeding hard branches early.
//! This example also sweeps the threadlet count to show scaling.
//!
//! Run with: `cargo run --release --example event_simulation`

use lf_compiler::{annotate, SelectOptions};
use lf_workloads::{by_name, Scale};
use loopfrog::{simulate, LoopFrogConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = by_name("event_queue", Scale::Smoke).expect("kernel exists");
    println!("workload: {} (analog of {})\n", workload.name, workload.spec_analog);

    let emu = workload.reference_emulator()?;
    let annotated = annotate(&workload.program, emu.profile(), &SelectOptions::default());

    let base = simulate(&annotated.program, workload.mem.clone(), LoopFrogConfig::baseline())?;
    assert_eq!(base.checksum, emu.state_checksum());
    println!(
        "baseline: {} cycles, {:.1}% branch mispredict rate",
        base.stats.cycles,
        base.stats.mispredict_rate() * 100.0
    );

    println!("\nthreadlets  cycles   speedup   >=2 active  mispredict");
    for threadlets in [1usize, 2, 4, 8] {
        let mut cfg = LoopFrogConfig::default();
        cfg.core.threadlets = threadlets;
        let r = simulate(&annotated.program, workload.mem.clone(), cfg)?;
        assert_eq!(r.checksum, emu.state_checksum(), "semantics preserved at {threadlets}");
        println!(
            "{:>10}  {:>6}   {:>+6.1}%   {:>9.0}%  {:>9.1}%",
            threadlets,
            r.stats.cycles,
            (base.stats.cycles as f64 / r.stats.cycles as f64 - 1.0) * 100.0,
            r.stats.frac_active_at_least(2) * 100.0,
            r.stats.mispredict_rate() * 100.0
        );
    }
    println!("\n(the paper evaluates the 4-threadlet point; more contexts add little");
    println!(" once the loop's memory-level parallelism is covered)");
    Ok(())
}
