//! Integration tests for the experiment engine's run planner: cross-
//! scenario deduplication, fingerprint sensitivity, on-disk memoization
//! with schema invalidation, and `-j` determinism.

use lf_bench::artifact::SCHEMA_VERSION;
use lf_bench::engine::cache::DiskCache;
use lf_bench::engine::planner::{Hinting, Planner};
use lf_bench::engine::{run_scenarios, EngineCtx, EngineOptions, Scenario};
use lf_bench::{run_fingerprint, RunArtifact, RunConfig};
use lf_stats::Json;
use lf_workloads::Scale;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A minimal scenario declaring the standard baseline+LoopFrog suite.
struct SuiteScenario(&'static str);

impl Scenario for SuiteScenario {
    fn name(&self) -> &'static str {
        self.0
    }
    fn title(&self) -> &'static str {
        "test scenario"
    }
    fn plan(&self, p: &mut Planner<'_>) {
        p.request_suite(&RunConfig::default());
    }
    fn render(&self, ctx: &EngineCtx<'_>, out: &mut String) -> RunArtifact {
        let runs = ctx.suite_runs(&RunConfig::default());
        for r in &runs {
            out.push_str(&format!("{} {:.4}\n", r.name, r.speedup()));
        }
        RunArtifact::new(self.name(), ctx.scale())
    }
}

/// A scenario whose requests differ from the default suite in exactly one
/// configuration field.
struct SsbVariant;

impl Scenario for SsbVariant {
    fn name(&self) -> &'static str {
        "ssb_variant"
    }
    fn title(&self) -> &'static str {
        "test scenario (one config field changed)"
    }
    fn plan(&self, p: &mut Planner<'_>) {
        let mut rc = RunConfig::default();
        rc.lf.ssb.size_bytes = 512;
        p.request_suite(&rc);
    }
    fn render(&self, ctx: &EngineCtx<'_>, _out: &mut String) -> RunArtifact {
        RunArtifact::new(self.name(), ctx.scale())
    }
}

fn opts_for(filter: &str) -> EngineOptions {
    let mut opts = EngineOptions::new(Scale::Smoke);
    opts.filter = Some(filter.to_string());
    opts
}

fn counting_hook(opts: &mut EngineOptions) -> Arc<AtomicUsize> {
    let count = Arc::new(AtomicUsize::new(0));
    let counter = count.clone();
    opts.sim_hook = Some(Arc::new(move |_| {
        counter.fetch_add(1, Ordering::SeqCst);
    }));
    count
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("lf-bench-planner-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn identical_requests_from_two_scenarios_simulate_once() {
    let (a, b) = (SuiteScenario("a"), SuiteScenario("b"));
    let mut opts = opts_for("stencil_blur");
    let sims = counting_hook(&mut opts);
    let output = run_scenarios(&[&a, &b], &opts);

    // Two scenarios × (baseline + LoopFrog) over one kernel.
    assert_eq!(output.report.requests, 4);
    assert_eq!(output.report.unique, 2, "identical requests must collapse");
    assert_eq!(output.report.simulated, 2);
    assert_eq!(sims.load(Ordering::SeqCst), 2, "each unique fingerprint simulates exactly once");
    assert_eq!(output.report.prepared, 1, "one kernel, one hinting mode");
    assert_eq!(
        output.scenarios[0].text, output.scenarios[1].text,
        "both scenarios render from the same memoized outcomes"
    );
}

#[test]
fn changing_one_config_field_changes_the_fingerprints() {
    let (a, b) = (SuiteScenario("a"), SsbVariant);
    let mut opts = opts_for("stencil_blur");
    let sims = counting_hook(&mut opts);
    let output = run_scenarios(&[&a, &b], &opts);

    // The two scenarios share the baseline run; the variant's LoopFrog
    // config differs in one field and must not collapse with the default.
    assert_eq!(output.report.requests, 4);
    assert_eq!(output.report.unique, 3, "a one-field config change is a distinct run");
    assert_eq!(sims.load(Ordering::SeqCst), 3);

    // Direct fingerprint sensitivity at the API level.
    let w = lf_workloads::by_name("stencil_blur", Scale::Smoke).unwrap();
    let cfg = loopfrog::LoopFrogConfig::default();
    let mut changed = cfg.clone();
    changed.ssb.size_bytes = 512;
    assert_ne!(
        run_fingerprint(&w.program, &w.mem, &cfg, Scale::Smoke),
        run_fingerprint(&w.program, &w.mem, &changed, Scale::Smoke)
    );
}

#[test]
fn disk_cache_round_trips_and_schema_bump_invalidates() {
    let scenario = SuiteScenario("cached");
    let dir = scratch_dir("disk-round-trip");

    let mut opts = opts_for("stencil_blur");
    opts.disk_cache = Some(DiskCache::new(dir.clone()));
    let sims_first = counting_hook(&mut opts);
    let first = run_scenarios(&[&scenario], &opts);
    assert_eq!(first.report.disk_hits, 0);
    assert_eq!(sims_first.load(Ordering::SeqCst), 2);

    // Second engine run: everything served from disk, nothing simulated,
    // identical render.
    let mut opts2 = opts_for("stencil_blur");
    opts2.disk_cache = Some(DiskCache::new(dir.clone()));
    let sims_second = counting_hook(&mut opts2);
    let second = run_scenarios(&[&scenario], &opts2);
    assert_eq!(second.report.disk_hits, 2);
    assert_eq!(second.report.simulated, 0);
    assert_eq!(sims_second.load(Ordering::SeqCst), 0);
    assert_eq!(first.scenarios[0].text, second.scenarios[0].text);

    // A schema bump invalidates every entry: the engine re-simulates.
    let mut opts3 = opts_for("stencil_blur");
    opts3.disk_cache = Some(DiskCache::with_schema(dir, SCHEMA_VERSION + 1));
    let sims_third = counting_hook(&mut opts3);
    let third = run_scenarios(&[&scenario], &opts3);
    assert_eq!(third.report.disk_hits, 0, "stale-schema entries must miss");
    assert_eq!(sims_third.load(Ordering::SeqCst), 2);
}

#[test]
fn parallel_output_is_byte_identical_to_serial() {
    // fig9's SSB sweep over one kernel yields 5 unique runs (the shared
    // baseline plus four LoopFrog sizes) — enough to exercise the pool.
    let fig9 = lf_bench::engine::by_name("fig9_ssb_size").unwrap();

    let run_with = |jobs: usize| {
        let mut opts = opts_for("stencil_blur");
        opts.jobs = jobs;
        run_scenarios(&[fig9.as_ref()], &opts)
    };
    let serial = run_with(1);
    let parallel = run_with(4);

    assert_eq!(serial.report.unique, 5);
    assert_eq!(parallel.report.unique, 5);
    assert_eq!(
        serial.scenarios[0].text, parallel.scenarios[0].text,
        "rendered text must not depend on -j"
    );
    // Artifacts match too, modulo the planner telemetry (wall-clock and
    // job count legitimately differ).
    let strip = |mut doc: Json| {
        doc.set("planner", Json::Null);
        doc.to_string_pretty()
    };
    assert_eq!(
        strip(serial.scenarios[0].artifact.clone()),
        strip(parallel.scenarios[0].artifact.clone()),
        "artifacts must not depend on -j"
    );
}

#[test]
fn raw_and_annotated_hintings_fingerprint_apart() {
    let mut a = lf_stats::Fingerprint::new();
    a.u64(Hinting::Raw.fingerprint());
    let mut b = lf_stats::Fingerprint::new();
    b.u64(Hinting::default_annotated().fingerprint());
    assert_ne!(a.finish(), b.finish());
}
