//! Cross-crate integration: every workload, compiled through the hint
//! pass, must produce bit-identical architectural state on the golden
//! emulator, the baseline core, and the LoopFrog core — the paper's §3.2
//! guarantee, end to end.

use lf_bench::{run_kernel, RunConfig};
use lf_workloads::{all, Scale};

#[test]
fn all_workloads_match_the_golden_model() {
    // Always exercise speculation.
    let cfg = RunConfig { deselect_unprofitable: false, ..RunConfig::default() };
    for w in all(Scale::Smoke) {
        let r = run_kernel(&w, &cfg);
        assert!(r.checksum_ok, "{}: architectural state diverged", w.name);
    }
}

#[test]
fn suite_speedup_shape_holds() {
    // The headline claim at smoke scale: the suite gains overall, most
    // kernels with selected loops gain, and the serial kernels are left
    // alone by the compiler.
    let runs = lf_bench::run_suite(Scale::Smoke, &RunConfig::default());
    let speedups: Vec<f64> = runs.iter().map(|r| r.speedup()).collect();
    let geomean = lf_stats::geomean(&speedups);
    assert!(geomean > 1.05, "suite geomean should be clearly positive: {geomean:.3}");
    let gainers = runs.iter().filter(|r| r.speedup() > 1.01).count();
    assert!(gainers * 2 > runs.len(), "most kernels should gain: {gainers}/{}", runs.len());
    for r in &runs {
        if ["compress_rle", "pointer_chase"].contains(&r.name) {
            assert_eq!(r.selected_loops, 0, "{} has no legally hintable loop", r.name);
        }
    }
}

#[test]
fn profitable_kernels_use_multiple_threadlets() {
    let runs = lf_bench::run_suite(Scale::Smoke, &RunConfig::default());
    for r in runs.iter().filter(|r| r.speedup() > 1.05) {
        assert!(
            r.lf_stats().frac_active_at_least(2) > 0.2,
            "{}: speedup without threadlet concurrency?",
            r.name
        );
        assert!(r.lf_stats().spawns > 0, "{}: no spawns", r.name);
    }
}
