//! Replays every checked-in regression program in `tests/corpus/` through
//! the full differential harness — golden emulator (plain and hinted),
//! baseline core, and the LoopFrog core with invariants and lockstep
//! boundary replay armed — so a fixed bug stays fixed on all three
//! backends.
//!
//! New reproducers come from `lf-verify --minimize`: the printed case text
//! is committed verbatim as a `.lfcase` file (see EXPERIMENTS.md).

use lf_verify::{corpus, run_case, HarnessOptions, Outcome};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

#[test]
fn corpus_replays_clean_on_all_backends() {
    let dir = corpus_dir();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "lfcase"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 10,
        "corpus holds {} cases; at least 10 expected in {}",
        entries.len(),
        dir.display()
    );
    let opts = HarnessOptions::default();
    for path in &entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{name}: cannot read: {e}"));
        let spec = corpus::parse(&text).unwrap_or_else(|e| panic!("{name}: parse error: {e}"));
        match run_case(&spec, &opts) {
            Outcome::Pass { .. } => {}
            Outcome::Reject { reason } => {
                panic!("{name}: rejected ({reason}) — corpus cases must terminate")
            }
            Outcome::Fail(f) => panic!("{name}: {:?} regressed:\n{}", f.kind, f.detail),
        }
    }
}

#[test]
fn corpus_files_round_trip() {
    // Committed files must survive a parse → serialize → parse cycle, so
    // `lf-verify --replay` and hand edits stay in the same dialect.
    for path in std::fs::read_dir(corpus_dir()).expect("corpus dir") {
        let path = path.expect("entry").path();
        if path.extension().is_none_or(|x| x != "lfcase") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let spec = corpus::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let back = corpus::parse(&corpus::serialize(&spec, "")).expect("serialized parses");
        assert_eq!(spec, back, "{name} did not round-trip");
    }
}
