//! Property-based differential testing, ported onto the `lf-verify`
//! generator and harness (one seeded-RNG case format shared with the
//! fuzzer, the shrinker, and `tests/corpus/`).
//!
//! Random structured loop kernels are hinted two ways — automatically by
//! the compiler pass, and by *arbitrary* detach/reattach placements inside
//! the loop — and run through the full harness: golden emulator on plain
//! and hinted kernels, baseline core, LoopFrog core with cycle-level
//! invariants and lockstep boundary replay, and metamorphic configuration
//! variants. The microarchitecture must preserve sequential semantics for
//! any hint placement (paper §3.2), not just legal ones — illegal register
//! dataflow is caught by the register-merge violation squash, and memory
//! dependences by the conflict detector.
//!
//! Every case reproduces from its printed seed via
//! `lf_verify::gen::case_from_seed` (see EXPERIMENTS.md).

use lf_stats::rng::SmallRng;
use lf_verify::{gen, run_case, CaseSpec, HarnessOptions, HintMode, Outcome};

/// Cases per property (128 mirrors the original proptest config).
const CASES: u64 = 128;

fn check(spec: &CaseSpec, label: &str) {
    match run_case(spec, &HarnessOptions::default()) {
        Outcome::Fail(f) => panic!("{label} failed ({:?}) on {spec:?}:\n{}", f.kind, f.detail),
        Outcome::Reject { reason } => eprintln!("{label} rejected ({reason}): {spec:?}"),
        Outcome::Pass { .. } => {}
    }
}

/// Compiler-annotated random kernels are exact on both cores, at every
/// commit boundary, under every metamorphic config.
#[test]
fn compiler_annotated_kernels_are_exact() {
    let mut rng = SmallRng::seed_from_u64(0x1f_0001);
    for case in 0..CASES {
        let case_seed: u64 = rng.random();
        let spec = CaseSpec { hint: HintMode::Compiler, ..gen::case_from_seed(case_seed) };
        eprintln!("case {case} (seed {case_seed}): {spec:?}");
        check(&spec, "compiler-annotated");
    }
}

/// ARBITRARY detach/reattach placements — legal or not — are exact:
/// the hardware's violation detection must cover compiler bugs.
#[test]
fn arbitrary_hint_placements_are_exact() {
    let mut rng = SmallRng::seed_from_u64(0x1f_0002);
    for case in 0..CASES {
        let case_seed: u64 = rng.random();
        let mut spec = gen::case_from_seed(case_seed);
        if !matches!(spec.hint, HintMode::Arbitrary { .. }) {
            spec.hint = HintMode::Arbitrary {
                d: rng.random_range(0..9usize),
                r: rng.random_range(0..10usize),
            };
        }
        eprintln!("case {case} (seed {case_seed}): {spec:?}");
        check(&spec, "arbitrary-hints");
    }
}

/// Mixed generator output exactly as the fuzzer draws it (hint mode
/// included), so this file and `lf-verify --seed` explore the same space.
#[test]
fn generator_cases_are_exact() {
    let mut rng = SmallRng::seed_from_u64(0x1f_0003);
    for case in 0..CASES {
        let case_seed: u64 = rng.random();
        let spec = gen::case_from_seed(case_seed);
        eprintln!("case {case} (seed {case_seed}): {spec:?}");
        check(&spec, "generator");
    }
}
