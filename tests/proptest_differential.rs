//! Property-based differential testing.
//!
//! Random structured loop kernels are generated, hinted two ways —
//! automatically by the compiler pass, and by *arbitrary* detach/reattach
//! placements inside the loop — and executed on the golden emulator, the
//! baseline core, and the LoopFrog core. All runs must produce identical
//! architectural state: the microarchitecture must preserve sequential
//! semantics for any hint placement (paper §3.2), not just legal ones —
//! illegal register dataflow is caught by the register-merge violation
//! squash, and memory dependences by the conflict detector.
//!
//! The generator is driven by the repository's seeded [`SmallRng`] (the
//! external `proptest` crate is unavailable in hermetic builds), so every
//! case is reproducible from its printed seed.

use lf_isa::{reg, AluOp, BranchCond, Emulator, MemSize, Memory, Program, ProgramBuilder};
use lf_stats::rng::SmallRng;
use loopfrog::{simulate, LoopFrogConfig};

const ARRAYS: [i64; 3] = [0x1000, 0x3000, 0x5000];

/// Cases per property (128 mirrors the original proptest config).
const CASES: u64 = 128;

#[derive(Debug, Clone)]
enum OpSpec {
    /// tmp[dst] = mem[array + i + off*8]
    Load { arr: usize, off: i64, dst: usize },
    /// mem[array + i + off*8] = tmp[src]
    Store { arr: usize, off: i64, src: usize },
    /// tmp[dst] = op(tmp[a], tmp[b])
    Alu { op: AluOp, dst: usize, a: usize, b: usize },
    /// tmp[dst] = op(tmp[a], imm)
    AluImm { op: AluOp, dst: usize, a: usize, imm: i64 },
    /// Skip the next op if tmp[a] is odd (data-dependent branch).
    SkipIfOdd { a: usize },
}

#[derive(Debug, Clone)]
struct LoopSpec {
    trip: usize,
    ops: Vec<OpSpec>,
    seed: u64,
}

const ALU_OPS: [AluOp; 7] =
    [AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::Xor, AluOp::And, AluOp::Or, AluOp::Srl];

fn random_op(rng: &mut SmallRng) -> OpSpec {
    match rng.random_range(0..5u32) {
        0 => OpSpec::Load {
            arr: rng.random_range(0..3usize),
            off: rng.random_range(-2..=2i64),
            dst: rng.random_range(0..6usize),
        },
        1 => OpSpec::Store {
            arr: rng.random_range(0..3usize),
            off: rng.random_range(-2..=2i64),
            src: rng.random_range(0..6usize),
        },
        2 => OpSpec::Alu {
            op: ALU_OPS[rng.random_range(0..ALU_OPS.len())],
            dst: rng.random_range(0..6usize),
            a: rng.random_range(0..6usize),
            b: rng.random_range(0..6usize),
        },
        3 => OpSpec::AluImm {
            op: ALU_OPS[rng.random_range(0..ALU_OPS.len())],
            dst: rng.random_range(0..6usize),
            a: rng.random_range(0..6usize),
            imm: rng.random_range(1..64i64),
        },
        _ => OpSpec::SkipIfOdd { a: rng.random_range(0..6usize) },
    }
}

fn random_spec(rng: &mut SmallRng) -> LoopSpec {
    let trip = rng.random_range(4..48usize);
    let n = rng.random_range(1..9usize);
    let ops = (0..n).map(|_| random_op(rng)).collect();
    LoopSpec { trip, ops, seed: rng.random() }
}

/// Temps live in x3..x8; i in x1; bound in x2.
fn tmp(r: usize) -> lf_isa::Reg {
    reg::x(3 + r)
}

/// Emits the loop body ops; returns the body instruction count.
fn emit_ops(b: &mut ProgramBuilder, ops: &[OpSpec]) {
    let mut skip_next = false;
    let mut pending_label = None;
    for (k, op) in ops.iter().enumerate() {
        if skip_next {
            // Bind the skip label before this op's successor.
            skip_next = false;
        }
        match *op {
            OpSpec::Load { arr, off, dst } => {
                b.load(tmp(dst), reg::x(1), ARRAYS[arr] + off * 8 + 16, MemSize::B8);
            }
            OpSpec::Store { arr, off, src } => {
                b.store(tmp(src), reg::x(1), ARRAYS[arr] + off * 8 + 16, MemSize::B8);
            }
            OpSpec::Alu { op, dst, a, b: rb } => {
                b.alu(op, tmp(dst), tmp(a), tmp(rb));
            }
            OpSpec::AluImm { op, dst, a, imm } => {
                b.alui(op, tmp(dst), tmp(a), imm);
            }
            OpSpec::SkipIfOdd { a } => {
                if k + 1 < ops.len() {
                    let l = b.label(&format!("skip{k}"));
                    b.alui(AluOp::And, reg::x(9), tmp(a), 1);
                    b.branch(BranchCond::Ne, reg::x(9), reg::ZERO, l);
                    pending_label = Some((l, k + 1));
                    skip_next = true;
                }
            }
        }
        if let Some((l, at)) = pending_label {
            if k == at {
                b.bind(l);
                pending_label = None;
            }
        }
    }
    if let Some((l, _)) = pending_label {
        b.bind(l);
    }
}

/// Builds the kernel; `hint_at = Some((d, r))` places detach before body op
/// index `d` and (when `r > d`) reattach before body op index `r` —
/// arbitrary, possibly illegal placements. A detach with no reattach is
/// also emitted when `r <= d` (the region's continuation is then the
/// induction update): the hardware must tolerate that too. A sync guards
/// the exit whenever hints are present.
fn build(spec: &LoopSpec, hint_at: Option<(usize, usize)>) -> Program {
    let mut b = ProgramBuilder::new();
    let head = b.label("head");
    let cont = b.label("cont");
    b.li(reg::x(1), 0);
    b.li(reg::x(2), spec.trip as i64 * 8);
    for r in 0..6 {
        b.li(tmp(r), (spec.seed.wrapping_mul(r as u64 + 1) & 0xffff) as i64);
    }
    b.bind(head);
    let n = spec.ops.len();
    let (d, r) = hint_at.map_or((usize::MAX, usize::MAX), |(d, r)| (d.min(n), r.min(n)));
    let has_reattach = hint_at.is_some() && r > d;
    for (k, op) in spec.ops.iter().enumerate() {
        if k == d {
            b.detach(cont);
        }
        if k == r && has_reattach {
            b.reattach(cont);
            b.bind(cont);
        }
        emit_ops(&mut b, std::slice::from_ref(op));
    }
    if n == d {
        b.detach(cont);
    }
    if n == r && has_reattach {
        b.reattach(cont);
        b.bind(cont);
    }
    if hint_at.is_some() && !has_reattach {
        b.bind(cont); // continuation defaults to the induction update
    }
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), head);
    if hint_at.is_some() {
        b.sync(cont);
    }
    b.halt();
    b.build().expect("generator emits bound labels")
}

fn seeded_memory(seed: u64) -> Memory {
    let mut mem = Memory::new(0x8000);
    let mut x = seed | 1;
    for i in 0..(0x8000 / 8) {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        mem.write_u64(i * 8, x).unwrap();
    }
    mem
}

fn golden(program: &Program, mem: &Memory) -> u64 {
    let mut emu = Emulator::new(program, mem.clone());
    let r = emu.run(5_000_000).unwrap();
    assert_eq!(r.stop, lf_isa::StopReason::Halted);
    emu.state_checksum()
}

/// One case of the compiler-annotated property.
fn check_compiler_annotated(spec: &LoopSpec) {
    let plain = build(spec, None);
    let mem = seeded_memory(spec.seed);
    let gold = golden(&plain, &mem);

    let mut emu = Emulator::new(&plain, mem.clone());
    emu.run(5_000_000).unwrap();
    let opts = lf_compiler::SelectOptions {
        min_trip: 2.0,
        min_coverage: 0.0,
        min_body_score: 1.0,
        max_loops: 4,
    };
    let ann = lf_compiler::annotate(&plain, emu.profile(), &opts);

    let base = simulate(&ann.program, mem.clone(), LoopFrogConfig::baseline()).unwrap();
    assert_eq!(base.checksum, gold, "baseline diverged on {spec:?}");
    let lf = simulate(&ann.program, mem.clone(), LoopFrogConfig::default()).unwrap();
    assert_eq!(lf.checksum, gold, "loopfrog diverged on {spec:?}");
}

/// One case of the arbitrary-hint property.
fn check_arbitrary_hints(spec: &LoopSpec, d: usize, r: usize) {
    let n = spec.ops.len();
    let hinted = build(spec, Some((d.min(n), r.min(n))));
    let mem = seeded_memory(spec.seed);
    // The hinted program must be sequentially identical to itself with
    // hints stripped (hints are semantics-free)...
    let gold = golden(&hinted.without_hints(), &mem);
    assert_eq!(golden(&hinted, &mem), gold, "emulator diverged on {spec:?} d={d} r={r}");
    // ...and the speculative core must preserve that.
    let lf = simulate(&hinted, mem.clone(), LoopFrogConfig::default()).unwrap();
    assert_eq!(lf.checksum, gold, "loopfrog diverged on arbitrary hints {spec:?} d={d} r={r}");
}

/// Compiler-annotated random kernels are exact on both cores.
#[test]
fn compiler_annotated_kernels_are_exact() {
    let mut rng = SmallRng::seed_from_u64(0x1f_0001);
    for case in 0..CASES {
        let spec = random_spec(&mut rng);
        eprintln!("case {case}: {spec:?}");
        check_compiler_annotated(&spec);
    }
}

/// ARBITRARY detach/reattach placements — legal or not — are exact:
/// the hardware's violation detection must cover compiler bugs.
#[test]
fn arbitrary_hint_placements_are_exact() {
    let mut rng = SmallRng::seed_from_u64(0x1f_0002);
    for case in 0..CASES {
        let spec = random_spec(&mut rng);
        let d = rng.random_range(0..9usize);
        let r = rng.random_range(0..10usize);
        eprintln!("case {case}: d={d} r={r} {spec:?}");
        check_arbitrary_hints(&spec, d, r);
    }
}

/// Regression corpus: cases proptest shrank to in earlier versions of this
/// suite (kept verbatim from the retired `.proptest-regressions` file).
#[test]
fn shrunk_regression_cases() {
    let spec = LoopSpec { trip: 4, ops: vec![OpSpec::Load { arr: 0, off: 0, dst: 0 }], seed: 0 };
    check_arbitrary_hints(&spec, 1, 1);

    let spec = LoopSpec {
        trip: 4,
        ops: vec![OpSpec::Alu { op: AluOp::Xor, dst: 0, a: 1, b: 1 }],
        seed: 1,
    };
    check_compiler_annotated(&spec);
    check_arbitrary_hints(&spec, 0, 1);
}
