//! The kill -9 crash-injection harness: campaigns die hard at seeded
//! points across every phase and must recover byte-identically.
//!
//! Each case spawns a real `lf-bench` campaign as a child process, kills
//! it without cleanup — `--inject-fault crash:<rate>` aborts inside the
//! simulate phase, `--crash-after-ms N` aborts on a timer wherever the
//! campaign happens to be, and one case delivers a true external SIGKILL —
//! then reruns with `--resume` and asserts the recovery contract:
//!
//! 1. the resumed campaign completes (exit 0);
//! 2. its stdout and scenario artifact are byte-identical to an uncrashed
//!    campaign's (modulo the `planner` telemetry section, which carries
//!    wall-clock times);
//! 3. no orphaned commit temp files and no torn journal tail survive, and
//!    `failures.json` reports a clean campaign.
//!
//! Kill points are randomized but seeded (`LF_CRASH_SEED`), and the timer
//! sweep width scales with `LF_CRASH_POINTS` (CI's crash-smoke job widens
//! it; the default keeps `cargo test` quick). Because a killed campaign
//! usually dies *before* writing `failures.json`, every resume here also
//! exercises the missing-failure-report path end to end.

use lf_bench::engine::journal::{replay_and_truncate, JOURNAL_FILE};
use lf_stats::Json;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_lf-bench");
/// The campaign under test: one suite-shaped scenario over one kernel —
/// small enough to rerun dozens of times, real enough to cross every
/// phase (plan, prepare, cache, simulate, render, artifact writes).
const SCENARIO: &str = "fig6_speedups";
const FILTER: &str = "stencil_blur";

fn scratch_dir(tag: &str) -> PathBuf {
    // CI points LF_CRASH_SCRATCH inside the workspace so the journal and
    // failure reports of a red run can be uploaded as artifacts.
    let root =
        std::env::var_os("LF_CRASH_SCRATCH").map(PathBuf::from).unwrap_or_else(std::env::temp_dir);
    let dir = root.join(format!("lf-bench-crash-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A campaign command rooted in `dir` (relative output paths keep stdout
/// byte-comparable across scratch directories).
fn campaign(dir: &Path, extra: &[&str]) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.current_dir(dir)
        .arg("run")
        .arg(SCENARIO)
        .args(["--scale", "smoke", "--filter", FILTER, "-j", "2"])
        .args(["--json", "results"])
        .args(["--cache-dir", "results/cache"])
        .args(extra);
    cmd
}

fn run(cmd: &mut Command) -> Output {
    cmd.output().expect("campaign process spawns")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// The scenario artifact with its volatile telemetry section removed:
/// `planner` carries wall-clock timings and cache-hit counts that
/// legitimately differ between a cold run and a recovered one. Everything
/// else must match byte for byte.
fn normalized_artifact(dir: &Path) -> String {
    let path = dir.join("results").join(format!("{SCENARIO}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("artifact {} must exist: {e}", path.display()));
    let mut doc = Json::parse(&text).expect("artifact parses");
    doc.set("planner", Json::Null);
    doc.to_string_pretty()
}

/// Every file under `dir`, recursively.
fn files_under(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                files.push(path);
            }
        }
    }
    files
}

fn tmp_files_under(dir: &Path) -> Vec<PathBuf> {
    files_under(dir)
        .into_iter()
        .filter(|p| p.file_name().map(|n| n.to_string_lossy().contains(".tmp.")).unwrap_or(false))
        .collect()
}

/// The full recovery contract, checked against a reference run.
fn assert_recovered(dir: &Path, ref_stdout: &str, ref_artifact: &str, what: &str) {
    let resumed = run(&mut campaign(dir, &["--resume"]));
    assert!(
        resumed.status.success(),
        "[{what}] resumed campaign must complete:\n{}",
        stderr_of(&resumed)
    );
    assert_eq!(
        stdout_of(&resumed),
        ref_stdout,
        "[{what}] resumed stdout must be byte-identical to an uncrashed run"
    );
    assert_eq!(
        normalized_artifact(dir),
        ref_artifact,
        "[{what}] resumed artifact must be byte-identical (modulo planner telemetry)"
    );

    // A clean failure report.
    let failures = dir.join("results/failures.json");
    let doc = Json::parse(&std::fs::read_to_string(&failures).unwrap()).unwrap();
    assert_eq!(
        doc.get("failures").and_then(Json::as_arr).map(<[Json]>::len),
        Some(0),
        "[{what}] the recovered campaign reports no failures"
    );

    // No commit-protocol debris anywhere in the tree.
    let leaked = tmp_files_under(dir);
    assert!(leaked.is_empty(), "[{what}] leaked temp files after recovery: {leaked:?}");

    // The journal replays whole: no torn tail survives a recovery.
    let journal = dir.join("results/cache/journal").join(JOURNAL_FILE);
    assert!(journal.exists(), "[{what}] the recovered campaign keeps a journal");
    let replay = replay_and_truncate(&journal).unwrap();
    assert_eq!(replay.torn_bytes, 0, "[{what}] no torn journal tail after recovery");
    assert!(replay.records > 0, "[{what}] the journal records the recovered campaign");
}

/// Runs the uncrashed reference campaign and returns its stdout, its
/// normalized artifact, and its wall-clock duration (the timer sweep
/// spreads kill points across it).
fn reference() -> (String, String, Duration) {
    let dir = scratch_dir("reference");
    let started = Instant::now();
    let out = run(&mut campaign(&dir, &[]));
    let wall = started.elapsed();
    assert!(out.status.success(), "reference campaign failed:\n{}", stderr_of(&out));
    let stdout = stdout_of(&out);
    assert!(stdout.contains("stencil_blur"), "reference renders the kernel:\n{stdout}");
    (stdout, normalized_artifact(&dir), wall)
}

/// Seeded xorshift-style generator: the kill points are randomized but
/// reproducible (`LF_CRASH_SEED` selects the sequence).
struct Lcg(u64);

impl Lcg {
    fn from_env() -> Lcg {
        let seed = std::env::var("LF_CRASH_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0xC0FFEE);
        Lcg(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo).max(1)
    }
}

fn timer_points() -> usize {
    std::env::var("LF_CRASH_POINTS").ok().and_then(|s| s.parse::<usize>().ok()).unwrap_or(6)
}

/// `--inject-fault crash:1.0` aborts the process inside the simulate
/// phase — a deterministic in-worker kill -9. The resume (run *without*
/// the injection, as a recovery would be) must complete byte-identically,
/// through the missing-failures.json path.
#[test]
fn simulate_phase_crash_recovers_byte_identically() {
    let (ref_stdout, ref_artifact, _) = reference();
    let dir = scratch_dir("inject-crash");
    let crashed = run(&mut campaign(&dir, &["--inject-fault", "crash:1.0"]));
    assert!(
        !crashed.status.success(),
        "crash:1.0 must kill the campaign:\n{}",
        stdout_of(&crashed)
    );
    assert!(
        stderr_of(&crashed).contains("injected fault: crash"),
        "the kill announces itself:\n{}",
        stderr_of(&crashed)
    );
    assert!(
        !dir.join("results/failures.json").exists(),
        "a kill -9 precedes the failure report — that's the point"
    );

    // The journal survived the abort: the plan landed, and the doomed run
    // was journaled as started before the crash.
    let journal = dir.join("results/cache/journal").join(JOURNAL_FILE);
    let replay = replay_and_truncate(&journal).unwrap();
    assert!(!replay.planned.is_empty(), "the plan was journaled before the kill");
    assert!(!replay.started.is_empty(), "the doomed run was journaled as in flight");

    assert_recovered(&dir, &ref_stdout, &ref_artifact, "inject-crash");
}

/// The timer sweep: seeded `--crash-after-ms` points spread across the
/// whole campaign duration, so kills land in plan, prepare, cache,
/// simulate, and render phases alike. Every crashed campaign must resume
/// to a byte-identical result; a campaign that happens to finish before
/// its timer must already be identical.
#[test]
fn seeded_timer_kills_across_all_phases_recover() {
    let (ref_stdout, ref_artifact, wall) = reference();
    let mut rng = Lcg::from_env();
    let span_ms = (wall.as_millis() as u64).max(20) * 5 / 4;
    let mut crashes = 0usize;
    for point in 0..timer_points() {
        // Low points pin the early phases (plan/prepare startup); the rest
        // sample the whole campaign.
        let delay = if point == 0 { 1 } else { rng.in_range(1, span_ms) };
        let dir = scratch_dir(&format!("timer-{point}"));
        let out = run(&mut campaign(&dir, &["--crash-after-ms", &delay.to_string()]));
        if out.status.success() {
            // The campaign beat the timer — it must already be whole.
            assert_eq!(stdout_of(&out), ref_stdout, "[timer {delay}ms] uncrashed run matches");
            assert_eq!(normalized_artifact(&dir), ref_artifact);
            continue;
        }
        crashes += 1;
        assert_recovered(&dir, &ref_stdout, &ref_artifact, &format!("timer {delay}ms"));
    }
    assert!(crashes > 0, "the sweep must actually kill at least one campaign");
    eprintln!("timer sweep: {crashes}/{} points crashed and recovered", timer_points());
}

/// A true external `kill -9`: the harness SIGKILLs the child from outside
/// at a seeded point. Same recovery contract.
#[cfg(unix)]
#[test]
fn external_sigkill_recovers_byte_identically() {
    let (ref_stdout, ref_artifact, wall) = reference();
    let mut rng = Lcg::from_env();
    let span_ms = (wall.as_millis() as u64).max(20);
    for point in 0..3 {
        let delay = rng.in_range(1, span_ms);
        let dir = scratch_dir(&format!("sigkill-{point}"));
        let mut child = campaign(&dir, &[]).spawn().expect("campaign spawns");
        std::thread::sleep(Duration::from_millis(delay));
        // On Unix, `Child::kill` delivers SIGKILL: no handler, no cleanup.
        let _ = child.kill();
        let status = child.wait().unwrap();
        if status.success() {
            // The campaign finished before the kill landed.
            assert_eq!(normalized_artifact(&dir), ref_artifact);
            continue;
        }
        assert_recovered(&dir, &ref_stdout, &ref_artifact, &format!("sigkill {delay}ms"));
    }
}

/// `--resume` in a directory that has no failure report at all (the
/// predecessor died before writing one — or never existed) warns and
/// proceeds instead of refusing to recover.
#[test]
fn resume_without_a_failure_report_warns_and_completes() {
    let dir = scratch_dir("resume-fresh");
    let out = run(&mut campaign(&dir, &["--resume"]));
    assert!(out.status.success(), "{}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("resuming with an empty failure set"),
        "the missing report is called out:\n{}",
        stderr_of(&out)
    );
}

/// `--resume` from a failure report whose fingerprints no longer appear in
/// the plan (stale file from another campaign shape): the unknown entries
/// are simply not matched — nothing re-executes on their behalf, and the
/// campaign completes cleanly.
#[test]
fn resume_with_stale_fingerprints_completes_cleanly() {
    let dir = scratch_dir("resume-stale");
    // A clean first campaign fills the cache and writes an empty report.
    let first = run(&mut campaign(&dir, &[]));
    assert!(first.status.success());

    // Replace the report with failures this plan has never heard of.
    let stale = r#"{
  "failures": [
    { "fingerprint": "00000000deadbeef", "kernel": "no_such_kernel" },
    { "fingerprint": "00000000cafef00d", "kernel": "also_gone" }
  ]
}"#;
    std::fs::write(dir.join("results/failures.json"), stale).unwrap();

    let resumed = run(&mut campaign(&dir, &["--resume"]));
    assert!(resumed.status.success(), "{}", stderr_of(&resumed));
    assert!(stderr_of(&resumed).contains("resuming: 2 failed run(s)"));
    let planner =
        Json::parse(&std::fs::read_to_string(dir.join("results/planner.json")).unwrap()).unwrap();
    let faults = planner.get("faults").expect("planner telemetry has a faults section");
    assert_eq!(
        faults.get("resumed_failures").and_then(Json::as_u64),
        Some(0),
        "stale fingerprints match nothing in the plan"
    );
    assert_eq!(
        planner.get("simulated").and_then(Json::as_u64),
        Some(0),
        "nothing re-executes for unknown fingerprints — the cache serves everything"
    );
}

/// `--resume --no-cache`: with the cache disabled there is no journal and
/// no memoization — the resume degenerates to a full re-run, which must
/// still complete and must not create cache state.
#[test]
fn resume_with_no_cache_reruns_everything_without_journal() {
    let dir = scratch_dir("resume-nocache");
    let out = run(&mut campaign(&dir, &["--resume", "--no-cache"]));
    assert!(out.status.success(), "{}", stderr_of(&out));
    assert!(
        !dir.join("results/cache").exists(),
        "--no-cache must not create cache or journal state"
    );
}

/// A clean campaign's empty failure report resumes as a no-op: everything
/// is served from the cache and the report stays empty.
#[test]
fn resume_from_an_empty_failure_report_serves_the_cache() {
    let dir = scratch_dir("resume-empty");
    let first = run(&mut campaign(&dir, &[]));
    assert!(first.status.success());

    let resumed = run(&mut campaign(&dir, &["--resume"]));
    assert!(resumed.status.success(), "{}", stderr_of(&resumed));
    assert!(stderr_of(&resumed).contains("resuming: 0 failed run(s)"));
    let planner =
        Json::parse(&std::fs::read_to_string(dir.join("results/planner.json")).unwrap()).unwrap();
    assert_eq!(
        planner.get("simulated").and_then(Json::as_u64),
        Some(0),
        "the resumed campaign is served entirely from the cache"
    );
    // And the journal classifies every planned run as committed.
    let faults = planner.get("faults").unwrap();
    assert_eq!(faults.get("journal_in_flight").and_then(Json::as_u64), Some(0));
    assert_eq!(faults.get("journal_never_started").and_then(Json::as_u64), Some(0));
    assert!(faults.get("journal_committed").and_then(Json::as_u64).unwrap() > 0);
}
