//! Integration tests for the telemetry layer: cycle accounting, interval
//! sampling, registry dumps, and the JSON artifact pipeline — all driven
//! through real kernel simulations rather than synthetic counters.

use lf_bench::{run_kernel, RunConfig};
use lf_stats::Json;
use lf_workloads::Scale;
use loopfrog::{simulate, CycleBucket, LoopFrogConfig, TelemetryConfig};

fn smoke(name: &str) -> lf_workloads::Workload {
    lf_workloads::by_name(name, Scale::Smoke).expect("kernel exists")
}

/// The central invariant: every commit slot of every counted cycle lands
/// in exactly one accounting bucket, so the buckets sum to
/// `cycles × commit_width` — on a real kernel, both baseline and LoopFrog.
#[test]
fn accounting_buckets_sum_to_cycles_times_commit_width() {
    let w = smoke("stencil_blur");
    for cfg in [LoopFrogConfig::default(), LoopFrogConfig::baseline()] {
        let cw = cfg.core.commit_width as u64;
        let r = simulate(&w.program, w.mem.clone(), cfg).expect("kernel simulates");
        assert!(r.stats.cycles > 0);
        assert_eq!(
            r.accounting.total(),
            r.stats.cycles * cw,
            "accounting must cover every commit slot"
        );
        // Every commit (architectural, promoted, or later squashed) occupies
        // a BaseCommit slot, except those of the final halt cycle, which is
        // excluded from accounting along with its cycle count.
        let all_commits =
            r.stats.commits_arch + r.stats.commits_spec_success + r.stats.commits_spec_failed;
        let base = r.accounting.get(CycleBucket::BaseCommit);
        assert!(base <= all_commits);
        assert!(all_commits - base <= cw, "only the halt cycle's commits may be uncounted");
    }
}

/// Interval sampling emits ⌈cycles / N⌉ cumulative snapshots whose final
/// entry matches the end-of-run statistics.
#[test]
fn sampler_emits_ceil_cycles_over_period_snapshots() {
    let w = smoke("stencil_blur");
    let period = 1000u64;
    let mut cfg = LoopFrogConfig::default();
    cfg.telemetry = TelemetryConfig { interval_cycles: Some(period), ..cfg.telemetry };
    let r = simulate(&w.program, w.mem.clone(), cfg).expect("kernel simulates");
    let expect = r.stats.cycles.div_ceil(period) as usize;
    assert_eq!(r.intervals.len(), expect);
    let last = r.intervals.last().unwrap();
    assert_eq!(last.cycle, r.stats.cycles);
    assert_eq!(last.committed_insts, r.stats.committed_insts);
    // Snapshots are cumulative, hence monotone.
    for pair in r.intervals.windows(2) {
        assert!(pair[0].cycle < pair[1].cycle);
        assert!(pair[0].committed_insts <= pair[1].committed_insts);
        assert!(pair[0].issued_insts <= pair[1].issued_insts);
    }
}

/// Disabling the sampler yields no intervals; the registry still dumps.
#[test]
fn sampling_can_be_disabled() {
    let w = smoke("event_queue");
    let mut cfg = LoopFrogConfig::default();
    cfg.telemetry.interval_cycles = None;
    let r = simulate(&w.program, w.mem.clone(), cfg).expect("kernel simulates");
    assert!(r.intervals.is_empty());
    assert_eq!(r.registry.scalar("core.cycles"), r.stats.cycles);
}

/// The registry dump of a real run is internally consistent with the flat
/// statistics and contains the documented namespaces.
#[test]
fn registry_matches_flat_stats() {
    let w = smoke("stencil_blur");
    let r = simulate(&w.program, w.mem.clone(), LoopFrogConfig::default()).expect("simulates");
    let reg = &r.registry;
    assert_eq!(reg.scalar("core.cycles"), r.stats.cycles);
    assert_eq!(reg.scalar("core.commit.total_insts"), r.stats.committed_insts);
    assert_eq!(reg.scalar("threadlet.spawns"), r.stats.spawns);
    for bucket in CycleBucket::ALL {
        let name = format!("accounting.{}", bucket.name());
        assert_eq!(reg.scalar(&name), r.accounting.get(bucket), "{name}");
    }
    let ipc = reg.value("core.ipc");
    assert!((ipc - r.stats.ipc()).abs() < 1e-12, "formula must match SimStats::ipc");
}

/// A full kernel artifact (registry + accounting + intervals for both
/// simulations) survives a JSON serialize → parse round trip.
#[test]
fn artifact_json_round_trips_on_real_kernel() {
    let w = smoke("stencil_blur");
    let run = run_kernel(&w, &RunConfig::default());
    let doc = lf_bench::artifact::kernel_json(&run);
    let text = doc.to_string_pretty();
    let back = Json::parse(&text).expect("artifact parses");
    assert_eq!(back, doc, "parse must invert serialization");

    let lf = back.get("loopfrog").unwrap();
    let cycles = lf.get("registry").unwrap().get("core.cycles").unwrap().as_u64().unwrap();
    assert_eq!(cycles, run.lf_stats().cycles);
    let acct = lf.get("accounting").unwrap();
    let sum: u64 =
        CycleBucket::ALL.iter().map(|b| acct.get(b.name()).unwrap().as_u64().unwrap()).sum();
    let cw = lf.get("registry").unwrap().get("core.config.commit_width").unwrap().as_u64().unwrap();
    assert_eq!(sum, cycles * cw, "invariant must survive the round trip");
    assert!(!lf.get("intervals").unwrap().as_arr().unwrap().is_empty());
}

/// The flight recorder captures a bounded window of events preceding a
/// squash on a kernel that actually squashes.
#[test]
fn flight_recorder_captures_pre_squash_window() {
    let w = smoke("event_queue");
    let mut cfg = LoopFrogConfig::default();
    cfg.telemetry.flight_recorder_depth = 32;
    let r = simulate(&w.program, w.mem.clone(), cfg).expect("kernel simulates");
    let squashes = r.stats.squashes_conflict
        + r.stats.squashes_sync
        + r.stats.squashes_packing
        + r.stats.squashes_wrong_path;
    if squashes > 0 {
        assert!(!r.flight_recorder.is_empty(), "a squash must freeze the ring");
        assert!(r.flight_recorder.len() <= 32);
    } else {
        assert!(r.flight_recorder.is_empty());
    }
}
