//! The resident campaign service: `lf-bench serve` + `lf-bench submit`.
//!
//! Each case drives a real server process over its Unix socket and
//! asserts the service contract from outside:
//!
//! 1. a submitted campaign is **byte-identical** to `lf-bench run` —
//!    same stdout, same artifacts (modulo planner telemetry);
//! 2. the same campaign submitted twice concurrently shares every
//!    simulation through the warm cache: zero redundant simulations
//!    across the pair, and a third submission simulates nothing and is
//!    dominated by the render phase (the plan index absorbed the rest);
//! 3. SIGTERM drains the queue and leaks nothing: no socket file, no
//!    leases, no temp files, no torn journal bytes, exit `128 + 15`;
//! 4. failure modes stay contained: a malformed request line answers a
//!    `done` record with exit 2 and the server keeps serving; a live
//!    socket is refused by a second server; a stale one is swept.

#![cfg(unix)]

use lf_bench::engine::journal::{replay_dir, JOURNAL_FILE};
use lf_stats::Json;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_lf-bench");

fn scratch_dir(tag: &str) -> PathBuf {
    let root =
        std::env::var_os("LF_CRASH_SCRATCH").map(PathBuf::from).unwrap_or_else(std::env::temp_dir);
    let dir = root.join(format!("lf-bench-serve-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The shared campaign flags — identical between `run` (the reference)
/// and `submit` (the service path) so their outputs are comparable.
const CAMPAIGN: &[&str] = &[
    "--all",
    "--scale",
    "smoke",
    "--filter",
    "stencil_blur",
    "-j",
    "2",
    "--json",
    "results",
    "--cache-dir",
    "results/cache",
];

/// A one-shot reference campaign rooted in `dir`.
fn reference(dir: &Path) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.current_dir(dir).arg("run").args(CAMPAIGN);
    cmd
}

/// A server rooted in `dir`, socket `lf.sock` (relative paths keep stdout
/// byte-comparable across scratch directories).
fn server(dir: &Path) -> Child {
    Command::new(BIN)
        .current_dir(dir)
        .args(["serve", "--socket", "lf.sock", "--cache-dir", "results/cache"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("server spawns")
}

/// A `submit` of the shared campaign against `dir`'s server.
fn submit(dir: &Path) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.current_dir(dir).arg("submit").args(CAMPAIGN).args(["--socket", "lf.sock"]);
    cmd
}

fn run(cmd: &mut Command) -> Output {
    cmd.output().expect("process spawns")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// The last protocol record of the given type on a submit client's
/// stderr (the client relays non-stdout records as raw JSON lines).
fn record_of(err: &str, kind: &str) -> Json {
    err.lines()
        .rev()
        .find_map(|line| {
            let line = line.trim();
            if !line.starts_with('{') {
                return None;
            }
            let parsed = Json::parse(line).ok()?;
            (parsed.get("type").and_then(Json::as_str) == Some(kind)).then_some(parsed)
        })
        .unwrap_or_else(|| panic!("no {kind:?} record on the client's stderr:\n{err}"))
}

fn counter(record: &Json, key: &str) -> u64 {
    record.get(key).and_then(Json::as_u64).unwrap_or(0)
}

/// Every scenario artifact under `results/`, with the volatile `planner`
/// telemetry section nulled out.
fn normalized_artifacts(dir: &Path) -> Vec<(String, String)> {
    let results = dir.join("results");
    let mut artifacts = Vec::new();
    for entry in std::fs::read_dir(&results).expect("results dir exists").flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.ends_with(".json")
            || matches!(name.as_str(), "planner.json" | "BENCH_harness.json" | "failures.json")
        {
            continue;
        }
        let text = std::fs::read_to_string(entry.path()).unwrap();
        let mut doc = Json::parse(&text).expect("artifact parses");
        doc.set("planner", Json::Null);
        artifacts.push((name, doc.to_string_pretty()));
    }
    artifacts.sort();
    assert!(!artifacts.is_empty(), "the campaign wrote scenario artifacts");
    artifacts
}

fn files_under(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                files.push(path);
            }
        }
    }
    files
}

/// No leases, no commit temp files, no torn journal bytes — the same
/// hygiene contract the supervisor tests assert.
fn assert_no_debris(dir: &Path, what: &str) {
    let leaked: Vec<_> = files_under(dir)
        .into_iter()
        .filter(|p| {
            let name = p.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
            name.ends_with(".lease") || name.contains(".tmp.") || name.ends_with(".poison")
        })
        .collect();
    assert!(leaked.is_empty(), "[{what}] leaked coordination debris: {leaked:?}");
    let journal_dir = dir.join("results/cache/journal");
    if journal_dir.join(JOURNAL_FILE).exists() || journal_dir.exists() {
        if let Ok(replay) = replay_dir(&journal_dir) {
            assert_eq!(replay.torn_bytes, 0, "[{what}] merged journal replays without a torn tail");
        }
    }
}

/// Waits for the server's socket file to exist (the client would retry
/// anyway; the tests wait explicitly so failures point at the server).
fn await_socket(dir: &Path, child: &mut Child) {
    let sock = dir.join("lf.sock");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !sock.exists() && Instant::now() < deadline {
        assert!(child.try_wait().unwrap().is_none(), "server died before binding its socket");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(sock.exists(), "server never bound {}", sock.display());
}

/// SIGTERMs the server and asserts the drain contract: exit `128 + 15`,
/// a drain announcement, and no socket file left behind.
fn drain(dir: &Path, child: Child) -> String {
    let delivered = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .map(|s| s.success())
        .unwrap_or(false);
    assert!(delivered, "SIGTERM delivery failed");
    let out = child.wait_with_output().unwrap();
    let err = stderr_of(&out);
    assert_eq!(out.status.code(), Some(128 + 15), "a drained server exits 128+SIGTERM:\n{err}");
    assert!(err.contains("serve: drained"), "the drain is announced:\n{err}");
    assert!(!dir.join("lf.sock").exists(), "the drained server removes its socket:\n{err}");
    err
}

/// The heart of the service contract: two concurrent submissions of the
/// same campaign share every simulation (zero redundant across the pair),
/// a third is fully warm — zero simulations, a reused plan, and latency
/// dominated by the render phase — and everything is byte-identical to a
/// one-shot `lf-bench run`. The SIGTERM drain then leaks nothing.
#[test]
fn concurrent_submissions_share_the_warm_cache_byte_identically() {
    let ref_dir = scratch_dir("identity-ref");
    let one_shot = run(&mut reference(&ref_dir));
    assert!(one_shot.status.success(), "{}", stderr_of(&one_shot));

    let dir = scratch_dir("identity-srv");
    let mut srv = server(&dir);
    await_socket(&dir, &mut srv);

    // Two clients race the same campaign. The server queues them; the
    // disk cache and plan index make the loser free.
    let first = submit(&dir).stdout(Stdio::piped()).stderr(Stdio::piped()).spawn().unwrap();
    let second = submit(&dir).stdout(Stdio::piped()).stderr(Stdio::piped()).spawn().unwrap();
    let first = first.wait_with_output().unwrap();
    let second = second.wait_with_output().unwrap();
    assert!(first.status.success(), "{}", stderr_of(&first));
    assert!(second.status.success(), "{}", stderr_of(&second));

    // Byte-identity: both submissions reprint exactly the one-shot stdout.
    assert_eq!(stdout_of(&first), stdout_of(&one_shot), "first submission stdout");
    assert_eq!(stdout_of(&second), stdout_of(&one_shot), "second submission stdout");
    assert_eq!(
        normalized_artifacts(&dir),
        normalized_artifacts(&ref_dir),
        "served artifacts must be byte-identical (modulo planner telemetry)"
    );

    // Zero redundant simulations across the concurrent pair: the unique
    // set was simulated exactly once, no matter which request won.
    let d1 = record_of(&stderr_of(&first), "done");
    let d2 = record_of(&stderr_of(&second), "done");
    let unique = counter(&d1, "unique");
    assert!(unique > 0, "the campaign has unique runs: {d1:?}");
    assert_eq!(counter(&d2, "unique"), unique, "both requests dedupe to the same set");
    assert_eq!(
        counter(&d1, "simulated") + counter(&d2, "simulated"),
        unique,
        "the pair simulates the unique set exactly once:\n{d1:?}
{d2:?}"
    );

    // A third submission is fully warm: nothing simulates, the plan index
    // is reused, and the request is dominated by rendering.
    let third = run(&mut submit(&dir));
    assert!(third.status.success(), "{}", stderr_of(&third));
    assert_eq!(stdout_of(&third), stdout_of(&one_shot), "warm submission stdout");
    let err = stderr_of(&third);
    let done = record_of(&err, "done");
    assert_eq!(counter(&done, "simulated"), 0, "a warm request simulates nothing: {done:?}");
    assert_eq!(counter(&done, "disk_hits"), unique, "every unique run comes from cache: {done:?}");
    assert_eq!(done.get("plan_warm"), Some(&Json::Bool(true)), "the plan index is warm: {done:?}");
    let phases = record_of(&err, "phases");
    let render = counter(&phases, "render_us");
    let rest =
        counter(&phases, "plan_us") + counter(&phases, "prepare_us") + counter(&phases, "simulate_us");
    assert!(
        render > rest,
        "a fully-cached request is render-dominated: render {render} µs vs plan+prepare+simulate {rest} µs in {phases:?}"
    );

    // Drain: the queue is empty, so SIGTERM just cleans up and exits.
    let err = drain(&dir, srv);
    assert!(err.contains("3 request(s) served"), "the drain counts its requests:\n{err}");
    assert_no_debris(&dir, "identity");
}

/// `submit` with no server: the client retries until its connect deadline,
/// then fails fast with guidance instead of hanging.
#[test]
fn submit_without_a_server_fails_fast_with_guidance() {
    let dir = scratch_dir("no-server");
    let out = run(submit(&dir).env("LF_SERVE_CONNECT_TIMEOUT_MS", "200"));
    assert_eq!(out.status.code(), Some(3), "an unreachable service is exit 3");
    let err = stderr_of(&out);
    assert!(err.contains("no campaign service reachable"), "the error says what happened:\n{err}");
    assert!(err.contains("lf-bench serve"), "the error says how to fix it:\n{err}");
}

/// A malformed request line answers a `done` record with exit 2 — and the
/// server survives to serve the next (well-formed) request.
#[test]
fn malformed_request_is_rejected_without_killing_the_server() {
    let dir = scratch_dir("malformed");
    let mut srv = server(&dir);
    await_socket(&dir, &mut srv);

    let mut stream = std::os::unix::net::UnixStream::connect(dir.join("lf.sock")).unwrap();
    stream.write_all(b"this is not a request\n").unwrap();
    let mut reply = String::new();
    BufReader::new(stream.try_clone().unwrap()).read_line(&mut reply).unwrap();
    let done = Json::parse(reply.trim()).expect("the reply is a protocol record");
    assert_eq!(done.get("type").and_then(Json::as_str), Some("done"), "{done:?}");
    assert_eq!(counter(&done, "exit"), 2, "a bad request is exit 2: {done:?}");
    assert!(
        done.get("error").and_then(Json::as_str).unwrap_or("").contains("bad request"),
        "the record carries the parse error: {done:?}"
    );
    drop(stream);

    // The server is still alive and still serves real campaigns.
    let out = run(&mut submit(&dir));
    assert!(out.status.success(), "the server survives a bad request:\n{}", stderr_of(&out));
    drain(&dir, srv);
    assert_no_debris(&dir, "malformed");
}

/// Two servers must not share a claim space: a second server on a live
/// socket refuses to start, while a stale socket (dead server) is swept
/// and rebound.
#[test]
fn live_socket_is_refused_and_stale_socket_is_swept() {
    let dir = scratch_dir("socket-claims");
    let mut srv = server(&dir);
    await_socket(&dir, &mut srv);

    let rival = Command::new(BIN)
        .current_dir(&dir)
        .args(["serve", "--socket", "lf.sock", "--cache-dir", "results/cache"])
        .output()
        .unwrap();
    assert_eq!(rival.status.code(), Some(2), "a live socket is refused");
    assert!(
        stderr_of(&rival).contains("live service already owns"),
        "the refusal names the conflict:\n{}",
        stderr_of(&rival)
    );

    // SIGKILL the first server: no cleanup runs, the socket file stays.
    let delivered = Command::new("kill")
        .args(["-KILL", &srv.id().to_string()])
        .status()
        .map(|s| s.success())
        .unwrap_or(false);
    assert!(delivered, "SIGKILL delivery failed");
    let _ = srv.wait();
    assert!(dir.join("lf.sock").exists(), "a SIGKILLed server leaks its socket file");

    // A successor sweeps the stale socket and serves normally.
    let mut successor = server(&dir);
    await_socket(&dir, &mut successor);
    let out = run(&mut submit(&dir));
    assert!(out.status.success(), "the successor serves:\n{}", stderr_of(&out));
    let err = drain(&dir, successor);
    assert!(err.contains("removed stale socket"), "the sweep is announced:\n{err}");
    assert_no_debris(&dir, "socket-claims");
}
