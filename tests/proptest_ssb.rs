//! Property test: the SSB's multi-versioned read logic against a naive
//! reference model, ported onto `lf_verify::ssb_model` (one seeded-RNG
//! case format shared with the fuzzer's soak mode).
//!
//! Random interleaved writes and squashes drive `loopfrog::ssb::Ssb`; a
//! final versioned read must match a stack of per-slice byte overlays.
//! Every case prints its index so failures reproduce deterministically
//! from the fixed seed.

use lf_stats::rng::SmallRng;
use lf_verify::ssb_model::{check_case, random_case};

#[test]
fn versioned_reads_match_naive_overlay() {
    // 256 cases mirrors the original proptest config.
    let mut rng = SmallRng::seed_from_u64(0x55b_0001);
    for case in 0..256 {
        let c = random_case(&mut rng);
        eprintln!(
            "case {case}: {} actions, read {}@{:#x} as T{}",
            c.actions.len(),
            c.read_len,
            c.read_addr,
            c.reader
        );
        if let Err(msg) = check_case(&c) {
            panic!("case {case} diverged: {msg}\n{c:?}");
        }
    }
}
