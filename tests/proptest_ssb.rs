//! Property test: the SSB's multi-versioned read logic against a naive
//! reference model (a stack of byte overlays per slice), over random
//! interleaved writes and squashes.
//!
//! Randomized with the repository's seeded [`SmallRng`] (the external
//! `proptest` crate is unavailable in hermetic builds); every case prints
//! its index so failures reproduce deterministically.

use lf_isa::Memory;
use lf_stats::rng::SmallRng;
use loopfrog::ssb::{Ssb, WriteOutcome};
use loopfrog::SsbConfig;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Action {
    /// slice, addr (aligned within a small window), len 1..=8, value seed
    Write(usize, u64, usize, u64),
    /// squash slice
    Squash(usize),
}

fn random_action(rng: &mut SmallRng) -> Action {
    // Writes outnumber squashes 8:1, as in the original strategy weights.
    if rng.random_range(0..9u32) < 8 {
        Action::Write(
            rng.random_range(0..4usize),
            rng.random_range(0..256u64),
            rng.random_range(1..=8usize),
            rng.random(),
        )
    } else {
        Action::Squash(rng.random_range(0..4usize))
    }
}

fn run_case(actions: &[Action], read_addr: u64, read_len: usize, reader: usize) {
    let cfg = SsbConfig { size_bytes: 4096, line: 32, granule: 4, ..SsbConfig::default() };
    let mut ssb = Ssb::new(&cfg, 4);
    let mut mem = Memory::new(1024);
    for i in 0..128 {
        mem.write_u64(i * 8, i.wrapping_mul(0x9e3779b9) | 1).unwrap();
    }
    // Naive model: per-slice byte overlays.
    let mut model: Vec<HashMap<u64, u8>> = vec![HashMap::new(); 4];

    for act in actions {
        match *act {
            Action::Write(slice, addr, len, seed) => {
                let bytes: Vec<u8> = (0..len).map(|i| (seed >> (i * 8)) as u8).collect();
                // Older view for read-fills: slices 0..=slice over memory.
                let view_order: Vec<usize> = (0..=slice).collect();
                let view: Vec<(u64, u8)> = (addr.saturating_sub(8)..addr + 16)
                    .map(|a| {
                        let mut b = mem.read_u8(a).unwrap_or(0);
                        for &s in &view_order {
                            if let Some(&v) = model[s].get(&a) {
                                b = v;
                            }
                        }
                        (a, b)
                    })
                    .collect();
                let lookup: HashMap<u64, u8> = view.into_iter().collect();
                let out = ssb.write(slice, addr, &bytes, |a| lookup[&a]);
                assert!(matches!(out, WriteOutcome::Ok { .. }), "write overflowed unexpectedly");
                // Model: the write plus granule read-fills.
                let g = 4u64;
                let first = addr / g * g;
                let last = (addr + len as u64 - 1) / g * g + g;
                for a in first..last {
                    let covered = a >= addr && a < addr + len as u64;
                    if covered {
                        model[slice].insert(a, bytes[(a - addr) as usize]);
                    } else {
                        // Read-fill from the older view.
                        model[slice].entry(a).or_insert_with(|| lookup[&a]);
                    }
                }
            }
            Action::Squash(slice) => {
                ssb.invalidate_slice(slice);
                model[slice].clear();
            }
        }
    }

    // Read as `reader`: slices 0..=reader overlay memory, newest wins.
    let order: Vec<usize> = (0..=reader).collect();
    let (got, _) = ssb.read(&order, read_addr, read_len as u64, &mem);
    for (i, b) in got.iter().enumerate() {
        let a = read_addr + i as u64;
        let mut expect = mem.read_u8(a).unwrap_or(0);
        for &s in &order {
            if let Some(&v) = model[s].get(&a) {
                expect = v;
            }
        }
        assert_eq!(*b, expect, "byte {} at {:#x}", i, a);
    }
}

#[test]
fn versioned_reads_match_naive_overlay() {
    // 256 cases mirrors the original proptest config.
    let mut rng = SmallRng::seed_from_u64(0x55b_0001);
    for case in 0..256 {
        let n = rng.random_range(1..60usize);
        let actions: Vec<Action> = (0..n).map(|_| random_action(&mut rng)).collect();
        let read_addr = rng.random_range(0..256u64);
        let read_len = rng.random_range(1..=8usize);
        let reader = rng.random_range(0..4usize);
        eprintln!("case {case}: {} actions, read {read_len}@{read_addr} as T{reader}", n);
        run_case(&actions, read_addr, read_len, reader);
    }
}
