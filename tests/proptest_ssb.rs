//! Property test: the SSB's multi-versioned read logic against a naive
//! reference model (a stack of byte overlays per slice), over random
//! interleaved writes and squashes.

use lf_isa::Memory;
use loopfrog::ssb::{Ssb, WriteOutcome};
use loopfrog::SsbConfig;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Action {
    /// slice, addr (aligned within a small window), len 1..=8, value seed
    Write(usize, u64, usize, u64),
    /// squash slice
    Squash(usize),
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        8 => (0..4usize, 0..256u64, 1..=8usize, any::<u64>())
            .prop_map(|(s, a, l, v)| Action::Write(s, a, l, v)),
        1 => (0..4usize).prop_map(Action::Squash),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn versioned_reads_match_naive_overlay(
        actions in prop::collection::vec(action(), 1..60),
        read_addr in 0..256u64,
        read_len in 1..=8usize,
        reader in 0..4usize,
    ) {
        let cfg = SsbConfig { size_bytes: 4096, line: 32, granule: 4, ..SsbConfig::default() };
        let mut ssb = Ssb::new(&cfg, 4);
        let mut mem = Memory::new(1024);
        for i in 0..128 {
            mem.write_u64(i * 8, i.wrapping_mul(0x9e3779b9) | 1).unwrap();
        }
        // Naive model: per-slice byte overlays.
        let mut model: Vec<HashMap<u64, u8>> = vec![HashMap::new(); 4];

        for act in &actions {
            match *act {
                Action::Write(slice, addr, len, seed) => {
                    let bytes: Vec<u8> =
                        (0..len).map(|i| (seed >> (i * 8)) as u8).collect();
                    // Older view for read-fills: slices 0..=slice over memory.
                    let view_order: Vec<usize> = (0..=slice).collect();
                    let view: Vec<(u64, u8)> = (addr.saturating_sub(8)..addr + 16)
                        .map(|a| {
                            let mut b = mem.read_u8(a).unwrap_or(0);
                            for &s in &view_order {
                                if let Some(&v) = model[s].get(&a) {
                                    b = v;
                                }
                            }
                            (a, b)
                        })
                        .collect();
                    let lookup: HashMap<u64, u8> = view.into_iter().collect();
                    let out = ssb.write(slice, addr, &bytes, |a| lookup[&a]);
                    let ok = matches!(out, WriteOutcome::Ok { .. });
                    prop_assert!(ok, "write overflowed unexpectedly");
                    // Model: the write plus granule read-fills.
                    let g = 4u64;
                    let first = addr / g * g;
                    let last = (addr + len as u64 - 1) / g * g + g;
                    for a in first..last {
                        let covered = a >= addr && a < addr + len as u64;
                        let newly = !model[slice].contains_key(&(a / g * g))
                            || model[slice].contains_key(&a);
                        let _ = newly;
                        if covered {
                            model[slice].insert(a, bytes[(a - addr) as usize]);
                        } else if !model[slice].contains_key(&a) {
                            // Read-fill from the older view.
                            model[slice].insert(a, lookup[&a]);
                        }
                    }
                }
                Action::Squash(slice) => {
                    ssb.invalidate_slice(slice);
                    model[slice].clear();
                }
            }
        }

        // Read as `reader`: slices 0..=reader overlay memory, newest wins.
        let order: Vec<usize> = (0..=reader).collect();
        let (got, _) = ssb.read(&order, read_addr, read_len as u64, &mem);
        for (i, b) in got.iter().enumerate() {
            let a = read_addr + i as u64;
            let mut expect = mem.read_u8(a).unwrap_or(0);
            for &s in &order {
                if let Some(&v) = model[s].get(&a) {
                    expect = v;
                }
            }
            prop_assert_eq!(*b, expect, "byte {} at {:#x}", i, a);
        }
    }
}
