//! The supervised multi-process campaign harness: worker crashes, kills,
//! and drains must never cost more than the in-flight run.
//!
//! Each case spawns a real `lf-bench run --workers N` supervisor as a
//! child process and asserts the supervision contract from outside:
//!
//! 1. a campaign sharded across workers renders **byte-identically** to a
//!    single-process campaign — same stdout, same artifacts (modulo the
//!    `planner` telemetry section);
//! 2. worker deaths (injected `crash:<rate>` aborts, true external
//!    SIGKILLs) are absorbed: the supervisor respawns workers, surviving
//!    workers retry the lost runs, and the campaign still exits 0;
//! 3. a run that keeps killing workers is classified poisonous and lands
//!    in `failures.json` as a structured `poisoned` record instead of
//!    taking the campaign down;
//! 4. nothing leaks: zero worker processes, zero `.lease` files, zero
//!    commit temp files, zero torn journal bytes after any outcome —
//!    including a SIGTERM drain of the whole supervisor.

use lf_bench::engine::journal::{replay_dir, JOURNAL_FILE};
use lf_stats::Json;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_lf-bench");

fn scratch_dir(tag: &str) -> PathBuf {
    let root =
        std::env::var_os("LF_CRASH_SCRATCH").map(PathBuf::from).unwrap_or_else(std::env::temp_dir);
    let dir = root.join(format!("lf-bench-multiproc-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A campaign command rooted in `dir` (relative output paths keep stdout
/// byte-comparable across scratch directories). Fast respawn backoff: the
/// tests inject crash storms and should not sleep through real backoff.
fn campaign(dir: &Path, extra: &[&str]) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.current_dir(dir)
        .arg("run")
        .args(["--all", "--scale", "smoke", "--filter", "stencil_blur", "-j", "2"])
        .args(["--json", "results"])
        .args(["--cache-dir", "results/cache"])
        .env("LF_RESPAWN_BACKOFF_MS", "10")
        .args(extra);
    cmd
}

fn run(cmd: &mut Command) -> Output {
    cmd.output().expect("campaign process spawns")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Every scenario artifact under `results/`, with the volatile `planner`
/// telemetry section nulled out (wall-clock timings and cache-hit counts
/// legitimately differ between a single-process and a sharded campaign).
fn normalized_artifacts(dir: &Path) -> Vec<(String, String)> {
    let results = dir.join("results");
    let mut artifacts = Vec::new();
    for entry in std::fs::read_dir(&results).expect("results dir exists").flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.ends_with(".json")
            || matches!(name.as_str(), "planner.json" | "BENCH_harness.json" | "failures.json")
        {
            continue;
        }
        let text = std::fs::read_to_string(entry.path()).unwrap();
        let mut doc = Json::parse(&text).expect("artifact parses");
        doc.set("planner", Json::Null);
        artifacts.push((name, doc.to_string_pretty()));
    }
    artifacts.sort();
    assert!(!artifacts.is_empty(), "the campaign wrote scenario artifacts");
    artifacts
}

/// Every file under `dir`, recursively.
fn files_under(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                files.push(path);
            }
        }
    }
    files
}

/// Asserts the hygiene half of the contract: no leases, no commit temp
/// files, no poison markers, and a whole (untorn) merged journal.
fn assert_no_debris(dir: &Path, what: &str) {
    let leaked: Vec<_> = files_under(dir)
        .into_iter()
        .filter(|p| {
            let name = p.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
            name.ends_with(".lease") || name.contains(".tmp.") || name.ends_with(".poison")
        })
        .collect();
    assert!(leaked.is_empty(), "[{what}] leaked coordination debris: {leaked:?}");
    let journal_dir = dir.join("results/cache/journal");
    if journal_dir.join(JOURNAL_FILE).exists() {
        let replay = replay_dir(&journal_dir).unwrap();
        assert_eq!(replay.torn_bytes, 0, "[{what}] merged journal replays without a torn tail");
    }
}

/// Live `lf-bench worker` processes attached to `dir`'s cache, found by
/// scanning `/proc` (exact argv match — never a substring grep that could
/// catch this test's own process tree).
#[cfg(target_os = "linux")]
fn worker_pids(dir: &Path) -> Vec<u32> {
    let cache = dir.join("results/cache");
    let mut pids = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc") else { return pids };
    for entry in entries.flatten() {
        let Some(pid) = entry.file_name().to_str().and_then(|n| n.parse::<u32>().ok()) else {
            continue;
        };
        let Ok(raw) = std::fs::read(entry.path().join("cmdline")) else { continue };
        let argv: Vec<&str> =
            raw.split(|&b| b == 0).map(|s| std::str::from_utf8(s).unwrap_or("")).collect();
        let is_worker = argv.first().map(|a| a.ends_with("lf-bench")).unwrap_or(false)
            && argv.get(1) == Some(&"worker");
        // Workers run from the supervisor's cwd, so --cache-dir may be
        // relative; match on the absolute form recorded in /proc/<pid>/cwd.
        if is_worker {
            let cwd = std::fs::read_link(entry.path().join("cwd")).unwrap_or_default();
            let has_cache = argv
                .iter()
                .zip(argv.iter().skip(1))
                .any(|(flag, value)| *flag == "--cache-dir" && cwd.join(value) == cache);
            if has_cache {
                pids.push(pid);
            }
        }
    }
    pids
}

/// Two workers race a small plan and the result is indistinguishable from
/// a single-process campaign: byte-identical stdout and artifacts, zero
/// leases or temp files, and a merged journal that covers every run.
#[test]
fn two_workers_render_byte_identically_to_single_process() {
    let ref_dir = scratch_dir("identity-ref");
    let reference = run(&mut campaign(&ref_dir, &[]));
    assert!(reference.status.success(), "{}", stderr_of(&reference));

    let dir = scratch_dir("identity-two");
    let sharded = run(&mut campaign(&dir, &["--workers", "2"]));
    assert!(sharded.status.success(), "{}", stderr_of(&sharded));

    assert_eq!(
        stdout_of(&sharded),
        stdout_of(&reference),
        "sharded stdout must be byte-identical to a single-process campaign"
    );
    assert_eq!(
        normalized_artifacts(&dir),
        normalized_artifacts(&ref_dir),
        "sharded artifacts must be byte-identical (modulo planner telemetry)"
    );
    assert_no_debris(&dir, "identity");

    // The merged journal (campaign log + worker shards) accounts for the
    // whole plan: every planned fingerprint committed.
    let replay = replay_dir(&dir.join("results/cache/journal")).unwrap();
    assert!(!replay.planned.is_empty(), "the final pass journals the plan");
    let missing: Vec<_> = replay.planned.difference(&replay.committed).collect();
    assert!(missing.is_empty(), "every planned run committed: missing {missing:?}");
    // And the supervisor's stderr summary names the worker count.
    assert!(
        stderr_of(&sharded).contains("supervisor: 2 workers"),
        "the supervisor announces its workers:\n{}",
        stderr_of(&sharded)
    );
}

/// A crash storm: every claimed run aborts its worker. The supervisor
/// must absorb the deaths, classify each run as poisonous after it kills
/// two distinct workers, quarantine them into `failures.json`, and still
/// exit 0. A later `--resume` without the injection re-executes the
/// quarantined runs and converges to the byte-identical clean result.
#[test]
fn crash_storm_poisons_runs_and_resume_recovers() {
    let ref_dir = scratch_dir("poison-ref");
    let reference = run(&mut campaign(&ref_dir, &[]));
    assert!(reference.status.success(), "{}", stderr_of(&reference));

    let dir = scratch_dir("poison");
    let stormed = run(&mut campaign(&dir, &["--workers", "2", "--inject-fault", "crash:1.0"]));
    assert!(
        stormed.status.success(),
        "worker crashes must not kill the campaign:\n{}",
        stderr_of(&stormed)
    );
    let err = stderr_of(&stormed);
    assert!(err.contains("poisoned after 2 worker deaths"), "poisoning is announced:\n{err}");
    assert!(err.contains("worker death(s) absorbed"), "the summary counts deaths:\n{err}");

    // Every unique run was quarantined as poisoned, with the death count.
    let failures =
        Json::parse(&std::fs::read_to_string(dir.join("results/failures.json")).unwrap()).unwrap();
    let records = failures.get("failures").and_then(Json::as_arr).unwrap().to_vec();
    assert!(!records.is_empty(), "the crash storm quarantines runs");
    for record in &records {
        assert_eq!(record.get("kind").and_then(Json::as_str), Some("poisoned"));
        assert!(record.get("worker_deaths").and_then(Json::as_u64).unwrap() >= 2);
    }
    assert_no_debris(&dir, "poison");

    // Recovery: rerun with --resume and no injection (exactly how an
    // operator recovers from a code fix) — byte-identical to clean.
    let resumed = run(&mut campaign(&dir, &["--workers", "2", "--resume"]));
    assert!(resumed.status.success(), "{}", stderr_of(&resumed));
    assert_eq!(stdout_of(&resumed), stdout_of(&reference), "recovered stdout matches");
    assert_eq!(normalized_artifacts(&dir), normalized_artifacts(&ref_dir));
    let clean =
        Json::parse(&std::fs::read_to_string(dir.join("results/failures.json")).unwrap()).unwrap();
    assert_eq!(clean.get("failures").and_then(Json::as_arr).map(<[Json]>::len), Some(0));
    assert_no_debris(&dir, "poison-resume");
}

/// True external SIGKILLs: the harness kills at least three live worker
/// processes from outside while the campaign runs. The supervisor
/// respawns them and the campaign completes byte-identically. The poison
/// threshold is raised out of reach — random external kills are not
/// evidence against any particular run.
#[cfg(target_os = "linux")]
#[test]
fn external_worker_sigkills_are_absorbed_byte_identically() {
    let ref_dir = scratch_dir("sigkill-ref");
    let reference = run(&mut campaign(&ref_dir, &["-j", "1"]));
    assert!(reference.status.success(), "{}", stderr_of(&reference));

    let dir = scratch_dir("sigkill");
    let mut child = campaign(&dir, &["-j", "1", "--workers", "4"])
        .env("LF_POISON_THRESHOLD", "999")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("supervisor spawns");

    // Kill workers the moment they appear, until three external SIGKILLs
    // have landed. The campaign cannot finish while every worker it
    // spawns is being killed, so the kills always land; respawns (10 ms
    // backoff) keep providing fresh victims.
    let mut kills = 0usize;
    let deadline = Instant::now() + Duration::from_secs(120);
    while kills < 3 && Instant::now() < deadline {
        if child.try_wait().unwrap().is_some() {
            break;
        }
        for pid in worker_pids(&dir) {
            if kills >= 3 {
                break;
            }
            let delivered = Command::new("kill")
                .args(["-KILL", &pid.to_string()])
                .status()
                .map(|s| s.success())
                .unwrap_or(false);
            if delivered {
                kills += 1;
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "campaign must survive {kills} external worker SIGKILLs:\n{}",
        stderr_of(&out)
    );
    assert!(kills >= 3, "the harness must land at least 3 kills, landed {kills}");
    assert_eq!(stdout_of(&out), stdout_of(&reference), "stdout identical after {kills} kills");
    assert_eq!(normalized_artifacts(&dir), normalized_artifacts(&ref_dir));
    assert_no_debris(&dir, "sigkill");
    assert!(worker_pids(&dir).is_empty(), "no worker processes outlive the campaign");
    let err = stderr_of(&out);
    assert!(err.contains("worker death(s) absorbed"), "deaths are reported:\n{err}");
}

/// `--workers` with `--no-cache`: the cache directory is the claim space,
/// so multi-process coordination is impossible. The campaign warns once,
/// falls back to in-process threads, and still completes byte-identically
/// to a plain `--no-cache` run.
#[test]
fn no_cache_degrades_to_in_process_with_one_warning() {
    let ref_dir = scratch_dir("nocache-ref");
    let reference = run(&mut campaign(&ref_dir, &["--no-cache"]));
    assert!(reference.status.success(), "{}", stderr_of(&reference));

    let dir = scratch_dir("nocache-workers");
    let out = run(&mut campaign(&dir, &["--no-cache", "--workers", "3"]));
    assert!(out.status.success(), "{}", stderr_of(&out));
    let err = stderr_of(&out);
    assert_eq!(
        err.matches("disables lease/journal coordination").count(),
        1,
        "exactly one degradation warning:\n{err}"
    );
    assert_eq!(stdout_of(&out), stdout_of(&reference), "fallback output is identical");
    assert!(!dir.join("results/cache").exists(), "--no-cache must not create cache state");
}

/// SIGTERM to the supervisor drains the whole campaign: workers are
/// signalled through their process groups and reaped, leases are swept,
/// the journal stays whole, and the supervisor exits `128 + SIGTERM`
/// having leaked nothing.
#[cfg(target_os = "linux")]
#[test]
fn sigterm_drains_supervisor_without_leaks() {
    let dir = scratch_dir("drain");
    let mut cmd = Command::new(BIN);
    cmd.current_dir(&dir)
        .arg("run")
        .args(["--all", "--scale", "smoke", "-j", "1", "--workers", "2"])
        .args(["--json", "results"])
        .args(["--cache-dir", "results/cache"]);
    let mut child =
        cmd.stdout(Stdio::piped()).stderr(Stdio::piped()).spawn().expect("supervisor spawns");

    // Wait until at least one worker is alive so the drain actually has
    // children to manage, then SIGTERM the supervisor itself.
    let deadline = Instant::now() + Duration::from_secs(60);
    while worker_pids(&dir).is_empty() && Instant::now() < deadline {
        assert!(child.try_wait().unwrap().is_none(), "campaign finished before workers appeared");
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(!worker_pids(&dir).is_empty(), "workers never appeared");
    let delivered = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .map(|s| s.success())
        .unwrap_or(false);
    assert!(delivered, "SIGTERM delivery failed");

    let out = child.wait_with_output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(128 + 15),
        "a drained supervisor exits 128+SIGTERM:\n{}",
        stderr_of(&out)
    );
    let err = stderr_of(&out);
    assert!(err.contains("draining 2 workers"), "the drain is announced:\n{err}");
    assert!(err.contains("zero workers, zero leases left"), "the drain reports clean:\n{err}");

    // Nothing outlives the drain: no worker processes, no leases, no
    // temp files, no torn journal bytes.
    let gone = Instant::now() + Duration::from_secs(10);
    while !worker_pids(&dir).is_empty() && Instant::now() < gone {
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(worker_pids(&dir).is_empty(), "workers must not outlive the drained supervisor");
    assert_no_debris(&dir, "drain");
}
