//! Configuration sweeps must never change architectural results — only
//! timing. Exercises SSB sizes, granules, associativity, threadlet counts,
//! packing, and core widths on a representative kernel pair.

use lf_compiler::{annotate, SelectOptions};
use lf_workloads::{by_name, Scale};
use loopfrog::{simulate, LoopFrogConfig};

fn golden_and_program(name: &str) -> (u64, lf_isa::Program, lf_isa::Memory) {
    let w = by_name(name, Scale::Smoke).unwrap();
    let emu = w.reference_emulator().unwrap();
    let ann = annotate(&w.program, emu.profile(), &SelectOptions::default());
    (emu.state_checksum(), ann.program, w.mem.clone())
}

#[test]
fn ssb_size_and_granule_sweeps_preserve_state() {
    let (golden, program, mem) = golden_and_program("fotonik_fdtd");
    for size in [512usize, 2048, 8192, 32768] {
        for granule in [1usize, 4, 16, 32] {
            let mut cfg = LoopFrogConfig::default();
            cfg.ssb.size_bytes = size;
            cfg.ssb.granule = granule;
            let r = simulate(&program, mem.clone(), cfg).unwrap();
            assert_eq!(r.checksum, golden, "size {size} granule {granule}");
        }
    }
}

#[test]
fn associativity_and_victim_preserve_state() {
    let (golden, program, mem) = golden_and_program("event_queue");
    for assoc in [Some(1usize), Some(4), Some(8), None] {
        for victim in [0usize, 8] {
            let mut cfg = LoopFrogConfig::default();
            cfg.ssb.assoc = assoc;
            cfg.ssb.victim_entries = victim;
            let r = simulate(&program, mem.clone(), cfg).unwrap();
            assert_eq!(r.checksum, golden, "assoc {assoc:?} victim {victim}");
        }
    }
}

#[test]
fn threadlet_counts_preserve_state() {
    let (golden, program, mem) = golden_and_program("hash_lookup");
    for threadlets in [1usize, 2, 3, 4, 6, 8] {
        let mut cfg = LoopFrogConfig::default();
        cfg.core.threadlets = threadlets;
        let r = simulate(&program, mem.clone(), cfg).unwrap();
        assert_eq!(r.checksum, golden, "threadlets {threadlets}");
    }
}

#[test]
fn widths_and_packing_preserve_state() {
    let (golden, program, mem) = golden_and_program("stencil_blur");
    for width in [4usize, 8, 10] {
        for packing in [true, false] {
            let mut cfg = LoopFrogConfig {
                core: lf_uarch::CoreConfig {
                    threadlets: 4,
                    ..lf_uarch::CoreConfig::with_width(width)
                },
                ..LoopFrogConfig::default()
            };
            cfg.packing.enabled = packing;
            let r = simulate(&program, mem.clone(), cfg).unwrap();
            assert_eq!(r.checksum, golden, "width {width} packing {packing}");
        }
    }
}

#[test]
fn packing_targets_preserve_state() {
    let (golden, program, mem) = golden_and_program("md_force");
    for target in [8u64, 16, 64, 256] {
        let mut cfg = LoopFrogConfig::default();
        cfg.packing.target_epoch_size = target;
        cfg.packing.max_factor = 25;
        let r = simulate(&program, mem.clone(), cfg).unwrap();
        assert_eq!(r.checksum, golden, "pack target {target}");
    }
}
