//! Integration tests for the tiered execution path (DESIGN §13): the
//! sampled tier's accuracy and detailed-cycle reduction bounds on the
//! eval-scale basket, byte-identical deterministic checkpoint restore,
//! and corrupt-plan quarantine with transparent detailed fallback.

use lf_bench::perf::BASKET;
use lf_bench::tiered::{build_plan, run_sampled, sample_windows, CheckpointStore, SampledPlan};
use lf_compiler::{annotate, SelectOptions};
use lf_isa::{Memory, Program};
use lf_stats::Json;
use lf_workloads::Scale;
use loopfrog::{simulate, LoopFrogConfig};

/// Annotates a kernel the way the engine's planner does, so the tiered
/// path sees the same program the detailed runs measure.
fn prepared(name: &str, scale: Scale) -> (Program, Memory) {
    let w = lf_workloads::by_name(name, scale)
        .unwrap_or_else(|| panic!("kernel {name} missing at {scale:?}"));
    let emu = w.reference_emulator().expect("kernel runs on the golden emulator");
    let ann = annotate(&w.program, emu.profile(), &SelectOptions::default());
    (ann.program, w.mem.clone())
}

/// The tier's reason to exist, asserted: across the eval basket the
/// weighted whole-run cycle estimate stays within 3% of full detailed
/// simulation while simulating at least 5x fewer detailed cycles.
#[test]
fn sampled_tier_meets_error_and_reduction_bounds_on_eval_basket() {
    let cfg = LoopFrogConfig::default();
    let mut full_total = 0u64;
    let mut est_total = 0.0f64;
    let mut detailed_total = 0u64;
    for name in BASKET {
        let (program, mem) = prepared(name, Scale::Eval);
        let full = simulate(&program, mem.clone(), cfg.clone())
            .unwrap_or_else(|e| panic!("{name} full run failed: {e}"));
        let plan = build_plan(&program, &mem).unwrap();
        let m = sample_windows(&program, &plan, &cfg).unwrap();
        let err = (m.est_cycles - full.stats.cycles as f64) / full.stats.cycles as f64;
        // Per-kernel sanity: no single estimate may be wildly off even
        // when the aggregate averages out.
        assert!(
            err.abs() < 0.10,
            "{name}: sampled estimate off by {:+.2}% (full {} cycles, est {:.0})",
            err * 100.0,
            full.stats.cycles,
            m.est_cycles
        );
        assert!(
            m.detailed_cycles < full.stats.cycles,
            "{name}: sampling simulated more detailed cycles than the full run"
        );
        full_total += full.stats.cycles;
        est_total += m.est_cycles;
        detailed_total += m.detailed_cycles;
    }
    let agg_err = (est_total - full_total as f64) / full_total as f64;
    let reduction = full_total as f64 / detailed_total as f64;
    assert!(
        agg_err.abs() <= 0.03,
        "aggregate weighted-cycle error {:+.2}% exceeds the 3% bound",
        agg_err * 100.0
    );
    assert!(
        reduction >= 5.0,
        "detailed-cycle reduction {reduction:.2}x is below the 5x bound \
         ({full_total} full vs {detailed_total} sampled detailed cycles)"
    );
}

/// Save -> restore -> run is byte-identical: a plan that round-trips
/// through its serialized form drives exactly the same windows, and
/// repeating the measurement reproduces it bit for bit.
#[test]
fn restored_plans_replay_byte_identically() {
    let cfg = LoopFrogConfig::default();
    let (program, mem) = prepared("hash_lookup", Scale::Smoke);
    let plan = build_plan(&program, &mem).unwrap();
    let restored = SampledPlan::from_bytes(&plan.to_bytes()).unwrap();
    assert_eq!(plan, restored, "plan must survive serialization unchanged");

    let original = sample_windows(&program, &plan, &cfg).unwrap();
    let replayed = sample_windows(&program, &restored, &cfg).unwrap();
    let repeated = sample_windows(&program, &plan, &cfg).unwrap();
    for m in [&replayed, &repeated] {
        assert_eq!(m.est_cycles.to_bits(), original.est_cycles.to_bits());
        assert_eq!(m.detailed_cycles, original.detailed_cycles);
        assert_eq!(m.windows.len(), original.windows.len());
        for (w, o) in m.windows.iter().zip(&original.windows) {
            assert_eq!(
                (w.cycles, w.insts, w.detailed_cycles),
                (o.cycles, o.insts, o.detailed_cycles)
            );
        }
        // The carrier's full rendered record — every counter the
        // artifacts consume — must also be identical.
        assert_eq!(
            lf_bench::artifact::sim_result_json(&m.carrier).to_string_compact(),
            lf_bench::artifact::sim_result_json(&original.carrier).to_string_compact()
        );
    }
}

/// The exact-equality case of restore fidelity: a pristine checkpoint
/// (instruction 0, empty hint rings) restored into the detailed core
/// must reproduce an uninterrupted run byte for byte — same cycles,
/// same checksum, same rendered record down to every counter.
#[test]
fn pristine_restore_equals_uninterrupted_run() {
    let cfg = LoopFrogConfig::default();
    let (program, mem) = prepared("stencil_blur", Scale::Smoke);
    let uninterrupted = simulate(&program, mem.clone(), cfg.clone()).unwrap();

    let ckpt = lf_isa::FastTier::new(&program, mem.clone()).checkpoint();
    let mut core = loopfrog::LoopFrogCore::from_checkpoint(&program, &ckpt, cfg);
    let restored = core.run().unwrap();

    assert_eq!(restored.stats.cycles, uninterrupted.stats.cycles);
    assert_eq!(restored.checksum, uninterrupted.checksum);
    assert_eq!(
        lf_bench::artifact::sim_result_json(&restored).to_string_compact(),
        lf_bench::artifact::sim_result_json(&uninterrupted).to_string_compact()
    );
}

/// The store round trip at the run level: the first sampled run builds
/// and persists the plan, the second serves it from the store, and both
/// produce the same outcome.
#[test]
fn stored_plans_are_reused_and_reproduce_the_outcome() {
    let cfg = LoopFrogConfig::default();
    let (program, mem) = prepared("md_force", Scale::Smoke);
    let dir = std::env::temp_dir().join(format!("lf-tiered-it-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::new(&dir);
    let key = CheckpointStore::plan_key(&program, &mem, Scale::Smoke);

    let first = run_sampled(7, &program, &mem, &cfg, Scale::Smoke, Some(&store)).unwrap();
    assert!(store.entry_path(key).exists(), "first run must persist the plan");
    let second = run_sampled(7, &program, &mem, &cfg, Scale::Smoke, Some(&store)).unwrap();

    assert_eq!(first.stats.cycles, second.stats.cycles);
    assert_eq!(first.stats.committed_insts, second.stats.committed_insts);
    assert_eq!(first.checksum, second.checksum);
    let from_cache = |o: &lf_bench::runner::RunOutcome| {
        matches!(
            o.rendered.get("tier").and_then(|t| t.get("plan_from_cache")),
            Some(Json::Bool(true))
        )
    };
    assert!(!from_cache(&first), "first run builds the plan fresh");
    assert!(from_cache(&second), "second run must hit the stored plan");
    std::fs::remove_dir_all(&dir).ok();
}

/// A corrupt checkpoint blob is quarantined and the run transparently
/// falls back to full detailed simulation: same cycles as a detailed
/// run, no error surfaced to the campaign.
#[test]
fn corrupt_plan_is_quarantined_and_falls_back_to_detailed() {
    let cfg = LoopFrogConfig::default();
    let (program, mem) = prepared("event_queue", Scale::Smoke);
    let dir = std::env::temp_dir().join(format!("lf-tiered-it-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::new(&dir);
    let key = CheckpointStore::plan_key(&program, &mem, Scale::Smoke);

    run_sampled(9, &program, &mem, &cfg, Scale::Smoke, Some(&store)).unwrap();
    let entry = store.entry_path(key);
    let mut bytes = std::fs::read(&entry).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&entry, &bytes).unwrap();

    let outcome = run_sampled(9, &program, &mem, &cfg, Scale::Smoke, Some(&store))
        .expect("a corrupt plan must not fail the run");
    let full = simulate(&program, mem.clone(), cfg.clone()).unwrap();
    assert_eq!(
        outcome.stats.cycles, full.stats.cycles,
        "fallback must be a genuine full detailed run"
    );
    assert_eq!(outcome.checksum, full.checksum);
    assert!(
        matches!(
            outcome.rendered.get("tier").and_then(|t| t.get("fallback_detailed")),
            Some(Json::Bool(true))
        ),
        "outcome must record the detailed fallback"
    );
    assert!(!entry.exists(), "corrupt blob must be moved out of the store");
    assert!(
        store.quarantine_dir().join(entry.file_name().unwrap()).exists(),
        "corrupt blob must land in quarantine"
    );
    std::fs::remove_dir_all(&dir).ok();
}
