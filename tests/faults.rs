//! Integration tests for fault-tolerant campaigns: panic isolation,
//! watchdog budgets, cache corruption quarantine, and `--resume` — all
//! driven through the real engine on real kernels with deterministic
//! `--inject-fault` gates.

use lf_bench::engine::cache::{CacheLookup, DiskCache};
use lf_bench::engine::fault::{
    hang_program, read_failures_json, write_failures_json, FaultPlan, RunBudget,
};
use lf_bench::engine::planner::Planner;
use lf_bench::engine::{run_scenarios, EngineCtx, EngineOptions, Scenario};
use lf_bench::{RunArtifact, RunConfig};
use lf_workloads::Scale;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A minimal scenario rendering the standard suite plus explicit failure
/// lines — the shape every registered scenario follows.
struct SuiteScenario;

impl Scenario for SuiteScenario {
    fn name(&self) -> &'static str {
        "fault_suite"
    }
    fn title(&self) -> &'static str {
        "fault-tolerance test scenario"
    }
    fn plan(&self, p: &mut Planner<'_>) {
        p.request_suite(&RunConfig::default());
    }
    fn render(&self, ctx: &EngineCtx<'_>, out: &mut String) -> RunArtifact {
        let rc = RunConfig::default();
        for r in ctx.suite_runs(&rc) {
            out.push_str(&format!("{} {:.4}\n", r.name, r.speedup()));
        }
        let mut art = RunArtifact::new(self.name(), ctx.scale());
        if let Some(failures) = ctx.note_suite_failures(&rc, out) {
            art.set_extra("failures", failures);
        }
        art
    }
}

fn opts_for(filter: &str) -> EngineOptions {
    let mut opts = EngineOptions::new(Scale::Smoke);
    opts.filter = Some(filter.to_string());
    opts.jobs = 2;
    opts
}

fn faults(specs: &[&str]) -> FaultPlan {
    let mut plan = FaultPlan::default();
    for s in specs {
        plan.parse_spec(s).expect("test spec parses");
    }
    plan
}

fn counting_hook(opts: &mut EngineOptions) -> Arc<AtomicUsize> {
    let count = Arc::new(AtomicUsize::new(0));
    let counter = count.clone();
    opts.sim_hook = Some(Arc::new(move |_| {
        counter.fetch_add(1, Ordering::SeqCst);
    }));
    count
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("lf-bench-faults-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// An injected panic costs exactly the affected runs: the campaign
/// completes, the scenario renders explicit failure lines, and every
/// failure record carries its fingerprint and a repro command.
#[test]
fn injected_panics_fail_runs_without_killing_the_campaign() {
    let mut opts = opts_for("stencil_blur");
    opts.faults = faults(&["panic:1.0"]);
    let output = run_scenarios(&[&SuiteScenario], &opts);

    assert_eq!(output.report.faults.panicked, 2, "baseline + LoopFrog runs both panic");
    assert_eq!(output.report.faults.failed_runs(), 2);
    assert_eq!(output.failures.len(), 2);
    for f in &output.failures {
        assert_eq!(f.error.kind(), "panic");
        assert_ne!(f.fingerprint, 0);
        assert!(f.repro.contains("stencil_blur"), "repro names the kernel: {}", f.repro);
        assert!(f.cell().starts_with("FAILED("));
    }
    let text = &output.scenarios[0].text;
    assert!(text.contains("FAILED stencil_blur"), "render must name the failure:\n{text}");
    assert!(text.contains("repro:"), "render must carry the repro command:\n{text}");
}

/// A livelocked simulation (injected hang) is stopped by the cycle budget
/// and reported as a structured budget failure, not a hung process.
#[test]
fn hang_injection_is_stopped_by_the_cycle_budget() {
    let mut opts = opts_for("stencil_blur");
    opts.faults = faults(&["hang:1.0"]);
    opts.budget = RunBudget { max_cycles: Some(20_000), deadline: None };
    let output = run_scenarios(&[&SuiteScenario], &opts);

    assert_eq!(output.report.faults.budget_exceeded, 2);
    for f in &output.failures {
        assert_eq!(f.error.kind(), "budget_exceeded");
        assert!(f.error.message().contains("cycle budget"), "{}", f.error.message());
    }
    assert!(output.scenarios[0].text.contains("FAILED stencil_blur"));
}

/// The wall-clock watchdog variant: with no cycle cap at all, the deadline
/// armed on the core's step loop stops the same livelock.
#[test]
fn hang_injection_is_stopped_by_the_wall_clock_deadline() {
    let mut opts = opts_for("stencil_blur");
    opts.jobs = 1;
    opts.faults = faults(&["hang:1.0"]);
    opts.budget = RunBudget { max_cycles: None, deadline: Some(Duration::from_millis(100)) };
    let output = run_scenarios(&[&SuiteScenario], &opts);

    assert_eq!(output.report.faults.budget_exceeded, 2);
    for f in &output.failures {
        assert!(f.error.message().contains("wall-clock"), "{}", f.error.message());
    }
}

/// Core-level deadline contract: an already-expired deadline stops a
/// non-terminating kernel on its first check instead of hanging.
#[test]
fn core_deadline_stops_a_nonterminating_kernel() {
    let program = hang_program();
    let mut cfg = loopfrog::LoopFrogConfig::baseline();
    cfg.max_cycles = u64::MAX;
    let mut core = loopfrog::LoopFrogCore::new(&program, lf_isa::Memory::new(64), cfg);
    core.set_deadline(Instant::now());
    let r = core.run().expect("deadline stop is not an error");
    assert_eq!(r.stop, loopfrog::SimStop::Deadline);
}

/// Corrupt cache entries are quarantined on first contact, the runs
/// re-simulate cleanly, and the refilled slots hit on the next campaign.
#[test]
fn corrupt_cache_entries_quarantine_and_refill() {
    let dir = scratch_dir("quarantine");

    // Campaign 1 stores both runs, then the injection garbles the entries.
    let mut opts = opts_for("stencil_blur");
    opts.disk_cache = Some(DiskCache::new(dir.clone()));
    opts.faults = faults(&["corrupt-cache:1.0"]);
    let first = run_scenarios(&[&SuiteScenario], &opts);
    assert!(first.failures.is_empty(), "corruption strikes the cache, not the runs");

    // Campaign 2 finds the corruption, quarantines it, and re-simulates.
    let mut opts2 = opts_for("stencil_blur");
    opts2.disk_cache = Some(DiskCache::new(dir.clone()));
    let sims = counting_hook(&mut opts2);
    let second = run_scenarios(&[&SuiteScenario], &opts2);
    assert_eq!(second.report.faults.cache_corrupt, 2);
    assert_eq!(second.report.faults.quarantined, 2);
    assert_eq!(second.report.disk_hits, 0);
    assert_eq!(sims.load(Ordering::SeqCst), 2);
    assert!(second.failures.is_empty());
    let quarantined = std::fs::read_dir(dir.join("quarantine")).unwrap().count();
    assert_eq!(quarantined, 2, "garbled entries must be preserved for inspection");

    // Campaign 3: the refilled slots serve hits again.
    let mut opts3 = opts_for("stencil_blur");
    opts3.disk_cache = Some(DiskCache::new(dir));
    let sims3 = counting_hook(&mut opts3);
    let third = run_scenarios(&[&SuiteScenario], &opts3);
    assert_eq!(third.report.disk_hits, 2);
    assert_eq!(sims3.load(Ordering::SeqCst), 0);
}

/// Cache commits under contention: two threads repeatedly store the same
/// fingerprint while a third garbles the entry in place with plain
/// (non-atomic) writes. The atomic rename protocol guarantees the final
/// entry is either a whole valid document or whole garbage — never a
/// spliced hybrid — and a garbled survivor is quarantined on first
/// contact, after which a store refills the slot. No commit temp files
/// may be left behind.
#[test]
fn concurrent_stores_under_corruption_leave_one_whole_entry() {
    let dir = scratch_dir("store-contention");
    let cache = DiskCache::new(dir.clone());
    let w = lf_workloads::by_name("stencil_blur", Scale::Smoke).unwrap();
    let outcome = lf_bench::run_kernel(&w, &RunConfig::default()).base;
    let entry = cache.entry_path(outcome.fingerprint);

    std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(|| {
                for _ in 0..20 {
                    cache.store(&outcome).expect("store never errors under contention");
                }
            });
        }
        scope.spawn(|| {
            for _ in 0..20 {
                // In-place truncating write: exactly what the commit
                // protocol forbids for itself.
                let _ = std::fs::write(&entry, "{ \"injected\": \"mid-write garbage\"");
                std::thread::yield_now();
            }
        });
    });

    match cache.lookup(outcome.fingerprint) {
        CacheLookup::Hit(hit) => {
            assert_eq!(hit.fingerprint, outcome.fingerprint, "a winning store is fully intact");
        }
        CacheLookup::Corrupt { quarantined } => {
            assert!(quarantined, "a garbled survivor is quarantined on first contact");
            assert!(
                matches!(cache.lookup(outcome.fingerprint), CacheLookup::Miss),
                "the quarantined slot reads as a miss"
            );
            assert!(
                std::fs::read_dir(dir.join("quarantine")).unwrap().count() >= 1,
                "the garbled entry is preserved for inspection"
            );
            cache.store(&outcome).unwrap();
            assert!(
                matches!(cache.lookup(outcome.fingerprint), CacheLookup::Hit(_)),
                "the refilled slot serves hits again"
            );
        }
        other => panic!("entry must be whole-valid or whole-corrupt, got {other:?}"),
    }

    // The commit protocol cleans up after itself even under contention.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
        .collect();
    assert!(leftovers.is_empty(), "no temp debris after contended stores: {leftovers:?}");
}

/// The resume contract on a mixed campaign: previously failed runs (never
/// cached) re-execute; previous successes are served from the cache.
#[test]
fn resume_reexecutes_only_previously_failed_runs() {
    let dir = scratch_dir("resume");
    let failures_path = dir.join("failures.json");

    // Campaign 0: one of the two fdtd kernels runs cleanly and is cached.
    let mut warm = opts_for("gems_fdtd");
    warm.disk_cache = Some(DiskCache::new(dir.clone()));
    let warmed = run_scenarios(&[&SuiteScenario], &warm);
    assert!(warmed.failures.is_empty());

    // Campaign 1 over both fdtd kernels with every *simulated* run
    // panicking: the cached kernel sails through, the other fails.
    let mut opts = opts_for("fdtd");
    opts.disk_cache = Some(DiskCache::new(dir.clone()));
    opts.faults = faults(&["panic:1.0"]);
    let broken = run_scenarios(&[&SuiteScenario], &opts);
    assert_eq!(broken.report.disk_hits, 2, "gems_fdtd is served from the cache");
    assert_eq!(broken.report.faults.panicked, 2, "fotonik_fdtd's two runs panic");
    assert!(broken.failures.iter().all(|f| f.kernel == "fotonik_fdtd"));
    let text = &broken.scenarios[0].text;
    assert!(text.contains("gems_fdtd"), "partial table keeps the surviving kernel:\n{text}");
    assert!(text.contains("FAILED fotonik_fdtd"), "and names the failed one:\n{text}");
    write_failures_json(&failures_path, &broken.failures, "smoke").unwrap();

    // Campaign 2 resumes: exactly the failed runs re-execute.
    let mut resume = opts_for("fdtd");
    resume.disk_cache = Some(DiskCache::new(dir.clone()));
    resume.resume_from = Some(read_failures_json(&failures_path).unwrap());
    let sims = counting_hook(&mut resume);
    let resumed = run_scenarios(&[&SuiteScenario], &resume);
    assert_eq!(resumed.report.disk_hits, 2);
    assert_eq!(sims.load(Ordering::SeqCst), 2, "only the failed runs simulate");
    assert_eq!(resumed.report.faults.resumed, 2);
    assert!(resumed.failures.is_empty());
    let text = &resumed.scenarios[0].text;
    assert!(text.contains("gems_fdtd") && text.contains("fotonik_fdtd"));
    assert!(!text.contains("FAILED"), "the resumed campaign is whole:\n{text}");

    // Campaign 3: nothing left to do — everything hits.
    let mut done = opts_for("fdtd");
    done.disk_cache = Some(DiskCache::new(dir));
    let sims3 = counting_hook(&mut done);
    let final_run = run_scenarios(&[&SuiteScenario], &done);
    assert_eq!(final_run.report.disk_hits, 4);
    assert_eq!(sims3.load(Ordering::SeqCst), 0);
}

/// A panicking render loses one scenario's output, not the campaign: the
/// other scenario still renders and the failure is reported with a repro.
#[test]
fn render_panic_is_isolated_to_its_scenario() {
    struct BadRender;
    impl Scenario for BadRender {
        fn name(&self) -> &'static str {
            "bad_render"
        }
        fn title(&self) -> &'static str {
            "scenario whose render panics"
        }
        fn plan(&self, _p: &mut Planner<'_>) {}
        fn render(&self, _ctx: &EngineCtx<'_>, _out: &mut String) -> RunArtifact {
            panic!("render bug");
        }
    }

    let opts = opts_for("stencil_blur");
    let output = run_scenarios(&[&BadRender, &SuiteScenario], &opts);
    assert_eq!(output.report.faults.render_failures, 1);
    assert!(output.scenarios[0].text.contains("RENDER FAILED: render bug"));
    assert!(
        output.scenarios[1].text.contains("stencil_blur"),
        "the healthy scenario still renders"
    );
    assert_eq!(output.failures.len(), 1);
    assert_eq!(output.failures[0].kernel, "bad_render");
}
