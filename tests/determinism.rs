//! Determinism regression: two simulations of the same kernel at the same
//! config must render byte-identical JSON artifacts.
//!
//! The simulator has no intentional randomness, so any divergence means a
//! result-producing path depends on nondeterministic state — historically,
//! `HashMap`/`HashSet` iteration order (the SSB's line map, the conflict
//! detector's granule sets, the packing predictor's IV capture). Those
//! paths are either sorted before use or built on ordered structures
//! ([`loopfrog` `GranuleSet`]); this test pins that property end to end
//! through the full artifact renderer, where a single reordered squash or
//! flush would perturb cycle counts and diff loudly.

use lf_bench::artifact::RunArtifact;
use lf_bench::{run_kernel_with, RunConfig};
use lf_workloads::{by_name, Scale};
use loopfrog::LoopFrogCore;

/// Renders a complete artifact for one kernel at one config.
fn render(kernel: &str, cfg: &RunConfig) -> String {
    render_with(kernel, cfg, |_| {})
}

/// [`render`] with a core hook (to attach observers before simulating).
fn render_with(kernel: &str, cfg: &RunConfig, hook: impl FnMut(&mut LoopFrogCore)) -> String {
    let w = by_name(kernel, Scale::Smoke).expect("kernel exists");
    let run = run_kernel_with(&w, cfg, hook);
    let mut art = RunArtifact::new("determinism_test", Scale::Smoke);
    art.set_config(cfg);
    art.push_kernel(&run);
    art.into_json().to_string_pretty()
}

#[test]
fn repeated_runs_render_byte_identical_artifacts() {
    // Kernels chosen to cover the order-sensitive machinery: stencil_blur
    // drains multi-granule lines through the SSB, hash_lookup squashes on
    // real conflicts, md_force packs small iterations (IV capture and
    // strided prediction).
    let cfg = RunConfig { deselect_unprofitable: false, ..RunConfig::default() };
    for kernel in ["stencil_blur", "hash_lookup", "md_force"] {
        let a = render(kernel, &cfg);
        let b = render(kernel, &cfg);
        assert_eq!(a, b, "{kernel}: artifacts diverged across identical runs");
    }
}

#[test]
fn repeated_runs_are_deterministic_under_default_config() {
    // The default (deselection on) path exercises the deselector's region
    // map as well.
    let cfg = RunConfig::default();
    let a = render("hash_lookup", &cfg);
    let b = render("hash_lookup", &cfg);
    assert_eq!(a, b);
}

#[test]
fn observers_never_perturb_artifacts() {
    // The zero-cost-when-disabled contract, from the other side: with
    // every observer armed — full pipeline tracing into text and Konata
    // sinks, the self-profiler, and a live flight recorder — the rendered
    // artifact must stay byte-identical to an unobserved run. Observation
    // is core-side state outside the deterministic statistics; if a trace
    // emit or a profiler sample ever feeds back into simulated behavior,
    // this diffs loudly.
    use loopfrog::{KonataTracer, TextTracer, TraceMux};
    let cfg = RunConfig { deselect_unprofitable: false, ..RunConfig::default() };
    for kernel in ["stencil_blur", "hash_lookup"] {
        let plain = render(kernel, &cfg);
        let observed = render_with(kernel, &cfg, |core| {
            let mut mux = TraceMux::new();
            mux.add(Box::new(TextTracer::new(std::io::sink())));
            mux.add(Box::new(KonataTracer::new(std::io::sink())));
            core.set_tracer(Box::new(mux));
            core.enable_profiler();
            core.arm_flight_recorder_live(64);
        });
        assert_eq!(plain, observed, "{kernel}: observers perturbed the artifact");
    }
}
