//! The differential harness: one case, every backend, every check.
//!
//! For each [`CaseSpec`] the harness runs:
//!
//! 1. the **golden emulator** on the plain (hint-free) kernel — the
//!    reference architectural state; a fuel-bounded run whose distinct
//!    "fuel exhausted" status rejects non-terminating generated programs
//!    deterministically;
//! 2. the golden emulator on the **hinted** kernel — hints must be
//!    semantics-free;
//! 3. the **baseline core** (hints as NOPs) — must match golden
//!    (metamorphic property: hints-as-NOPs ≡ baseline);
//! 4. the **LoopFrog core** with the `verify` feature's cycle-level
//!    invariant checks armed and lockstep boundary recording on — final
//!    state must match golden, zero invariant violations, and every
//!    recorded threadlet commit boundary must match the emulator stepped
//!    to the same instruction count (registers at the retiring epoch's
//!    last instruction, memory checksum after the successor's slice
//!    applied);
//! 5. **metamorphic configurations** — threadlet-count invariance (2 vs
//!    the default) and conflict-granule refinement (2-byte vs 4-byte
//!    granules) must not change architectural results.

use crate::coverage;
use crate::spec::{seeded_memory, CaseSpec, HintMode};
use lf_isa::{Emulator, Program, StateDiff, StopReason};
use loopfrog::{simulate, LoopFrogConfig, LoopFrogCore};

/// Emulator step budget per case; generated kernels run well under this,
/// so exhaustion means a non-terminating (rejected) case.
pub const GOLDEN_FUEL: u64 = 2_000_000;

/// Harness switches.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Arm the conflict-detector fault injection in the LoopFrog run
    /// (drops one granule from every write-set insertion).
    pub inject_bug: bool,
    /// Arm the same injection on a deterministic fraction of cases,
    /// gated on the case seed: the same seeds are affected on every
    /// run, so a failing campaign reproduces exactly. `0.0` disables.
    pub inject_bug_rate: f64,
    /// Run the metamorphic configuration variants (off while shrinking,
    /// where only the original failure signal matters).
    pub metamorphic: bool,
}

impl Default for HarnessOptions {
    fn default() -> HarnessOptions {
        HarnessOptions { inject_bug: false, inject_bug_rate: 0.0, metamorphic: true }
    }
}

impl HarnessOptions {
    /// Whether this case's LoopFrog run gets the seeded bug.
    fn injects_bug(&self, spec: &CaseSpec) -> bool {
        self.inject_bug
            || lf_stats::rate_gate(spec.seed, "lf-verify-inject-bug", self.inject_bug_rate)
    }
}

/// What a differential check found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailKind {
    /// The emulator itself diverged between plain and hinted programs.
    Golden,
    /// The baseline core diverged from golden.
    Baseline,
    /// The LoopFrog core's final state diverged from golden.
    LoopFrog,
    /// A commit boundary disagreed with the emulator stepped in lockstep.
    Lockstep,
    /// A cycle-level invariant was violated (see `loopfrog::verify`).
    Invariant,
    /// A metamorphic configuration variant changed the result.
    Metamorphic,
    /// A simulator error (fault, deadlock) on a program golden accepts.
    Sim,
}

/// A failed case: the kind plus a formatted explanation (state diffs,
/// violation messages).
#[derive(Debug, Clone)]
pub struct Failure {
    /// Which check failed.
    pub kind: FailKind,
    /// Human-readable detail.
    pub detail: String,
}

/// Outcome of running one case through the harness.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// All checks passed; `sig` is the behavioral coverage bitmap.
    Pass {
        /// Coverage signature of the LoopFrog run (see [`crate::coverage`]).
        sig: u32,
    },
    /// The case was rejected before checking (e.g. non-terminating).
    Reject {
        /// Why the case was rejected.
        reason: String,
    },
    /// A check failed.
    Fail(Failure),
}

impl Outcome {
    /// True when the case failed a check.
    pub fn is_fail(&self) -> bool {
        matches!(self, Outcome::Fail(_))
    }
}

fn fail(kind: FailKind, detail: String) -> Outcome {
    Outcome::Fail(Failure { kind, detail })
}

/// Builds the hinted program for a spec, annotating with the compiler pass
/// when the spec asks for it (using a golden profile of the plain kernel).
pub fn hinted_program(spec: &CaseSpec, plain: &Program, profile_emu: &Emulator) -> Program {
    match spec.hint {
        HintMode::None => plain.clone(),
        HintMode::Arbitrary { .. } => spec.build(),
        HintMode::Compiler => {
            let opts = lf_compiler::SelectOptions {
                min_trip: 2.0,
                min_coverage: 0.0,
                min_body_score: 1.0,
                max_loops: 4,
            };
            lf_compiler::annotate(plain, profile_emu.profile(), &opts).program
        }
    }
}

/// Runs one case through every backend and check.
pub fn run_case(spec: &CaseSpec, opts: &HarnessOptions) -> Outcome {
    let mem = seeded_memory(spec.seed);
    let plain = spec.plain().build();

    // 1. Golden reference on the plain kernel.
    let mut gold_emu = Emulator::new(&plain, mem.clone());
    let r = match gold_emu.run(GOLDEN_FUEL) {
        Ok(r) => r,
        Err(e) => return Outcome::Reject { reason: format!("golden fault: {e:?}") },
    };
    if r.stop == StopReason::OutOfFuel {
        // The distinct fuel-exhausted status lets the fuzzer discard
        // non-terminating programs instead of mistaking them for hangs.
        return Outcome::Reject { reason: "non-terminating (golden fuel exhausted)".into() };
    }
    let gold = gold_emu.state_checksum();
    let gold_regs = *gold_emu.regs();

    let hinted = hinted_program(spec, &plain, &gold_emu);

    // 2. Hints must be semantics-free on the emulator itself.
    let mut hint_emu = Emulator::new(&hinted, mem.clone());
    match hint_emu.run(GOLDEN_FUEL) {
        Ok(r) if r.stop == StopReason::Halted => {}
        other => return fail(FailKind::Golden, format!("hinted golden run stopped: {other:?}")),
    }
    if hint_emu.state_checksum() != gold {
        let d =
            StateDiff::compare(&gold_regs, hint_emu.regs(), Some((gold_emu.mem(), hint_emu.mem())));
        return fail(FailKind::Golden, format!("hints changed emulator state:\n{d}"));
    }

    // 3. Baseline core: hints-as-NOPs ≡ baseline.
    let base = match simulate(&hinted, mem.clone(), LoopFrogConfig::baseline()) {
        Ok(r) => r,
        Err(e) => return fail(FailKind::Sim, format!("baseline error: {e:?}")),
    };
    if base.checksum != gold {
        let d = StateDiff::compare(&gold_regs, &base.final_regs, None);
        return fail(FailKind::Baseline, format!("baseline diverged from golden:\n{d}"));
    }

    // 4. LoopFrog core with invariants and lockstep recording.
    let mut core = LoopFrogCore::new(&hinted, mem.clone(), LoopFrogConfig::default());
    core.set_lockstep_recording(true);
    if opts.injects_bug(spec) {
        core.inject_drop_write_granule();
    }
    let lf = match core.run() {
        Ok(r) => r,
        Err(e) => return fail(FailKind::Sim, format!("loopfrog error: {e:?}")),
    };
    let vs = core.verify_state();
    if vs.total_violations() > 0 {
        let detail = format!(
            "{} invariant violation(s):\n  {}",
            vs.total_violations(),
            vs.violations().join("\n  ")
        );
        return fail(FailKind::Invariant, detail);
    }
    if lf.checksum != gold {
        let d = StateDiff::compare(&gold_regs, &lf.final_regs, Some((gold_emu.mem(), core.mem())));
        return fail(FailKind::LoopFrog, format!("loopfrog diverged from golden:\n{d}"));
    }

    // Lockstep replay: step the emulator to each recorded commit boundary
    // and compare architectural state there, not just at end-of-run.
    let mut lock = Emulator::new(&hinted, mem.clone());
    for (i, b) in vs.boundaries.iter().enumerate() {
        if let Err(e) = lock.run_to_inst_count(b.insts_before) {
            return fail(FailKind::Lockstep, format!("emulator fault at boundary {i}: {e:?}"));
        }
        if lock.inst_count() != b.insts_before {
            return fail(
                FailKind::Lockstep,
                format!(
                    "boundary {i} (epoch {}): emulator halted at inst {} before boundary \
                     inst {}",
                    b.epoch,
                    lock.inst_count(),
                    b.insts_before
                ),
            );
        }
        let d = StateDiff::compare(lock.regs(), &b.regs, None);
        if !d.is_empty() {
            return fail(
                FailKind::Lockstep,
                format!(
                    "boundary {i} (epoch {}, inst {}): retiring registers diverged \
                     (golden != core):\n{d}",
                    b.epoch, b.insts_before
                ),
            );
        }
        if let Err(e) = lock.run_to_inst_count(b.insts_after) {
            return fail(FailKind::Lockstep, format!("emulator fault at boundary {i}: {e:?}"));
        }
        if lock.mem().checksum() != b.mem_checksum_after {
            return fail(
                FailKind::Lockstep,
                format!(
                    "boundary {i} (epoch {}, inst {}): memory checksum after slice apply \
                     {:#018x} != golden {:#018x}",
                    b.epoch,
                    b.insts_after,
                    b.mem_checksum_after,
                    lock.mem().checksum()
                ),
            );
        }
    }
    let sig = coverage::signature(&lf.stats);

    // 5. Metamorphic configuration variants.
    if opts.metamorphic {
        let variant = |f: fn(&mut LoopFrogConfig)| {
            let mut c = LoopFrogConfig::default();
            f(&mut c);
            c
        };
        let two_threadlets = variant(|c| c.core.threadlets = 2);
        let fine_granule = variant(|c| c.ssb.granule = 2);
        for (name, cfg) in [("threadlets=2", two_threadlets), ("ssb.granule=2", fine_granule)] {
            match simulate(&hinted, mem.clone(), cfg) {
                Ok(r) if r.checksum == gold => {}
                Ok(r) => {
                    let d = StateDiff::compare(&gold_regs, &r.final_regs, None);
                    return fail(FailKind::Metamorphic, format!("{name} changed the result:\n{d}"));
                }
                Err(e) => {
                    return fail(FailKind::Metamorphic, format!("{name} errored: {e:?}"));
                }
            }
        }
    }

    Outcome::Pass { sig }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::case_from_seed;
    use crate::spec::OpSpec;

    #[test]
    fn historical_regressions_pass() {
        // The cases proptest shrank to in earlier versions of the suite.
        let opts = HarnessOptions::default();
        let cases = [
            CaseSpec {
                seed: 0,
                trip: 4,
                ops: vec![OpSpec::Load { arr: 0, off: 0, dst: 0 }],
                inner: None,
                hint: HintMode::Arbitrary { d: 1, r: 1 },
            },
            CaseSpec {
                seed: 1,
                trip: 4,
                ops: vec![OpSpec::Alu { op: lf_isa::AluOp::Xor, dst: 0, a: 1, b: 1 }],
                inner: None,
                hint: HintMode::Compiler,
            },
            CaseSpec {
                seed: 1,
                trip: 4,
                ops: vec![OpSpec::Alu { op: lf_isa::AluOp::Xor, dst: 0, a: 1, b: 1 }],
                inner: None,
                hint: HintMode::Arbitrary { d: 0, r: 1 },
            },
        ];
        for c in &cases {
            let out = run_case(c, &opts);
            assert!(!out.is_fail(), "{c:?} failed: {out:?}");
        }
    }

    #[test]
    fn injected_conflict_bug_is_caught_and_shrinks_small() {
        // Acceptance criterion: dropping one granule from the write set
        // must be caught by the write-set superset invariant within a small
        // case budget, and the shrinker must reduce the reproducer to at
        // most 20 instructions.
        let opts =
            HarnessOptions { inject_bug: true, metamorphic: false, ..HarnessOptions::default() };
        let mut found = None;
        for case in 0..100u64 {
            let spec = case_from_seed(0xb00_0000 + case);
            if let Outcome::Fail(f) = run_case(&spec, &opts) {
                assert_eq!(f.kind, FailKind::Invariant, "unexpected failure: {f:?}");
                assert!(f.detail.contains("conflict-write-set"), "{}", f.detail);
                found = Some(spec);
                break;
            }
        }
        let spec = found.expect("injected bug not caught within 100 cases");
        let small = crate::shrink::shrink(&spec, &opts);
        let len = small.build().len();
        assert!(len <= 20, "shrunk reproducer has {len} instructions: {small:?}");
        assert!(run_case(&small, &opts).is_fail(), "shrunk case no longer fails");
    }
}
