//! Greedy case minimization.
//!
//! Given a failing case, the shrinker tries a fixed menu of reductions —
//! drop the inner loop, remove body ops, shrink the trip count, zero the
//! data seed — re-running the harness after each and keeping any reduction
//! that still fails. It loops until a full pass makes no progress, which
//! terminates because every accepted step strictly shrinks a finite
//! measure (op count, trip count, seed popcount).

use crate::harness::{run_case, HarnessOptions};
use crate::spec::CaseSpec;

/// Candidate reductions of `c`, most aggressive first.
fn candidates(c: &CaseSpec) -> Vec<CaseSpec> {
    let mut out = Vec::new();
    if c.inner.is_some() {
        out.push(CaseSpec { inner: None, ..c.clone() });
    }
    if c.ops.len() > 1 {
        for k in 0..c.ops.len() {
            let mut v = c.clone();
            v.ops.remove(k);
            out.push(v);
        }
    }
    if let Some(inner) = &c.inner {
        if inner.ops.len() > 1 {
            for k in 0..inner.ops.len() {
                let mut v = c.clone();
                v.inner.as_mut().expect("checked").ops.remove(k);
                out.push(v);
            }
        }
        if inner.trip > 1 {
            let mut v = c.clone();
            v.inner.as_mut().expect("checked").trip = 1;
            out.push(v);
        }
    }
    for trip in [2, 3, 4, c.trip / 2] {
        if trip >= 2 && trip < c.trip {
            out.push(CaseSpec { trip, ..c.clone() });
        }
    }
    if c.seed != 0 {
        out.push(CaseSpec { seed: 0, ..c.clone() });
    }
    out
}

/// Minimizes a failing case; returns the smallest still-failing variant
/// found (possibly `spec` itself). `opts` must reproduce the original
/// failure signal (e.g. keep `inject_bug` armed).
pub fn shrink(spec: &CaseSpec, opts: &HarnessOptions) -> CaseSpec {
    let mut best = spec.clone();
    loop {
        let mut progressed = false;
        for cand in candidates(&best) {
            if run_case(&cand, opts).is_fail() {
                best = cand;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{HintMode, InnerSpec, OpSpec};

    #[test]
    fn shrink_keeps_failure_and_reduces_size() {
        // With the conflict-detector fault injected, any case with a store
        // fails; shrinking must keep at least one store and cut the rest.
        let opts =
            HarnessOptions { inject_bug: true, metamorphic: false, ..HarnessOptions::default() };
        let fat = CaseSpec {
            seed: 0xdead,
            trip: 37,
            ops: vec![
                OpSpec::Load { arr: 0, off: 1, dst: 2 },
                OpSpec::Store { arr: 1, off: 0, src: 2 },
                OpSpec::AluImm { op: lf_isa::AluOp::Add, dst: 2, a: 2, imm: 5 },
            ],
            inner: Some(InnerSpec {
                pos: 1,
                trip: 3,
                ops: vec![OpSpec::Alu { op: lf_isa::AluOp::Xor, dst: 0, a: 0, b: 1 }],
            }),
            hint: HintMode::Arbitrary { d: 0, r: 2 },
        };
        assert!(run_case(&fat, &opts).is_fail(), "fat case must fail under injection");
        let small = shrink(&fat, &opts);
        assert!(run_case(&small, &opts).is_fail());
        assert!(small.inner.is_none());
        assert!(small.ops.len() <= 2);
        assert!(small.trip <= 4);
    }
}
