//! Behavioral coverage: which microarchitectural events a case exercised.
//!
//! The fuzzer keeps a case as a mutation source when its run sets a
//! coverage bit no earlier case set — a cheap structural analogue of
//! edge coverage, derived from the simulator's own statistics.

use loopfrog::SimStats;

/// Human-readable names for the coverage bits, index-aligned with
/// [`signature`].
pub const BIT_NAMES: [&str; 12] = [
    "spawns",
    "packed_spawns",
    "pack_patches",
    "squashes_conflict",
    "squashes_sync",
    "squashes_packing",
    "squashes_wrong_path",
    "squashes_overflow",
    "squashes_register",
    "commits_spec_success",
    "commits_spec_failed",
    "branch_mispredicts",
];

/// The coverage bitmap of one LoopFrog run.
pub fn signature(stats: &SimStats) -> u32 {
    let events = [
        stats.spawns,
        stats.packed_spawns,
        stats.pack_patches,
        stats.squashes_conflict,
        stats.squashes_sync,
        stats.squashes_packing,
        stats.squashes_wrong_path,
        stats.squashes_overflow,
        stats.counters.get("squashes_register"),
        stats.commits_spec_success,
        stats.commits_spec_failed,
        stats.branch_mispredicts,
    ];
    let mut sig = 0u32;
    for (i, &n) in events.iter().enumerate() {
        if n > 0 {
            sig |= 1 << i;
        }
    }
    sig
}

/// Formats a signature as the list of set bit names.
pub fn describe(sig: u32) -> String {
    let names: Vec<&str> = BIT_NAMES
        .iter()
        .enumerate()
        .filter(|(i, _)| sig & (1 << i) != 0)
        .map(|(_, n)| *n)
        .collect();
    if names.is_empty() {
        "none".to_string()
    } else {
        names.join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_sets_bits_for_nonzero_events() {
        let mut s = SimStats::new(4);
        assert_eq!(signature(&s), 0);
        s.spawns = 3;
        s.squashes_conflict = 1;
        let sig = signature(&s);
        assert_eq!(sig, 1 | (1 << 3));
        assert_eq!(describe(sig), "spawns,squashes_conflict");
    }
}
