//! # lf-verify — differential fuzzing and lockstep checking for LoopFrog
//!
//! A structured, seeded, coverage-guided fuzzer over hinted loop programs,
//! plus the differential machinery that makes its verdicts trustworthy:
//!
//! - [`spec`]: the case format — counted loops over loads/stores (fixed
//!   and irregular strides), pointer-chasing loads, ALU ops,
//!   data-dependent skips, optional nested inner loops, and three hint
//!   modes (none / compiler-annotated / arbitrary placements);
//! - [`gen`]: seeded case generation and coverage-guided mutation;
//! - [`harness`]: runs every case on the golden `lf_isa::Emulator`, the
//!   baseline core, and the LoopFrog core with the `verify` feature's
//!   cycle-level invariants armed, replays every threadlet commit boundary
//!   against the emulator in lockstep, and checks metamorphic
//!   configuration properties (hints-as-NOPs ≡ baseline, threadlet-count
//!   invariance, granule refinement);
//! - [`shrink`]: greedy minimization of failing cases;
//! - [`corpus`]: the text format of `tests/corpus/` regression programs;
//! - [`coverage`]: the behavioral-coverage bitmap that guides mutation;
//! - [`ssb_model`]: the SSB action-sequence property (naive overlay
//!   reference model), sharing the same seeded-RNG case discipline.
//!
//! The `lf-verify` binary drives all of this from the command line; see
//! `EXPERIMENTS.md` for reproducing a fuzz failure from its printed seed.

#![warn(missing_docs)]

pub mod corpus;
pub mod coverage;
pub mod gen;
pub mod harness;
pub mod shrink;
pub mod spec;
pub mod ssb_model;

pub use harness::{run_case, FailKind, Failure, HarnessOptions, Outcome};
pub use spec::{CaseSpec, HintMode, InnerSpec, OpSpec};
