//! Seeded case generation and mutation.
//!
//! Every case derives from a single `u64` case seed: the generator expands
//! it through the repository's [`SmallRng`] (no external proptest), so any
//! failure reproduces from the printed seed alone. Mutation takes an
//! existing (coverage-interesting) case and perturbs one dimension, which
//! is what makes the fuzzer coverage-guided rather than purely random.

use crate::spec::{CaseSpec, HintMode, InnerSpec, OpSpec, ALU_OPS};
use lf_stats::rng::SmallRng;

fn random_op(rng: &mut SmallRng) -> OpSpec {
    match rng.random_range(0..8u32) {
        0 => OpSpec::Load {
            arr: rng.random_range(0..3usize),
            off: rng.random_range(-2..=2i64),
            dst: rng.random_range(0..6usize),
        },
        1 => OpSpec::Store {
            arr: rng.random_range(0..3usize),
            off: rng.random_range(-2..=2i64),
            src: rng.random_range(0..6usize),
        },
        2 => OpSpec::StridedLoad {
            arr: rng.random_range(0..3usize),
            stride: rng.random_range(2..=5i64),
            dst: rng.random_range(0..6usize),
        },
        3 => OpSpec::StridedStore {
            arr: rng.random_range(0..3usize),
            stride: rng.random_range(2..=5i64),
            src: rng.random_range(0..6usize),
        },
        4 => {
            OpSpec::ChaseLoad { arr: rng.random_range(0..3usize), dst: rng.random_range(0..6usize) }
        }
        5 => OpSpec::Alu {
            op: ALU_OPS[rng.random_range(0..ALU_OPS.len())],
            dst: rng.random_range(0..6usize),
            a: rng.random_range(0..6usize),
            b: rng.random_range(0..6usize),
        },
        6 => OpSpec::AluImm {
            op: ALU_OPS[rng.random_range(0..ALU_OPS.len())],
            dst: rng.random_range(0..6usize),
            a: rng.random_range(0..6usize),
            imm: rng.random_range(1..64i64),
        },
        _ => OpSpec::SkipIfOdd { a: rng.random_range(0..6usize) },
    }
}

fn random_hint(rng: &mut SmallRng) -> HintMode {
    // Arbitrary placements dominate: they exercise the violation-recovery
    // paths the compiler would never produce.
    if rng.random_range(0..4u32) == 0 {
        HintMode::Compiler
    } else {
        HintMode::Arbitrary { d: rng.random_range(0..9usize), r: rng.random_range(0..10usize) }
    }
}

/// Expands one case seed into a full case.
pub fn case_from_seed(case_seed: u64) -> CaseSpec {
    let mut rng = SmallRng::seed_from_u64(case_seed);
    let trip = rng.random_range(4..48usize);
    let n = rng.random_range(1..9usize);
    let ops: Vec<OpSpec> = (0..n).map(|_| random_op(&mut rng)).collect();
    // 1 in 4 cases nests an inner loop.
    let inner = if rng.random_range(0..4u32) == 0 {
        let m = rng.random_range(1..4usize);
        Some(InnerSpec {
            pos: rng.random_range(0..=n),
            trip: rng.random_range(1..5usize),
            ops: (0..m).map(|_| random_op(&mut rng)).collect(),
        })
    } else {
        None
    };
    let hint = random_hint(&mut rng);
    CaseSpec { seed: rng.random(), trip, ops, inner, hint }
}

/// Perturbs one dimension of `base` (coverage-guided mutation).
pub fn mutate(base: &CaseSpec, rng: &mut SmallRng) -> CaseSpec {
    let mut c = base.clone();
    match rng.random_range(0..6u32) {
        0 => c.trip = rng.random_range(2..64usize),
        1 => {
            let k = rng.random_range(0..c.ops.len());
            c.ops[k] = random_op(rng);
        }
        2 => c.ops.push(random_op(rng)),
        3 => c.hint = random_hint(rng),
        4 => c.seed = rng.random(),
        _ => {
            c.inner = match c.inner {
                Some(_) if rng.random_range(0..2u32) == 0 => None,
                _ => Some(InnerSpec {
                    pos: rng.random_range(0..=c.ops.len()),
                    trip: rng.random_range(1..5usize),
                    ops: vec![random_op(rng)],
                }),
            };
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_generation_is_deterministic() {
        assert_eq!(case_from_seed(42), case_from_seed(42));
        assert_ne!(case_from_seed(42), case_from_seed(43));
    }

    #[test]
    fn mutation_changes_something() {
        let base = case_from_seed(7);
        let mut rng = SmallRng::seed_from_u64(1);
        let changed = (0..16).any(|_| mutate(&base, &mut rng) != base);
        assert!(changed);
    }
}
