//! The hinted-loop case format shared by the fuzzer, the shrinker, the
//! checked-in corpus, and the ported property tests.
//!
//! A [`CaseSpec`] describes one structured loop kernel: an outer counted
//! loop over a small set of body operations (loads/stores with fixed or
//! irregular strides, pointer-chasing loads, ALU ops, and a data-dependent
//! skip), an optional nested inner loop, and a hint placement mode. The
//! builder lowers a spec to an [`lf_isa::Program`] the same way for every
//! consumer, so a failing case reproduces bit-identically from its text
//! serialization (see [`crate::corpus`]).

use lf_isa::{reg, AluOp, BranchCond, MemSize, Memory, Program, ProgramBuilder, Reg};

/// Base addresses of the three data arrays the ops index into.
pub const ARRAYS: [i64; 3] = [0x1000, 0x3000, 0x5000];

/// Size of the seeded data memory image.
pub const MEM_BYTES: u64 = 0x8000;

/// Mask applied to pointer-chase values: keeps the chased address 8-byte
/// aligned and within 2 KiB of the array base.
pub const CHASE_MASK: i64 = 0x7f8;

/// ALU operations the generator draws from.
pub const ALU_OPS: [AluOp; 7] =
    [AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::Xor, AluOp::And, AluOp::Or, AluOp::Srl];

/// One loop-body operation. Temps are a 6-register file (`tmp0..tmp5`
/// living in `x3..x8`); `idx` is the loop's byte-offset induction variable
/// (`x1` for the outer loop, `x11` for the inner).
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field semantics are documented per variant
pub enum OpSpec {
    /// `tmp[dst] = mem[array + idx + off*8]`
    Load { arr: usize, off: i64, dst: usize },
    /// `mem[array + idx + off*8] = tmp[src]`
    Store { arr: usize, off: i64, src: usize },
    /// `tmp[dst] = mem[array + idx*stride]` — irregular stride (the index
    /// already steps by 8 bytes, so `stride` multiplies that).
    StridedLoad { arr: usize, stride: i64, dst: usize },
    /// `mem[array + idx*stride] = tmp[src]`
    StridedStore { arr: usize, stride: i64, src: usize },
    /// `tmp[dst] = mem[array + (tmp[dst] & CHASE_MASK)]` — pointer chasing:
    /// a serial load-to-address dependence chain across iterations.
    ChaseLoad { arr: usize, dst: usize },
    /// `tmp[dst] = op(tmp[a], tmp[b])`
    Alu { op: AluOp, dst: usize, a: usize, b: usize },
    /// `tmp[dst] = op(tmp[a], imm)`
    AluImm { op: AluOp, dst: usize, a: usize, imm: i64 },
    /// Skip the next op if `tmp[a]` is odd (data-dependent branch).
    SkipIfOdd { a: usize },
}

/// A nested inner loop, emitted between two outer-body ops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InnerSpec {
    /// Outer-body op index before which the inner loop runs (clamped).
    pub pos: usize,
    /// Inner trip count (kept small; it multiplies the outer trip).
    pub trip: usize,
    /// Inner-body ops, indexed by the inner induction variable.
    pub ops: Vec<OpSpec>,
}

/// How the program is hinted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HintMode {
    /// No hints: the plain sequential kernel.
    None,
    /// Hints inserted by `lf_compiler::annotate` from a golden profile.
    Compiler,
    /// Detach before outer op `d`, reattach before outer op `r` (when
    /// `r > d`), sync at the exit — arbitrary, possibly illegal placements
    /// the hardware must still execute correctly.
    Arbitrary {
        /// Outer-body op index the detach precedes (clamped to the count).
        d: usize,
        /// Outer-body op index the reattach precedes; `r <= d` emits a
        /// detach with no reattach (continuation = induction update).
        r: usize,
    },
}

/// One differential-fuzzing case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseSpec {
    /// Seeds the data memory image and the temp-register initial values.
    pub seed: u64,
    /// Outer trip count.
    pub trip: usize,
    /// Outer-body ops.
    pub ops: Vec<OpSpec>,
    /// Optional nested loop.
    pub inner: Option<InnerSpec>,
    /// Hint placement.
    pub hint: HintMode,
}

/// Temps live in x3..x8; outer index in x1, bound in x2; x9/x10 are
/// scratch; inner index in x11, bound in x12.
pub fn tmp(r: usize) -> Reg {
    reg::x(3 + r)
}

fn emit_op(b: &mut ProgramBuilder, op: &OpSpec, idx: Reg) {
    match *op {
        OpSpec::Load { arr, off, dst } => {
            b.load(tmp(dst), idx, ARRAYS[arr] + off * 8 + 16, MemSize::B8);
        }
        OpSpec::Store { arr, off, src } => {
            b.store(tmp(src), idx, ARRAYS[arr] + off * 8 + 16, MemSize::B8);
        }
        OpSpec::StridedLoad { arr, stride, dst } => {
            b.alui(AluOp::Mul, reg::x(10), idx, stride);
            b.load(tmp(dst), reg::x(10), ARRAYS[arr] + 16, MemSize::B8);
        }
        OpSpec::StridedStore { arr, stride, src } => {
            b.alui(AluOp::Mul, reg::x(10), idx, stride);
            b.store(tmp(src), reg::x(10), ARRAYS[arr] + 16, MemSize::B8);
        }
        OpSpec::ChaseLoad { arr, dst } => {
            b.alui(AluOp::And, reg::x(10), tmp(dst), CHASE_MASK);
            b.load(tmp(dst), reg::x(10), ARRAYS[arr], MemSize::B8);
        }
        OpSpec::Alu { op, dst, a, b: rb } => {
            b.alu(op, tmp(dst), tmp(a), tmp(rb));
        }
        OpSpec::AluImm { op, dst, a, imm } => {
            b.alui(op, tmp(dst), tmp(a), imm);
        }
        // SkipIfOdd needs a label bound after the *next* op; the callers
        // handle it inline and never pass it here.
        OpSpec::SkipIfOdd { .. } => unreachable!("SkipIfOdd handled by the sequence emitters"),
    }
}

/// Emits a straight-line op sequence (resolving `SkipIfOdd` branches) with
/// `idx` as the indexing register.
fn emit_ops(b: &mut ProgramBuilder, ops: &[OpSpec], idx: Reg, uniq: &mut u32) {
    let mut pending: Option<lf_isa::Label> = None;
    for (k, op) in ops.iter().enumerate() {
        if let OpSpec::SkipIfOdd { a } = *op {
            // A skip directly after a skip targets the next test-and-branch
            // pair: bind the older label here so it never leaks unbound.
            if let Some(l) = pending.take() {
                b.bind(l);
            }
            if k + 1 < ops.len() {
                let l = b.label(&format!("skip{uniq}"));
                *uniq += 1;
                b.alui(AluOp::And, reg::x(9), tmp(a), 1);
                b.branch(BranchCond::Ne, reg::x(9), reg::ZERO, l);
                pending = Some(l);
            }
            continue;
        }
        emit_op(b, op, idx);
        if let Some(l) = pending.take() {
            b.bind(l);
        }
    }
    if let Some(l) = pending {
        b.bind(l);
    }
}

fn emit_inner(b: &mut ProgramBuilder, inner: &InnerSpec, uniq: &mut u32) {
    let head = b.label(&format!("inner{uniq}"));
    *uniq += 1;
    b.li(reg::x(11), 0);
    b.li(reg::x(12), inner.trip.max(1) as i64 * 8);
    b.bind(head);
    emit_ops(b, &inner.ops, reg::x(11), uniq);
    b.alui(AluOp::Add, reg::x(11), reg::x(11), 8);
    b.branch(BranchCond::Lt, reg::x(11), reg::x(12), head);
}

impl CaseSpec {
    /// Lowers the spec to a program. `HintMode::Compiler` builds the plain
    /// kernel here — the harness annotates it from a golden profile.
    pub fn build(&self) -> Program {
        let mut b = ProgramBuilder::new();
        let head = b.label("head");
        let cont = b.label("cont");
        let mut uniq = 0u32;
        b.li(reg::x(1), 0);
        b.li(reg::x(2), self.trip.max(1) as i64 * 8);
        for r in 0..6 {
            b.li(tmp(r), (self.seed.wrapping_mul(r as u64 + 1) & 0xffff) as i64);
        }
        b.bind(head);
        let n = self.ops.len();
        let (d, r) = match self.hint {
            HintMode::Arbitrary { d, r } => (d.min(n), r.min(n)),
            _ => (usize::MAX, usize::MAX),
        };
        let hinted = matches!(self.hint, HintMode::Arbitrary { .. });
        let has_reattach = hinted && r > d;
        let inner_pos = self.inner.as_ref().map(|i| i.pos.min(n));
        // Ops are emitted one at a time so hints and the inner loop land
        // between them; a SkipIfOdd therefore skips the next *outer* op
        // (including any hint or inner loop emitted before it).
        let mut pending: Option<lf_isa::Label> = None;
        for k in 0..=n {
            if k == d {
                b.detach(cont);
            }
            if k == r && has_reattach {
                b.reattach(cont);
                b.bind(cont);
            }
            if inner_pos == Some(k) {
                emit_inner(&mut b, self.inner.as_ref().expect("inner_pos set"), &mut uniq);
            }
            if k == n {
                break;
            }
            if let OpSpec::SkipIfOdd { a } = self.ops[k] {
                if let Some(l) = pending.take() {
                    b.bind(l);
                }
                if k + 1 < n {
                    let l = b.label(&format!("skip{uniq}"));
                    uniq += 1;
                    b.alui(AluOp::And, reg::x(9), tmp(a), 1);
                    b.branch(BranchCond::Ne, reg::x(9), reg::ZERO, l);
                    pending = Some(l);
                }
                continue;
            }
            emit_op(&mut b, &self.ops[k], reg::x(1));
            if let Some(l) = pending.take() {
                b.bind(l);
            }
        }
        if let Some(l) = pending.take() {
            b.bind(l);
        }
        if hinted && !has_reattach {
            b.bind(cont); // continuation defaults to the induction update
        }
        b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
        b.branch(BranchCond::Lt, reg::x(1), reg::x(2), head);
        if hinted {
            b.sync(cont);
        }
        b.halt();
        b.build().expect("spec builder emits bound labels")
    }

    /// The same kernel with `HintMode::None`.
    pub fn plain(&self) -> CaseSpec {
        CaseSpec { hint: HintMode::None, ..self.clone() }
    }
}

/// The deterministic data memory image for a case seed.
pub fn seeded_memory(seed: u64) -> Memory {
    let mut mem = Memory::new(MEM_BYTES as usize);
    let mut x = seed | 1;
    for i in 0..(MEM_BYTES / 8) {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        mem.write_u64(i * 8, x).unwrap();
    }
    mem
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_op_case(hint: HintMode) -> CaseSpec {
        CaseSpec {
            seed: 7,
            trip: 4,
            ops: vec![OpSpec::Load { arr: 0, off: 0, dst: 0 }],
            inner: None,
            hint,
        }
    }

    #[test]
    fn build_is_deterministic() {
        let c = one_op_case(HintMode::Arbitrary { d: 0, r: 1 });
        assert_eq!(c.build().insts(), c.build().insts());
    }

    #[test]
    fn plain_build_has_no_hints() {
        let c = one_op_case(HintMode::None);
        let p = c.build();
        assert!(p.insts().iter().all(|i| i.hint().is_none()));
    }

    #[test]
    fn minimal_hinted_case_is_small() {
        // The shrinker's floor: a 1-op arbitrary-hinted loop stays within
        // the 20-instruction reproducer budget.
        let c = one_op_case(HintMode::Arbitrary { d: 0, r: 1 });
        assert!(c.build().len() <= 20, "got {}", c.build().len());
    }

    #[test]
    fn inner_loop_emits_between_ops() {
        let mut c = one_op_case(HintMode::None);
        c.inner = Some(InnerSpec {
            pos: 0,
            trip: 2,
            ops: vec![OpSpec::Store { arr: 1, off: 0, src: 1 }],
        });
        let p = c.build();
        assert!(p.insts().iter().any(|i| i.is_store()));
        // Two backward branches: inner and outer.
        let branches =
            p.insts().iter().filter(|i| matches!(i, lf_isa::Inst::Branch { .. })).count();
        assert_eq!(branches, 2);
    }
}
