//! Text serialization of cases — the checked-in regression corpus format.
//!
//! One case per file, line-oriented, diff-friendly:
//!
//! ```text
//! # conflict squash: same-address store every iteration
//! seed 3
//! trip 8
//! hint arbitrary 0 1
//! op store 0 0 2
//! inner 2 1
//! iop alui add 1 1 3
//! ```
//!
//! `#` lines are comments; `inner <trip> <pos>` opens a nested loop whose
//! ops follow as `iop` lines. The format round-trips exactly through
//! [`serialize`]/[`parse`], so a fuzz failure printed by `lf-verify
//! --minimize` can be committed to `tests/corpus/` verbatim.

use crate::spec::{CaseSpec, HintMode, InnerSpec, OpSpec};
use lf_isa::AluOp;
use std::fmt::Write as _;

const ALU_NAMES: [(AluOp, &str); 14] = [
    (AluOp::Add, "add"),
    (AluOp::Sub, "sub"),
    (AluOp::Mul, "mul"),
    (AluOp::Div, "div"),
    (AluOp::Rem, "rem"),
    (AluOp::And, "and"),
    (AluOp::Or, "or"),
    (AluOp::Xor, "xor"),
    (AluOp::Sll, "sll"),
    (AluOp::Srl, "srl"),
    (AluOp::Sra, "sra"),
    (AluOp::Slt, "slt"),
    (AluOp::Sltu, "sltu"),
    (AluOp::Seq, "seq"),
];

fn alu_name(op: AluOp) -> &'static str {
    ALU_NAMES.iter().find(|(o, _)| *o == op).map(|(_, n)| *n).expect("all ops named")
}

fn parse_alu(name: &str) -> Result<AluOp, String> {
    ALU_NAMES
        .iter()
        .find(|(_, n)| *n == name)
        .map(|(o, _)| *o)
        .ok_or_else(|| format!("unknown alu op {name:?}"))
}

fn write_op(out: &mut String, key: &str, op: &OpSpec) {
    let _ = match op {
        OpSpec::Load { arr, off, dst } => writeln!(out, "{key} load {arr} {off} {dst}"),
        OpSpec::Store { arr, off, src } => writeln!(out, "{key} store {arr} {off} {src}"),
        OpSpec::StridedLoad { arr, stride, dst } => {
            writeln!(out, "{key} strided_load {arr} {stride} {dst}")
        }
        OpSpec::StridedStore { arr, stride, src } => {
            writeln!(out, "{key} strided_store {arr} {stride} {src}")
        }
        OpSpec::ChaseLoad { arr, dst } => writeln!(out, "{key} chase_load {arr} {dst}"),
        OpSpec::Alu { op, dst, a, b } => {
            writeln!(out, "{key} alu {} {dst} {a} {b}", alu_name(*op))
        }
        OpSpec::AluImm { op, dst, a, imm } => {
            writeln!(out, "{key} alui {} {dst} {a} {imm}", alu_name(*op))
        }
        OpSpec::SkipIfOdd { a } => writeln!(out, "{key} skip_if_odd {a}"),
    };
}

/// Serializes a case (with an optional leading `#` comment).
pub fn serialize(spec: &CaseSpec, comment: &str) -> String {
    let mut out = String::new();
    if !comment.is_empty() {
        let _ = writeln!(out, "# {comment}");
    }
    let _ = writeln!(out, "seed {}", spec.seed);
    let _ = writeln!(out, "trip {}", spec.trip);
    match spec.hint {
        HintMode::None => out.push_str("hint none\n"),
        HintMode::Compiler => out.push_str("hint compiler\n"),
        HintMode::Arbitrary { d, r } => {
            let _ = writeln!(out, "hint arbitrary {d} {r}");
        }
    }
    for op in &spec.ops {
        write_op(&mut out, "op", op);
    }
    if let Some(inner) = &spec.inner {
        let _ = writeln!(out, "inner {} {}", inner.trip, inner.pos);
        for op in &inner.ops {
            write_op(&mut out, "iop", op);
        }
    }
    out
}

fn parse_op(fields: &[&str]) -> Result<OpSpec, String> {
    let int = |s: &str| s.parse::<i64>().map_err(|e| format!("bad integer {s:?}: {e}"));
    let idx = |s: &str| s.parse::<usize>().map_err(|e| format!("bad index {s:?}: {e}"));
    let need = |n: usize| {
        if fields.len() != n + 1 {
            Err(format!("op {:?} takes {} fields, got {}", fields[0], n, fields.len() - 1))
        } else {
            Ok(())
        }
    };
    match fields[0] {
        "load" => {
            need(3)?;
            Ok(OpSpec::Load { arr: idx(fields[1])?, off: int(fields[2])?, dst: idx(fields[3])? })
        }
        "store" => {
            need(3)?;
            Ok(OpSpec::Store { arr: idx(fields[1])?, off: int(fields[2])?, src: idx(fields[3])? })
        }
        "strided_load" => {
            need(3)?;
            Ok(OpSpec::StridedLoad {
                arr: idx(fields[1])?,
                stride: int(fields[2])?,
                dst: idx(fields[3])?,
            })
        }
        "strided_store" => {
            need(3)?;
            Ok(OpSpec::StridedStore {
                arr: idx(fields[1])?,
                stride: int(fields[2])?,
                src: idx(fields[3])?,
            })
        }
        "chase_load" => {
            need(2)?;
            Ok(OpSpec::ChaseLoad { arr: idx(fields[1])?, dst: idx(fields[2])? })
        }
        "alu" => {
            need(4)?;
            Ok(OpSpec::Alu {
                op: parse_alu(fields[1])?,
                dst: idx(fields[2])?,
                a: idx(fields[3])?,
                b: idx(fields[4])?,
            })
        }
        "alui" => {
            need(4)?;
            Ok(OpSpec::AluImm {
                op: parse_alu(fields[1])?,
                dst: idx(fields[2])?,
                a: idx(fields[3])?,
                imm: int(fields[4])?,
            })
        }
        "skip_if_odd" => {
            need(1)?;
            Ok(OpSpec::SkipIfOdd { a: idx(fields[1])? })
        }
        other => Err(format!("unknown op kind {other:?}")),
    }
}

/// Parses a serialized case.
pub fn parse(text: &str) -> Result<CaseSpec, String> {
    let mut seed = None;
    let mut trip = None;
    let mut hint = None;
    let mut ops = Vec::new();
    let mut inner: Option<InnerSpec> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        match fields[0] {
            "seed" if fields.len() == 2 => {
                seed = Some(fields[1].parse::<u64>().map_err(|e| err(format!("{e}")))?);
            }
            "trip" if fields.len() == 2 => {
                trip = Some(fields[1].parse::<usize>().map_err(|e| err(format!("{e}")))?);
            }
            "hint" => {
                hint = Some(match &fields[1..] {
                    ["none"] => HintMode::None,
                    ["compiler"] => HintMode::Compiler,
                    ["arbitrary", d, r] => HintMode::Arbitrary {
                        d: d.parse().map_err(|e| err(format!("{e}")))?,
                        r: r.parse().map_err(|e| err(format!("{e}")))?,
                    },
                    _ => return Err(err(format!("bad hint line {line:?}"))),
                });
            }
            "op" => ops.push(parse_op(&fields[1..]).map_err(err)?),
            "inner" if fields.len() == 3 => {
                inner = Some(InnerSpec {
                    trip: fields[1].parse().map_err(|e| err(format!("{e}")))?,
                    pos: fields[2].parse().map_err(|e| err(format!("{e}")))?,
                    ops: Vec::new(),
                });
            }
            "iop" => match &mut inner {
                Some(i) => i.ops.push(parse_op(&fields[1..]).map_err(err)?),
                None => return Err(err("iop before inner".into())),
            },
            other => return Err(err(format!("unknown directive {other:?}"))),
        }
    }
    if let Some(i) = &inner {
        if i.ops.is_empty() {
            return Err("inner loop has no iop lines".into());
        }
    }
    Ok(CaseSpec {
        seed: seed.ok_or("missing seed line")?,
        trip: trip.ok_or("missing trip line")?,
        ops,
        inner,
        hint: hint.ok_or("missing hint line")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::case_from_seed;

    #[test]
    fn random_cases_round_trip() {
        for s in 0..64u64 {
            let c = case_from_seed(s);
            let text = serialize(&c, "round-trip");
            let back = parse(&text).unwrap_or_else(|e| panic!("seed {s}: {e}\n{text}"));
            assert_eq!(c, back, "seed {s} did not round-trip:\n{text}");
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse("seed 1\ntrip 4").is_err(), "missing hint");
        assert!(parse("seed 1\ntrip 4\nhint none\nop bogus 1").is_err());
        assert!(parse("seed 1\ntrip 4\nhint none\niop alu add 0 0 0").is_err());
    }
}
