//! SSB reference model and action-sequence cases.
//!
//! The SSB property test drives `loopfrog::ssb::Ssb` with random
//! interleaved writes and squashes and checks its multi-versioned reads
//! against a naive per-slice byte-overlay model. This module owns the case
//! format and the checker so the test file (and the fuzzer's soak mode)
//! share one seeded-RNG generator, like the program cases in
//! [`crate::spec`].

use lf_isa::Memory;
use lf_stats::rng::SmallRng;
use loopfrog::ssb::{Ssb, WriteOutcome};
use loopfrog::SsbConfig;
use std::collections::HashMap;

/// Number of SSB slices the model instantiates.
pub const SLICES: usize = 4;

/// One step of an SSB action sequence.
#[derive(Debug, Clone)]
pub enum Action {
    /// `(slice, addr, len, value-seed)`: write `len` bytes derived from the
    /// seed at `addr` in the slice.
    Write(usize, u64, usize, u64),
    /// Squash (invalidate) the slice.
    Squash(usize),
}

/// One SSB property case: an action sequence plus a final versioned read.
#[derive(Debug, Clone)]
pub struct SsbCase {
    /// Interleaved writes and squashes.
    pub actions: Vec<Action>,
    /// Final read address.
    pub read_addr: u64,
    /// Final read length (1..=8).
    pub read_len: usize,
    /// Reading slice: the view overlays slices `0..=reader` over memory.
    pub reader: usize,
}

fn random_action(rng: &mut SmallRng) -> Action {
    // Writes outnumber squashes 8:1, as in the original strategy weights.
    if rng.random_range(0..9u32) < 8 {
        Action::Write(
            rng.random_range(0..SLICES),
            rng.random_range(0..256u64),
            rng.random_range(1..=8usize),
            rng.random(),
        )
    } else {
        Action::Squash(rng.random_range(0..SLICES))
    }
}

/// Generates one case from the shared seeded RNG.
pub fn random_case(rng: &mut SmallRng) -> SsbCase {
    let n = rng.random_range(1..60usize);
    SsbCase {
        actions: (0..n).map(|_| random_action(rng)).collect(),
        read_addr: rng.random_range(0..256u64),
        read_len: rng.random_range(1..=8usize),
        reader: rng.random_range(0..SLICES),
    }
}

/// Runs a case against the real SSB and the naive overlay model; returns
/// the first divergence as an error string.
pub fn check_case(case: &SsbCase) -> Result<(), String> {
    let cfg = SsbConfig { size_bytes: 4096, line: 32, granule: 4, ..SsbConfig::default() };
    let mut ssb = Ssb::new(&cfg, SLICES);
    let mut mem = Memory::new(1024);
    for i in 0..128 {
        mem.write_u64(i * 8, i.wrapping_mul(0x9e3779b9) | 1).unwrap();
    }
    // Naive model: per-slice byte overlays.
    let mut model: Vec<HashMap<u64, u8>> = vec![HashMap::new(); SLICES];

    for act in &case.actions {
        match *act {
            Action::Write(slice, addr, len, seed) => {
                let bytes: Vec<u8> = (0..len).map(|i| (seed >> (i * 8)) as u8).collect();
                // Older view for read-fills: slices 0..=slice over memory.
                let view_order: Vec<usize> = (0..=slice).collect();
                let view: Vec<(u64, u8)> = (addr.saturating_sub(8)..addr + 16)
                    .map(|a| {
                        let mut b = mem.read_u8(a).unwrap_or(0);
                        for &s in &view_order {
                            if let Some(&v) = model[s].get(&a) {
                                b = v;
                            }
                        }
                        (a, b)
                    })
                    .collect();
                let lookup: HashMap<u64, u8> = view.into_iter().collect();
                let out = ssb.write(slice, addr, &bytes, |a| lookup[&a]);
                if !matches!(out, WriteOutcome::Ok { .. }) {
                    return Err(format!("write {slice}/{addr:#x} overflowed unexpectedly"));
                }
                // Model: the write plus granule read-fills.
                let g = 4u64;
                let first = addr / g * g;
                let last = (addr + len as u64 - 1) / g * g + g;
                for a in first..last {
                    let covered = a >= addr && a < addr + len as u64;
                    if covered {
                        model[slice].insert(a, bytes[(a - addr) as usize]);
                    } else {
                        // Read-fill from the older view.
                        model[slice].entry(a).or_insert_with(|| lookup[&a]);
                    }
                }
            }
            Action::Squash(slice) => {
                ssb.invalidate_slice(slice);
                model[slice].clear();
            }
        }
    }

    // Read as `reader`: slices 0..=reader overlay memory, newest wins.
    let order: Vec<usize> = (0..=case.reader).collect();
    let (got, _) = ssb.read(&order, case.read_addr, case.read_len as u64, &mem);
    for (i, b) in got.iter().enumerate() {
        let a = case.read_addr + i as u64;
        let mut expect = mem.read_u8(a).unwrap_or(0);
        for &s in &order {
            if let Some(&v) = model[s].get(&a) {
                expect = v;
            }
        }
        if *b != expect {
            return Err(format!(
                "byte {i} at {a:#x}: ssb {:#04x} != model {expect:#04x} (reader T{})",
                b, case.reader
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_case_passes() {
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..8 {
            let case = random_case(&mut rng);
            check_case(&case).unwrap();
        }
    }
}
