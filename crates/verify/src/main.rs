//! `lf-verify`: the differential fuzzer CLI.
//!
//! ```text
//! lf-verify --seed 42 --cases 500            # fixed-budget fuzz run
//! lf-verify --seed 42 --soak-secs 600        # time-budgeted soak
//! lf-verify --seed 7 --cases 200 --minimize  # shrink any failure found
//! lf-verify --inject-bug --cases 100 --minimize
//!     # prove the harness catches a seeded conflict-detector bug
//! lf-verify --inject-bug-rate 0.05 --cases 200
//!     # same bug on a deterministic 5% of case seeds (campaign-style)
//! ```
//!
//! Every failure prints the case's seed (when it came straight from the
//! generator) and its full text serialization, which reproduces the case
//! exactly (`lf-verify --replay <file>` or commit it to `tests/corpus/`).
//! With `--json <path>` the run writes a machine-readable artifact through
//! the shared `lf-bench` schema.

use lf_bench::artifact::RunArtifact;
use lf_stats::rng::SmallRng;
use lf_stats::Json;
use lf_verify::{corpus, coverage, gen, harness, shrink};
use std::path::PathBuf;
use std::time::{Duration, Instant};

struct Args {
    seed: u64,
    cases: u64,
    soak_secs: Option<u64>,
    minimize: bool,
    inject_bug: bool,
    inject_bug_rate: f64,
    emit_corpus: Option<PathBuf>,
    replay: Option<PathBuf>,
    json: Option<PathBuf>,
}

const USAGE: &str = "usage: lf-verify [--seed N] [--cases N] [--soak-secs N] [--minimize] \
                     [--inject-bug] [--inject-bug-rate R] [--emit-corpus DIR] [--replay FILE] \
                     [--json PATH]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        cases: 500,
        soak_secs: None,
        minimize: false,
        inject_bug: false,
        inject_bug_rate: 0.0,
        emit_corpus: None,
        replay: None,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--cases" => args.cases = value("--cases")?.parse().map_err(|e| format!("{e}"))?,
            "--soak-secs" => {
                args.soak_secs = Some(value("--soak-secs")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--minimize" => args.minimize = true,
            "--inject-bug" => args.inject_bug = true,
            "--inject-bug-rate" => {
                let r: f64 = value("--inject-bug-rate")?.parse().map_err(|e| format!("{e}"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("--inject-bug-rate must be in [0, 1], got {r}"));
                }
                args.inject_bug_rate = r;
            }
            "--emit-corpus" => args.emit_corpus = Some(value("--emit-corpus")?.into()),
            "--replay" => args.replay = Some(value("--replay")?.into()),
            "--json" => args.json = Some(value("--json")?.into()),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

/// One failure's full report (also what lands in the JSON artifact).
struct FailureReport {
    case_seed: Option<u64>,
    kind: String,
    detail: String,
    serialized: String,
    minimized: Option<String>,
}

fn report_failure(
    args: &Args,
    opts: &harness::HarnessOptions,
    spec: &lf_verify::CaseSpec,
    f: &harness::Failure,
    case_seed: Option<u64>,
    index: u64,
) -> FailureReport {
    eprintln!("\nFAIL case {index} ({:?}):", f.kind);
    eprintln!("{}", f.detail);
    if let Some(s) = case_seed {
        eprintln!("case seed: {s} (regenerate with gen::case_from_seed({s}))");
    }
    let serialized = corpus::serialize(spec, &format!("fuzz failure: {:?}", f.kind));
    eprintln!("--- case ---\n{serialized}------------");
    let minimized = if args.minimize {
        let small = shrink::shrink(spec, opts);
        let text = corpus::serialize(&small, &format!("minimized reproducer: {:?}", f.kind));
        eprintln!("minimized to {} instructions:\n{text}", small.build().len());
        if let Some(dir) = &args.emit_corpus {
            let _ = std::fs::create_dir_all(dir);
            let path = dir.join(format!("repro_{index}.lfcase"));
            match std::fs::write(&path, &text) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("error writing {}: {e}", path.display()),
            }
        }
        Some(text)
    } else {
        None
    };
    FailureReport {
        case_seed,
        kind: format!("{:?}", f.kind),
        detail: f.detail.clone(),
        serialized,
        minimized,
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let opts = harness::HarnessOptions {
        inject_bug: args.inject_bug,
        inject_bug_rate: args.inject_bug_rate,
        metamorphic: true,
    };

    // Replay mode: run one serialized case and exit.
    if let Some(path) = &args.replay {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", path.display());
                std::process::exit(2);
            }
        };
        let spec = match corpus::parse(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot parse {}: {e}", path.display());
                std::process::exit(2);
            }
        };
        match harness::run_case(&spec, &opts) {
            harness::Outcome::Pass { sig } => {
                println!("PASS ({})", coverage::describe(sig));
            }
            harness::Outcome::Reject { reason } => println!("REJECT: {reason}"),
            harness::Outcome::Fail(f) => {
                report_failure(&args, &opts, &spec, &f, None, 0);
                std::process::exit(1);
            }
        }
        return;
    }

    let started = Instant::now();
    let deadline = args.soak_secs.map(|s| started + Duration::from_secs(s));
    let budget = if deadline.is_some() { u64::MAX } else { args.cases };

    let mut rng = SmallRng::seed_from_u64(args.seed);
    let mut seen_cov = 0u32;
    let mut interesting: Vec<lf_verify::CaseSpec> = Vec::new();
    let mut failures: Vec<FailureReport> = Vec::new();
    let (mut ran, mut rejected) = (0u64, 0u64);

    for case in 0..budget {
        if let Some(d) = deadline {
            if Instant::now() >= d {
                break;
            }
        }
        // 1 in 4 cases mutates a coverage-interesting ancestor; the rest
        // come straight from a fresh case seed (printable, replayable).
        let (spec, case_seed) = if !interesting.is_empty() && rng.random_range(0..4u32) == 0 {
            let base = &interesting[rng.random_range(0..interesting.len())];
            (gen::mutate(base, &mut rng), None)
        } else {
            let s: u64 = rng.random();
            (gen::case_from_seed(s), Some(s))
        };
        ran += 1;
        match harness::run_case(&spec, &opts) {
            harness::Outcome::Pass { sig } => {
                if sig & !seen_cov != 0 {
                    seen_cov |= sig;
                    interesting.push(spec);
                }
            }
            harness::Outcome::Reject { .. } => rejected += 1,
            harness::Outcome::Fail(f) => {
                let r = report_failure(&args, &opts, &spec, &f, case_seed, case);
                failures.push(r);
                if failures.len() >= 8 {
                    eprintln!("stopping after 8 failures");
                    break;
                }
            }
        }
    }

    let elapsed = started.elapsed();
    println!(
        "lf-verify: {ran} cases in {:.1}s ({} rejected, {} failed), coverage: {}",
        elapsed.as_secs_f64(),
        rejected,
        failures.len(),
        coverage::describe(seen_cov)
    );

    if let Some(path) = &args.json {
        let mut art = RunArtifact::for_tool("lf-verify");
        art.set_extra("seed", args.seed);
        art.set_extra("cases_run", ran);
        art.set_extra("rejected", rejected);
        art.set_extra("elapsed_secs", elapsed.as_secs_f64());
        art.set_extra("coverage_bits", seen_cov as u64);
        art.set_extra("coverage", coverage::describe(seen_cov));
        art.set_extra("inject_bug", Json::Bool(args.inject_bug));
        art.set_extra("inject_bug_rate", args.inject_bug_rate);
        let fails: Vec<Json> = failures
            .iter()
            .map(|f| {
                let mut j = Json::obj();
                j.set("kind", f.kind.as_str());
                j.set("detail", f.detail.as_str());
                j.set("case", f.serialized.as_str());
                match f.case_seed {
                    Some(s) => j.set("case_seed", s),
                    None => j.set("case_seed", Json::Null),
                };
                match &f.minimized {
                    Some(m) => j.set("minimized", m.as_str()),
                    None => j.set("minimized", Json::Null),
                };
                j
            })
            .collect();
        art.set_extra("failures", Json::Arr(fails));
        match art.write(path) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("error: failed to write {}: {e}", path.display()),
        }
    }

    if !failures.is_empty() {
        std::process::exit(1);
    }
}
