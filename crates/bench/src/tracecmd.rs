//! `lf-bench trace` — per-instruction pipeline-trace export.
//!
//! Runs one kernel standalone (no engine, no cache) with the core's
//! unified event stream attached, fanning the single stream out to any
//! combination of sinks:
//!
//! - `--text PATH` — the gem5-style one-line-per-event textual trace
//!   ([`loopfrog::TextTracer`]); `-` writes to stdout.
//! - `--konata PATH` — Konata / O3PipeView-compatible pipeline
//!   visualization ([`loopfrog::KonataTracer`]; open in Konata).
//! - `--dump-flight-recorder PATH` — the last-N-event window at run end
//!   (the PR4 flight recorder, armed on demand rather than only on budget
//!   trips).
//!
//! One [`loopfrog::TraceFilter`] (from `--cycles LO:HI`, `--tid N`,
//! `--kinds a,b,...`) is shared by the text and Konata sinks, so both
//! describe the same slice of the run. Tracing is core-side state: the
//! simulated results are byte-identical with or without it.

use crate::runner::scale_tag;
use lf_compiler::{annotate, SelectOptions};
use lf_stats::Json;
use lf_workloads::Scale;
use loopfrog::{
    KonataTracer, LoopFrogConfig, LoopFrogCore, TextTracer, TraceFilter, TraceKind, TraceMux,
};
use std::path::PathBuf;

/// Which pinned configuration to trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceConfig {
    /// The baseline core (hints as NOPs).
    Base,
    /// The LoopFrog core (default config).
    Lf,
}

/// Options for one `lf-bench trace` invocation.
#[derive(Debug, Clone)]
pub struct TraceOptions {
    /// Kernel to trace.
    pub kernel: String,
    /// Workload scale.
    pub scale: Scale,
    /// Which config to simulate.
    pub config: TraceConfig,
    /// Konata output path.
    pub konata: Option<PathBuf>,
    /// Text-trace output path (`-` = stdout).
    pub text: Option<PathBuf>,
    /// Flight-recorder dump path (JSON, last-N events at run end).
    pub dump_flight_recorder: Option<PathBuf>,
    /// Shared admission filter: cycle range.
    pub cycles: Option<(u64, u64)>,
    /// Shared admission filter: one threadlet.
    pub tid: Option<usize>,
    /// Shared admission filter: event kinds.
    pub kinds: Option<Vec<TraceKind>>,
}

/// Flight-recorder depth for on-demand dumps: enough to cover several
/// epochs of an 8-wide core without the dump becoming a full trace.
const DUMP_DEPTH: usize = 256;

fn filter_of(opts: &TraceOptions) -> TraceFilter {
    let mut f = TraceFilter::new();
    if let Some((lo, hi)) = opts.cycles {
        f = f.with_cycle_range(lo, hi);
    }
    if let Some(tid) = opts.tid {
        f = f.with_tid(tid);
    }
    if let Some(kinds) = &opts.kinds {
        f = f.with_kinds(kinds);
    }
    f
}

fn create(path: &PathBuf) -> std::io::BufWriter<std::fs::File> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match std::fs::File::create(path) {
        Ok(f) => std::io::BufWriter::new(f),
        Err(e) => {
            eprintln!("error: cannot create {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Runs the traced simulation and writes every requested sink. Returns
/// the number of cycles simulated.
pub fn run_trace(opts: &TraceOptions) -> u64 {
    let w = lf_workloads::by_name(&opts.kernel, opts.scale).unwrap_or_else(|| {
        eprintln!("error: unknown kernel {:?} at scale {}", opts.kernel, scale_tag(opts.scale));
        std::process::exit(2);
    });
    let emu = w.reference_emulator().expect("kernel runs on the golden emulator");
    let ann = annotate(&w.program, emu.profile(), &SelectOptions::default());
    let cfg = match opts.config {
        TraceConfig::Base => LoopFrogConfig::baseline(),
        TraceConfig::Lf => LoopFrogConfig::default(),
    };

    let filter = filter_of(opts);
    let mut mux = TraceMux::new();
    if let Some(path) = &opts.text {
        if path.as_os_str() == "-" {
            mux.add(Box::new(
                TextTracer::new(std::io::stdout().lock()).with_filter(filter.clone()),
            ));
        } else {
            mux.add(Box::new(TextTracer::new(create(path)).with_filter(filter.clone())));
        }
    }
    if let Some(path) = &opts.konata {
        mux.add(Box::new(KonataTracer::new(create(path)).with_filter(filter.clone())));
    }

    let mut core = LoopFrogCore::new(&ann.program, w.mem.clone(), cfg);
    if !mux.is_empty() {
        core.set_tracer(Box::new(mux));
    }
    if opts.dump_flight_recorder.is_some() {
        core.arm_flight_recorder_live(DUMP_DEPTH);
    }
    let result = core.run().unwrap_or_else(|e| {
        eprintln!("error: {} failed: {e}", opts.kernel);
        std::process::exit(1);
    });
    // Dropping the core drops the tracer, flushing the buffered sinks.
    drop(core);

    if let Some(path) = &opts.dump_flight_recorder {
        let events: Vec<Json> = result
            .flight_recorder
            .iter()
            .map(|ev| {
                let mut j = Json::obj();
                j.set("cycle", ev.cycle());
                j.set("kind", format!("{:?}", ev.kind()).to_lowercase());
                j.set("tid", ev.tid() as u64);
                j.set("text", format!("{ev}"));
                j
            })
            .collect();
        let mut doc = Json::obj();
        doc.set("kernel", opts.kernel.as_str());
        doc.set("scale", scale_tag(opts.scale));
        doc.set("depth", DUMP_DEPTH as u64);
        doc.set("cycles", result.stats.cycles);
        doc.set("events", Json::Arr(events));
        if let Err(e) = crate::durable::atomic_write_json(&doc, path) {
            eprintln!("error: failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }
    for path in [&opts.text, &opts.konata].into_iter().flatten() {
        if path.as_os_str() != "-" {
            eprintln!("wrote {}", path.display());
        }
    }
    eprintln!(
        "traced {} ({}, scale {}): {} cycles",
        opts.kernel,
        match opts.config {
            TraceConfig::Base => "base",
            TraceConfig::Lf => "lf",
        },
        scale_tag(opts.scale),
        result.stats.cycles
    );
    result.stats.cycles
}

/// Parses `--kinds` operands (comma-separated [`TraceKind`] names).
pub fn parse_kinds(spec: &str) -> Result<Vec<TraceKind>, String> {
    spec.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| TraceKind::parse(s).ok_or_else(|| format!("unknown event kind {s:?}")))
        .collect()
}

/// Parses a `--cycles LO:HI` operand.
pub fn parse_cycle_range(spec: &str) -> Result<(u64, u64), String> {
    let (lo, hi) = spec.split_once(':').ok_or_else(|| format!("expected LO:HI, got {spec:?}"))?;
    let lo = lo.parse::<u64>().map_err(|_| format!("bad cycle {lo:?}"))?;
    let hi = hi.parse::<u64>().map_err(|_| format!("bad cycle {hi:?}"))?;
    if lo > hi {
        return Err(format!("empty range {lo}:{hi}"));
    }
    Ok((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_and_range_parsers() {
        assert_eq!(parse_kinds("rename,commit").unwrap().len(), 2);
        assert!(parse_kinds("rename,bogus").is_err());
        assert_eq!(parse_cycle_range("10:20").unwrap(), (10, 20));
        assert!(parse_cycle_range("20:10").is_err());
        assert!(parse_cycle_range("nope").is_err());
    }

    #[test]
    fn trace_writes_konata_and_flight_recorder() {
        let dir = std::env::temp_dir().join(format!("lf-trace-test-{}", std::process::id()));
        let konata = dir.join("trace.kanata");
        let dump = dir.join("flight.json");
        let opts = TraceOptions {
            kernel: "stencil_blur".into(),
            scale: Scale::Smoke,
            config: TraceConfig::Lf,
            konata: Some(konata.clone()),
            text: None,
            dump_flight_recorder: Some(dump.clone()),
            cycles: None,
            tid: None,
            kinds: None,
        };
        let cycles = run_trace(&opts);
        assert!(cycles > 0);
        let kanata = std::fs::read_to_string(&konata).unwrap();
        assert!(kanata.starts_with("Kanata\t0004\n"), "Konata header");
        assert!(kanata.lines().any(|l| l.starts_with("I\t")), "instruction records");
        assert!(kanata.lines().any(|l| l.starts_with("R\t")), "retire records");
        let doc = Json::parse(&std::fs::read_to_string(&dump).unwrap()).unwrap();
        let events = doc.get("events").and_then(Json::as_arr).unwrap();
        assert!(!events.is_empty(), "a clean run still dumps the live window");
        assert!(events.len() <= DUMP_DEPTH);
        std::fs::remove_dir_all(&dir).ok();
    }
}
