//! Analytic area/power model (paper §6.8).
//!
//! The paper estimates LoopFrog's area from published constants: CACTI for
//! the SSB granule cache, a Swarm-style Bloom-filter conflict checker, SMT
//! overhead figures from the literature, and the Arm Neoverse N1 core area.
//! This module reproduces that arithmetic.

/// Area estimate breakdown in mm² at 7 nm.
#[derive(Debug, Clone, Copy)]
pub struct AreaEstimate {
    /// SSB granule cache slices (CACTI 22 nm scaled by 5× to 7 nm).
    pub ssb_mm2: f64,
    /// Bloom-filter conflict checker (8-entry dual-ported SRAM, 4096-bit
    /// filters).
    pub conflict_mm2: f64,
    /// Reference core area (Arm Neoverse N1 with L1 + 1 MB L2).
    pub core_mm2: f64,
    /// SMT-support overhead range (fraction of core area).
    pub smt_overhead: (f64, f64),
}

impl AreaEstimate {
    /// The paper's constants (§6.8).
    pub fn paper() -> AreaEstimate {
        AreaEstimate {
            // 4 slices × 2 KiB, 0.025 mm² at 22 nm / 5 ≈ 0.02 mm² at 7 nm
            ssb_mm2: 0.025 / 5.0 * 4.0,
            conflict_mm2: 0.005,
            core_mm2: 1.4,
            smt_overhead: (0.10, 0.15),
        }
    }

    /// LoopFrog-specific structures as a fraction of the core.
    pub fn loopfrog_structures_frac(&self) -> f64 {
        (self.ssb_mm2 + self.conflict_mm2) / self.core_mm2
    }

    /// Total area increase over a non-SMT sequential core (range).
    pub fn total_increase(&self) -> (f64, f64) {
        let s = self.loopfrog_structures_frac();
        (self.smt_overhead.0 + s, self.smt_overhead.1 + s)
    }

    /// Expected conventional-scaling speedup from the same area under
    /// Pollack's rule (performance ∝ √area).
    pub fn pollack_speedup(&self) -> (f64, f64) {
        let (lo, hi) = self.total_increase();
        ((1.0 + lo).sqrt(), (1.0 + hi).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_numbers() {
        let a = AreaEstimate::paper();
        assert!((a.ssb_mm2 - 0.02).abs() < 1e-9);
        // "around 2% compared to ... an Arm Neoverse N1"
        let frac = a.loopfrog_structures_frac();
        assert!(frac > 0.015 && frac < 0.025, "{frac}");
        // "total increase of 12–17% in area"
        let (lo, hi) = a.total_increase();
        assert!(lo > 0.11 && lo < 0.13, "{lo}");
        assert!(hi > 0.16 && hi < 0.18, "{hi}");
        // Pollack: 12–17% area ≈ 6–8% performance.
        let (plo, phi) = a.pollack_speedup();
        assert!(plo > 1.055 && phi < 1.085, "{plo} {phi}");
    }
}
