//! The `lf-bench` command line: one binary driving every registered
//! scenario through the deduplicating run planner.
//!
//! ```text
//! lf-bench list [--scale smoke|eval|full]
//! lf-bench run <scenario>... [options]
//! lf-bench run --all [options]
//! lf-bench perf [--scale smoke|eval|full] [--reps N] [--label TEXT]
//!               [--json [DIR]] [--warn-regression PCT]
//! lf-bench profile [--scale smoke|eval|full] [--reps N] [--json [DIR]]
//! lf-bench trace <kernel> [--scale smoke|eval|full] [--config base|lf]
//!                [--konata PATH] [--text PATH|-] [--cycles LO:HI]
//!                [--tid N] [--kinds a,b,...]
//!                [--dump-flight-recorder PATH]
//! lf-bench serve [--socket PATH] [--workers N] [--cache-dir DIR] [-j N]
//! lf-bench submit [--socket PATH] <run-args...>
//!
//! options:
//!   --scale smoke|eval|full
//!                        workload scale (default smoke)
//!   --tier functional|sampled|detailed
//!                        simulation tier (default detailed): `functional`
//!                        fast-forwards on the emulator tier (no cycles),
//!                        `sampled` measures SimPoint windows from warm
//!                        checkpoints and reconstructs whole-run IPC,
//!                        `detailed` is the legacy cycle-accurate path
//!   -j N                 worker threads (default: available parallelism)
//!   --workers N          (run) supervised multi-process execution: shard
//!                        the campaign across N worker processes that
//!                        race for runs through lease files in the cache
//!                        directory; a worker crash costs only its
//!                        in-flight run (default 1 = in-process threads;
//!                        requires the cache, see --no-cache)
//!   --filter SUBSTR      keep only kernels whose name contains SUBSTR
//!   --no-cache           skip the on-disk run cache (results/cache/)
//!   --cache-dir DIR      cache location (default results/cache)
//!   --json [DIR]         write per-scenario artifacts, planner.json, and
//!                        the BENCH_harness.json trajectory under DIR
//!                        (default results)
//!   --assert-dedup       exit non-zero unless deduplication occurred
//!   --budget-cycles N    per-run cycle budget (0 = unlimited; default 50M)
//!   --deadline-secs N    per-run wall-clock deadline (default: none)
//!   --resume [FILE]      re-run a campaign, re-executing only the runs a
//!                        previous failures.json recorded as failed
//!                        (default FILE: <json-dir|results>/failures.json).
//!                        A missing FILE resumes with an empty failure set
//!                        (a killed campaign may never have written one)
//!   --inject-fault SPEC  deterministic fault injection (repeatable):
//!                        panic:<rate> | hang:<fingerprint|rate> |
//!                        corrupt-cache:<rate> | crash:<rate>
//!   --crash-after-ms N   (run) hard-kill the process (SIGABRT, no
//!                        cleanup) N milliseconds into the campaign —
//!                        the crash-recovery harness's phase-agnostic
//!                        kill point
//!   --trace-out PATH     (run) export campaign spans as Chrome
//!                        trace-event JSON (Perfetto-loadable)
//!   --socket PATH        (serve/submit) Unix-domain socket of the
//!                        resident campaign service (default:
//!                        <cache-dir>/lf-serve.sock)
//! ```
//!
//! `serve` keeps the planner, run cache, and checkpoint store warm and
//! executes queued campaign requests submitted over the socket; `submit`
//! takes the same campaign flags as `run`, ships them as one request,
//! streams the server's status records to stderr, reprints the
//! campaign's stdout byte-for-byte, and exits with its exit code. See
//! [`crate::engine::serve`] for the protocol.
//!
//! Every `run` writes a failure report (`failures.json`, empty on a clean
//! campaign) next to the artifacts; the campaign exits zero as long as it
//! completes, even with failed runs — failures are data, not crashes.
//!
//! The historical per-figure binaries still exist as shims over
//! [`run_single`], preserving their `--scale`/`--json <path>` surface.

use crate::engine::cache::DiskCache;
use crate::engine::fault::{
    read_failures_json, write_failures_json, FaultPlan, RunBudget, DEFAULT_BUDGET_CYCLES,
};
use crate::engine::{
    by_name, registry, run_scenarios, serve, supervise, EngineOptions, EngineOutput, Scenario,
};
use crate::runner::scale_tag;
use crate::tiered::Tier;
use lf_stats::Json;
use lf_workloads::Scale;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Parsed command line.
struct Cli {
    command: Command,
    scale: Scale,
    tier: Tier,
    jobs: usize,
    filter: Option<String>,
    no_cache: bool,
    cache_dir: PathBuf,
    json_dir: Option<PathBuf>,
    assert_dedup: bool,
    budget_cycles: Option<u64>,
    deadline_secs: Option<u64>,
    faults: FaultPlan,
    /// Raw `--inject-fault` specs, retained verbatim so the supervisor
    /// can reconstruct worker argv.
    fault_specs: Vec<String>,
    /// `--workers`: supervised multi-process execution (1 = in-process
    /// threads, the historical behaviour).
    workers: usize,
    /// Hidden `--worker-id` operand of the `worker` subcommand.
    worker_id: u64,
    /// `--crash-after-ms`: hard-kill the process this many milliseconds
    /// into the campaign (the crash-recovery harness's timer kill point).
    crash_after_ms: Option<u64>,
    /// `--resume` with its optional FILE operand (`Some(None)` = flag
    /// present, default file).
    resume: Option<Option<PathBuf>>,
    /// `perf`: repetitions per (kernel, config) pair.
    reps: usize,
    /// `perf`: free-form label recorded in the trajectory entry.
    label: Option<String>,
    /// `perf`: regression-warning threshold as a fraction.
    warn_frac: f64,
    /// `run`: export campaign spans as Chrome trace-event JSON here.
    trace_out: Option<PathBuf>,
    /// `serve`/`submit`: Unix-domain socket path of the campaign service.
    socket: Option<PathBuf>,
    /// `trace`: sink and filter options.
    trace: crate::tracecmd::TraceOptions,
}

enum Command {
    List,
    Run {
        names: Vec<String>,
        all: bool,
    },
    /// The hidden worker subcommand the supervisor self-execs (see
    /// [`crate::engine::supervise`]); not part of the public surface.
    Worker {
        names: Vec<String>,
        all: bool,
    },
    Perf,
    Profile,
    Trace,
    /// The resident campaign service (`lf-bench serve`).
    Serve,
    /// Thin client shipping one campaign request to a running service.
    Submit {
        names: Vec<String>,
        all: bool,
    },
}

fn usage() -> ! {
    eprintln!(
        "usage: lf-bench <list|run|serve|submit|perf|profile|trace> [scenario...|kernel] [--all]\n\
         \x20                [--socket PATH]  (serve/submit)\n\
         \x20                [--scale smoke|eval|full] [--tier functional|sampled|detailed]\n\
         \x20                [-j N] [--filter SUBSTR] [--no-cache]\n\
         \x20                [--cache-dir DIR] [--json [DIR]] [--assert-dedup]\n\
         \x20                [--workers N]\n\
         \x20                [--budget-cycles N] [--deadline-secs N] [--resume [FILE]]\n\
         \x20                [--inject-fault SPEC]... [--crash-after-ms N]\n\
         \x20                [--trace-out PATH]\n\
         \x20                [--reps N] [--label TEXT] [--warn-regression PCT]  (perf)\n\
         \x20                [--config base|lf] [--konata PATH] [--text PATH|-]\n\
         \x20                [--cycles LO:HI] [--tid N] [--kinds a,b,...]\n\
         \x20                [--dump-flight-recorder PATH]  (trace)"
    );
    std::process::exit(2);
}

fn parse(args: &[String]) -> Cli {
    let mut cli = Cli {
        command: Command::List,
        scale: Scale::Smoke,
        tier: Tier::Detailed,
        jobs: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        filter: None,
        no_cache: false,
        cache_dir: PathBuf::from("results/cache"),
        json_dir: None,
        assert_dedup: false,
        budget_cycles: None,
        deadline_secs: None,
        faults: FaultPlan::default(),
        fault_specs: Vec::new(),
        workers: 1,
        worker_id: 0,
        crash_after_ms: None,
        resume: None,
        reps: 3,
        label: None,
        warn_frac: 0.15,
        trace_out: None,
        socket: None,
        trace: crate::tracecmd::TraceOptions {
            kernel: String::new(),
            scale: Scale::Smoke,
            config: crate::tracecmd::TraceConfig::Lf,
            konata: None,
            text: None,
            dump_flight_recorder: None,
            cycles: None,
            tid: None,
            kinds: None,
        },
    };
    let mut names = Vec::new();
    let mut all = false;
    let mut command = None;
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let mut value = |what: &str| -> String {
            i += 1;
            match args.get(i) {
                Some(v) if !v.starts_with("--") => v.clone(),
                _ => {
                    eprintln!("error: {arg} expects {what}");
                    std::process::exit(2);
                }
            }
        };
        match arg {
            "list" | "--list" if command.is_none() => command = Some("list"),
            "run" if command.is_none() => command = Some("run"),
            "worker" if command.is_none() => command = Some("worker"),
            "serve" if command.is_none() => command = Some("serve"),
            "submit" if command.is_none() => command = Some("submit"),
            "perf" if command.is_none() => command = Some("perf"),
            "profile" if command.is_none() => command = Some("profile"),
            "trace" if command.is_none() => command = Some("trace"),
            "--reps" => {
                let v = value("a repetition count");
                cli.reps = match v.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("error: --reps expects a positive integer, got {v}");
                        std::process::exit(2);
                    }
                }
            }
            "--label" => cli.label = Some(value("a label")),
            "--warn-regression" => {
                let v = value("a percentage");
                cli.warn_frac = match v.trim_end_matches('%').parse::<f64>() {
                    Ok(p) if p > 0.0 && p < 100.0 => p / 100.0,
                    _ => {
                        eprintln!("error: --warn-regression expects a percentage, got {v}");
                        std::process::exit(2);
                    }
                }
            }
            "--all" => all = true,
            "--scale" => {
                cli.scale = match value("`smoke`, `eval`, or `full`").as_str() {
                    "smoke" => Scale::Smoke,
                    "eval" => Scale::Eval,
                    "full" => Scale::Full,
                    other => {
                        eprintln!("error: --scale expects `smoke`, `eval`, or `full`, got {other}");
                        std::process::exit(2);
                    }
                }
            }
            "--tier" => {
                let v = value("`functional`, `sampled`, or `detailed`");
                cli.tier = match Tier::parse(&v) {
                    Some(t) => t,
                    None => {
                        eprintln!(
                            "error: --tier expects `functional`, `sampled`, or `detailed`, got {v}"
                        );
                        std::process::exit(2);
                    }
                }
            }
            "-j" | "--jobs" => {
                let v = value("a worker count");
                cli.jobs = match v.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("error: -j expects a positive integer, got {v}");
                        std::process::exit(2);
                    }
                }
            }
            "--workers" => {
                let v = value("a worker-process count");
                cli.workers = match v.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("error: --workers expects a positive integer, got {v}");
                        std::process::exit(2);
                    }
                }
            }
            "--worker-id" => {
                let v = value("a worker id");
                cli.worker_id = match v.parse::<u64>() {
                    Ok(n) => n,
                    _ => {
                        eprintln!("error: --worker-id expects an integer, got {v}");
                        std::process::exit(2);
                    }
                }
            }
            "--filter" => cli.filter = Some(value("a kernel-name substring")),
            "--no-cache" => cli.no_cache = true,
            "--cache-dir" => cli.cache_dir = PathBuf::from(value("a directory")),
            "--json" => {
                // The directory operand is optional: `--json` alone means
                // the default results/ tree.
                match args.get(i + 1) {
                    Some(v) if !v.starts_with("--") && !is_scenario_like(v) => {
                        i += 1;
                        cli.json_dir = Some(PathBuf::from(v.clone()));
                    }
                    _ => cli.json_dir = Some(PathBuf::from("results")),
                }
            }
            "--assert-dedup" => cli.assert_dedup = true,
            "--budget-cycles" => {
                let v = value("a cycle count (0 = unlimited)");
                cli.budget_cycles = match v.parse::<u64>() {
                    Ok(n) => Some(n),
                    _ => {
                        eprintln!("error: --budget-cycles expects an integer, got {v}");
                        std::process::exit(2);
                    }
                }
            }
            "--deadline-secs" => {
                let v = value("a duration in seconds");
                cli.deadline_secs = match v.parse::<u64>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => {
                        eprintln!("error: --deadline-secs expects a positive integer, got {v}");
                        std::process::exit(2);
                    }
                }
            }
            "--inject-fault" => {
                let v = value(
                    "a fault spec (panic:<rate> | hang:<fp|rate> | corrupt-cache:<rate> | crash:<rate>)",
                );
                if let Err(e) = cli.faults.parse_spec(&v) {
                    eprintln!("error: --inject-fault: {e}");
                    std::process::exit(2);
                }
                cli.fault_specs.push(v);
            }
            "--crash-after-ms" => {
                let v = value("a duration in milliseconds");
                cli.crash_after_ms = match v.parse::<u64>() {
                    Ok(n) => Some(n),
                    _ => {
                        eprintln!("error: --crash-after-ms expects an integer, got {v}");
                        std::process::exit(2);
                    }
                }
            }
            "--trace-out" => cli.trace_out = Some(PathBuf::from(value("an output path"))),
            "--socket" => cli.socket = Some(PathBuf::from(value("a socket path"))),
            "--config" => {
                cli.trace.config = match value("`base` or `lf`").as_str() {
                    "base" => crate::tracecmd::TraceConfig::Base,
                    "lf" => crate::tracecmd::TraceConfig::Lf,
                    other => {
                        eprintln!("error: --config expects `base` or `lf`, got {other}");
                        std::process::exit(2);
                    }
                }
            }
            "--konata" => cli.trace.konata = Some(PathBuf::from(value("an output path"))),
            "--text" => cli.trace.text = Some(PathBuf::from(value("an output path (or -)"))),
            "--dump-flight-recorder" => {
                cli.trace.dump_flight_recorder = Some(PathBuf::from(value("an output path")))
            }
            "--cycles" => {
                let v = value("a cycle range LO:HI");
                cli.trace.cycles = match crate::tracecmd::parse_cycle_range(&v) {
                    Ok(r) => Some(r),
                    Err(e) => {
                        eprintln!("error: --cycles: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--tid" => {
                let v = value("a threadlet id");
                cli.trace.tid = match v.parse::<usize>() {
                    Ok(n) => Some(n),
                    _ => {
                        eprintln!("error: --tid expects an integer, got {v}");
                        std::process::exit(2);
                    }
                }
            }
            "--kinds" => {
                let v = value("a comma-separated kind list");
                cli.trace.kinds = match crate::tracecmd::parse_kinds(&v) {
                    Ok(k) => Some(k),
                    Err(e) => {
                        eprintln!("error: --kinds: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--resume" => {
                // Like --json, the FILE operand is optional.
                match args.get(i + 1) {
                    Some(v) if !v.starts_with("--") && !is_scenario_like(v) => {
                        i += 1;
                        cli.resume = Some(Some(PathBuf::from(v.clone())));
                    }
                    _ => cli.resume = Some(None),
                }
            }
            name if !name.starts_with('-')
                && (command == Some("run")
                    || command == Some("worker")
                    || command == Some("submit")) =>
            {
                names.push(name.to_string())
            }
            name if !name.starts_with('-')
                && command == Some("trace")
                && cli.trace.kernel.is_empty() =>
            {
                cli.trace.kernel = name.to_string()
            }
            _ => {
                eprintln!("error: unrecognized argument {arg}");
                usage();
            }
        }
        i += 1;
    }
    match command {
        Some("run") => cli.command = Command::Run { names, all },
        Some("worker") => cli.command = Command::Worker { names, all },
        Some("serve") => cli.command = Command::Serve,
        Some("submit") => cli.command = Command::Submit { names, all },
        Some("perf") => cli.command = Command::Perf,
        Some("profile") => cli.command = Command::Profile,
        Some("trace") => {
            if cli.trace.kernel.is_empty() {
                eprintln!("error: `trace` expects a kernel name");
                usage();
            }
            cli.command = Command::Trace;
        }
        Some(_) => cli.command = Command::List,
        None => usage(),
    }
    cli.trace.scale = cli.scale;
    cli
}

/// Whether `v` names a registered scenario (disambiguates the optional
/// `--json [DIR]` operand from a following positional scenario name).
fn is_scenario_like(v: &str) -> bool {
    registry().iter().any(|s| s.name() == v)
}

fn engine_options(cli: &Cli) -> EngineOptions {
    let budget = RunBudget {
        max_cycles: match cli.budget_cycles {
            Some(0) => None,
            Some(n) => Some(n),
            None => Some(DEFAULT_BUDGET_CYCLES),
        },
        deadline: cli.deadline_secs.map(Duration::from_secs),
    };
    let resume_from = cli.resume.as_ref().map(|file| {
        let path = file.clone().unwrap_or_else(|| failures_path(cli));
        // A missing report is a normal resume-after-kill state: the
        // previous campaign may have died before writing failures.json.
        // Resume with an empty set (the cache + journal carry the real
        // recovery state); any other read problem is still fatal.
        if !path.exists() {
            eprintln!(
                "warning: --resume: {} does not exist (campaign killed before writing it?); \
                 resuming with an empty failure set",
                path.display()
            );
            return HashSet::new();
        }
        match read_failures_json(&path) {
            Ok(fps) => {
                eprintln!("resuming: {} failed run(s) recorded in {}", fps.len(), path.display());
                fps
            }
            Err(e) => {
                eprintln!("error: --resume: {e}");
                std::process::exit(2);
            }
        }
    });
    EngineOptions {
        scale: cli.scale,
        tier: cli.tier,
        jobs: cli.jobs,
        filter: cli.filter.clone(),
        disk_cache: if cli.no_cache { None } else { Some(DiskCache::new(cli.cache_dir.clone())) },
        sim_hook: None,
        budget,
        faults: cli.faults.clone(),
        resume_from,
        spans: None,
        poisoned: std::collections::HashMap::new(),
        carried_faults: Default::default(),
        journal_scope: None,
    }
}

/// The default service socket lives next to the claim space it guards.
fn socket_path(cli: &Cli) -> PathBuf {
    cli.socket.clone().unwrap_or_else(|| cli.cache_dir.join("lf-serve.sock"))
}

/// Where this invocation reads and writes its failure report.
fn failures_path(cli: &Cli) -> PathBuf {
    cli.json_dir.clone().unwrap_or_else(|| PathBuf::from("results")).join("failures.json")
}

/// Resolves `run`/`worker` positional names (or `--all`) to scenarios.
fn select_scenarios(names: &[String], all: bool) -> Vec<Box<dyn Scenario>> {
    if all {
        registry()
    } else if names.is_empty() {
        eprintln!("error: `run` expects scenario names or --all");
        usage();
    } else {
        names
            .iter()
            .map(|n| {
                by_name(n).unwrap_or_else(|| {
                    eprintln!("error: unknown scenario {n:?} (see `lf-bench list`)");
                    std::process::exit(2);
                })
            })
            .collect()
    }
}

/// Reconstructs worker argv from the supervisor's own command line. The
/// worker re-derives the identical deterministic plan from these flags —
/// no plan data crosses the process boundary.
fn supervise_config(cli: &Cli, names: &[String], all: bool) -> supervise::SuperviseConfig {
    let mut args: Vec<String> = vec!["worker".into()];
    if all {
        args.push("--all".into());
    } else {
        args.extend(names.iter().cloned());
    }
    args.push("--scale".into());
    args.push(scale_tag(cli.scale).into());
    args.push("--tier".into());
    args.push(cli.tier.tag().into());
    if let Some(f) = &cli.filter {
        args.push("--filter".into());
        args.push(f.clone());
    }
    args.push("--cache-dir".into());
    args.push(cli.cache_dir.display().to_string());
    args.push("-j".into());
    args.push(cli.jobs.to_string());
    if let Some(n) = cli.budget_cycles {
        args.push("--budget-cycles".into());
        args.push(n.to_string());
    }
    if let Some(n) = cli.deadline_secs {
        args.push("--deadline-secs".into());
        args.push(n.to_string());
    }
    for spec in &cli.fault_specs {
        args.push("--inject-fault".into());
        args.push(spec.clone());
    }
    args.push("--workers".into());
    args.push(cli.workers.to_string());
    supervise::SuperviseConfig { workers: cli.workers, worker_args: args }
}

/// Entry point of the `lf-bench` binary.
pub fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse(&args);
    match &cli.command {
        Command::List => list(&cli),
        Command::Perf => {
            let dir = cli.json_dir.clone().unwrap_or_else(|| PathBuf::from("results"));
            crate::perf::run_perf(&crate::perf::PerfOptions {
                scale: cli.scale,
                reps: cli.reps,
                label: cli.label.clone(),
                json_path: Some(dir.join("BENCH_throughput.json")),
                warn_frac: cli.warn_frac,
            });
        }
        Command::Profile => {
            crate::profile::run_profile(&crate::profile::ProfileOptions {
                scale: cli.scale,
                reps: cli.reps,
                json_path: cli.json_dir.as_ref().map(|d| d.join("profile.json")),
            });
        }
        Command::Trace => {
            crate::tracecmd::run_trace(&cli.trace);
        }
        Command::Worker { names, all } => {
            let selected = select_scenarios(names, *all);
            let refs: Vec<&dyn Scenario> = selected.iter().map(|s| s.as_ref()).collect();
            let opts = engine_options(&cli);
            let code = supervise::worker_main(&refs, &opts, cli.worker_id, cli.workers.max(1));
            std::process::exit(code);
        }
        Command::Run { names, all } => {
            let selected = select_scenarios(names, *all);
            let refs: Vec<&dyn Scenario> = selected.iter().map(|s| s.as_ref()).collect();
            // Sweep commit temp files a killed predecessor orphaned next
            // to the artifacts (the engine sweeps the cache directory
            // itself).
            let out_dir = cli.json_dir.clone().unwrap_or_else(|| PathBuf::from("results"));
            let swept = crate::durable::sweep_orphan_tmps(&out_dir);
            if swept > 0 {
                eprintln!("swept {swept} orphaned temp file(s) from {}", out_dir.display());
            }
            // The timer kill point: a detached thread hard-kills the
            // process mid-campaign, wherever the campaign happens to be.
            // Deterministic burn-in for the crash-recovery harness; real
            // kills (OOM, ^C^C, node preemption) land the same way.
            if let Some(ms) = cli.crash_after_ms {
                std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_millis(ms));
                    eprintln!(
                        "injected fault: crash after {ms} ms — aborting the campaign process"
                    );
                    std::process::abort();
                });
            }
            let mut opts = engine_options(&cli);
            let span_log = cli.trace_out.as_ref().map(|_| {
                let log = std::sync::Arc::new(crate::engine::spans::SpanLog::new());
                opts.spans = Some(log.clone());
                log
            });
            let output = if cli.workers > 1 && cli.no_cache {
                // Graceful degradation: the cache directory *is* the
                // multi-process claim space (leases, journal shards, the
                // committed outcomes themselves). Without it there is
                // nothing to coordinate through, so fall back to the
                // single-process scoped-thread pool.
                eprintln!(
                    "warning: --workers {} requires the run cache as its claim space; \
                     --no-cache disables lease/journal coordination — \
                     falling back to in-process threads (-j {})",
                    cli.workers, cli.jobs
                );
                run_scenarios(&refs, &opts)
            } else if cli.workers > 1 {
                let sup = supervise_config(&cli, names, *all);
                match supervise::run_supervised(&refs, &opts, &sup) {
                    Ok(out) => out,
                    Err(code) => std::process::exit(code),
                }
            } else {
                run_scenarios(&refs, &opts)
            };
            let finished = finish_campaign(
                &output,
                refs.len() > 1,
                cli.json_dir.as_deref(),
                &failures_path(&cli),
                scale_tag(cli.scale),
                cli.assert_dedup,
            );
            print!("{}", finished.stdout);
            eprint!("{}", finished.stderr);
            if let (Some(path), Some(log)) = (&cli.trace_out, &span_log) {
                match write_json(&log.to_chrome_json(), path) {
                    Ok(()) => eprintln!("wrote {} (load in Perfetto)", path.display()),
                    Err(e) => {
                        eprintln!("error: failed to write {}: {e}", path.display());
                        std::process::exit(1);
                    }
                }
            }
            if finished.exit != 0 {
                std::process::exit(finished.exit);
            }
        }
        Command::Serve => {
            let code = serve::serve_main(&serve::ServeOptions {
                socket: socket_path(&cli),
                cache_dir: cli.cache_dir.clone(),
                jobs: cli.jobs,
                default_workers: cli.workers,
            });
            std::process::exit(code);
        }
        Command::Submit { names, all } => {
            if names.is_empty() && !*all {
                eprintln!("error: `submit` expects scenario names or --all");
                std::process::exit(2);
            }
            let request = serve::Request {
                names: names.clone(),
                all: *all,
                scale: scale_tag(cli.scale).to_string(),
                tier: cli.tier.tag().to_string(),
                filter: cli.filter.clone(),
                jobs: cli.jobs,
                workers: cli.workers,
                json_dir: cli.json_dir.as_ref().map(|d| d.display().to_string()),
                assert_dedup: cli.assert_dedup,
            };
            std::process::exit(serve::submit_main(&socket_path(&cli), &request));
        }
    }
}

/// Entry point of the historical per-figure shim binaries: runs exactly
/// one scenario with the legacy `--scale <s>` / `--json <path>` surface
/// (plus the shared `-j`/`--filter`/`--no-cache` flags).
pub fn run_single(name: &str) {
    let scenario = by_name(name).unwrap_or_else(|| panic!("scenario {name} is not registered"));
    let scale = crate::scale_from_args();
    let json_path = crate::json_path_from_args();
    let args: Vec<String> = std::env::args().collect();
    let jobs = args
        .iter()
        .position(|a| a == "-j" || a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    let filter = args.iter().position(|a| a == "--filter").and_then(|i| args.get(i + 1)).cloned();
    let no_cache = args.iter().any(|a| a == "--no-cache");
    let opts = EngineOptions {
        scale,
        jobs,
        filter,
        disk_cache: if no_cache { None } else { Some(DiskCache::new("results/cache")) },
        sim_hook: None,
        ..EngineOptions::new(scale)
    };
    let output = run_scenarios(&[scenario.as_ref()], &opts);
    print_output(&output, false);
    if let Some(path) = json_path {
        let s = &output.scenarios[0];
        match write_json(&s.artifact, &path) {
            Ok(()) => println!("\nwrote {}", path.display()),
            Err(e) => {
                eprintln!("error: failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

fn list(cli: &Cli) {
    let suite = lf_workloads::all(cli.scale);
    println!("registered scenarios ({} kernels at scale {}):\n", suite.len(), scale_tag(cli.scale));
    let mut rows = Vec::new();
    let mut total = 0usize;
    for s in registry() {
        let mut planner = crate::engine::planner::Planner::new(&suite);
        s.plan(&mut planner);
        let n = planner.request_count();
        total += n;
        rows.push(vec![s.name().to_string(), n.to_string(), s.title().to_string()]);
    }
    crate::print_table(&["scenario", "runs", "title"], &rows);
    println!("\n{total} total run requests before deduplication");
}

fn print_output(output: &EngineOutput, separators: bool) {
    print!("{}", render_stdout(output, separators));
    eprint!("{}", render_telemetry(output));
}

/// Everything a finished campaign prints, captured as strings so the
/// one-shot `run` path and the resident service emit byte-identical
/// output (the service ships these over the socket instead of printing).
pub(crate) struct FinishedCampaign {
    pub stdout: String,
    pub stderr: String,
    pub exit: i32,
}

/// The shared back half of a campaign: render results, write the failure
/// report and JSON artifacts, and enforce `--assert-dedup`. Both `run`
/// and a served request funnel through here so their observable output
/// cannot drift apart.
pub(crate) fn finish_campaign(
    output: &EngineOutput,
    separators: bool,
    json_dir: Option<&Path>,
    failures: &Path,
    scale_tag: &str,
    assert_dedup: bool,
) -> FinishedCampaign {
    let mut stdout = render_stdout(output, separators);
    let mut stderr = render_telemetry(output);
    // The failure report is written on every run — empty on a clean
    // campaign — so a follow-up --resume always has a current file to
    // read.
    match write_failures_json(failures, &output.failures, scale_tag) {
        Ok(()) => stderr.push_str(&format!("wrote {}\n", failures.display())),
        Err(e) => {
            stderr.push_str(&format!("error: failed to write {}: {e}\n", failures.display()));
            return FinishedCampaign { stdout, stderr, exit: 1 };
        }
    }
    if let Some(dir) = json_dir {
        if let Err(msg) = write_artifacts(output, dir, &mut stdout) {
            stderr.push_str(&msg);
            stderr.push('\n');
            return FinishedCampaign { stdout, stderr, exit: 1 };
        }
    }
    let mut exit = 0;
    if assert_dedup && output.report.unique >= output.report.requests {
        stderr.push_str(&format!(
            "error: --assert-dedup: no deduplication occurred ({} requests, {} unique)\n",
            output.report.requests, output.report.unique
        ));
        exit = 1;
    }
    FinishedCampaign { stdout, stderr, exit }
}

fn render_stdout(output: &EngineOutput, separators: bool) -> String {
    let mut out = String::new();
    for (i, s) in output.scenarios.iter().enumerate() {
        if separators {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&format!("━━━ {} ━━━\n\n", s.name));
        }
        out.push_str(&s.text);
    }
    out
}

// Telemetry goes to stderr: stdout stays byte-identical across runs
// (cache hits and wall-clock vary) and redirecting it reproduces the
// seed experiment tables exactly.
fn render_telemetry(output: &EngineOutput) -> String {
    let mut err = String::new();
    let r = &output.report;
    err.push_str(&format!(
        "\nplanner: {} requests → {} unique ({} deduplicated); {} from cache, {} simulated; {} ms on {} jobs\n",
        r.requests,
        r.unique,
        r.requests - r.unique,
        r.disk_hits,
        r.simulated,
        r.execute_wall_ms,
        r.jobs
    ));
    let f = &r.faults;
    if !output.failures.is_empty() || f.cache_corrupt > 0 || f.cache_schema_mismatch > 0 {
        err.push_str(&format!(
            "faults: {} failed run(s) ({} panicked, {} over budget, {} sim errors, {} prep, {} render, {} poisoned); cache: {} corrupt ({} quarantined), {} schema-stale; {} resumed\n",
            output.failures.len(),
            f.panicked,
            f.budget_exceeded,
            f.sim_errors,
            f.prep_failures,
            f.render_failures,
            f.poisoned,
            f.cache_corrupt,
            f.quarantined,
            f.cache_schema_mismatch,
            f.resumed
        ));
    }
    // The end-of-campaign summary is always printed: every campaign
    // states its hygiene counters (swept debris, quarantines, retries)
    // even when they are zero, so scripts can grep one stable line.
    err.push_str(&format!(
        "campaign: swept {} temp file(s); {} corrupt entr{} quarantined; {} run(s) resumed; {} lease reclaim(s); {} worker respawn(s) ({} ms backoff)\n",
        f.tmp_swept,
        f.quarantined,
        if f.quarantined == 1 { "y" } else { "ies" },
        f.resumed,
        f.lease_reclaims,
        f.worker_respawns,
        f.backoff_ms
    ));
    if f.worker_deaths > 0 || f.poisoned > 0 {
        err.push_str(&format!(
            "supervisor: {} worker death(s) absorbed; {} poisonous run(s) quarantined\n",
            f.worker_deaths, f.poisoned
        ));
    }
    if f.tmp_swept > 0 || f.journal_torn_bytes > 0 {
        err.push_str(&format!(
            "recovery: swept {} orphaned temp file(s); truncated {} torn journal byte(s)\n",
            f.tmp_swept, f.journal_torn_bytes
        ));
    }
    if f.journal_committed + f.journal_in_flight + f.journal_never_started > 0 {
        err.push_str(&format!(
            "journal: of {} planned run(s), {} committed, {} in flight at the kill, {} never started\n",
            f.journal_committed + f.journal_in_flight + f.journal_never_started,
            f.journal_committed,
            f.journal_in_flight,
            f.journal_never_started
        ));
    }
    err
}

/// Writes the per-scenario artifacts plus planner/harness telemetry,
/// appending the `wrote <path>` confirmations to `stdout` (they are part
/// of the campaign's byte-compared output). Stops at the first failure.
fn write_artifacts(output: &EngineOutput, dir: &Path, stdout: &mut String) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("error: cannot create {}: {e}", dir.display()))?;
    for s in &output.scenarios {
        let path = dir.join(format!("{}.json", s.name));
        write_json(&s.artifact, &path)
            .map_err(|e| format!("error: failed to write {}: {e}", path.display()))?;
        stdout.push_str(&format!("wrote {}\n", path.display()));
    }
    let planner_path = dir.join("planner.json");
    write_json(&output.report.to_json(), &planner_path)
        .map_err(|e| format!("error: failed to write {}: {e}", planner_path.display()))?;
    stdout.push_str(&format!("wrote {}\n", planner_path.display()));
    let harness_path = dir.join("BENCH_harness.json");
    append_harness_entry(&harness_path, output)
        .map_err(|e| format!("error: failed to update {}: {e}", harness_path.display()))?;
    stdout.push_str(&format!("wrote {}\n", harness_path.display()));
    Ok(())
}

fn write_json(doc: &Json, path: &Path) -> std::io::Result<()> {
    crate::durable::atomic_write_json(doc, path)
}

/// Appends this invocation's planner telemetry to the wall-clock
/// trajectory file (one entry per engine run; CI tracks the history as an
/// artifact).
fn append_harness_entry(path: &Path, output: &EngineOutput) -> std::io::Result<()> {
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .filter(|d| d.get("runs").and_then(Json::as_arr).is_some())
        .unwrap_or_else(|| {
            let mut d = Json::obj();
            d.set("schema_version", crate::artifact::SCHEMA_VERSION);
            d.set("runs", Json::Arr(Vec::new()));
            d
        });
    let mut runs: Vec<Json> =
        doc.get("runs").and_then(Json::as_arr).map(<[Json]>::to_vec).unwrap_or_default();
    let mut entry = output.report.to_json();
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    entry.set("unix_time", unix_secs);
    entry.set("scenarios", output.scenarios.len() as u64);
    runs.push(entry);
    doc.set("runs", Json::Arr(runs));
    write_json(&doc, path)
}
