//! Campaign spans: structured wall-clock begin/end intervals across the
//! engine's phases (plan → prepare → cache → simulate → render) and every
//! individual simulation, exported as Chrome trace-event JSON.
//!
//! The engine always records spans — one mutex push per phase or run is
//! noise next to a millisecond-scale simulation — because the per-run
//! durations feed the planner telemetry's timing summary on every
//! campaign. The full span log is only *exported* when the user asks
//! (`lf-bench run --trace-out trace.json`); the file loads directly in
//! Perfetto (ui.perfetto.dev) or `chrome://tracing`.
//!
//! Wall-clock data never touches scenario artifacts or the run cache:
//! spans live in [`crate::engine::PlannerReport`] and the side-channel
//! trace file, both of which are already run-to-run varying.

use lf_stats::Json;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

/// One completed span: a named wall-clock interval on one worker thread.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Span name (phase name, scenario name, or kernel name).
    pub name: String,
    /// Category: `phase`, `plan`, `prepare`, `run`, or `render`.
    pub cat: &'static str,
    /// Start, in microseconds since the log's origin.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Small integer identifying the recording thread (0 = first seen,
    /// usually the engine's own thread).
    pub tid: u64,
}

#[derive(Default)]
struct Inner {
    events: Vec<SpanEvent>,
    threads: HashMap<ThreadId, u64>,
}

/// A thread-safe log of campaign spans, shared by the engine and its
/// worker pool. Create once per invocation, wrap in an [`Arc`], and open
/// spans with [`SpanLog::span`]; the RAII guard records the interval when
/// dropped.
pub struct SpanLog {
    origin: Instant,
    /// The `pid` field of exported trace events. One-shot campaigns use
    /// the default `1`; the resident service tags each request's log
    /// with the request id, so traces from concurrent requests stay
    /// attributable (Perfetto renders each pid as its own process row).
    request_id: u64,
    inner: Mutex<Inner>,
}

impl Default for SpanLog {
    fn default() -> SpanLog {
        SpanLog::new()
    }
}

impl SpanLog {
    /// Creates an empty log; timestamps are relative to this moment.
    pub fn new() -> SpanLog {
        SpanLog { origin: Instant::now(), request_id: 1, inner: Mutex::new(Inner::default()) }
    }

    /// An empty log whose exported events carry `request_id` as their
    /// `pid` — one per service request.
    pub fn for_request(request_id: u64) -> SpanLog {
        SpanLog { request_id, ..SpanLog::new() }
    }

    /// The request identity this log was created for (1 = one-shot).
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// Opens a span; the returned guard records it on drop. Nest freely —
    /// Perfetto stacks overlapping spans of one thread by start time.
    pub fn span(self: &Arc<Self>, cat: &'static str, name: impl Into<String>) -> SpanGuard {
        SpanGuard { log: self.clone(), cat, name: name.into(), start: Instant::now() }
    }

    fn record(&self, cat: &'static str, name: String, start: Instant, end: Instant) {
        let ts_us = start.duration_since(self.origin).as_micros() as u64;
        let dur_us = end.duration_since(start).as_micros() as u64;
        let thread = std::thread::current().id();
        let mut inner = self.inner.lock().expect("span log poisoned");
        let next = inner.threads.len() as u64;
        let tid = *inner.threads.entry(thread).or_insert(next);
        inner.events.push(SpanEvent { name, cat, ts_us, dur_us, tid });
    }

    /// Snapshot of every recorded span, sorted by start time (then name,
    /// for a stable order among simultaneous starts).
    pub fn events(&self) -> Vec<SpanEvent> {
        let mut evs = self.inner.lock().expect("span log poisoned").events.clone();
        evs.sort_by(|a, b| a.ts_us.cmp(&b.ts_us).then_with(|| a.name.cmp(&b.name)));
        evs
    }

    /// Total duration (µs) per phase-category span name, in first-seen
    /// order — the latency breakdown behind the service's per-request
    /// `phases` record (and its render-dominance assertion).
    pub fn phase_totals_us(&self) -> Vec<(String, u64)> {
        let inner = self.inner.lock().expect("span log poisoned");
        let mut totals: Vec<(String, u64)> = Vec::new();
        for e in inner.events.iter().filter(|e| e.cat == "phase") {
            match totals.iter_mut().find(|(name, _)| *name == e.name) {
                Some((_, total)) => *total += e.dur_us,
                None => totals.push((e.name.clone(), e.dur_us)),
            }
        }
        totals
    }

    /// The durations (µs) of every span in category `cat`, in recording
    /// order — the raw series behind the planner's timing summary.
    pub fn durations_us(&self, cat: &str) -> Vec<u64> {
        self.inner
            .lock()
            .expect("span log poisoned")
            .events
            .iter()
            .filter(|e| e.cat == cat)
            .map(|e| e.dur_us)
            .collect()
    }

    /// Renders the log as Chrome trace-event JSON (the `traceEvents`
    /// array format): one complete (`ph: "X"`) event per span, loadable
    /// in Perfetto and `chrome://tracing` as-is.
    pub fn to_chrome_json(&self) -> Json {
        let events: Vec<Json> = self
            .events()
            .iter()
            .map(|e| {
                let mut j = Json::obj();
                j.set("name", e.name.as_str());
                j.set("cat", e.cat);
                j.set("ph", "X");
                j.set("ts", e.ts_us);
                j.set("dur", e.dur_us);
                j.set("pid", self.request_id);
                j.set("tid", e.tid);
                j
            })
            .collect();
        let mut doc = Json::obj();
        doc.set("traceEvents", Json::Arr(events));
        doc.set("displayTimeUnit", "ms");
        doc
    }
}

/// RAII guard for one open span; records the interval into its log when
/// dropped. Hold it for exactly the work the span should cover.
pub struct SpanGuard {
    log: Arc<SpanLog>,
    cat: &'static str,
    name: String,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.log.record(self.cat, std::mem::take(&mut self.name), self.start, Instant::now());
    }
}

/// Five-number summary of a duration series, embedded in the planner
/// telemetry (`run_wall_us`) so every campaign records how its per-run
/// wall times were distributed without shipping the raw series.
#[derive(Debug, Clone, Default)]
pub struct DurationSummary {
    /// Number of samples.
    pub count: usize,
    /// Mean duration, µs.
    pub mean_us: u64,
    /// Median, µs.
    pub p50_us: u64,
    /// 90th percentile, µs.
    pub p90_us: u64,
    /// Maximum, µs.
    pub max_us: u64,
}

impl DurationSummary {
    /// Summarizes `durations` (empty input yields the all-zero summary).
    pub fn from_durations(durations: &[u64]) -> DurationSummary {
        if durations.is_empty() {
            return DurationSummary::default();
        }
        let mut sorted = durations.to_vec();
        sorted.sort_unstable();
        let pct = |p: f64| -> u64 {
            let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
            sorted[idx]
        };
        DurationSummary {
            count: sorted.len(),
            mean_us: sorted.iter().sum::<u64>() / sorted.len() as u64,
            p50_us: pct(0.50),
            p90_us: pct(0.90),
            max_us: *sorted.last().expect("non-empty"),
        }
    }

    /// The planner-telemetry JSON object.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.set("count", self.count as u64);
        j.set("mean_us", self.mean_us);
        j.set("p50_us", self.p50_us);
        j.set("p90_us", self.p90_us);
        j.set("max_us", self.max_us);
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_order() {
        let log = Arc::new(SpanLog::new());
        {
            let _outer = log.span("phase", "simulate");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = log.span("run", "stencil_blur");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let evs = log.events();
        assert_eq!(evs.len(), 2);
        // Sorted by start: the outer phase opened first.
        let (outer, inner) = (&evs[0], &evs[1]);
        assert_eq!(outer.name, "simulate");
        assert_eq!(inner.name, "stencil_blur");
        // The inner span lies within the outer interval.
        assert!(inner.ts_us >= outer.ts_us, "inner starts after outer");
        assert!(
            inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us,
            "inner ends before outer"
        );
        assert_eq!(outer.tid, inner.tid, "same thread");
    }

    #[test]
    fn spans_from_worker_threads_get_distinct_tids() {
        let log = Arc::new(SpanLog::new());
        let _main = log.span("phase", "simulate");
        let l2 = log.clone();
        std::thread::spawn(move || {
            let _s = l2.span("run", "worker_span");
        })
        .join()
        .unwrap();
        drop(_main);
        let evs = log.events();
        assert_eq!(evs.len(), 2);
        let tids: std::collections::HashSet<u64> = evs.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 2, "two threads, two tids");
    }

    #[test]
    fn chrome_json_schema() {
        let log = Arc::new(SpanLog::new());
        {
            let _s = log.span("run", "hash_lookup");
        }
        let doc = log.to_chrome_json();
        let text = doc.to_string_pretty();
        let back = Json::parse(&text).expect("trace JSON parses back");
        assert_eq!(back.get("displayTimeUnit").and_then(Json::as_str), Some("ms"));
        let evs = back.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
        assert_eq!(evs.len(), 1);
        let e = &evs[0];
        assert_eq!(e.get("name").and_then(Json::as_str), Some("hash_lookup"));
        assert_eq!(e.get("cat").and_then(Json::as_str), Some("run"));
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
        for key in ["ts", "dur", "pid", "tid"] {
            assert!(e.get(key).and_then(Json::as_u64).is_some(), "numeric field {key}");
        }
    }

    #[test]
    fn request_identity_tags_exported_events() {
        let log = Arc::new(SpanLog::for_request(42));
        {
            let _s = log.span("phase", "plan");
        }
        assert_eq!(log.request_id(), 42);
        let doc = log.to_chrome_json();
        let evs = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(evs[0].get("pid").and_then(Json::as_u64), Some(42));
    }

    #[test]
    fn phase_totals_sum_by_name_in_first_seen_order() {
        let log = Arc::new(SpanLog::new());
        {
            let _a = log.span("phase", "plan");
        }
        {
            let _b = log.span("phase", "render");
        }
        {
            let _c = log.span("phase", "plan");
        }
        {
            let _d = log.span("run", "not_a_phase");
        }
        let totals = log.phase_totals_us();
        let names: Vec<&str> = totals.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["plan", "render"], "per-name totals, first-seen order");
    }

    #[test]
    fn duration_summary_percentiles() {
        let s = DurationSummary::from_durations(&[10, 20, 30, 40, 100]);
        assert_eq!(s.count, 5);
        assert_eq!(s.mean_us, 40);
        assert_eq!(s.p50_us, 30);
        assert_eq!(s.p90_us, 100);
        assert_eq!(s.max_us, 100);
        assert_eq!(DurationSummary::from_durations(&[]).count, 0);
    }

    #[test]
    fn durations_filter_by_category() {
        let log = Arc::new(SpanLog::new());
        {
            let _a = log.span("run", "a");
            let _b = log.span("phase", "b");
        }
        assert_eq!(log.durations_us("run").len(), 1);
        assert_eq!(log.durations_us("phase").len(), 1);
        assert_eq!(log.durations_us("render").len(), 0);
    }
}
