//! Lease-based claims over the shared run cache.
//!
//! When a campaign is sharded across worker *processes*, the workers have
//! no shared memory — the only coordination substrate they share is the
//! cache directory. Each unique fingerprint is claimed by creating
//! `<cache>/leases/<fp>.lease` with `O_CREAT|O_EXCL`
//! ([`std::fs::File::create_new`]), which the filesystem guarantees to
//! succeed for exactly one claimant. The file body carries holder
//! metadata (pid, worker id, timestamps) as JSON; the file **mtime** is
//! the heartbeat. Content is advisory — a reader racing a rewrite may see
//! a torn body, and must still make a safe decision from metadata alone.
//!
//! Reclamation has two triggers:
//!
//! - *dead holder*: the body parses and `kill(pid, 0)` says the holder is
//!   gone — reclaim immediately, no need to wait out the expiry;
//! - *stale heartbeat*: the mtime is older than the expiry window — the
//!   holder is stalled (or its heartbeat thread is wedged), so the claim
//!   is forfeit even if the process is technically alive.
//!
//! Stealing is itself racy (N workers may all observe the same stale
//! lease), so the steal is an atomic `rename` to a unique graveyard name:
//! the filesystem picks exactly one winner, losers see `NotFound` and
//! retry the claim loop. A stolen claim can mean *duplicate execution* if
//! the stalled holder later finishes — that is benign by design: runs are
//! deterministic and cache stores are idempotent atomic renames, so both
//! executions publish identical bytes.

use crate::durable;
use crate::engine::signals;
use lf_stats::Json;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

/// Lease file suffix inside the leases directory.
pub const LEASE_SUFFIX: &str = ".lease";

/// Default heartbeat-expiry window. A lease whose mtime is older than
/// this is considered abandoned. Override with `LF_LEASE_EXPIRY_MS`.
pub const DEFAULT_EXPIRY_MS: u64 = 5_000;

/// The outcome of one claim attempt.
#[derive(Debug)]
pub enum Claim {
    /// This caller now holds the lease.
    Acquired(Lease),
    /// Someone else holds a live lease; `holder` is the pid recorded in
    /// the lease body if it was readable.
    Held {
        /// Heartbeat age of the competing lease at probe time. `None`
        /// when the age was unobtainable (future-dated mtime from clock
        /// skew) — the lease looked live for some *other* reason.
        age: Option<Duration>,
        /// Holder pid, when the lease body parsed cleanly.
        holder: Option<u32>,
    },
    /// The retry budget ran out without either acquiring the lease or
    /// observing a live competitor: every round found a reclaimable
    /// lease, stole it, and lost the re-create race (or the probe kept
    /// missing a vanishing file). Distinct from [`Claim::Held`] so the
    /// caller can log the churn and back off instead of treating it as
    /// a freshly heartbeated lease.
    Contended {
        /// The last observed heartbeat age, if any probe succeeded.
        age: Option<Duration>,
        /// The last observed holder pid, if any body parsed.
        holder: Option<u32>,
    },
}

/// A held lease. Dropping it releases best-effort; call
/// [`Lease::release`] for the deliberate path.
#[derive(Debug)]
pub struct Lease {
    path: PathBuf,
    fingerprint: u64,
    released: bool,
}

impl Lease {
    /// The fingerprint this lease covers.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Deliberately releases the lease (removes the lease file).
    pub fn release(mut self) {
        self.released = true;
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        if !self.released {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// Handle on a campaign's lease directory.
#[derive(Debug, Clone)]
pub struct LeaseDir {
    dir: PathBuf,
    expiry: Duration,
    pid: u32,
    worker: u64,
    /// Monotonic per-process counter making graveyard names unique.
    steal_seq: std::sync::Arc<std::sync::atomic::AtomicU64>,
    /// Probes whose heartbeat age was unobtainable (future-dated mtime
    /// from clock skew or a backwards clock step). Surfaced in planner
    /// telemetry so chronic skew on a shared filesystem is visible.
    skew_events: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl LeaseDir {
    /// Opens (creating if needed) the lease directory with the given
    /// expiry window and claimant identity.
    pub fn open(dir: &Path, expiry: Duration, worker: u64) -> io::Result<LeaseDir> {
        std::fs::create_dir_all(dir)?;
        Ok(LeaseDir {
            dir: dir.to_path_buf(),
            expiry,
            pid: std::process::id(),
            worker,
            steal_seq: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)),
            skew_events: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)),
        })
    }

    /// How many lease probes found an unobtainable heartbeat age (clock
    /// skew) through this handle and its clones.
    pub fn clock_skew_events(&self) -> u64 {
        self.skew_events.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn note_skew(&self) {
        self.skew_events.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// The expiry window configured for this directory (from
    /// `LF_LEASE_EXPIRY_MS` or [`DEFAULT_EXPIRY_MS`]).
    pub fn expiry(&self) -> Duration {
        self.expiry
    }

    /// The expiry window read from the environment.
    pub fn env_expiry() -> Duration {
        let ms = std::env::var("LF_LEASE_EXPIRY_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(DEFAULT_EXPIRY_MS);
        Duration::from_millis(ms)
    }

    fn lease_path(&self, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("{fingerprint:016x}{LEASE_SUFFIX}"))
    }

    fn body(&self, fingerprint: u64) -> String {
        let now = unix_ms();
        let mut obj = Json::obj();
        obj.set("fingerprint", Json::Str(format!("{fingerprint:016x}")));
        obj.set("pid", Json::from(self.pid as u64));
        obj.set("worker", Json::from(self.worker));
        obj.set("heartbeat_unix_ms", Json::from(now));
        obj.to_string_pretty()
    }

    /// Attempts to claim `fingerprint`. Reclaims dead-holder and
    /// expired leases in-line (bounded retries), so a single call is the
    /// whole claim protocol from the caller's point of view. Returns
    /// [`Claim::Held`] when a live competitor holds the lease and
    /// [`Claim::Contended`] when the retry budget runs out.
    pub fn try_claim(&self, fingerprint: u64) -> io::Result<Claim> {
        // One initial attempt plus a bounded number of steal-and-retry
        // rounds; an unbounded loop could spin forever against a
        // pathological filesystem.
        self.try_claim_rounds(fingerprint, 4)
    }

    pub(crate) fn try_claim_rounds(&self, fingerprint: u64, rounds: usize) -> io::Result<Claim> {
        let path = self.lease_path(fingerprint);
        // Last probe observation, carried into Contended so the caller
        // sees what the claim loop saw rather than a blank outcome.
        let mut last: (Option<Duration>, Option<u32>) = (None, None);
        for _ in 0..rounds {
            match std::fs::File::create_new(&path) {
                Ok(mut file) => {
                    use std::io::Write;
                    let _ = file.write_all(self.body(fingerprint).as_bytes());
                    let _ = file.sync_data();
                    return Ok(Claim::Acquired(Lease {
                        path: path.clone(),
                        fingerprint,
                        released: false,
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let (age, holder) = match probe(&path) {
                        Some(p) => p,
                        // Vanished between create and probe: retry.
                        None => continue,
                    };
                    last = (age, holder);
                    let holder_dead = holder.is_some_and(|pid| !signals::pid_alive(pid));
                    match age {
                        // A readable, in-window heartbeat from a live
                        // holder is the only thing that defers us.
                        Some(age) if age <= self.expiry && !holder_dead => {
                            return Ok(Claim::Held { age: Some(age), holder });
                        }
                        // Unobtainable age (future-dated mtime from
                        // clock skew): the heartbeat cannot certify
                        // freshness, so fall through to the reclaim
                        // path exactly as an expired lease would —
                        // treating it as fresh would make a stalled
                        // holder with a live-looking pid immortal.
                        None => self.note_skew(),
                        _ => {}
                    }
                    // Stale or dead-holder lease: steal via atomic rename —
                    // exactly one stealer wins the rename, the rest retry.
                    let seq = self.steal_seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let grave =
                        self.dir.join(format!("{fingerprint:016x}.reclaim.{}.{seq}", self.pid));
                    match std::fs::rename(&path, &grave) {
                        Ok(()) => {
                            let _ = std::fs::remove_file(&grave);
                        }
                        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                        Err(e) => return Err(e),
                    }
                    // Loop: attempt the exclusive create again.
                }
                Err(e) => return Err(e),
            }
        }
        // Retry budget exhausted without acquiring or observing a live
        // holder — report the churn distinctly from Held, carrying the
        // last observation, so the caller can log and back off.
        Ok(Claim::Contended { age: last.0, holder: last.1 })
    }

    /// Refreshes the heartbeat on a lease this process holds: rewrites
    /// the body (bumping both the recorded timestamp and the file mtime).
    pub fn heartbeat(&self, lease: &Lease) -> io::Result<()> {
        let mut file = std::fs::File::create(&lease.path)?;
        use std::io::Write;
        file.write_all(self.body(lease.fingerprint).as_bytes())?;
        file.sync_data()
    }

    /// Fingerprints of all leases currently held by `pid` (used by the
    /// supervisor to attribute a dead worker's in-flight runs).
    pub fn held_by(&self, pid: u32) -> Vec<u64> {
        let mut held = Vec::new();
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return held;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(hex) = name.strip_suffix(LEASE_SUFFIX) else {
                continue;
            };
            let Ok(fp) = u64::from_str_radix(hex, 16) else {
                continue;
            };
            if let Some((age, Some(holder))) = probe(&entry.path()) {
                if age.is_none() {
                    self.note_skew();
                }
                if holder == pid {
                    held.push(fp);
                }
            }
        }
        held.sort_unstable();
        held
    }

    /// Removes the lease file for `fingerprint` regardless of holder
    /// (supervisor-side cleanup after a worker death).
    pub fn force_release(&self, fingerprint: u64) {
        let _ = std::fs::remove_file(self.lease_path(fingerprint));
    }

    /// Removes every lease and reclaim-graveyard file, returning how many
    /// lease files were swept (campaign setup + teardown; also counts
    /// leaked leases at exit, which must be zero in a clean drain).
    pub fn sweep(&self) -> usize {
        let mut swept = 0;
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let is_lease = name.ends_with(LEASE_SUFFIX);
            let is_grave = name.contains(".reclaim.");
            if is_lease || is_grave {
                let removed = std::fs::remove_file(entry.path()).is_ok();
                if removed && is_lease {
                    swept += 1;
                }
            }
        }
        swept
    }

    /// Number of lease files currently present.
    pub fn count(&self) -> usize {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        entries
            .flatten()
            .filter(|e| e.file_name().to_str().is_some_and(|n| n.ends_with(LEASE_SUFFIX)))
            .count()
    }
}

/// Probes a lease file: heartbeat age (from mtime) plus the holder pid if
/// the body parses. `None` when the file no longer exists. A torn or
/// unparseable body still yields the mtime-based age — liveness never
/// depends on content. The age itself is `None` when it is unobtainable
/// (mtime unreadable, or in the future because of clock skew): callers
/// must treat that as *unknown*, never as fresh — mapping it to zero
/// would make a stalled holder with a live-looking pid unreclaimable.
fn probe(path: &Path) -> Option<(Option<Duration>, Option<u32>)> {
    let meta = std::fs::metadata(path).ok()?;
    let age = meta.modified().ok().and_then(|m| SystemTime::now().duration_since(m).ok());
    let holder = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|json| json.get("pid").and_then(Json::as_u64))
        .map(|pid| pid as u32);
    Some((age, holder))
}

/// Sentinel heartbeat timestamp recorded when the wall clock reads
/// pre-epoch. `u64::MAX` sorts *after* every real millisecond stamp, so
/// a journal-shard merge keyed on the timestamp stays stably ordered
/// (the broken-clock records group together at the end) instead of
/// silently interleaving as epoch-zero records at the front.
pub const UNIX_MS_UNKNOWN: u64 = u64::MAX;

pub(crate) fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(UNIX_MS_UNKNOWN)
}

/// Sweeps orphaned durable-write temp files from the lease directory's
/// parent cache (delegates to [`durable::sweep_orphan_tmps`]).
pub fn sweep_cache_tmps(cache_dir: &Path) -> usize {
    durable::sweep_orphan_tmps(cache_dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lf-bench-lease-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn exclusive_claim_and_release() {
        let dir = scratch_dir("exclusive");
        let leases = LeaseDir::open(&dir, Duration::from_secs(60), 0).unwrap();
        let lease = match leases.try_claim(42).unwrap() {
            Claim::Acquired(l) => l,
            other => panic!("fresh claim must acquire, got {other:?}"),
        };
        // A second claim against a live lease is refused and names us.
        match leases.try_claim(42).unwrap() {
            Claim::Held { holder, .. } => assert_eq!(holder, Some(std::process::id())),
            other => panic!("double claim must be refused, got {other:?}"),
        }
        lease.release();
        assert!(matches!(leases.try_claim(42).unwrap(), Claim::Acquired(_)));
    }

    #[test]
    fn racing_claimants_elect_exactly_one_winner() {
        let dir = scratch_dir("race");
        let wins = AtomicUsize::new(0);
        let held = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for w in 0..8u64 {
                let dir = dir.clone();
                let wins = &wins;
                let held = &held;
                scope.spawn(move || {
                    let leases = LeaseDir::open(&dir, Duration::from_secs(60), w).unwrap();
                    match leases.try_claim(7).unwrap() {
                        Claim::Acquired(lease) => {
                            wins.fetch_add(1, Ordering::SeqCst);
                            // Hold the lease for the duration of the race.
                            std::thread::sleep(Duration::from_millis(50));
                            lease.release();
                        }
                        Claim::Held { .. } => {
                            held.fetch_add(1, Ordering::SeqCst);
                        }
                        Claim::Contended { .. } => {}
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::SeqCst), 1, "exactly one racer acquires");
        assert_eq!(held.load(Ordering::SeqCst), 7, "the rest observe Held");
    }

    #[test]
    fn dead_holder_is_reclaimed_without_waiting_for_expiry() {
        let dir = scratch_dir("dead-holder");
        let leases = LeaseDir::open(&dir, Duration::from_secs(3600), 0).unwrap();
        // Forge a lease held by a pid that cannot exist (pid_max on Linux
        // defaults to < 4 million; u32::MAX - 7 is safely beyond it).
        std::fs::create_dir_all(&dir).unwrap();
        let mut body = Json::obj();
        body.set("fingerprint", Json::Str(format!("{:016x}", 9u64)));
        body.set("pid", Json::from(u64::from(u32::MAX - 7)));
        std::fs::write(dir.join(format!("{:016x}.lease", 9u64)), body.to_string_pretty()).unwrap();

        // Expiry is an hour away, but the dead holder lets us reclaim now.
        match leases.try_claim(9).unwrap() {
            Claim::Acquired(lease) => lease.release(),
            other => panic!("dead-holder lease must be reclaimed immediately, got {other:?}"),
        }
    }

    #[test]
    fn stalled_heartbeat_is_reclaimed_after_expiry_even_if_holder_lives() {
        let dir = scratch_dir("stall");
        // Our own (very alive) pid holds the lease, but the heartbeat
        // stops: after the expiry window the claim is forfeit anyway.
        let holder = LeaseDir::open(&dir, Duration::from_millis(80), 0).unwrap();
        let lease = match holder.try_claim(11).unwrap() {
            Claim::Acquired(l) => l,
            other => panic!("fresh claim must acquire, got {other:?}"),
        };

        let rival = LeaseDir::open(&dir, Duration::from_millis(80), 1).unwrap();
        match rival.try_claim(11).unwrap() {
            Claim::Held { holder, .. } => assert_eq!(holder, Some(std::process::id())),
            other => panic!("live heartbeat must hold off the rival, got {other:?}"),
        }

        std::thread::sleep(Duration::from_millis(160));
        match rival.try_claim(11).unwrap() {
            Claim::Acquired(stolen) => stolen.release(),
            other => panic!("stalled lease must be reclaimed after expiry, got {other:?}"),
        }
        // The original holder's handle now points at a gone file; dropping
        // it must not disturb anything.
        drop(lease);
    }

    #[test]
    fn heartbeat_keeps_a_slow_run_alive() {
        let dir = scratch_dir("heartbeat");
        let holder = LeaseDir::open(&dir, Duration::from_millis(120), 0).unwrap();
        let lease = match holder.try_claim(13).unwrap() {
            Claim::Acquired(l) => l,
            other => panic!("fresh claim must acquire, got {other:?}"),
        };
        let rival = LeaseDir::open(&dir, Duration::from_millis(120), 1).unwrap();
        // Heartbeat through 3 expiry windows; the rival never gets in.
        for _ in 0..6 {
            std::thread::sleep(Duration::from_millis(60));
            holder.heartbeat(&lease).unwrap();
            assert!(
                matches!(rival.try_claim(13).unwrap(), Claim::Held { .. }),
                "heartbeats must keep the lease live past the expiry window"
            );
        }
        lease.release();
    }

    #[test]
    fn sweep_clears_leases_and_graveyards() {
        let dir = scratch_dir("sweep");
        let leases = LeaseDir::open(&dir, Duration::from_secs(60), 0).unwrap();
        let a = match leases.try_claim(1).unwrap() {
            Claim::Acquired(l) => l,
            _ => panic!(),
        };
        let b = match leases.try_claim(2).unwrap() {
            Claim::Acquired(l) => l,
            _ => panic!(),
        };
        std::fs::write(dir.join("0000000000000003.reclaim.1.0"), b"x").unwrap();
        assert_eq!(leases.count(), 2);
        assert_eq!(leases.sweep(), 2);
        assert_eq!(leases.count(), 0);
        assert!(!dir.join("0000000000000003.reclaim.1.0").exists());
        // The held handles now point at removed files; drops are no-ops.
        drop(a);
        drop(b);
    }

    #[test]
    fn future_dated_mtime_does_not_make_a_lease_immortal() {
        let dir = scratch_dir("clock-skew");
        // Forge a lease "held" by our own (very alive) pid, then push its
        // mtime an hour into the future, as a skewed NFS client or a
        // backwards clock step would. Under the old ZERO-age fallback
        // this lease looked freshly heartbeated forever.
        std::fs::create_dir_all(&dir).unwrap();
        let mut body = Json::obj();
        body.set("fingerprint", Json::Str(format!("{:016x}", 17u64)));
        body.set("pid", Json::from(u64::from(std::process::id())));
        let path = dir.join(format!("{:016x}.lease", 17u64));
        std::fs::write(&path, body.to_string_pretty()).unwrap();
        let file = std::fs::File::options().write(true).open(&path).unwrap();
        file.set_modified(SystemTime::now() + Duration::from_secs(3600)).unwrap();
        drop(file);

        let rival = LeaseDir::open(&dir, Duration::from_millis(50), 1).unwrap();
        match rival.try_claim(17).unwrap() {
            Claim::Acquired(stolen) => stolen.release(),
            other => panic!("unknown-age lease must be reclaimable, got {other:?}"),
        }
        assert!(
            rival.clock_skew_events() > 0,
            "the unobtainable age must be counted as a skew event"
        );
    }

    #[test]
    fn exhausted_claim_reports_contended_with_last_observation() {
        let dir = scratch_dir("contended");
        let leases = LeaseDir::open(&dir, Duration::from_secs(3600), 0).unwrap();
        // Forge a dead-holder lease. With a budget of one round the
        // claimant steals it and runs out of budget before re-creating —
        // the old fallback reported this as Held { age: ZERO }, i.e. a
        // freshly heartbeated lease.
        std::fs::create_dir_all(&dir).unwrap();
        let dead = u32::MAX - 7;
        let mut body = Json::obj();
        body.set("fingerprint", Json::Str(format!("{:016x}", 23u64)));
        body.set("pid", Json::from(u64::from(dead)));
        std::fs::write(dir.join(format!("{:016x}.lease", 23u64)), body.to_string_pretty())
            .unwrap();

        match leases.try_claim_rounds(23, 1).unwrap() {
            Claim::Contended { age, holder } => {
                assert_eq!(holder, Some(dead), "carries the last observed holder");
                assert!(age.is_some(), "carries the last observed age");
            }
            other => panic!("exhausted budget must report Contended, got {other:?}"),
        }
        // A zero-round budget never probes: the observation is blank.
        match leases.try_claim_rounds(23, 0).unwrap() {
            Claim::Contended { age: None, holder: None } => {}
            other => panic!("zero rounds must report a blank Contended, got {other:?}"),
        }
    }

    #[test]
    fn unix_ms_sentinel_sorts_after_real_timestamps() {
        // A pre-epoch clock records UNIX_MS_UNKNOWN, which must sort
        // after every real stamp so shard merges stay stably ordered.
        let now = unix_ms();
        assert!(now > 0, "test host clock is sane");
        let mut stamps = vec![UNIX_MS_UNKNOWN, now, 0, now + 1];
        stamps.sort_unstable();
        assert_eq!(stamps, vec![0, now, now + 1, UNIX_MS_UNKNOWN]);
    }

    #[test]
    fn held_by_attributes_leases_to_their_holder() {
        let dir = scratch_dir("held-by");
        let leases = LeaseDir::open(&dir, Duration::from_secs(60), 0).unwrap();
        let a = match leases.try_claim(21).unwrap() {
            Claim::Acquired(l) => l,
            _ => panic!(),
        };
        let b = match leases.try_claim(22).unwrap() {
            Claim::Acquired(l) => l,
            _ => panic!(),
        };
        assert_eq!(leases.held_by(std::process::id()), vec![21, 22]);
        assert!(leases.held_by(1).is_empty());
        drop(a);
        drop(b);
    }
}
