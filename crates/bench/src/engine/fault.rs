//! Fault tolerance for experiment campaigns: structured run failures,
//! execution budgets, deterministic fault injection, and the
//! `failures.json` artifact.
//!
//! A campaign of hundreds of cycle-level simulations must degrade
//! gracefully: one panicking worker, one livelocked run, or one corrupt
//! cache entry may cost *that run*, never the campaign. This module is the
//! vocabulary of that contract:
//!
//! - [`RunError`] / [`RunFailure`]: what went wrong with one run, carrying
//!   enough context (panic payload, flight-recorder window, repro command)
//!   to reproduce it offline;
//! - [`RunBudget`]: the harness-side watchdog — a per-run cycle cap layered
//!   under the config's own `max_cycles`, plus an optional wall-clock
//!   deadline plumbed into the core's step loop;
//! - [`FaultPlan`]: the `--inject-fault` test seam (mirroring `lf-verify
//!   --inject-bug`) proving in CI that an injected panic, hang, or cache
//!   corruption yields a completed campaign with an accurate report;
//! - [`FaultStats`]: the failure counters surfaced in planner telemetry;
//! - [`write_failures_json`] / [`read_failures_json`]: the on-disk failure
//!   report consumed by `--resume`.
//!
//! Injection decisions go through [`lf_stats::rate_gate`], the
//! deterministic Bernoulli gate shared with `lf-verify`: the same
//! fingerprint is selected on every run, so a failure report names runs
//! that actually reproduce and a `--resume` replays exactly the failed
//! set.

use lf_stats::{fingerprint_hex, parse_fingerprint_hex, rate_gate, Json};
use std::collections::HashSet;
use std::io;
use std::path::Path;
use std::time::Duration;

/// Trace events kept from the flight recorder when a budget failure is
/// reported (the *last* window; earlier events are dropped).
const FLIGHT_RECORDER_KEEP: usize = 64;

/// Default per-run cycle budget. Far above any legitimate suite run at
/// either scale, so it only ever converts livelocks into structured
/// failures; `--budget-cycles 0` disables it.
pub const DEFAULT_BUDGET_CYCLES: u64 = 50_000_000;

/// Why one run failed. Every variant renders to `failures.json` with its
/// full context.
#[derive(Debug, Clone)]
pub enum RunError {
    /// The worker closure panicked (a simulator bug or an injected fault);
    /// the payload is the panic message.
    Panicked {
        /// The panic payload, stringified.
        payload: String,
    },
    /// The simulator returned a structured error (fault, deadlock).
    Sim {
        /// The rendered [`loopfrog::SimError`].
        message: String,
    },
    /// The run exceeded its execution budget (cycle cap or wall-clock
    /// deadline) — a livelock caught by the watchdog.
    BudgetExceeded {
        /// Cycles simulated when the watchdog fired.
        cycles: u64,
        /// The cycle budget in force, if the cycle cap fired.
        budget_cycles: Option<u64>,
        /// Whether the wall-clock deadline (rather than the cycle cap)
        /// fired.
        wall_clock: bool,
        /// The last flight-recorder window (one rendered line per event),
        /// for diagnosing what the pipeline was doing when time ran out.
        /// The planner arms the recorder for every budget-clamped run and
        /// strips the events again on normal completion, so this window is
        /// populated without cached artifacts depending on the harness
        /// budget.
        flight_recorder: Vec<String>,
    },
    /// The run killed enough distinct worker processes (crash, SIGKILL,
    /// OOM) that the supervisor quarantined it as poisonous instead of
    /// retrying it forever.
    Poisoned {
        /// How many distinct workers died holding this run's lease.
        worker_deaths: usize,
    },
}

impl RunError {
    /// Stable machine-readable tag for artifacts and telemetry.
    pub fn kind(&self) -> &'static str {
        match self {
            RunError::Panicked { .. } => "panic",
            RunError::Sim { .. } => "sim_error",
            RunError::BudgetExceeded { .. } => "budget_exceeded",
            RunError::Poisoned { .. } => "poisoned",
        }
    }

    /// One-line human rendering.
    pub fn message(&self) -> String {
        match self {
            RunError::Panicked { payload } => format!("worker panicked: {payload}"),
            RunError::Sim { message } => format!("simulator error: {message}"),
            RunError::BudgetExceeded { cycles, budget_cycles, wall_clock, .. } => {
                if *wall_clock {
                    format!("wall-clock deadline exceeded after {cycles} cycles")
                } else {
                    format!(
                        "cycle budget exceeded ({cycles} cycles, budget {})",
                        budget_cycles.map(|b| b.to_string()).unwrap_or_else(|| "?".into())
                    )
                }
            }
            RunError::Poisoned { worker_deaths } => {
                format!("poisonous run quarantined after killing {worker_deaths} workers")
            }
        }
    }
}

/// One failed run: identity, cause, and a one-line repro command.
#[derive(Debug, Clone)]
pub struct RunFailure {
    /// The run's content fingerprint (0 for kernel-preparation and
    /// scenario-render failures, which happen before/after a fingerprint
    /// exists).
    pub fingerprint: u64,
    /// The kernel (or scenario) the failure belongs to.
    pub kernel: String,
    /// What went wrong.
    pub error: RunError,
    /// A one-line `lf-bench` command reproducing the failure.
    pub repro: String,
}

impl RunFailure {
    /// The `FAILED(<fingerprint>)` cell rendered into partial tables.
    pub fn cell(&self) -> String {
        format!("FAILED({})", fingerprint_hex(self.fingerprint))
    }

    /// The machine-readable record written to `failures.json`.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.set("fingerprint", fingerprint_hex(self.fingerprint));
        j.set("kernel", self.kernel.as_str());
        j.set("kind", self.error.kind());
        j.set("message", self.error.message());
        if let RunError::Panicked { payload } = &self.error {
            j.set("panic_payload", payload.as_str());
        }
        if let RunError::Poisoned { worker_deaths } = &self.error {
            j.set("worker_deaths", *worker_deaths as u64);
        }
        if let RunError::BudgetExceeded { cycles, budget_cycles, wall_clock, flight_recorder } =
            &self.error
        {
            j.set("cycles", *cycles);
            if let Some(b) = budget_cycles {
                j.set("budget_cycles", *b);
            }
            j.set("wall_clock", Json::Bool(*wall_clock));
            let window: Vec<Json> =
                flight_recorder.iter().map(|l| Json::from(l.as_str())).collect();
            j.set("flight_recorder", Json::Arr(window));
        }
        j.set("repro", self.repro.as_str());
        j
    }
}

/// Caps the flight-recorder capture to its last window and renders one
/// line per event.
pub fn render_flight_recorder(events: &[loopfrog::TraceEvent]) -> Vec<String> {
    let skip = events.len().saturating_sub(FLIGHT_RECORDER_KEEP);
    events[skip..].iter().map(|e| e.to_string()).collect()
}

/// The harness-side execution budget applied to every run.
#[derive(Debug, Clone)]
pub struct RunBudget {
    /// Per-run cycle cap, layered under the config's own `max_cycles`
    /// (the tighter bound wins). `None` disables the cap.
    pub max_cycles: Option<u64>,
    /// Per-run wall-clock deadline, armed on the core's step loop.
    pub deadline: Option<Duration>,
}

impl Default for RunBudget {
    fn default() -> RunBudget {
        RunBudget { max_cycles: Some(DEFAULT_BUDGET_CYCLES), deadline: None }
    }
}

/// Which runs an injected hang replaces with a non-terminating kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HangTarget {
    /// Exactly the run with this fingerprint.
    Fingerprint(u64),
    /// A deterministic fraction of all runs (via [`rate_gate`]).
    Rate(f64),
}

/// The parsed `--inject-fault` plan. All gates are deterministic functions
/// of the run fingerprint, so repeated campaigns (and `--resume`) select
/// the same victims.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Fraction of runs whose worker panics before simulating.
    pub panic_rate: f64,
    /// Runs replaced by a non-terminating kernel (exercises the watchdog).
    pub hang: Option<HangTarget>,
    /// Fraction of freshly stored cache entries garbled after the write
    /// (exercises corruption quarantine on the *next* campaign).
    pub corrupt_cache_rate: f64,
    /// Fraction of runs whose worker hard-kills the whole process
    /// ([`std::process::abort`] — no unwinding, no destructors, the
    /// file-state equivalent of `kill -9`). Exercises the crash-recovery
    /// path: atomic commits, the campaign journal, and `--resume`.
    pub crash_rate: f64,
}

impl FaultPlan {
    /// Whether any injection is armed.
    pub fn is_active(&self) -> bool {
        self.panic_rate > 0.0
            || self.hang.is_some()
            || self.corrupt_cache_rate > 0.0
            || self.crash_rate > 0.0
    }

    /// Parses one `--inject-fault` spec (`panic:<rate>`,
    /// `hang:<fingerprint|rate>`, `corrupt-cache:<rate>`, `crash:<rate>`)
    /// into the plan. Specs accumulate, so the flag may be repeated.
    pub fn parse_spec(&mut self, spec: &str) -> Result<(), String> {
        let (kind, arg) =
            spec.split_once(':').ok_or_else(|| format!("expected <kind>:<arg>, got {spec:?}"))?;
        let rate = |arg: &str| -> Result<f64, String> {
            match arg.parse::<f64>() {
                Ok(r) if (0.0..=1.0).contains(&r) => Ok(r),
                _ => Err(format!("expected a rate in [0, 1], got {arg:?}")),
            }
        };
        match kind {
            "panic" => self.panic_rate = rate(arg)?,
            "corrupt-cache" => self.corrupt_cache_rate = rate(arg)?,
            "crash" => self.crash_rate = rate(arg)?,
            "hang" => {
                // A 16-digit hex token targets one fingerprint; anything
                // else must parse as a rate.
                self.hang = Some(match parse_fingerprint_hex(arg) {
                    Some(fp) => HangTarget::Fingerprint(fp),
                    None => HangTarget::Rate(rate(arg)?),
                });
            }
            other => {
                return Err(format!(
                    "unknown fault kind {other:?} (expected panic, hang, corrupt-cache, or crash)"
                ))
            }
        }
        Ok(())
    }

    /// Whether the worker for `fingerprint` panics.
    pub fn should_panic(&self, fingerprint: u64) -> bool {
        rate_gate(fingerprint, "lf-bench-inject-panic", self.panic_rate)
    }

    /// Whether the run for `fingerprint` is replaced by a hang.
    pub fn should_hang(&self, fingerprint: u64) -> bool {
        match self.hang {
            None => false,
            Some(HangTarget::Fingerprint(fp)) => fp == fingerprint,
            Some(HangTarget::Rate(r)) => rate_gate(fingerprint, "lf-bench-inject-hang", r),
        }
    }

    /// Whether the stored cache entry for `fingerprint` is garbled.
    pub fn should_corrupt(&self, fingerprint: u64) -> bool {
        rate_gate(fingerprint, "lf-bench-inject-corrupt", self.corrupt_cache_rate)
    }

    /// Whether the worker for `fingerprint` hard-kills the process.
    pub fn should_crash(&self, fingerprint: u64) -> bool {
        rate_gate(fingerprint, "lf-bench-inject-crash", self.crash_rate)
    }
}

/// A deliberately non-terminating kernel: an induction variable counted up
/// forever. Substituted for a run's real program by `hang` injection so
/// the watchdog path is exercised by a genuine livelocked simulation (the
/// loop keeps committing, so the core's no-progress deadlock detector
/// never fires — only the budget can stop it).
pub fn hang_program() -> lf_isa::Program {
    use lf_isa::{reg, AluOp, BranchCond, ProgramBuilder};
    let mut b = ProgramBuilder::new();
    let head = b.label("spin");
    b.li(reg::x(1), 0);
    b.bind(head);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 1);
    b.branch(BranchCond::Ge, reg::x(1), reg::x(0), head);
    b.halt();
    b.build().expect("the hang kernel assembles")
}

/// Failure counters for one engine invocation, surfaced in planner
/// telemetry and `planner.json`. Nothing is ever silently dropped: every
/// abnormal path increments exactly one of these.
#[derive(Debug, Clone, Default)]
pub struct FaultStats {
    /// Runs whose worker panicked.
    pub panicked: usize,
    /// Runs stopped by the cycle/wall-clock budget.
    pub budget_exceeded: usize,
    /// Runs ending in a structured simulator error.
    pub sim_errors: usize,
    /// Kernel preparations (profile + annotate) that panicked.
    pub prep_failures: usize,
    /// Scenario render phases that panicked.
    pub render_failures: usize,
    /// Cache lookups rejected as corrupt (unparseable or self-inconsistent).
    pub cache_corrupt: usize,
    /// Cache lookups rejected by a schema-version mismatch.
    pub cache_schema_mismatch: usize,
    /// Corrupt entries moved to the quarantine directory.
    pub quarantined: usize,
    /// Extra cache-store attempts beyond each first try.
    pub store_retries: usize,
    /// Cache stores that failed even after retries (the run still counts
    /// as a success; only memoization is lost).
    pub store_failures: usize,
    /// Simulated runs that a `--resume` re-executed (their fingerprints
    /// appeared in the resumed failure report).
    pub resumed: usize,
    /// Orphaned commit temp files swept from the cache directory at
    /// campaign start (debris of a killed predecessor).
    pub tmp_swept: usize,
    /// Bytes truncated from a torn campaign-journal tail on `--resume`
    /// (an append was in flight when the previous campaign died).
    pub journal_torn_bytes: u64,
    /// Planned runs the resumed journal shows as durably committed.
    pub journal_committed: usize,
    /// Planned runs the resumed journal shows as started but never
    /// committed — in flight when the previous campaign was killed.
    pub journal_in_flight: usize,
    /// Planned runs the resumed journal shows as never started.
    pub journal_never_started: usize,
    /// Runs quarantined as poisonous (killed too many workers).
    pub poisoned: usize,
    /// Worker processes the supervisor observed dying abnormally.
    pub worker_deaths: usize,
    /// Replacement workers the supervisor spawned after deaths.
    pub worker_respawns: usize,
    /// Leases reclaimed from dead or stalled holders (supervisor-side
    /// force-releases plus end-of-campaign sweeps of leaked leases).
    pub lease_reclaims: usize,
    /// Lease probes whose heartbeat age was unobtainable (future-dated
    /// mtime from clock skew or a backwards clock step); the lease was
    /// treated as of unknown age and fell through to the reclaim path.
    pub lease_clock_skew: usize,
    /// Claim attempts that exhausted their retry budget without either
    /// acquiring the lease or observing a live holder.
    pub lease_contended: usize,
    /// Total milliseconds spent in capped exponential backoff (worker
    /// rescan waits plus supervisor respawn delays).
    pub backoff_ms: u64,
}

impl FaultStats {
    /// Total failed runs (excludes cache/store noise, which costs
    /// memoization but not results).
    pub fn failed_runs(&self) -> usize {
        self.panicked + self.budget_exceeded + self.sim_errors + self.prep_failures + self.poisoned
    }

    /// Merges another invocation's counters into this one (the supervisor
    /// carries its own counters into the final rendering pass).
    pub fn absorb(&mut self, other: &FaultStats) {
        self.panicked += other.panicked;
        self.budget_exceeded += other.budget_exceeded;
        self.sim_errors += other.sim_errors;
        self.prep_failures += other.prep_failures;
        self.render_failures += other.render_failures;
        self.cache_corrupt += other.cache_corrupt;
        self.cache_schema_mismatch += other.cache_schema_mismatch;
        self.quarantined += other.quarantined;
        self.store_retries += other.store_retries;
        self.store_failures += other.store_failures;
        self.resumed += other.resumed;
        self.tmp_swept += other.tmp_swept;
        self.journal_torn_bytes += other.journal_torn_bytes;
        self.journal_committed += other.journal_committed;
        self.journal_in_flight += other.journal_in_flight;
        self.journal_never_started += other.journal_never_started;
        self.poisoned += other.poisoned;
        self.worker_deaths += other.worker_deaths;
        self.worker_respawns += other.worker_respawns;
        self.lease_reclaims += other.lease_reclaims;
        self.lease_clock_skew += other.lease_clock_skew;
        self.lease_contended += other.lease_contended;
        self.backoff_ms += other.backoff_ms;
    }

    /// The `faults` section of planner telemetry.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.set("failed_runs", self.failed_runs() as u64);
        j.set("panicked", self.panicked as u64);
        j.set("budget_exceeded", self.budget_exceeded as u64);
        j.set("sim_errors", self.sim_errors as u64);
        j.set("prep_failures", self.prep_failures as u64);
        j.set("render_failures", self.render_failures as u64);
        j.set("cache_corrupt_misses", self.cache_corrupt as u64);
        j.set("cache_schema_mismatch_misses", self.cache_schema_mismatch as u64);
        j.set("quarantined_entries", self.quarantined as u64);
        j.set("cache_store_retries", self.store_retries as u64);
        j.set("cache_store_failures", self.store_failures as u64);
        j.set("resumed_failures", self.resumed as u64);
        j.set("tmp_swept", self.tmp_swept as u64);
        j.set("journal_torn_bytes", self.journal_torn_bytes);
        j.set("journal_committed", self.journal_committed as u64);
        j.set("journal_in_flight", self.journal_in_flight as u64);
        j.set("journal_never_started", self.journal_never_started as u64);
        j.set("poisoned", self.poisoned as u64);
        j.set("worker_deaths", self.worker_deaths as u64);
        j.set("worker_respawns", self.worker_respawns as u64);
        j.set("lease_reclaims", self.lease_reclaims as u64);
        j.set("lease_clock_skew_events", self.lease_clock_skew as u64);
        j.set("lease_contended_claims", self.lease_contended as u64);
        j.set("backoff_ms", self.backoff_ms);
        j
    }
}

/// Builds the `failures.json` document for a campaign.
pub fn failures_to_json(failures: &[std::sync::Arc<RunFailure>], scale_tag: &str) -> Json {
    let mut doc = Json::obj();
    doc.set("schema_version", crate::artifact::SCHEMA_VERSION);
    doc.set("tool", "lf-bench");
    doc.set("scale", scale_tag);
    doc.set("failures", Json::Arr(failures.iter().map(|f| f.to_json()).collect()));
    doc
}

/// Writes the campaign failure report (pretty-printed, parent directories
/// created). Written on every `lf-bench run`, with an empty list when the
/// campaign was clean, so `--resume` always has a current file to read.
/// Commits atomically: a kill -9 can never publish a truncated failure
/// list for a later `--resume` to misread as "nothing failed".
pub fn write_failures_json(
    path: &Path,
    failures: &[std::sync::Arc<RunFailure>],
    scale_tag: &str,
) -> io::Result<()> {
    crate::durable::atomic_write_json(&failures_to_json(failures, scale_tag), path)
}

/// Reads a failure report back, returning the set of failed run
/// fingerprints (`--resume` re-executes exactly these; everything else is
/// served from the cache).
pub fn read_failures_json(path: &Path) -> Result<HashSet<u64>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{} is not JSON: {e}", path.display()))?;
    let list = doc
        .get("failures")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{} has no `failures` array", path.display()))?;
    let mut fps = HashSet::new();
    for f in list {
        if let Some(fp) =
            f.get("fingerprint").and_then(Json::as_str).and_then(parse_fingerprint_hex)
        {
            if fp != 0 {
                fps.insert(fp);
            }
        }
    }
    Ok(fps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn parse_specs_accumulate() {
        let mut plan = FaultPlan::default();
        plan.parse_spec("panic:0.05").unwrap();
        plan.parse_spec("corrupt-cache:0.5").unwrap();
        plan.parse_spec("hang:00000000deadbeef").unwrap();
        assert_eq!(plan.panic_rate, 0.05);
        assert_eq!(plan.corrupt_cache_rate, 0.5);
        assert_eq!(plan.hang, Some(HangTarget::Fingerprint(0xdead_beef)));
        assert!(plan.is_active());
        assert!(plan.should_hang(0xdead_beef));
        assert!(!plan.should_hang(0xdead_bef0));

        let mut rated = FaultPlan::default();
        rated.parse_spec("hang:1.0").unwrap();
        assert!(rated.should_hang(12345));
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        let mut plan = FaultPlan::default();
        assert!(plan.parse_spec("panic").is_err());
        assert!(plan.parse_spec("panic:2.0").is_err());
        assert!(plan.parse_spec("explode:0.5").is_err());
        assert!(plan.parse_spec("hang:notahexnum").is_err());
        assert!(!plan.is_active());
    }

    #[test]
    fn panic_gate_is_deterministic_and_sparse() {
        let mut plan = FaultPlan::default();
        plan.parse_spec("panic:0.05").unwrap();
        let first: Vec<u64> = (0..1000).filter(|&fp| plan.should_panic(fp)).collect();
        let second: Vec<u64> = (0..1000).filter(|&fp| plan.should_panic(fp)).collect();
        assert_eq!(first, second);
        assert!(!first.is_empty() && first.len() < 200);
    }

    #[test]
    fn failures_json_round_trips_fingerprints() {
        let dir = std::env::temp_dir().join(format!("lf-bench-fault-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("failures.json");
        let failures = vec![
            Arc::new(RunFailure {
                fingerprint: 0xabc,
                kernel: "stencil_blur".into(),
                error: RunError::Panicked { payload: "injected".into() },
                repro: "lf-bench run --all --filter stencil_blur".into(),
            }),
            Arc::new(RunFailure {
                fingerprint: 0xdef,
                kernel: "md_force".into(),
                error: RunError::BudgetExceeded {
                    cycles: 9999,
                    budget_cycles: Some(5000),
                    wall_clock: false,
                    flight_recorder: vec!["cycle 12: spawn".into()],
                },
                repro: "lf-bench run --all --filter md_force".into(),
            }),
        ];
        write_failures_json(&path, &failures, "smoke").unwrap();
        let fps = read_failures_json(&path).unwrap();
        assert_eq!(fps, HashSet::from([0xabc, 0xdef]));

        // The budget record carries its context.
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let list = doc.get("failures").and_then(Json::as_arr).unwrap();
        let budget = &list[1];
        assert_eq!(budget.get("kind").and_then(Json::as_str), Some("budget_exceeded"));
        assert_eq!(budget.get("cycles").and_then(Json::as_u64), Some(9999));
        assert!(budget.get("flight_recorder").and_then(Json::as_arr).is_some());
        assert!(budget.get("repro").and_then(Json::as_str).unwrap().contains("md_force"));
    }

    #[test]
    fn hang_program_never_halts_under_a_budget() {
        let program = hang_program();
        let mut cfg = loopfrog::LoopFrogConfig::baseline();
        cfg.max_cycles = 10_000;
        let r = loopfrog::simulate(&program, lf_isa::Memory::new(64), cfg).unwrap();
        assert_eq!(r.stop, loopfrog::SimStop::MaxCycles, "the spin kernel must not halt");
    }
}
