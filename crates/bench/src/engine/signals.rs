//! Minimal signal plumbing for the supervised campaign scheduler.
//!
//! The hermetic build has no `libc`/`signal-hook` crates, so the few
//! primitives the supervisor and its workers need are declared directly
//! against the C runtime (which every Unix Rust binary already links):
//!
//! - a *drain* flag: SIGTERM/SIGINT set an atomic instead of killing the
//!   process, so the supervisor can stop handing out work, signal its
//!   worker process groups, and exit with zero leaked children, leases,
//!   or torn journal bytes;
//! - process-group signalling (`killpg`) — each worker is spawned as its
//!   own group leader, so draining one worker also drains anything it
//!   spawned;
//! - a liveness probe (`kill(pid, 0)`) used by the lease protocol to
//!   reclaim claims from dead holders without waiting out the expiry.
//!
//! Handlers only store into an atomic (async-signal-safe); all policy
//! runs in the normal control flow that polls [`drain_signal`].

#[cfg(unix)]
mod imp {
    use std::sync::atomic::{AtomicI32, Ordering};

    /// 0 = no drain requested; otherwise the signal number received.
    static DRAIN: AtomicI32 = AtomicI32::new(0);

    const SIGINT: i32 = 2;
    const SIGKILL: i32 = 9;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn kill(pid: i32, sig: i32) -> i32;
        fn killpg(pgrp: i32, sig: i32) -> i32;
    }

    extern "C" fn on_drain(sig: i32) {
        DRAIN.store(sig, Ordering::SeqCst);
    }

    /// Routes SIGTERM and SIGINT into the drain flag instead of the
    /// default terminate action. Installed by the supervisor and by every
    /// worker at startup.
    pub fn install_drain_handlers() {
        unsafe {
            signal(SIGTERM, on_drain as *const () as usize);
            signal(SIGINT, on_drain as *const () as usize);
        }
    }

    /// The pending drain signal (2 = SIGINT, 15 = SIGTERM), if one was
    /// received since [`install_drain_handlers`].
    pub fn drain_signal() -> Option<i32> {
        match DRAIN.load(Ordering::SeqCst) {
            0 => None,
            sig => Some(sig),
        }
    }

    /// Whether `pid` is a live process. `kill(pid, 0)` delivers nothing
    /// and only performs the existence check; a failure (no process, or
    /// no permission — impossible for our own children) reads as dead.
    pub fn pid_alive(pid: u32) -> bool {
        unsafe { kill(pid as i32, 0) == 0 }
    }

    /// Sends SIGTERM to the process group led by `pid` (workers are
    /// spawned with `process_group(0)`, so their pid is their pgid).
    pub fn terminate_group(pid: u32) {
        unsafe {
            killpg(pid as i32, SIGTERM);
        }
    }

    /// Sends SIGKILL to the process group led by `pid` — the escalation
    /// for a worker that ignored its drain grace period.
    pub fn kill_group(pid: u32) {
        unsafe {
            killpg(pid as i32, SIGKILL);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No-op off Unix: drains are never requested.
    pub fn install_drain_handlers() {}

    /// Always `None` off Unix.
    pub fn drain_signal() -> Option<i32> {
        None
    }

    /// Conservatively reports every pid as alive (expiry still reclaims).
    pub fn pid_alive(_pid: u32) -> bool {
        true
    }

    /// No-op off Unix.
    pub fn terminate_group(_pid: u32) {}

    /// No-op off Unix.
    pub fn kill_group(_pid: u32) {}
}

pub use imp::{drain_signal, install_drain_handlers, kill_group, pid_alive, terminate_group};
