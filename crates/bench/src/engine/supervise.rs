//! Supervised multi-process campaign execution.
//!
//! `lf-bench run --workers N` promotes the campaign from one process to a
//! supervisor plus N worker processes (self-exec'd via the hidden
//! `worker` subcommand). The design goal is *worker isolation*: a
//! segfault, OOM-kill, or injected `crash:<rate>` abort in any run costs
//! that worker's in-flight run, never the campaign.
//!
//! The architecture has no supervisor-to-worker work queue. Each worker
//! independently re-derives the deterministic run plan (the plan is a
//! pure function of scenarios × scale × tier × filter) and races its
//! siblings for unique runs through the shared claim space under the
//! cache directory (see [`crate::engine::lease`]). A worker is purely a
//! *cache filler*: it claims a fingerprint, simulates it, commits the
//! outcome through the same atomic cache-store path a single-process
//! campaign uses, journals Claimed/Started/Committed/Released into its
//! own journal shard, and moves on. When every planned fingerprint is
//! either committed or quarantined, workers exit 0 and the supervisor
//! runs the ordinary in-process engine one final time: everything hits
//! the cache, rendering happens serially in registry order, and the
//! artifacts are byte-identical to a single-process campaign.
//!
//! Failure policy:
//!
//! - *worker death* (crash, SIGKILL, OOM): the supervisor reaps the
//!   child, attributes its held leases, force-releases them, and spawns a
//!   replacement with capped exponential backoff. Only the in-flight run
//!   is lost, and a surviving or replacement worker retries it.
//! - *poison runs*: a fingerprint whose lease holders died
//!   [`poison_threshold`] distinct times is quarantined — a marker file
//!   under `<cache>/poison/` keeps workers away, and the final rendering
//!   pass converts it into a structured `poisoned` failure in
//!   `failures.json` instead of executing it (it would take the
//!   supervisor down too).
//! - *drain* (SIGTERM/SIGINT to the supervisor): workers are signalled
//!   via their process groups, given a grace period, then killed;
//!   every child is reaped, leases are swept, and journal shards stay
//!   whole because workers exit at run boundaries.
//!
//! Locally-contained worker failures (an injected panic, a budget trip)
//! deliberately do *not* publish anything: the worker marks the run done
//! for itself and releases the lease, and the final in-process pass
//! re-executes the run — deterministically failing the same way — to
//! produce the structured failure record. Duplicate execution is always
//! benign here: runs are deterministic and cache commits are idempotent
//! atomic renames.

use crate::engine::fault::FaultStats;
use crate::engine::journal::{Journal, JournalEvent};
use crate::engine::lease::{Claim, Lease, LeaseDir};
use crate::engine::signals;
use crate::engine::spans::SpanLog;
use crate::engine::{
    build_plan, execute_single, run_scenarios, store_outcome, EngineOptions, EngineOutput, Scenario,
};
use lf_stats::fingerprint_hex;
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Distinct worker deaths after which a run is classified poisonous.
/// Override with `LF_POISON_THRESHOLD`.
pub const DEFAULT_POISON_THRESHOLD: usize = 2;

/// Base delay before respawning a dead worker; doubles per consecutive
/// fast death, capped at [`RESPAWN_BACKOFF_CAP_MS`]. Override the base
/// with `LF_RESPAWN_BACKOFF_MS`.
pub const DEFAULT_RESPAWN_BACKOFF_MS: u64 = 50;

/// Cap on the respawn backoff delay.
pub const RESPAWN_BACKOFF_CAP_MS: u64 = 2_000;

/// Total replacement workers the supervisor will spawn before giving up
/// and letting the final in-process pass absorb the remaining work.
/// Override with `LF_MAX_RESPAWNS`.
pub const DEFAULT_MAX_RESPAWNS: usize = 64;

/// Grace period between SIGTERM-ing worker groups on drain and
/// escalating to SIGKILL. Override with `LF_DRAIN_GRACE_MS`.
pub const DEFAULT_DRAIN_GRACE_MS: u64 = 10_000;

/// Worker exit code for "drained on supervisor request".
const EXIT_DRAINED: i32 = 130;

/// Worker rescan backoff bounds: when a scan of the plan makes no
/// progress (everything pending is leased elsewhere), the worker sleeps
/// with capped exponential backoff before rescanning.
const RESCAN_BACKOFF_BASE_MS: u64 = 25;
const RESCAN_BACKOFF_CAP_MS: u64 = 500;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).filter(|&v| v > 0).unwrap_or(default)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).filter(|&v| v > 0).unwrap_or(default)
}

/// How the supervisor re-invokes this binary as a worker.
#[derive(Debug, Clone)]
pub struct SuperviseConfig {
    /// Number of worker processes.
    pub workers: usize,
    /// Argv (after the executable) for the hidden `worker` subcommand,
    /// *without* the trailing `--worker-id N` (the supervisor appends it
    /// per slot).
    pub worker_args: Vec<String>,
}

/// Poison-marker path for a fingerprint.
fn poison_path(dir: &Path, fingerprint: u64) -> std::path::PathBuf {
    dir.join(format!("{}.poison", fingerprint_hex(fingerprint)))
}

/// Removes every poison marker (they are per-campaign verdicts, not
/// durable state).
fn clear_poison(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        if entry.file_name().to_str().is_some_and(|n| n.ends_with(".poison")) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// One supervised worker slot: the live child plus its accounting.
struct WorkerSlot {
    id: u64,
    child: Option<Child>,
    pid: u32,
    spawned_at: Instant,
    /// Consecutive fast deaths (for per-slot respawn backoff).
    fast_deaths: u32,
    /// The slot finished cleanly (exit 0, or drained).
    done: bool,
}

fn spawn_worker(exe: &Path, sup: &SuperviseConfig, id: u64) -> std::io::Result<Child> {
    let mut cmd = Command::new(exe);
    cmd.args(&sup.worker_args)
        .arg("--worker-id")
        .arg(id.to_string())
        // Workers must never write to the campaign's stdout: rendered
        // output is produced only by the supervisor's final pass, so
        // stdout stays byte-identical to a single-process run.
        .stdout(Stdio::null());
    #[cfg(unix)]
    {
        use std::os::unix::process::CommandExt;
        // Each worker leads its own process group so a drain signal (and
        // the SIGKILL escalation) reaches anything the worker spawned.
        cmd.process_group(0);
    }
    cmd.spawn()
}

/// Runs a campaign under the multi-process supervisor and returns the
/// final rendered output (produced by an ordinary in-process engine pass
/// over the worker-filled cache, so rendering is byte-identical to a
/// single-process campaign).
///
/// A drain signal (SIGTERM/SIGINT) reaps the workers, sweeps the leases,
/// and returns `Err(128 + signal)` — the caller decides whether that
/// exits the process (one-shot `run`) or merely finishes the request
/// (the resident server, which still owns a socket to clean up).
pub fn run_supervised(
    scenarios: &[&dyn Scenario],
    opts: &EngineOptions,
    sup: &SuperviseConfig,
) -> Result<EngineOutput, i32> {
    let cache = opts.disk_cache.clone().expect("supervised mode requires the disk cache");
    signals::install_drain_handlers();

    let mut stats = FaultStats::default();
    // Campaign setup: sweep debris of any previous campaign — orphaned
    // commit temp files, stale leases, stale poison markers. None of it
    // is owned by a live process (concurrent campaigns in one cache dir
    // are unsupported, exactly as for the journal).
    stats.tmp_swept += crate::durable::sweep_orphan_tmps(cache.dir());
    let expiry = LeaseDir::env_expiry();
    let leases = match LeaseDir::open(&cache.leases_dir(), expiry, u64::MAX) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("warning: cannot open lease dir ({e}); falling back to in-process execution");
            return Ok(run_scenarios(scenarios, opts));
        }
    };
    leases.sweep();
    let poison_dir = cache.poison_dir();
    let _ = std::fs::create_dir_all(&poison_dir);
    clear_poison(&poison_dir);
    // A fresh campaign truncates the journal (and clears worker shards)
    // up front; the final pass then reopens it in append mode. A resumed
    // campaign keeps the existing log.
    if opts.resume_from.is_none() {
        if let Err(e) = Journal::begin(&cache.journal_dir()) {
            eprintln!("warning: cannot open campaign journal: {e}");
        }
    }

    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("warning: cannot locate own executable ({e}); falling back to in-process");
            return Ok(run_scenarios(scenarios, opts));
        }
    };
    let poison_threshold = env_usize("LF_POISON_THRESHOLD", DEFAULT_POISON_THRESHOLD);
    let respawn_base = env_u64("LF_RESPAWN_BACKOFF_MS", DEFAULT_RESPAWN_BACKOFF_MS);
    let max_respawns = env_usize("LF_MAX_RESPAWNS", DEFAULT_MAX_RESPAWNS);
    let drain_grace = Duration::from_millis(env_u64("LF_DRAIN_GRACE_MS", DEFAULT_DRAIN_GRACE_MS));

    let mut slots: Vec<WorkerSlot> = Vec::new();
    for id in 0..sup.workers as u64 {
        match spawn_worker(&exe, sup, id) {
            Ok(child) => {
                let pid = child.id();
                slots.push(WorkerSlot {
                    id,
                    child: Some(child),
                    pid,
                    spawned_at: Instant::now(),
                    fast_deaths: 0,
                    done: false,
                });
            }
            Err(e) => eprintln!("warning: cannot spawn worker {id}: {e}"),
        }
    }
    if slots.is_empty() {
        eprintln!("warning: no workers could be spawned; falling back to in-process execution");
        return Ok(run_scenarios(scenarios, opts));
    }
    eprintln!("supervisor: {} workers, lease expiry {:?}", slots.len(), expiry);

    // Death ledger: fingerprint → distinct dead holder pids.
    let mut deaths: HashMap<u64, HashSet<u32>> = HashMap::new();
    let mut poisoned: HashMap<u64, usize> = HashMap::new();
    let mut respawns = 0usize;
    let mut draining: Option<i32> = None;

    loop {
        // Forward a drain request exactly once, to every live group.
        if draining.is_none() {
            if let Some(sig) = signals::drain_signal() {
                eprintln!("supervisor: received signal {sig}, draining {} workers", slots.len());
                draining = Some(sig);
                for slot in slots.iter().filter(|s| s.child.is_some()) {
                    signals::terminate_group(slot.pid);
                }
            }
        }

        // Reap deaths and clean exits.
        for slot in slots.iter_mut() {
            let Some(child) = slot.child.as_mut() else { continue };
            match child.try_wait() {
                Ok(None) => {}
                Ok(Some(status)) => {
                    slot.child = None;
                    let clean = status.success()
                        || (draining.is_some() && status.code() == Some(EXIT_DRAINED));
                    if clean {
                        slot.done = true;
                        continue;
                    }
                    // Abnormal death: attribute the worker's held leases,
                    // free them for retry, and score the death ledger.
                    stats.worker_deaths += 1;
                    let held = leases.held_by(slot.pid);
                    eprintln!(
                        "supervisor: worker {} (pid {}) died ({status}), {} lease(s) in flight",
                        slot.id,
                        slot.pid,
                        held.len()
                    );
                    for fp in held {
                        let entry = deaths.entry(fp).or_default();
                        entry.insert(slot.pid);
                        leases.force_release(fp);
                        stats.lease_reclaims += 1;
                        if entry.len() >= poison_threshold && !poisoned.contains_key(&fp) {
                            poisoned.insert(fp, entry.len());
                            let marker = format!("killed {} distinct workers\n", entry.len());
                            let _ = std::fs::write(poison_path(&poison_dir, fp), marker);
                            eprintln!(
                                "supervisor: run {} poisoned after {} worker deaths",
                                fingerprint_hex(fp),
                                entry.len()
                            );
                        }
                    }
                    if slot.spawned_at.elapsed() < Duration::from_secs(1) {
                        slot.fast_deaths += 1;
                    } else {
                        slot.fast_deaths = 0;
                    }
                    if draining.is_some() {
                        slot.done = true;
                    } else if respawns < max_respawns {
                        // Capped exponential backoff per slot: a crash
                        // storm (every claim aborts) cannot melt the host
                        // with respawn churn.
                        let delay =
                            (respawn_base << slot.fast_deaths.min(6)).min(RESPAWN_BACKOFF_CAP_MS);
                        stats.backoff_ms += delay;
                        std::thread::sleep(Duration::from_millis(delay));
                        match spawn_worker(&exe, sup, slot.id) {
                            Ok(c) => {
                                respawns += 1;
                                stats.worker_respawns += 1;
                                slot.pid = c.id();
                                slot.child = Some(c);
                                slot.spawned_at = Instant::now();
                            }
                            Err(e) => {
                                eprintln!("warning: cannot respawn worker {}: {e}", slot.id);
                                slot.done = true;
                            }
                        }
                    } else {
                        eprintln!(
                            "supervisor: respawn budget exhausted; worker {} stays down",
                            slot.id
                        );
                        slot.done = true;
                    }
                }
                Err(e) => {
                    eprintln!("warning: cannot poll worker {}: {e}", slot.id);
                    slot.child = None;
                    slot.done = true;
                }
            }
        }

        if slots.iter().all(|s| s.child.is_none()) {
            break;
        }

        if let Some(_sig) = draining {
            // Give workers the grace period from the moment of the drain;
            // approximate by bounding the whole drain with one deadline.
            let deadline = Instant::now() + drain_grace;
            while slots.iter().any(|s| s.child.is_some()) && Instant::now() < deadline {
                for slot in slots.iter_mut() {
                    if let Some(child) = slot.child.as_mut() {
                        if let Ok(Some(_)) = child.try_wait() {
                            slot.child = None;
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            for slot in slots.iter_mut() {
                if let Some(mut child) = slot.child.take() {
                    eprintln!(
                        "supervisor: worker {} ignored the drain grace; killing its group",
                        slot.id
                    );
                    signals::kill_group(slot.pid);
                    let _ = child.wait();
                }
            }
            break;
        }

        std::thread::sleep(Duration::from_millis(20));
    }

    // Every child is reaped at this point. Any lease still on disk was
    // leaked by a worker that died outside the reap path; sweep them (a
    // clean campaign sweeps zero).
    stats.lease_reclaims += leases.sweep();
    stats.lease_clock_skew += leases.clock_skew_events() as usize;

    if let Some(sig) = draining {
        clear_poison(&poison_dir);
        eprintln!("supervisor: drained; zero workers, zero leases left");
        return Err(128 + sig);
    }

    // Final pass: an ordinary in-process campaign over the worker-filled
    // cache. `resume_from` (possibly empty) opens the journal in append
    // mode instead of truncating the workers' records; poisoned runs
    // become structured failures instead of executing; the supervisor's
    // counters merge into the pass's own telemetry.
    let mut final_opts = opts.clone();
    final_opts.resume_from = Some(opts.resume_from.clone().unwrap_or_default());
    final_opts.poisoned = poisoned;
    final_opts.carried_faults = stats;
    let out = run_scenarios(scenarios, &final_opts);
    clear_poison(&poison_dir);
    Ok(out)
}

/// Entry point of the hidden `worker` subcommand: claim-loop over the
/// re-derived deterministic plan until every planned fingerprint is
/// committed, poisoned, or locally attempted. Returns the process exit
/// code (0 = plan complete, 130 = drained).
pub fn worker_main(
    scenarios: &[&dyn Scenario],
    opts: &EngineOptions,
    worker_id: u64,
    workers: usize,
) -> i32 {
    signals::install_drain_handlers();
    let Some(cache) = opts.disk_cache.clone() else {
        eprintln!("worker {worker_id}: --no-cache has no claim space; nothing to do");
        return 2;
    };
    let pid = std::process::id();
    let span_log: Arc<SpanLog> = Arc::default();
    let plan = build_plan(scenarios, opts, &span_log);
    let journal = match Journal::shard(&cache.journal_dir(), &format!("{worker_id}-{pid}")) {
        Ok(j) => Some(Arc::new(j)),
        Err(e) => {
            eprintln!("worker {worker_id}: journal shard unavailable ({e}); running unjournaled");
            None
        }
    };
    let expiry = LeaseDir::env_expiry();
    let leases = match LeaseDir::open(&cache.leases_dir(), expiry, worker_id) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("worker {worker_id}: cannot open lease dir: {e}");
            return 2;
        }
    };
    let poison_dir = cache.poison_dir();

    // The heartbeat thread refreshes whichever lease the claim loop
    // currently holds, so a legitimately slow simulation is not mistaken
    // for a stalled worker and stolen mid-run.
    let current: Arc<Mutex<Option<Lease>>> = Arc::new(Mutex::new(None));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let hb_interval = (expiry / 4).max(Duration::from_millis(10));
    let hb = {
        let current = current.clone();
        let stop = stop.clone();
        let leases = leases.clone();
        let journal = journal.clone();
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                std::thread::sleep(hb_interval);
                let guard = current.lock().expect("heartbeat mutex poisoned");
                if let Some(lease) = guard.as_ref() {
                    let fp = lease.fingerprint();
                    if let Err(e) = leases.heartbeat(lease) {
                        eprintln!("worker: heartbeat failed for {}: {e}", fingerprint_hex(fp));
                    }
                    if let Some(j) = &journal {
                        let _ = j.append(JournalEvent::Heartbeat(fp, pid));
                    }
                }
            }
        })
    };

    // Claim loop. Workers scan the plan from different offsets so they
    // mostly avoid racing the same fingerprint; rescans back off
    // exponentially (capped) when everything left is leased elsewhere.
    let n = plan.unique.len();
    let offset = (worker_id as usize * n).checked_div(workers).unwrap_or(0);
    let mut done: HashSet<u64> = HashSet::new();
    let mut local_faults = FaultStats::default();
    let mut backoff_ms = RESCAN_BACKOFF_BASE_MS;
    let mut exit_code = 0;
    'outer: loop {
        if signals::drain_signal().is_some() {
            exit_code = EXIT_DRAINED;
            break 'outer;
        }
        let mut progress = false;
        let mut remaining = 0usize;
        for i in 0..n {
            let run = &plan.unique[(offset + i) % n];
            let fp = run.fingerprint;
            if done.contains(&fp) {
                continue;
            }
            if cache.entry_path(fp).exists() || poison_path(&poison_dir, fp).exists() {
                done.insert(fp);
                continue;
            }
            if signals::drain_signal().is_some() {
                exit_code = EXIT_DRAINED;
                break 'outer;
            }
            match leases.try_claim(fp) {
                Err(e) => {
                    eprintln!("worker {worker_id}: claim failed for {}: {e}", fingerprint_hex(fp));
                    remaining += 1;
                }
                Ok(Claim::Held { .. }) => {
                    remaining += 1;
                }
                Ok(Claim::Contended { age, holder }) => {
                    // The claim retry budget burned out on reclaim churn
                    // without ever seeing a live heartbeat. Count it, log
                    // it, and let the rescan backoff absorb the spin.
                    local_faults.lease_contended += 1;
                    eprintln!(
                        "worker {worker_id}: claim space for {} contended \
                         (last holder {holder:?}, last age {age:?}); backing off",
                        fingerprint_hex(fp)
                    );
                    remaining += 1;
                }
                Ok(Claim::Acquired(lease)) => {
                    // The race window between the cache probe and the
                    // claim: if the previous holder committed and
                    // released in between, skip the redundant execution.
                    if cache.entry_path(fp).exists() {
                        lease.release();
                        done.insert(fp);
                        progress = true;
                        continue;
                    }
                    if let Some(j) = &journal {
                        let _ = j.append(JournalEvent::Claimed(fp, pid));
                    }
                    *current.lock().expect("heartbeat mutex poisoned") = Some(lease);
                    // An injected crash aborts right here — the whole
                    // worker dies holding the lease, which is exactly the
                    // failure the supervisor exists to absorb.
                    let result = execute_single(run, opts, &span_log, journal.as_deref());
                    match result {
                        Ok(outcome) => {
                            store_outcome(
                                &cache,
                                fp,
                                &outcome,
                                opts,
                                &mut local_faults,
                                journal.as_deref(),
                            );
                        }
                        Err(error) => {
                            // Locally-contained failure (panic, budget,
                            // sim error): publish nothing. The final
                            // in-process pass re-executes this run — the
                            // failure is deterministic — and writes the
                            // structured record. Mark it done so this
                            // worker does not spin on it.
                            eprintln!(
                                "worker {worker_id}: run {} failed locally: {}",
                                fingerprint_hex(fp),
                                error.message()
                            );
                        }
                    }
                    done.insert(fp);
                    if let Some(lease) = current.lock().expect("heartbeat mutex poisoned").take() {
                        if let Some(j) = &journal {
                            let _ = j.append(JournalEvent::Released(fp, pid));
                        }
                        lease.release();
                    }
                    progress = true;
                }
            }
        }
        if remaining == 0 {
            break;
        }
        if progress {
            backoff_ms = RESCAN_BACKOFF_BASE_MS;
        } else {
            std::thread::sleep(Duration::from_millis(backoff_ms));
            backoff_ms = (backoff_ms * 2).min(RESCAN_BACKOFF_CAP_MS);
        }
    }

    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let _ = hb.join();
    // Belt and braces: a drained loop may still hold a lease.
    if let Some(lease) = current.lock().expect("heartbeat mutex poisoned").take() {
        lease.release();
    }
    // Workers have no channel back to the supervisor's FaultStats, so
    // claim-space anomalies are at least made visible on stderr.
    local_faults.lease_clock_skew += leases.clock_skew_events() as usize;
    if local_faults.lease_contended > 0 || local_faults.lease_clock_skew > 0 {
        eprintln!(
            "worker {worker_id}: claim-space anomalies: {} contended claim(s), {} clock-skew probe(s)",
            local_faults.lease_contended, local_faults.lease_clock_skew
        );
    }
    exit_code
}
