//! The campaign journal: an append-only, crash-tolerant record of what a
//! campaign planned, started, and durably committed.
//!
//! The run cache alone cannot answer "what was the campaign doing when it
//! died?": a missing entry might mean the run was never reached, or that
//! it was mid-simulation when the process was killed. The journal closes
//! that gap with three event kinds appended to
//! `<cache>/journal/campaign.journal`:
//!
//! - `Planned(fp)` — the deduplicated plan, written once up front;
//! - `Started(fp)` — a worker began simulating this fingerprint;
//! - `Committed(fp)` — the outcome was durably published to the cache
//!   (the atomic rename completed).
//!
//! On `--resume`, [`Journal::resume`] replays the log and classifies every
//! fingerprint as *never started*, *in flight at crash* (started, never
//! committed), or *committed* — planner telemetry reports the counts, so a
//! recovered campaign states exactly what the crash interrupted instead of
//! inferring it from cache misses.
//!
//! Multi-process campaigns add three worker-attributed kinds:
//!
//! - `Claimed(fp, pid)` — a worker process acquired the lease for `fp`;
//! - `Heartbeat(fp, pid)` — the worker refreshed its claim mid-run;
//! - `Released(fp, pid)` — the worker gave the claim back (after a
//!   commit, or after a locally-contained failure).
//!
//! Worker processes cannot share the supervisor's journal file handle, so
//! each appends to its own shard ([`Journal::shard`]):
//! `worker-<id>-<pid>.journal` next to `campaign.journal`. Replay merges
//! the campaign log and every shard — classification only needs set
//! union, never cross-file ordering.
//!
//! ## Record format
//!
//! Each record is length-prefixed and checksummed:
//!
//! ```text
//! [len: u32 LE] [checksum: u64 LE] [payload: len bytes]
//! payload = [kind: u8] [fingerprint: u64 LE] ([pid: u32 LE])
//! ```
//!
//! (the pid field is present only for the worker-attributed kinds 4-6.)
//!
//! where `checksum` is the stable [`Fingerprint`] hash of the payload
//! bytes. A `kill -9` can land mid-append, leaving a torn tail: replay
//! stops at the first record whose length is implausible or whose
//! checksum fails, truncates the file back to the last whole record, and
//! reports the dropped byte count (`journal_torn_bytes`). Everything
//! before the tear is still trusted — the protocol never needs the tail,
//! because a torn append can only lose the *most recent* events, and a
//! lost `Committed` merely downgrades a run to "in flight", which resume
//! treats conservatively.
//!
//! One journal serves one campaign: [`Journal::begin`] truncates the
//! campaign log and removes stale worker shards, so concurrent campaigns
//! must use distinct cache directories (the same restriction the cache's
//! temp-file naming already lifts for plain stores).

use lf_stats::Fingerprint;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// File name of the journal inside the journal directory.
pub const JOURNAL_FILE: &str = "campaign.journal";

/// Prefix of per-worker journal shards inside the journal directory.
pub const WORKER_SHARD_PREFIX: &str = "worker-";

/// Prefix of per-request scoped campaign logs (`campaign-<scope>.journal`)
/// written by the resident service: each queued request journals into its
/// own file so requests sharing one cache directory never truncate or
/// interleave each other's records. Note it never collides with
/// [`JOURNAL_FILE`] (`campaign.journal` has no dash).
pub const REQUEST_SCOPE_PREFIX: &str = "campaign-";

/// Records longer than this are rejected as torn/corrupt during replay
/// (real payloads are 9 bytes; the bound only guards against reading a
/// garbage length and allocating gigabytes).
const MAX_PAYLOAD: u32 = 4096;

/// One journal event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalEvent {
    /// A fingerprint entered the deduplicated execution plan.
    Planned(u64),
    /// A worker began simulating the fingerprint.
    Started(u64),
    /// The fingerprint's outcome was durably published to the run cache.
    Committed(u64),
    /// A worker process (with the given pid) acquired the lease.
    Claimed(u64, u32),
    /// The worker refreshed its lease mid-run.
    Heartbeat(u64, u32),
    /// The worker released its lease.
    Released(u64, u32),
}

impl JournalEvent {
    fn kind(&self) -> u8 {
        match self {
            JournalEvent::Planned(_) => 1,
            JournalEvent::Started(_) => 2,
            JournalEvent::Committed(_) => 3,
            JournalEvent::Claimed(_, _) => 4,
            JournalEvent::Heartbeat(_, _) => 5,
            JournalEvent::Released(_, _) => 6,
        }
    }

    fn fingerprint(&self) -> u64 {
        match self {
            JournalEvent::Planned(fp) | JournalEvent::Started(fp) | JournalEvent::Committed(fp) => {
                *fp
            }
            JournalEvent::Claimed(fp, _)
            | JournalEvent::Heartbeat(fp, _)
            | JournalEvent::Released(fp, _) => *fp,
        }
    }

    fn pid(&self) -> Option<u32> {
        match self {
            JournalEvent::Claimed(_, pid)
            | JournalEvent::Heartbeat(_, pid)
            | JournalEvent::Released(_, pid) => Some(*pid),
            _ => None,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(13);
        payload.push(self.kind());
        payload.extend_from_slice(&self.fingerprint().to_le_bytes());
        if let Some(pid) = self.pid() {
            payload.extend_from_slice(&pid.to_le_bytes());
        }
        let mut record = Vec::with_capacity(12 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&checksum(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        record
    }

    fn decode(payload: &[u8]) -> Option<JournalEvent> {
        if payload.len() < 9 {
            return None;
        }
        let fp = u64::from_le_bytes(payload[1..9].try_into().ok()?);
        match (payload[0], payload.len()) {
            (1, 9) => Some(JournalEvent::Planned(fp)),
            (2, 9) => Some(JournalEvent::Started(fp)),
            (3, 9) => Some(JournalEvent::Committed(fp)),
            (kind @ 4..=6, 13) => {
                let pid = u32::from_le_bytes(payload[9..13].try_into().ok()?);
                Some(match kind {
                    4 => JournalEvent::Claimed(fp, pid),
                    5 => JournalEvent::Heartbeat(fp, pid),
                    _ => JournalEvent::Released(fp, pid),
                })
            }
            _ => None,
        }
    }
}

/// Stable payload checksum (the cross-process [`Fingerprint`] hash, not
/// `DefaultHasher`, so a journal written by one binary replays in
/// another).
fn checksum(payload: &[u8]) -> u64 {
    let mut fp = Fingerprint::new();
    fp.bytes(payload);
    fp.finish()
}

/// The classification of one fingerprint after replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// Planned (or unknown) but never picked up by a worker.
    NeverStarted,
    /// A worker had started it and no commit record exists — the run was
    /// in flight when the campaign died (or its cache store failed).
    InFlight,
    /// Durably committed to the run cache.
    Committed,
}

/// The result of replaying a journal: per-state fingerprint sets plus
/// torn-tail accounting.
#[derive(Debug, Clone, Default)]
pub struct Replay {
    /// Whole records successfully replayed.
    pub records: usize,
    /// Every fingerprint with a `Planned` record.
    pub planned: HashSet<u64>,
    /// Every fingerprint with a `Started` record.
    pub started: HashSet<u64>,
    /// Every fingerprint with a `Committed` record.
    pub committed: HashSet<u64>,
    /// Every fingerprint a worker process `Claimed` (lease acquired).
    pub claimed: HashSet<u64>,
    /// Bytes truncated from a torn tail (0 = the log was whole), summed
    /// across the campaign log and all worker shards.
    pub torn_bytes: u64,
}

impl Replay {
    /// Classifies one fingerprint. A worker-side `Claimed` without a
    /// `Started` still counts as in flight: the lease was acquired, so
    /// the run may have been executing when the campaign died.
    pub fn classify(&self, fingerprint: u64) -> RunState {
        if self.committed.contains(&fingerprint) {
            RunState::Committed
        } else if self.started.contains(&fingerprint) || self.claimed.contains(&fingerprint) {
            RunState::InFlight
        } else {
            RunState::NeverStarted
        }
    }

    /// Merges another replay (a worker shard) into this one.
    fn absorb(&mut self, other: Replay) {
        self.records += other.records;
        self.planned.extend(other.planned);
        self.started.extend(other.started);
        self.committed.extend(other.committed);
        self.claimed.extend(other.claimed);
        self.torn_bytes += other.torn_bytes;
    }
}

/// Handle on an open campaign journal. Appends are serialized through a
/// mutex (workers commit `Started` records concurrently) and each append
/// is flushed and fsynced before returning: an event the engine acted on
/// is on disk before the action becomes observable elsewhere.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
}

impl Journal {
    /// Starts a fresh journal for a new campaign, truncating any previous
    /// log in `dir` (the previous campaign is either complete — its
    /// journal is history — or is being deliberately restarted from
    /// scratch).
    pub fn begin(dir: &Path) -> io::Result<Journal> {
        std::fs::create_dir_all(dir)?;
        remove_worker_shards(dir);
        remove_scoped_logs(dir);
        let path = dir.join(JOURNAL_FILE);
        let file = File::create(&path)?;
        Ok(Journal { path, file: Mutex::new(file) })
    }

    /// Starts a fresh *scoped* campaign log, `campaign-<scope>.journal`,
    /// truncating only this scope's previous log. Used by the resident
    /// service, where several requests journal into one cache directory:
    /// a request must never truncate the shared log (or a sibling's) the
    /// way [`Journal::begin`] does.
    pub fn begin_scoped(dir: &Path, scope: &str) -> io::Result<Journal> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{REQUEST_SCOPE_PREFIX}{scope}.journal"));
        let file = File::create(&path)?;
        Ok(Journal { path, file: Mutex::new(file) })
    }

    /// Reopens the journal of a crashed (or completed) campaign: replays
    /// every whole record of the campaign log *and* every worker shard,
    /// truncates torn tails in place, and returns the journal positioned
    /// to append. A missing journal resumes as empty — the campaign may
    /// have died before planning.
    pub fn resume(dir: &Path) -> io::Result<(Journal, Replay)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let replay = replay_dir(dir)?;
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok((Journal { path, file: Mutex::new(file) }, replay))
    }

    /// Opens (creating if needed) a per-worker journal shard,
    /// `worker-<label>.journal`, in append mode. Worker processes cannot
    /// share the supervisor's file handle without interleaving torn
    /// records, so each gets its own shard; replay merges them.
    pub fn shard(dir: &Path, label: &str) -> io::Result<Journal> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{WORKER_SHARD_PREFIX}{label}.journal"));
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Journal { path, file: Mutex::new(file) })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one event, fsyncing before returning.
    pub fn append(&self, event: JournalEvent) -> io::Result<()> {
        self.append_all(&[event])
    }

    /// Appends a batch of events with a single fsync (the planned-set
    /// prologue writes hundreds of records; one sync covers them all).
    pub fn append_all(&self, events: &[JournalEvent]) -> io::Result<()> {
        let mut buf = Vec::with_capacity(events.len() * 21);
        for ev in events {
            buf.extend_from_slice(&ev.encode());
        }
        let mut file = self.file.lock().expect("journal mutex poisoned");
        file.write_all(&buf)?;
        file.sync_data()
    }
}

/// Removes every `worker-*.journal` shard in `dir` (fresh campaigns must
/// not replay a previous campaign's worker events).
pub fn remove_worker_shards(dir: &Path) {
    remove_matching(dir, WORKER_SHARD_PREFIX);
}

/// Removes every scoped request log (`campaign-*.journal`) in `dir`. The
/// resident service sweeps these at startup, and a fresh one-shot
/// campaign clears them along with the worker shards — either way a
/// dead server's request logs must not leak into later replays.
pub fn remove_scoped_logs(dir: &Path) {
    remove_matching(dir, REQUEST_SCOPE_PREFIX);
}

fn remove_matching(dir: &Path, prefix: &str) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with(prefix) && name.ends_with(".journal") {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Replays and merges the campaign journal plus every worker shard and
/// scoped request log in `dir`, truncating torn tails in each file.
/// Missing files replay as empty.
pub fn replay_dir(dir: &Path) -> io::Result<Replay> {
    let mut replay = replay_and_truncate(&dir.join(JOURNAL_FILE))?;
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(replay),
        Err(e) => return Err(e),
    };
    // Deterministic merge order (sets make order irrelevant for
    // classification, but torn-byte accounting reads better stable).
    let mut shards: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name().and_then(|n| n.to_str()).is_some_and(|n| {
                n.ends_with(".journal")
                    && (n.starts_with(WORKER_SHARD_PREFIX) || n.starts_with(REQUEST_SCOPE_PREFIX))
            })
        })
        .collect();
    shards.sort();
    for shard in shards {
        replay.absorb(replay_and_truncate(&shard)?);
    }
    Ok(replay)
}

/// Replays the journal at `path`, truncating any torn tail back to the
/// last whole record. A missing file replays as empty.
pub fn replay_and_truncate(path: &Path) -> io::Result<Replay> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Replay::default()),
        Err(e) => return Err(e),
    }

    let mut replay = Replay::default();
    let mut offset = 0usize;
    loop {
        let rest = &bytes[offset..];
        if rest.is_empty() {
            break;
        }
        let Some(record) = read_record(rest) else {
            // Torn tail: truncate back to the last whole record.
            replay.torn_bytes = rest.len() as u64;
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(offset as u64)?;
            f.sync_all()?;
            break;
        };
        let (event, consumed) = record;
        match event {
            JournalEvent::Planned(fp) => {
                replay.planned.insert(fp);
            }
            JournalEvent::Started(fp) => {
                replay.started.insert(fp);
            }
            JournalEvent::Committed(fp) => {
                replay.committed.insert(fp);
            }
            JournalEvent::Claimed(fp, _) => {
                replay.claimed.insert(fp);
            }
            // Heartbeats refresh liveness, not state; a release does not
            // un-claim for classification (the claim still says "a worker
            // may have been executing this").
            JournalEvent::Heartbeat(_, _) | JournalEvent::Released(_, _) => {}
        }
        replay.records += 1;
        offset += consumed;
    }
    Ok(replay)
}

/// Decodes one whole record from the head of `bytes`, or `None` if the
/// head is torn (short header, implausible length, short payload, bad
/// checksum, or unknown payload shape).
fn read_record(bytes: &[u8]) -> Option<(JournalEvent, usize)> {
    if bytes.len() < 12 {
        return None;
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
    if len == 0 || len > MAX_PAYLOAD {
        return None;
    }
    let end = 12 + len as usize;
    if bytes.len() < end {
        return None;
    }
    let stored = u64::from_le_bytes(bytes[4..12].try_into().ok()?);
    let payload = &bytes[12..end];
    if checksum(payload) != stored {
        return None;
    }
    Some((JournalEvent::decode(payload)?, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("lf-bench-journal-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_and_classifies() {
        let dir = scratch_dir("round-trip");
        let j = Journal::begin(&dir).unwrap();
        j.append_all(&[
            JournalEvent::Planned(1),
            JournalEvent::Planned(2),
            JournalEvent::Planned(3),
        ])
        .unwrap();
        j.append(JournalEvent::Started(1)).unwrap();
        j.append(JournalEvent::Committed(1)).unwrap();
        j.append(JournalEvent::Started(2)).unwrap();
        drop(j);

        let (_, replay) = Journal::resume(&dir).unwrap();
        assert_eq!(replay.records, 6);
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(replay.classify(1), RunState::Committed);
        assert_eq!(replay.classify(2), RunState::InFlight, "started but never committed");
        assert_eq!(replay.classify(3), RunState::NeverStarted);
        assert_eq!(replay.classify(999), RunState::NeverStarted, "unknown = never started");
    }

    #[test]
    fn torn_tail_is_detected_and_truncated() {
        let dir = scratch_dir("torn");
        let j = Journal::begin(&dir).unwrap();
        j.append(JournalEvent::Planned(7)).unwrap();
        j.append(JournalEvent::Started(7)).unwrap();
        let path = j.path().to_path_buf();
        drop(j);

        // A kill mid-append leaves a prefix of the next record.
        let whole = std::fs::read(&path).unwrap();
        let mut torn = whole.clone();
        torn.extend_from_slice(&JournalEvent::Committed(7).encode()[..10]);
        std::fs::write(&path, &torn).unwrap();

        let (_, replay) = Journal::resume(&dir).unwrap();
        assert_eq!(replay.records, 2, "whole records replay");
        assert_eq!(replay.torn_bytes, 10, "the torn tail is measured");
        assert_eq!(replay.classify(7), RunState::InFlight, "the lost commit downgrades safely");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            whole,
            "the file is truncated back to the last whole record"
        );
        // A second replay sees a whole log.
        let (_, again) = Journal::resume(&dir).unwrap();
        assert_eq!(again.torn_bytes, 0);
        assert_eq!(again.records, 2);
    }

    #[test]
    fn corrupted_checksum_tears_the_log_at_the_bad_record() {
        let dir = scratch_dir("checksum");
        let j = Journal::begin(&dir).unwrap();
        j.append(JournalEvent::Planned(1)).unwrap();
        j.append(JournalEvent::Committed(1)).unwrap();
        j.append(JournalEvent::Planned(2)).unwrap();
        let path = j.path().to_path_buf();
        drop(j);

        // Flip one payload byte of the middle record (bytes 21..42 are the
        // second record; payload starts at 21 + 12).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[21 + 12] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let (_, replay) = Journal::resume(&dir).unwrap();
        assert_eq!(replay.records, 1, "replay stops at the corrupt record");
        assert_eq!(replay.classify(1), RunState::NeverStarted, "the lost commit is dropped");
        assert!(replay.torn_bytes > 0);
    }

    #[test]
    fn missing_journal_resumes_empty() {
        let dir = scratch_dir("missing");
        let (j, replay) = Journal::resume(&dir).unwrap();
        assert_eq!(replay.records, 0);
        assert_eq!(replay.torn_bytes, 0);
        // And the handle is usable.
        j.append(JournalEvent::Planned(5)).unwrap();
        let (_, again) = Journal::resume(&dir).unwrap();
        assert_eq!(again.records, 1);
    }

    #[test]
    fn begin_truncates_the_previous_campaign() {
        let dir = scratch_dir("fresh");
        let j = Journal::begin(&dir).unwrap();
        j.append(JournalEvent::Planned(1)).unwrap();
        drop(j);
        let j2 = Journal::begin(&dir).unwrap();
        drop(j2);
        let (_, replay) = Journal::resume(&dir).unwrap();
        assert_eq!(replay.records, 0, "begin() starts a fresh log");
    }

    #[test]
    fn worker_shards_merge_into_the_replay() {
        let dir = scratch_dir("shards");
        let j = Journal::begin(&dir).unwrap();
        j.append_all(&[JournalEvent::Planned(1), JournalEvent::Planned(2)]).unwrap();
        drop(j);

        let w0 = Journal::shard(&dir, "0-100").unwrap();
        w0.append(JournalEvent::Claimed(1, 100)).unwrap();
        w0.append(JournalEvent::Started(1)).unwrap();
        w0.append(JournalEvent::Committed(1)).unwrap();
        w0.append(JournalEvent::Released(1, 100)).unwrap();
        drop(w0);
        let w1 = Journal::shard(&dir, "1-101").unwrap();
        w1.append(JournalEvent::Claimed(2, 101)).unwrap();
        w1.append(JournalEvent::Heartbeat(2, 101)).unwrap();
        drop(w1);

        let (_, replay) = Journal::resume(&dir).unwrap();
        assert_eq!(replay.records, 2 + 4 + 2);
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(replay.classify(1), RunState::Committed);
        assert_eq!(
            replay.classify(2),
            RunState::InFlight,
            "claimed-but-never-committed counts as in flight"
        );

        // A fresh campaign clears the shards along with the log.
        drop(Journal::begin(&dir).unwrap());
        let (_, again) = Journal::resume(&dir).unwrap();
        assert_eq!(again.records, 0, "begin() removes worker shards");
    }

    #[test]
    fn scoped_request_logs_are_isolated_and_merge_into_replay() {
        let dir = scratch_dir("scoped");
        // Two service requests journal side by side; neither touches the
        // other's log or the shared campaign.journal.
        let r1 = Journal::begin_scoped(&dir, "req-1").unwrap();
        r1.append_all(&[JournalEvent::Planned(1), JournalEvent::Started(1)]).unwrap();
        drop(r1);
        let r2 = Journal::begin_scoped(&dir, "req-2").unwrap();
        r2.append_all(&[
            JournalEvent::Planned(1),
            JournalEvent::Started(1),
            JournalEvent::Committed(1),
        ])
        .unwrap();
        drop(r2);

        let replay = replay_dir(&dir).unwrap();
        assert_eq!(replay.records, 5, "both scoped logs merge");
        assert_eq!(replay.classify(1), RunState::Committed);

        // Re-beginning one scope truncates only that scope's log.
        drop(Journal::begin_scoped(&dir, "req-1").unwrap());
        let replay = replay_dir(&dir).unwrap();
        assert_eq!(replay.records, 3, "req-2's records survive req-1's restart");

        // A fresh one-shot campaign clears every scoped log.
        drop(Journal::begin(&dir).unwrap());
        let (_, again) = Journal::resume(&dir).unwrap();
        assert_eq!(again.records, 0, "begin() removes scoped request logs");
    }

    #[test]
    fn remove_scoped_logs_spares_the_campaign_journal() {
        let dir = scratch_dir("scoped-sweep");
        let j = Journal::begin(&dir).unwrap();
        j.append(JournalEvent::Planned(4)).unwrap();
        drop(j);
        drop(Journal::begin_scoped(&dir, "req-9").unwrap());
        remove_scoped_logs(&dir);
        assert!(dir.join(JOURNAL_FILE).exists());
        assert!(!dir.join("campaign-req-9.journal").exists());
        let (_, replay) = Journal::resume(&dir).unwrap();
        assert_eq!(replay.records, 1, "the shared log is untouched");
    }

    #[test]
    fn worker_event_payloads_round_trip() {
        let dir = scratch_dir("worker-events");
        let j = Journal::begin(&dir).unwrap();
        let events = [
            JournalEvent::Claimed(0xdead_beef, 4242),
            JournalEvent::Heartbeat(0xdead_beef, 4242),
            JournalEvent::Released(0xdead_beef, 4242),
        ];
        j.append_all(&events).unwrap();
        let path = j.path().to_path_buf();
        drop(j);
        let replay = replay_and_truncate(&path).unwrap();
        assert_eq!(replay.records, 3);
        assert!(replay.claimed.contains(&0xdead_beef));
        // And the raw decode matches what was appended.
        for ev in &events {
            let encoded = ev.encode();
            let (decoded, consumed) = read_record(&encoded).unwrap();
            assert_eq!(&decoded, ev);
            assert_eq!(consumed, encoded.len());
        }
    }

    #[test]
    fn concurrent_appends_interleave_whole_records() {
        let dir = scratch_dir("concurrent");
        let j = std::sync::Arc::new(Journal::begin(&dir).unwrap());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let j = j.clone();
                scope.spawn(move || {
                    for i in 0..25u64 {
                        j.append(JournalEvent::Started(t * 1000 + i)).unwrap();
                    }
                });
            }
        });
        let (_, replay) = Journal::resume(&dir).unwrap();
        assert_eq!(replay.records, 100, "all records are whole despite concurrent appenders");
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(replay.started.len(), 100);
    }
}
