//! Figure 1: geomean IPC and commit utilization vs. front-end width.
//!
//! The paper measures four Intel microarchitectures of increasing width and
//! finds IPC rising roughly linearly while the fraction of commit bandwidth
//! actually used falls. We reproduce the trend by sweeping our baseline
//! core's width (4/6/8/10) over the CPU 2017 analog suite — raw, hint-free
//! programs, single-threadlet, no speculation.

use crate::engine::planner::{Hinting, Planner};
use crate::engine::{EngineCtx, Scenario};
use crate::table::write_table;
use crate::RunArtifact;
use lf_uarch::CoreConfig;
use lf_workloads::Suite;
use loopfrog::LoopFrogConfig;
use std::fmt::Write;

const WIDTHS: [usize; 4] = [4, 6, 8, 10];

fn width_cfg(width: usize) -> LoopFrogConfig {
    LoopFrogConfig {
        core: CoreConfig { threadlets: 1, ..CoreConfig::with_width(width) },
        speculation: false,
        ..LoopFrogConfig::default()
    }
}

/// The Figure 1 scenario.
pub struct Fig1WidthSweep;

impl Scenario for Fig1WidthSweep {
    fn name(&self) -> &'static str {
        "fig1_width_sweep"
    }

    fn title(&self) -> &'static str {
        "Figure 1: IPC and commit utilization vs front-end width"
    }

    fn plan(&self, p: &mut Planner<'_>) {
        for w in p.kernels().iter().filter(|w| w.suite == Suite::Cpu2017) {
            for width in WIDTHS {
                p.request(w.name, Hinting::Raw, &width_cfg(width));
            }
        }
    }

    fn render(&self, ctx: &EngineCtx<'_>, out: &mut String) -> RunArtifact {
        writeln!(out, "{}", self.title()).unwrap();
        writeln!(
            out,
            "(paper: Intel Skylake→Golden Cove trend; here: width sweep of our baseline core)\n"
        )
        .unwrap();
        let suite: Vec<_> = ctx.kernels().iter().filter(|w| w.suite == Suite::Cpu2017).collect();
        let mut rows = Vec::new();
        let mut points = Vec::new();
        let mut failures = Vec::new();
        for width in WIDTHS {
            let cfg = width_cfg(width);
            let mut ipcs = Vec::new();
            let mut utils = Vec::new();
            for w in &suite {
                match ctx.try_outcome(w.name, &Hinting::Raw, &cfg) {
                    Ok(r) => {
                        ipcs.push(r.stats.ipc());
                        utils.push(r.stats.commit_utilization(width));
                    }
                    Err(f) => {
                        writeln!(
                            out,
                            "FAILED {} at {width}-wide: {} ({})",
                            w.name,
                            f.error.message(),
                            f.cell()
                        )
                        .unwrap();
                        failures.push(f.to_json());
                    }
                }
            }
            rows.push(vec![
                format!("{width}-wide"),
                format!("{:.2}", lf_stats::geomean(&ipcs)),
                format!("{:.1}%", lf_stats::geomean(&utils) * 100.0),
            ]);
            let mut p = lf_stats::Json::obj();
            p.set("width", width);
            p.set("geomean_ipc", lf_stats::geomean(&ipcs));
            p.set("commit_utilization", lf_stats::geomean(&utils));
            p.set("kernels", ipcs.len());
            points.push(p);
        }
        write_table(out, &["core", "geomean IPC", "commit utilization"], &rows);
        writeln!(out, "\npaper shape: IPC grows with width; commit utilization falls.").unwrap();
        let mut art = RunArtifact::new(self.name(), ctx.scale());
        art.set_extra("sweep", lf_stats::Json::Arr(points));
        if !failures.is_empty() {
            art.set_extra("failures", lf_stats::Json::Arr(failures));
        }
        art
    }
}
