//! §6.7: generality — the speedup restricted to loops that are *not*
//! inside an OpenMP parallel region in the original benchmark.
//!
//! Paper: considering only non-OpenMP loops, the CPU 2017 geomean is still
//! +7.5%, showing LoopFrog's gains are orthogonal to coarse TLP.

use crate::engine::{EngineCtx, Planner, Scenario};
use crate::{fmt_pct, RunArtifact, RunConfig};
use lf_workloads::Suite;
use std::fmt::Write;

/// The generality scenario.
pub struct Generality;

impl Scenario for Generality {
    fn name(&self) -> &'static str {
        "generality"
    }

    fn title(&self) -> &'static str {
        "§6.7: generality (CPU 2017 analogs)"
    }

    fn plan(&self, p: &mut Planner<'_>) {
        p.request_suite(&RunConfig::default());
    }

    fn render(&self, ctx: &EngineCtx<'_>, out: &mut String) -> RunArtifact {
        let cfg = RunConfig::default();
        let runs = ctx.suite_runs(&cfg);
        let s17: Vec<_> = runs.iter().filter(|r| r.suite == Suite::Cpu2017).collect();
        let all: Vec<f64> = s17.iter().map(|r| r.speedup()).collect();
        // Kernels whose source loop sits in an OpenMP region contribute no
        // LoopFrog gain in this analysis (their coarse parallelism is
        // assumed already exploited).
        let non_omp: Vec<f64> =
            s17.iter().map(|r| if r.in_openmp_region { 1.0 } else { r.speedup() }).collect();
        writeln!(out, "{}\n", self.title()).unwrap();
        writeln!(out, "geomean, all loops:                {}", fmt_pct(lf_stats::geomean(&all)))
            .unwrap();
        writeln!(
            out,
            "geomean, non-OpenMP loops only:    {} (paper: +7.5% vs +9.5%)",
            fmt_pct(lf_stats::geomean(&non_omp))
        )
        .unwrap();
        let omp = s17.iter().filter(|r| r.in_openmp_region).count();
        writeln!(
            out,
            "\n{omp} of {} CPU 2017 analogs mirror loops inside OpenMP regions",
            s17.len()
        )
        .unwrap();
        let mut art = RunArtifact::new(self.name(), ctx.scale());
        art.set_config(&cfg);
        for r in &runs {
            art.push_kernel(r);
        }
        if let Some(failures) = ctx.note_suite_failures(&cfg, out) {
            art.set_extra("failures", failures);
        }
        art
    }
}
