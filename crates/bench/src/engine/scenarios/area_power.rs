//! §6.8: area and power overheads.
//!
//! The analytic part reproduces the paper's arithmetic (SSB + conflict
//! checker ≈ 2% of a Neoverse-N1-class core; 12-17% total with SMT
//! support, vs. 6-8% conventional scaling from Pollack's rule for the same
//! area). The dynamic part measures the speculation activity counters the
//! paper reports: issued-instruction increase, L2 access increase, and L2
//! miss change.

use crate::area::AreaEstimate;
use crate::engine::{EngineCtx, Planner, Scenario};
use crate::table::write_table;
use crate::{RunArtifact, RunConfig};
use std::fmt::Write;

/// The area/power scenario.
pub struct AreaPower;

impl Scenario for AreaPower {
    fn name(&self) -> &'static str {
        "area_power"
    }

    fn title(&self) -> &'static str {
        "§6.8: area model (7 nm)"
    }

    fn plan(&self, p: &mut Planner<'_>) {
        p.request_suite(&RunConfig::default());
    }

    fn render(&self, ctx: &EngineCtx<'_>, out: &mut String) -> RunArtifact {
        let a = AreaEstimate::paper();
        writeln!(out, "{}\n", self.title()).unwrap();
        write_table(
            out,
            &["component", "value"],
            &[
                vec!["SSB granule cache (4 slices)".into(), format!("{:.3} mm²", a.ssb_mm2)],
                vec!["Bloom-filter conflict checker".into(), format!("{:.3} mm²", a.conflict_mm2)],
                vec![
                    "reference core (Neoverse N1 + L1 + 1MB L2)".into(),
                    format!("{:.1} mm²", a.core_mm2),
                ],
                vec![
                    "LoopFrog structures / core".into(),
                    format!("{:.1}%", a.loopfrog_structures_frac() * 100.0),
                ],
                vec![
                    "total increase (with SMT support)".into(),
                    format!(
                        "{:.0}-{:.0}%",
                        a.total_increase().0 * 100.0,
                        a.total_increase().1 * 100.0
                    ),
                ],
                vec![
                    "Pollack's-rule speedup for same area".into(),
                    format!(
                        "{:.0}-{:.0}%",
                        (a.pollack_speedup().0 - 1.0) * 100.0,
                        (a.pollack_speedup().1 - 1.0) * 100.0
                    ),
                ],
            ],
        );

        let cfg = RunConfig::default();
        let runs = ctx.suite_runs(&cfg);
        let mut issued_up = Vec::new();
        let mut l2_up = Vec::new();
        let mut l2_miss = Vec::new();
        for r in &runs {
            if r.deselected {
                continue;
            }
            let (lf, base) = (r.lf_stats(), r.base_stats());
            issued_up.push(lf.issued_insts as f64 / base.issued_insts.max(1) as f64);
            l2_up.push(
                lf.counters.get("l2_accesses") as f64
                    / base.counters.get("l2_accesses").max(1) as f64,
            );
            l2_miss.push(
                lf.counters.get("l2_misses") as f64 / base.counters.get("l2_misses").max(1) as f64,
            );
        }
        writeln!(out, "\ndynamic activity (LoopFrog / baseline, geomean over selected kernels):")
            .unwrap();
        writeln!(
            out,
            "  instructions issued: {:+.1}% (paper +14%)",
            (lf_stats::geomean(&issued_up) - 1.0) * 100.0
        )
        .unwrap();
        writeln!(
            out,
            "  L2 accesses:         {:+.1}% (paper +1.7%)",
            (lf_stats::geomean(&l2_up) - 1.0) * 100.0
        )
        .unwrap();
        writeln!(
            out,
            "  L2 misses:           {:+.1}% (paper -2.3%)",
            (lf_stats::geomean(&l2_miss) - 1.0) * 100.0
        )
        .unwrap();
        let mut art = RunArtifact::new(self.name(), ctx.scale());
        art.set_config(&cfg);
        for r in &runs {
            art.push_kernel(r);
        }
        let mut area = lf_stats::Json::obj();
        area.set("ssb_mm2", a.ssb_mm2);
        area.set("conflict_mm2", a.conflict_mm2);
        area.set("core_mm2", a.core_mm2);
        area.set("loopfrog_structures_frac", a.loopfrog_structures_frac());
        art.set_extra("area_model", area);
        let mut dynamic = lf_stats::Json::obj();
        dynamic.set("issued_insts_ratio", lf_stats::geomean(&issued_up));
        dynamic.set("l2_accesses_ratio", lf_stats::geomean(&l2_up));
        dynamic.set("l2_misses_ratio", lf_stats::geomean(&l2_miss));
        art.set_extra("dynamic_activity", dynamic);
        if let Some(failures) = ctx.note_suite_failures(&cfg, out) {
            art.set_extra("failures", failures);
        }
        art
    }
}
