//! Table 2: sources of performance gains.
//!
//! Paper (over 38 profitable loops): memory parallelism 17 loops / 29% of
//! the gain, control dependencies 9 / 23%, dependency chains 2 / 12%,
//! branch-condition prefetching 6 / 32%, data-value prefetching 4 / 3%.
//! As in the paper, each profitable kernel's speedup is attributed wholly
//! to its dominant category.

use crate::engine::{EngineCtx, Planner, Scenario};
use crate::table::write_table;
use crate::{RunArtifact, RunConfig};
use lf_workloads::Category;
use std::fmt::Write;

/// The Table 2 scenario.
pub struct Table2Categories;

impl Scenario for Table2Categories {
    fn name(&self) -> &'static str {
        "table2_categories"
    }

    fn title(&self) -> &'static str {
        "Table 2: sources of performance gains (profitable kernels only)"
    }

    fn plan(&self, p: &mut Planner<'_>) {
        p.request_suite(&RunConfig::default());
    }

    fn render(&self, ctx: &EngineCtx<'_>, out: &mut String) -> RunArtifact {
        let cfg = RunConfig::default();
        let runs = ctx.suite_runs(&cfg);
        let profitable: Vec<_> = runs.iter().filter(|r| r.speedup() > 1.01).collect();
        let total_log_gain: f64 = profitable.iter().map(|r| r.speedup().ln()).sum();

        writeln!(out, "{}\n", self.title()).unwrap();
        let cats = [
            (Category::MemParallelism, "True parallelism", "Memory parallelism", "29%"),
            (Category::ControlDep, "True parallelism", "Control dependencies", "23%"),
            (Category::DepChains, "True parallelism", "Dependency chains", "12%"),
            (Category::BranchPrefetch, "Prefetching", "Branch conditions", "32%"),
            (Category::DataPrefetch, "Prefetching", "Data values", "3%"),
            (Category::NoSpeedup, "(expected no speedup)", "-", "-"),
        ];
        let mut rows = Vec::new();
        for (cat, class, sub, paper) in cats {
            let in_cat: Vec<_> = profitable.iter().filter(|r| r.category == cat).collect();
            let log_gain: f64 = in_cat.iter().map(|r| r.speedup().ln()).sum();
            let frac = if total_log_gain > 0.0 { log_gain / total_log_gain * 100.0 } else { 0.0 };
            rows.push(vec![
                class.to_string(),
                sub.to_string(),
                in_cat.len().to_string(),
                format!("{frac:.0}%"),
                paper.to_string(),
            ]);
        }
        write_table(
            out,
            &["category", "sub-category", "kernels", "fraction of speedup", "paper"],
            &rows,
        );
        writeln!(out, "\n{} of {} kernels profitable", profitable.len(), runs.len()).unwrap();
        let mut art = RunArtifact::new(self.name(), ctx.scale());
        art.set_config(&cfg);
        for r in &runs {
            art.push_kernel(r);
        }
        if let Some(failures) = ctx.note_suite_failures(&cfg, out) {
            art.set_extra("failures", failures);
        }
        art
    }
}
