//! Figure 10: sensitivity to the SSB/conflict-detector granule size.
//!
//! Paper: 1-4 B granules are equivalent; 8 B costs one benchmark ~5%;
//! 16 B drops the geomean to +6.5% and full-line (32 B) granularity — the
//! approach of prior work — to +6%, due to false-sharing conflicts.

use crate::engine::{EngineCtx, Planner, Scenario};
use crate::table::write_table;
use crate::{fmt_pct, RunArtifact, RunConfig};
use std::fmt::Write;

const GRANULES: [usize; 6] = [1, 2, 4, 8, 16, 32];

fn granule_cfg(granule: usize) -> RunConfig {
    let mut cfg = RunConfig::default();
    cfg.lf.ssb.granule = granule;
    cfg
}

/// The Figure 10 scenario.
pub struct Fig10Granule;

impl Scenario for Fig10Granule {
    fn name(&self) -> &'static str {
        "fig10_granule"
    }

    fn title(&self) -> &'static str {
        "Figure 10: speedup vs conflict granule size (default 4 B)"
    }

    fn plan(&self, p: &mut Planner<'_>) {
        for granule in GRANULES {
            p.request_suite(&granule_cfg(granule));
        }
    }

    fn render(&self, ctx: &EngineCtx<'_>, out: &mut String) -> RunArtifact {
        writeln!(out, "{}\n", self.title()).unwrap();
        let mut rows = Vec::new();
        let mut points = Vec::new();
        let mut failures = Vec::new();
        for granule in GRANULES {
            let cfg = granule_cfg(granule);
            let runs = ctx.suite_runs(&cfg);
            ctx.note_point_failures(&cfg, &format!("{granule} B"), out, &mut failures);
            let g = lf_stats::geomean(&runs.iter().map(|r| r.speedup()).collect::<Vec<_>>());
            let conflicts: u64 = runs.iter().map(|r| r.lf_stats().squashes_conflict).sum();
            rows.push(vec![format!("{granule} B"), fmt_pct(g), conflicts.to_string()]);
            let mut p = lf_stats::Json::obj();
            p.set("granule_bytes", granule);
            p.set("geomean_speedup", g);
            p.set("conflict_squashes", conflicts);
            p.set("kernels", runs.len());
            points.push(p);
        }
        write_table(out, &["granule", "geomean speedup", "conflict squashes"], &rows);
        writeln!(out, "\npaper shape: flat ≤4 B; increasing false sharing beyond 8 B.").unwrap();
        let mut art = RunArtifact::new(self.name(), ctx.scale());
        art.set_config(&RunConfig::default());
        art.set_extra("sweep", lf_stats::Json::Arr(points));
        if !failures.is_empty() {
            art.set_extra("failures", lf_stats::Json::Arr(failures));
        }
        art
    }
}
