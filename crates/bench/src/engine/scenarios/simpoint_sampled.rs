//! Tiered-simulation proof: the sampled tier vs full detailed runs.
//!
//! Where `simpoint_check` validates the SimPoint *methodology* with
//! bespoke emulator-side snapshots, this scenario exercises the
//! production tiered path end to end — [`crate::tiered::build_plan`]'s
//! functional passes, warm [`lf_isa::Checkpoint`]s, detailed warm-up
//! windows, and [`crate::tiered::sample_windows`]'s weighted whole-run
//! reconstruction — and reports what the tier buys: the detailed-cycle
//! reduction and the sampled-vs-full relative error, both carried in the
//! artifact's telemetry.
//!
//! The full detailed runs are planned requests (they deduplicate with the
//! headline suite); the sampled measurements are bespoke render-phase
//! work, exactly like `simpoint_check`'s.

use crate::engine::planner::{Hinting, Planner};
use crate::engine::{EngineCtx, Scenario};
use crate::tiered::{build_plan, sample_windows};
use crate::{RunArtifact, RunConfig};
use std::fmt::Write;

const KERNELS: [&str; 4] = ["stencil_blur", "event_queue", "hash_lookup", "md_force"];

/// The sampled-tier speedup/accuracy scenario.
pub struct SimpointSampled;

impl Scenario for SimpointSampled {
    fn name(&self) -> &'static str {
        "simpoint_sampled"
    }

    fn title(&self) -> &'static str {
        "tiered simulation: sampled windows vs full detailed runs"
    }

    fn plan(&self, p: &mut Planner<'_>) {
        let cfg = RunConfig::default();
        for w in p.kernels() {
            if KERNELS.contains(&w.name) {
                p.request(w.name, Hinting::Annotated(cfg.select.clone()), &cfg.lf);
            }
        }
    }

    fn render(&self, ctx: &EngineCtx<'_>, out: &mut String) -> RunArtifact {
        let rc = RunConfig::default();
        let hinting = Hinting::Annotated(rc.select.clone());
        writeln!(out, "{}\n", self.title()).unwrap();
        writeln!(
            out,
            "{:<16} {:>9} {:>4} {:>12} {:>12} {:>7} {:>10}",
            "kernel", "insts", "k", "full cycles", "estimated", "error", "reduction"
        )
        .unwrap();

        let mut points = Vec::new();
        let mut failures = Vec::new();
        let kernels =
            KERNELS.iter().filter_map(|name| ctx.kernels().iter().find(|w| w.name == *name));
        for w in kernels {
            let full = match ctx.try_outcome(w.name, &hinting, &rc.lf) {
                Ok(outcome) => outcome,
                Err(f) => {
                    writeln!(out, "{:<16} FAILED: {} ({})", w.name, f.error.message(), f.cell())
                        .unwrap();
                    failures.push(f.to_json());
                    continue;
                }
            };
            let prep = ctx.prepared(w.name, &hinting);
            let plan = build_plan(&prep.program, &w.mem).expect("functional passes succeed");
            let m = sample_windows(&prep.program, &plan, &rc.lf).expect("windows simulate");
            let err = (m.est_cycles - full.stats.cycles as f64) / full.stats.cycles as f64 * 100.0;
            let reduction = full.stats.cycles as f64 / m.detailed_cycles as f64;
            writeln!(
                out,
                "{:<16} {:>9} {:>4} {:>12} {:>12.0} {:>+6.1}% {:>9.1}x",
                w.name,
                plan.total_insts,
                plan.picks.len(),
                full.stats.cycles,
                m.est_cycles,
                err,
                reduction
            )
            .unwrap();
            let mut p = lf_stats::Json::obj();
            p.set("kernel", w.name);
            p.set("total_insts", plan.total_insts);
            p.set("interval_len", plan.interval_len);
            p.set("simpoints", plan.picks.len() as u64);
            p.set("full_cycles", full.stats.cycles);
            p.set("estimated_cycles", m.est_cycles);
            p.set("detailed_cycles", m.detailed_cycles);
            p.set("error_pct", err);
            p.set("detailed_cycle_reduction", reduction);
            points.push(p);
        }
        writeln!(
            out,
            "\nsampled tier: functional fast-forward + warm checkpoints + weighted windows;"
        )
        .unwrap();
        writeln!(out, "reduction is full detailed cycles over cycles the tier simulated.").unwrap();
        let mut art = RunArtifact::new(self.name(), ctx.scale());
        art.set_extra("sampled_vs_full", lf_stats::Json::Arr(points));
        if !failures.is_empty() {
            art.set_extra("failures", lf_stats::Json::Arr(failures));
        }
        art
    }
}
