//! §6.6: SSB associativity sensitivity and the victim buffer.
//!
//! Paper: limiting slice associativity to 4/8 ways costs 2.0%/1.4% of the
//! headline speedup; adding a small shared victim buffer (8 entries)
//! reduces the impact to 1.2% in both cases.

use crate::engine::{EngineCtx, Planner, Scenario};
use crate::table::write_table;
use crate::{fmt_pct, RunArtifact, RunConfig};
use std::fmt::Write;

const VARIANTS: [(&str, Option<usize>, usize); 5] = [
    ("full assoc", None, 0),
    ("8-way", Some(8), 0),
    ("4-way", Some(4), 0),
    ("8-way + victim", Some(8), 8),
    ("4-way + victim", Some(4), 8),
];

fn assoc_cfg(assoc: Option<usize>, victim: usize) -> RunConfig {
    let mut cfg = RunConfig::default();
    cfg.lf.ssb.assoc = assoc;
    cfg.lf.ssb.victim_entries = victim;
    cfg
}

/// The associativity-sensitivity scenario.
pub struct AssocSensitivity;

impl Scenario for AssocSensitivity {
    fn name(&self) -> &'static str {
        "assoc_sensitivity"
    }

    fn title(&self) -> &'static str {
        "§6.6: SSB associativity sensitivity (default: fully associative)"
    }

    fn plan(&self, p: &mut Planner<'_>) {
        for (_, assoc, victim) in VARIANTS {
            p.request_suite(&assoc_cfg(assoc, victim));
        }
    }

    fn render(&self, ctx: &EngineCtx<'_>, out: &mut String) -> RunArtifact {
        writeln!(out, "{}\n", self.title()).unwrap();
        let mut rows = Vec::new();
        let mut points = Vec::new();
        let mut failures = Vec::new();
        for (label, assoc, victim) in VARIANTS {
            let cfg = assoc_cfg(assoc, victim);
            let runs = ctx.suite_runs(&cfg);
            ctx.note_point_failures(&cfg, label, out, &mut failures);
            let g = lf_stats::geomean(&runs.iter().map(|r| r.speedup()).collect::<Vec<_>>());
            let stalls: u64 = runs.iter().map(|r| r.lf_stats().squashes_overflow).sum();
            rows.push(vec![label.to_string(), fmt_pct(g), stalls.to_string()]);
            let mut p = lf_stats::Json::obj();
            p.set("label", label);
            p.set("geomean_speedup", g);
            p.set("overflow_stalls", stalls);
            p.set("kernels", runs.len());
            points.push(p);
        }
        write_table(out, &["SSB slices", "geomean speedup", "overflow stalls"], &rows);
        writeln!(
            out,
            "\npaper shape: limited associativity costs 1-2pp; the victim buffer recovers most of it."
        )
        .unwrap();
        let mut art = RunArtifact::new(self.name(), ctx.scale());
        art.set_config(&RunConfig::default());
        art.set_extra("sweep", lf_stats::Json::Arr(points));
        if !failures.is_empty() {
            art.set_extra("failures", lf_stats::Json::Arr(failures));
        }
        art
    }
}
