//! Table 3: comparison with past TLS/SpMT schemes.
//!
//! LoopFrog's speedup is measured on this repository's simulator; STAMPede
//! and Multiscalar come from the cost models in `lf-baselines`, driven with
//! their papers' characteristic task sizes, and are calibrated against the
//! published results. As the paper notes, the numbers are not like-for-like.

use crate::engine::{EngineCtx, Planner, Scenario};
use crate::table::write_table;
use crate::{RunArtifact, RunConfig};
use lf_baselines::table3;
use std::fmt::Write;

/// The Table 3 scenario.
pub struct Table3Comparison;

impl Scenario for Table3Comparison {
    fn name(&self) -> &'static str {
        "table3_comparison"
    }

    fn title(&self) -> &'static str {
        "Table 3: comparison with past TLS/SpMT schemes"
    }

    fn plan(&self, p: &mut Planner<'_>) {
        p.request_suite(&RunConfig::default());
    }

    fn render(&self, ctx: &EngineCtx<'_>, out: &mut String) -> RunArtifact {
        let cfg = RunConfig::default();
        let runs = ctx.suite_runs(&cfg);
        let suite17: Vec<f64> = runs
            .iter()
            .filter(|r| r.suite == lf_workloads::Suite::Cpu2017)
            .map(|r| r.speedup())
            .collect();
        let measured = lf_stats::geomean(&suite17);

        writeln!(out, "{}\n", self.title()).unwrap();
        let rows: Vec<Vec<String>> = table3(measured)
            .into_iter()
            .map(|r| {
                vec![
                    r.scheme.to_string(),
                    format!("{:.2}x", r.speedup),
                    r.cores,
                    format!("~{:.2}x", r.area),
                    r.baseline.to_string(),
                    r.task_sizes.to_string(),
                    r.deployment.to_string(),
                ]
            })
            .collect();
        write_table(
            out,
            &["scheme", "speedup", "cores", "area", "baseline", "task sizes", "deployment"],
            &rows,
        );
        writeln!(
            out,
            "\npaper: LoopFrog 1.1x @ ~1.15x area; STAMPede 1.16x @ >4x; Multiscalar 2.16x @ ~8x."
        )
        .unwrap();
        let mut art = RunArtifact::new(self.name(), ctx.scale());
        art.set_config(&cfg);
        for r in &runs {
            art.push_kernel(r);
        }
        art.set_extra("measured_geomean_cpu2017", measured);
        if let Some(failures) = ctx.note_suite_failures(&cfg, out) {
            art.set_extra("failures", failures);
        }
        art
    }
}
