//! §4.2 / §6.1 ablation: idealized vs. real Bloom-filter conflict sets.
//!
//! The paper's headline configuration models idealized filters ("No false
//! positives modeled") and estimates that a naive design could make ~2% of
//! epochs fail from false aliasing. This experiment swaps in real filters
//! (Swarm-style 4,096-bit, and deliberately undersized ones) and measures
//! the speedup cost and the rate of aliasing-induced squashes.

use crate::engine::{EngineCtx, Planner, Scenario};
use crate::table::write_table;
use crate::{fmt_pct, RunArtifact, RunConfig};
use std::fmt::Write;

const VARIANTS: [(&str, Option<(usize, u32)>); 4] = [
    ("idealized (exact)", None),
    ("4096-bit, 4 hashes", Some((4096, 4))),
    ("1024-bit, 4 hashes", Some((1024, 4))),
    ("256-bit, 2 hashes", Some((256, 2))),
];

fn bloom_cfg(bloom: Option<(usize, u32)>) -> RunConfig {
    let mut cfg = RunConfig::default();
    cfg.lf.ssb.bloom = bloom;
    cfg
}

/// The Bloom-filter ablation scenario.
pub struct BloomAblation;

impl Scenario for BloomAblation {
    fn name(&self) -> &'static str {
        "bloom_ablation"
    }

    fn title(&self) -> &'static str {
        "Bloom-filter conflict-set ablation (default: idealized, exact sets)"
    }

    fn plan(&self, p: &mut Planner<'_>) {
        for (_, bloom) in VARIANTS {
            p.request_suite(&bloom_cfg(bloom));
        }
    }

    fn render(&self, ctx: &EngineCtx<'_>, out: &mut String) -> RunArtifact {
        writeln!(out, "{}\n", self.title()).unwrap();
        let mut rows = Vec::new();
        let mut points = Vec::new();
        let mut failures = Vec::new();
        for (label, bloom) in VARIANTS {
            let cfg = bloom_cfg(bloom);
            let runs = ctx.suite_runs(&cfg);
            ctx.note_point_failures(&cfg, label, out, &mut failures);
            let g = lf_stats::geomean(&runs.iter().map(|r| r.speedup()).collect::<Vec<_>>());
            let fp: u64 = runs
                .iter()
                .map(|r| r.lf_stats().counters.get("bloom_false_positive_squashes"))
                .sum();
            let spawns: u64 = runs.iter().map(|r| r.lf_stats().spawns).sum();
            let epoch_fail = if spawns == 0 { 0.0 } else { fp as f64 / spawns as f64 * 100.0 };
            rows.push(vec![
                label.to_string(),
                fmt_pct(g),
                fp.to_string(),
                format!("{epoch_fail:.2}%"),
            ]);
            let mut p = lf_stats::Json::obj();
            p.set("label", label);
            p.set("geomean_speedup", g);
            p.set("false_positive_squashes", fp);
            p.set("epoch_fail_pct", epoch_fail);
            points.push(p);
        }
        write_table(
            out,
            &["conflict sets", "geomean speedup", "false-positive squashes", "epochs failed"],
            &rows,
        );
        writeln!(out, "\npaper: a naive design could fail ~2% of epochs; properly sized").unwrap();
        writeln!(out, "filters (4,096 bits) should be indistinguishable from idealized sets.")
            .unwrap();
        let mut art = RunArtifact::new(self.name(), ctx.scale());
        art.set_config(&RunConfig::default());
        art.set_extra("sweep", lf_stats::Json::Arr(points));
        if !failures.is_empty() {
            art.set_extra("failures", lf_stats::Json::Arr(failures));
        }
        art
    }
}
