//! The scenario registry: every figure/table reproduction, one module
//! each, registered in render order.
//!
//! Scenario names are the stable CLI surface of `lf-bench run` and match
//! the historical per-figure binaries (which now shim into the engine).

mod area_power;
mod assoc_sensitivity;
mod bloom_ablation;
mod dynamic_deselect;
mod fig10_granule;
mod fig1_width_sweep;
mod fig6_speedups;
mod fig7_utilization;
mod fig8_ipc_breakdown;
mod fig9_ssb_size;
mod generality;
mod packing_ablation;
mod simpoint_check;
mod simpoint_sampled;
mod table2_categories;
mod table3_comparison;

use super::Scenario;

/// All registered scenarios, in render order.
pub fn all() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(fig1_width_sweep::Fig1WidthSweep),
        Box::new(fig6_speedups::Fig6Speedups),
        Box::new(fig7_utilization::Fig7Utilization),
        Box::new(fig8_ipc_breakdown::Fig8IpcBreakdown),
        Box::new(fig9_ssb_size::Fig9SsbSize),
        Box::new(fig10_granule::Fig10Granule),
        Box::new(table2_categories::Table2Categories),
        Box::new(table3_comparison::Table3Comparison),
        Box::new(assoc_sensitivity::AssocSensitivity),
        Box::new(bloom_ablation::BloomAblation),
        Box::new(dynamic_deselect::DynamicDeselect),
        Box::new(packing_ablation::PackingAblation),
        Box::new(generality::Generality),
        Box::new(area_power::AreaPower),
        Box::new(simpoint_check::SimpointCheck),
        Box::new(simpoint_sampled::SimpointSampled),
    ]
}
