//! §6.5: iteration packing ablation.
//!
//! Paper: packing affects 5 of the 13 profitable benchmarks, adds +0.9pp
//! to the geomean (9.5% → 8.6% without), with a mean packing factor of
//! 2.1× and a maximum of 25×.

use crate::engine::{EngineCtx, Planner, Scenario};
use crate::table::write_table;
use crate::{fmt_pct, RunArtifact, RunConfig};
use std::fmt::Write;

fn no_packing_cfg() -> RunConfig {
    let mut cfg = RunConfig::default();
    cfg.lf.packing.enabled = false;
    cfg
}

/// The iteration-packing ablation scenario.
pub struct PackingAblation;

impl Scenario for PackingAblation {
    fn name(&self) -> &'static str {
        "packing_ablation"
    }

    fn title(&self) -> &'static str {
        "§6.5: iteration packing ablation"
    }

    fn plan(&self, p: &mut Planner<'_>) {
        p.request_suite(&RunConfig::default());
        p.request_suite(&no_packing_cfg());
    }

    fn render(&self, ctx: &EngineCtx<'_>, out: &mut String) -> RunArtifact {
        let cfg_with = RunConfig::default();
        let with = ctx.suite_runs(&cfg_with);
        let without = ctx.suite_runs(&no_packing_cfg());

        writeln!(out, "{}\n", self.title()).unwrap();
        let mut rows = Vec::new();
        let mut affected = 0;
        // Join the two suite views by kernel name: with failure-tolerant
        // rendering either side may be missing a kernel, so positional
        // zipping would misalign the comparison.
        let without_by_name: std::collections::HashMap<&str, &crate::KernelRun> =
            without.iter().map(|r| (r.name, r)).collect();
        for w in &with {
            let Some(wo) = without_by_name.get(w.name) else {
                continue;
            };
            let delta = w.speedup() / wo.speedup();
            if (delta - 1.0).abs() > 0.005 {
                affected += 1;
            }
            rows.push(vec![
                w.name.to_string(),
                fmt_pct(w.speedup()),
                fmt_pct(wo.speedup()),
                format!("{:+.1}pp", (w.speedup() - wo.speedup()) * 100.0),
                format!("{:.1}", w.lf_stats().mean_pack_factor()),
                w.lf_stats().pack_factor_max.to_string(),
            ]);
        }
        rows.extend(ctx.failed_suite_rows(&cfg_with, 6));
        write_table(
            out,
            &["kernel", "with packing", "without", "delta", "mean factor", "max factor"],
            &rows,
        );
        let g_with = lf_stats::geomean(&with.iter().map(|r| r.speedup()).collect::<Vec<_>>());
        let g_without = lf_stats::geomean(&without.iter().map(|r| r.speedup()).collect::<Vec<_>>());
        let packed_factors: Vec<f64> = with
            .iter()
            .filter(|r| r.lf_stats().packed_spawns > 0)
            .map(|r| r.lf_stats().mean_pack_factor())
            .collect();
        writeln!(
            out,
            "\ngeomean with packing {} vs without {} ({:+.1}pp; paper +0.9pp)",
            fmt_pct(g_with),
            fmt_pct(g_without),
            (g_with - g_without) * 100.0
        )
        .unwrap();
        writeln!(
            out,
            "{affected} kernels affected (paper: 5); mean packing factor {:.1} (paper 2.1), max {} (paper 25)",
            lf_stats::mean(&packed_factors),
            with.iter().map(|r| r.lf_stats().pack_factor_max).max().unwrap_or(0)
        )
        .unwrap();
        let mut art = RunArtifact::new(self.name(), ctx.scale());
        art.set_config(&cfg_with);
        for r in &with {
            art.push_kernel(r);
        }
        let mut abl = lf_stats::Json::obj();
        abl.set("geomean_with_packing", g_with);
        abl.set("geomean_without_packing", g_without);
        let no_pack: Vec<lf_stats::Json> = without
            .iter()
            .map(|r| {
                let mut k = lf_stats::Json::obj();
                k.set("name", r.name);
                k.set("speedup", r.speedup());
                k
            })
            .collect();
        abl.set("without_packing", lf_stats::Json::Arr(no_pack));
        art.set_extra("ablation", abl);
        let mut failures = Vec::new();
        ctx.note_point_failures(&cfg_with, "with packing", out, &mut failures);
        ctx.note_point_failures(&no_packing_cfg(), "without packing", out, &mut failures);
        if !failures.is_empty() {
            art.set_extra("failures", lf_stats::Json::Arr(failures));
        }
        art
    }
}
