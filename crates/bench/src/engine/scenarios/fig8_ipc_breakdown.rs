//! Figure 8: instructions committed per cycle by the architectural and
//! speculative threadlets (including misspeculation), normalized to the
//! baseline IPC.
//!
//! Paper: the architectural threadlet runs ~6% below baseline due to
//! resource sharing; successful speculation recoups that and adds the
//! +9.5%; an extra ~31% of commits belong to speculation that later fails.

use crate::engine::{EngineCtx, Planner, Scenario};
use crate::table::write_table;
use crate::{RunArtifact, RunConfig};
use std::fmt::Write;

/// The Figure 8 scenario.
pub struct Fig8IpcBreakdown;

impl Scenario for Fig8IpcBreakdown {
    fn name(&self) -> &'static str {
        "fig8_ipc_breakdown"
    }

    fn title(&self) -> &'static str {
        "Figure 8: commit-rate breakdown, normalized to baseline IPC"
    }

    fn plan(&self, p: &mut Planner<'_>) {
        p.request_suite(&RunConfig::default());
    }

    fn render(&self, ctx: &EngineCtx<'_>, out: &mut String) -> RunArtifact {
        let cfg = RunConfig::default();
        let runs = ctx.suite_runs(&cfg);
        writeln!(out, "{}\n", self.title()).unwrap();
        let mut rows = Vec::new();
        let (mut archs, mut succs, mut fails) = (Vec::new(), Vec::new(), Vec::new());
        for r in &runs {
            let base_ipc = r.base_stats().ipc();
            let lf = r.lf_stats();
            let cyc = lf.cycles.max(1) as f64;
            let arch = lf.commits_arch as f64 / cyc / base_ipc;
            let succ = lf.commits_spec_success as f64 / cyc / base_ipc;
            let fail = lf.commits_spec_failed as f64 / cyc / base_ipc;
            archs.push(arch);
            succs.push(succ);
            fails.push(fail);
            rows.push(vec![
                r.name.to_string(),
                format!("{:.2}", arch),
                format!("{:.2}", succ),
                format!("{:.2}", fail),
                format!("{:.2}", arch + succ),
            ]);
        }
        rows.extend(ctx.failed_suite_rows(&cfg, 5));
        write_table(
            out,
            &["kernel", "architectural", "spec (success)", "spec (failed)", "useful total"],
            &rows,
        );
        writeln!(
            out,
            "\nmeans: architectural {:.2} (paper ≈0.94 of baseline), successful spec {:.2}, failed spec {:.2} (paper ≈0.31)",
            lf_stats::mean(&archs),
            lf_stats::mean(&succs),
            lf_stats::mean(&fails)
        )
        .unwrap();
        let mut art = RunArtifact::new(self.name(), ctx.scale());
        art.set_config(&cfg);
        for r in &runs {
            art.push_kernel(r);
        }
        if let Some(failures) = ctx.note_suite_failures(&cfg, out) {
            art.set_extra("failures", failures);
        }
        art
    }
}
