//! Figure 9: sensitivity of the geomean speedup to the SSB size.
//!
//! Paper: 8 KiB is the headline; 32 KiB adds <0.1%, 2 KiB costs only 0.4%,
//! and even 512 B still gains +6.2% — size acts almost binarily per loop
//! (does the working set fit?).

use crate::engine::{EngineCtx, Planner, Scenario};
use crate::table::write_table;
use crate::{fmt_pct, RunArtifact, RunConfig};
use std::fmt::Write;

const SIZES: [(&str, usize); 4] =
    [("512 B", 512), ("2 KiB", 2 << 10), ("8 KiB", 8 << 10), ("32 KiB", 32 << 10)];

fn size_cfg(bytes: usize) -> RunConfig {
    let mut cfg = RunConfig::default();
    cfg.lf.ssb.size_bytes = bytes;
    cfg
}

/// The Figure 9 scenario.
pub struct Fig9SsbSize;

impl Scenario for Fig9SsbSize {
    fn name(&self) -> &'static str {
        "fig9_ssb_size"
    }

    fn title(&self) -> &'static str {
        "Figure 9: speedup vs SSB size (default 8 KiB)"
    }

    fn plan(&self, p: &mut Planner<'_>) {
        for (_, bytes) in SIZES {
            p.request_suite(&size_cfg(bytes));
        }
    }

    fn render(&self, ctx: &EngineCtx<'_>, out: &mut String) -> RunArtifact {
        writeln!(out, "{}\n", self.title()).unwrap();
        let mut rows = Vec::new();
        let mut points = Vec::new();
        let mut failures = Vec::new();
        for (label, bytes) in SIZES {
            let cfg = size_cfg(bytes);
            let runs = ctx.suite_runs(&cfg);
            ctx.note_point_failures(&cfg, label, out, &mut failures);
            let g = lf_stats::geomean(&runs.iter().map(|r| r.speedup()).collect::<Vec<_>>());
            let stalls: u64 = runs.iter().map(|r| r.lf_stats().squashes_overflow).sum();
            rows.push(vec![label.to_string(), fmt_pct(g), stalls.to_string()]);
            let mut p = lf_stats::Json::obj();
            p.set("size_bytes", bytes);
            p.set("geomean_speedup", g);
            p.set("overflow_stalls", stalls);
            p.set("kernels", runs.len());
            points.push(p);
        }
        write_table(out, &["SSB size", "geomean speedup", "overflow stalls"], &rows);
        writeln!(out, "\npaper shape: flat from 2 KiB up; degraded but still positive at 512 B.")
            .unwrap();
        let mut art = RunArtifact::new(self.name(), ctx.scale());
        art.set_config(&RunConfig::default());
        art.set_extra("sweep", lf_stats::Json::Arr(points));
        if !failures.is_empty() {
            art.set_extra("failures", lf_stats::Json::Arr(failures));
        }
        art
    }
}
