//! §5.1 ablation: static vs. dynamic loop deselection.
//!
//! The paper's prototype simulates *perfect static selection* via profiling
//! and notes that "unprofitable loops must be excluded by either static or
//! dynamic deselection, as they may lead to slowdown (up to 10% in our
//! tests)". This experiment quantifies all four quadrants on our suite:
//! no deselection at all, dynamic-only (run-time counters), static-only
//! (the profile oracle), and both.
//!
//! Static deselection is a render-time policy (it compares the two runs),
//! so the `none`/`static only` and `dynamic only`/`static + dynamic`
//! quadrant pairs deduplicate to the same simulations in the planner.

use crate::engine::{EngineCtx, Planner, Scenario};
use crate::table::write_table;
use crate::{fmt_pct, RunArtifact, RunConfig};
use loopfrog::DeselectConfig;
use std::fmt::Write;

const VARIANTS: [(&str, bool, bool); 4] = [
    ("none", false, false),
    ("dynamic only", false, true),
    ("static only (oracle)", true, false),
    ("static + dynamic", true, true),
];

fn quadrant_cfg(static_sel: bool, dynamic: bool) -> RunConfig {
    let mut cfg = RunConfig { deselect_unprofitable: static_sel, ..RunConfig::default() };
    cfg.lf.deselect = DeselectConfig { enabled: dynamic, ..DeselectConfig::default() };
    cfg
}

/// The deselection-ablation scenario.
pub struct DynamicDeselect;

impl Scenario for DynamicDeselect {
    fn name(&self) -> &'static str {
        "dynamic_deselect"
    }

    fn title(&self) -> &'static str {
        "§5.1: loop deselection ablation"
    }

    fn plan(&self, p: &mut Planner<'_>) {
        for (_, static_sel, dynamic) in VARIANTS {
            p.request_suite(&quadrant_cfg(static_sel, dynamic));
        }
    }

    fn render(&self, ctx: &EngineCtx<'_>, out: &mut String) -> RunArtifact {
        writeln!(out, "{}\n", self.title()).unwrap();
        let mut rows = Vec::new();
        let mut points = Vec::new();
        let mut failures = Vec::new();
        for (label, static_sel, dynamic) in VARIANTS {
            let cfg = quadrant_cfg(static_sel, dynamic);
            let runs = ctx.suite_runs(&cfg);
            ctx.note_point_failures(&cfg, label, out, &mut failures);
            let speedups: Vec<f64> = runs.iter().map(|r| r.speedup()).collect();
            let worst = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
            let suppressed: u64 =
                runs.iter().map(|r| r.lf_stats().counters.get("regions_suppressed")).sum();
            rows.push(vec![
                label.to_string(),
                fmt_pct(lf_stats::geomean(&speedups)),
                fmt_pct(worst),
                suppressed.to_string(),
            ]);
            let mut p = lf_stats::Json::obj();
            p.set("label", label);
            p.set("geomean_speedup", lf_stats::geomean(&speedups));
            p.set("worst_speedup", worst);
            p.set("regions_suppressed", suppressed);
            points.push(p);
        }
        write_table(
            out,
            &["deselection", "geomean speedup", "worst kernel", "regions suppressed"],
            &rows,
        );
        writeln!(out, "\npaper: without deselection, unprofitable loops cost up to 10%;").unwrap();
        writeln!(out, "dynamic deselection should recover most of the static oracle's benefit.")
            .unwrap();
        let mut art = RunArtifact::new(self.name(), ctx.scale());
        art.set_config(&RunConfig::default());
        art.set_extra("sweep", lf_stats::Json::Arr(points));
        if !failures.is_empty() {
            art.set_extra("failures", lf_stats::Json::Arr(failures));
        }
        art
    }
}
