//! §6.1 methodology check: SimPoint-style sampled simulation.
//!
//! The paper simulates up to 15 SimPoints of 250M instructions per SPEC
//! benchmark and estimates the whole run from the cluster weights. This
//! experiment validates the same pipeline end-to-end at our scale: collect
//! basic-block vectors on the golden emulator, cluster them (random
//! projection + k-means + BIC), warm-start the cycle simulator at each
//! representative interval, and compare the weighted cycle estimate with
//! the full detailed simulation.
//!
//! The full-run ground truth is a planned request (it deduplicates with
//! the headline suite); the BBV collection and the short warm-start
//! simulations are bespoke per-scenario work and run in the render phase.

use crate::engine::planner::{Hinting, Planner};
use crate::engine::{EngineCtx, Scenario};
use crate::{RunArtifact, RunConfig};
use lf_compiler::Cfg;
use lf_isa::Emulator;
use lf_stats::simpoint::{pick_simpoints, weighted_cycles, BbvCollector};
use loopfrog::{LoopFrogConfig, LoopFrogCore};
use std::fmt::Write;

const KERNELS: [&str; 4] = ["stencil_blur", "event_queue", "hash_lookup", "md_force"];

/// The SimPoint methodology-check scenario.
pub struct SimpointCheck;

impl Scenario for SimpointCheck {
    fn name(&self) -> &'static str {
        "simpoint_check"
    }

    fn title(&self) -> &'static str {
        "§6.1 methodology: SimPoint-sampled vs full detailed simulation"
    }

    fn plan(&self, p: &mut Planner<'_>) {
        let cfg = RunConfig::default();
        for w in p.kernels() {
            if KERNELS.contains(&w.name) {
                p.request(w.name, Hinting::Annotated(cfg.select.clone()), &cfg.lf);
            }
        }
    }

    fn render(&self, ctx: &EngineCtx<'_>, out: &mut String) -> RunArtifact {
        let rc = RunConfig::default();
        let hinting = Hinting::Annotated(rc.select.clone());
        writeln!(out, "{}\n", self.title()).unwrap();
        writeln!(
            out,
            "{:<16} {:>9} {:>6} {:>12} {:>12} {:>7}",
            "kernel", "insts", "k", "full cycles", "estimated", "error"
        )
        .unwrap();

        let mut points = Vec::new();
        let mut failures = Vec::new();
        let kernels =
            KERNELS.iter().filter_map(|name| ctx.kernels().iter().find(|w| w.name == *name));
        for w in kernels {
            // The full-run ground truth (and the preparation it depends
            // on) may have failed; skip the kernel with an explicit line
            // rather than aborting the whole methodology check.
            let full = match ctx.try_outcome(w.name, &hinting, &rc.lf) {
                Ok(outcome) => outcome,
                Err(f) => {
                    writeln!(out, "{:<16} FAILED: {} ({})", w.name, f.error.message(), f.cell())
                        .unwrap();
                    failures.push(f.to_json());
                    continue;
                }
            };
            let prep = ctx.prepared(w.name, &hinting);
            let program = &prep.program;
            let cfg_sim = LoopFrogConfig::default();

            // 1. BBV collection on the golden emulator, with
            //    interval-boundary state snapshots for warm starts.
            let total_insts = {
                let mut e = Emulator::new(program, w.mem.clone());
                e.run(200_000_000).unwrap();
                e.inst_count()
            };
            let interval = (total_insts / 16).max(1_500);
            let cfg_blocks = Cfg::build(program);
            let mut collector = BbvCollector::new(interval);
            let mut snapshots = Vec::new(); // (regs, mem, pc) at interval starts
            {
                let mut e = Emulator::new(program, w.mem.clone());
                let mut since = 0u64;
                snapshots.push((*e.regs(), e.mem().clone(), e.pc()));
                while !e.is_halted() {
                    let pc = e.step().unwrap();
                    collector.record(cfg_blocks.block_of(pc), 1);
                    since += 1;
                    if since == interval {
                        since = 0;
                        snapshots.push((*e.regs(), e.mem().clone(), e.pc()));
                    }
                }
                collector.finish();
            }

            // 2. Cluster and pick representatives.
            let picks = pick_simpoints(collector.vectors(), 6, 0xC0FFEE);

            // 3. Detailed simulation of each representative interval, with
            //    one preceding interval as microarchitectural warmup (the
            //    paper uses 50M-instruction warmups before each 250M
            //    SimPoint).
            let mut samples = Vec::new();
            for p in &picks {
                let idx = p.interval.min(snapshots.len() - 1);
                let warm_idx = idx.saturating_sub(3);
                let warmup = (idx - warm_idx) as u64 * interval;
                let (regs, mem, pc) = &snapshots[warm_idx];
                let mut core = LoopFrogCore::with_initial_state(
                    program,
                    mem.clone(),
                    regs,
                    *pc,
                    cfg_sim.clone(),
                );
                core.run_until_committed(warmup).expect("warmup simulates");
                let (c0, i0) = (core.cycle(), core.committed_insts());
                core.run_until_committed(warmup + interval).expect("interval simulates");
                let (c1, i1) = (core.cycle(), core.committed_insts());
                samples.push((*p, c1 - c0, (i1 - i0).max(1)));
            }
            let estimate = weighted_cycles(&samples, total_insts);

            // 4. Ground truth: the full detailed run (memoized; shared with
            //    every default-config scenario), fetched up front so a
            //    failed run skips the expensive BBV collection too.
            let err = (estimate - full.stats.cycles as f64) / full.stats.cycles as f64 * 100.0;
            writeln!(
                out,
                "{:<16} {:>9} {:>6} {:>12} {:>12.0} {:>+6.1}%",
                w.name,
                total_insts,
                picks.len(),
                full.stats.cycles,
                estimate,
                err
            )
            .unwrap();
            let mut p = lf_stats::Json::obj();
            p.set("kernel", w.name);
            p.set("total_insts", total_insts);
            p.set("simpoints", picks.len());
            p.set("full_cycles", full.stats.cycles);
            p.set("estimated_cycles", estimate);
            p.set("error_pct", err);
            points.push(p);
        }
        writeln!(out, "\npaper methodology: SimPoint-weighted estimates stand in for full runs;")
            .unwrap();
        writeln!(out, "errors within ±10% validate the sampling pipeline at this scale.").unwrap();
        let mut art = RunArtifact::new(self.name(), ctx.scale());
        art.set_extra("simpoint_estimates", lf_stats::Json::Arr(points));
        if !failures.is_empty() {
            art.set_extra("failures", lf_stats::Json::Arr(failures));
        }
        art
    }
}
