//! Figure 7 / §6.3: threadlet utilization over each benchmark's lifetime,
//! and the Amdahl-implied in-region loop speedup.
//!
//! Paper: ≥2 threadlets active 42% of the time in profitable benchmarks
//! (29% overall), all four active 23% (16% overall); in-region geomean
//! speedup 43%.

use crate::engine::{EngineCtx, Planner, Scenario};
use crate::table::write_table;
use crate::{fmt_pct, RunArtifact, RunConfig};
use std::fmt::Write;

/// The Figure 7 scenario.
pub struct Fig7Utilization;

impl Scenario for Fig7Utilization {
    fn name(&self) -> &'static str {
        "fig7_utilization"
    }

    fn title(&self) -> &'static str {
        "Figure 7: threadlet activity distribution (fraction of cycles)"
    }

    fn plan(&self, p: &mut Planner<'_>) {
        p.request_suite(&RunConfig::default());
    }

    fn render(&self, ctx: &EngineCtx<'_>, out: &mut String) -> RunArtifact {
        let cfg = RunConfig::default();
        let runs = ctx.suite_runs(&cfg);
        writeln!(out, "{}\n", self.title()).unwrap();
        let rows: Vec<Vec<String>> = runs
            .iter()
            .map(|r| {
                let lf = r.lf_stats();
                let total = lf.cycles.max(1) as f64;
                let mut cells = vec![r.name.to_string()];
                for k in 0..=4 {
                    let c = lf.cycles_with_active.get(k).copied().unwrap_or(0);
                    cells.push(format!("{:.0}%", c as f64 / total * 100.0));
                }
                cells.push(format!("{:.0}%", lf.frac_active_at_least(2) * 100.0));
                cells
            })
            .collect();
        let mut rows = rows;
        rows.extend(ctx.failed_suite_rows(&cfg, 7));
        write_table(out, &["kernel", "0", "1", "2", "3", "4", "≥2 active"], &rows);

        let profitable: Vec<_> = runs.iter().filter(|r| r.speedup() > 1.01).collect();
        let ge2 = lf_stats::mean(
            &profitable.iter().map(|r| r.lf_stats().frac_active_at_least(2)).collect::<Vec<_>>(),
        );
        let ge4 = lf_stats::mean(
            &profitable.iter().map(|r| r.lf_stats().frac_active_at_least(4)).collect::<Vec<_>>(),
        );
        let all2 = lf_stats::mean(
            &runs.iter().map(|r| r.lf_stats().frac_active_at_least(2)).collect::<Vec<_>>(),
        );
        writeln!(
            out,
            "\nprofitable kernels: ≥2 active {:.0}% of cycles (paper 42%), 4 active {:.0}% (paper 23%)",
            ge2 * 100.0,
            ge4 * 100.0
        )
        .unwrap();
        writeln!(out, "all kernels: ≥2 active {:.0}% (paper 29%)", all2 * 100.0).unwrap();

        // §6.3: invert Amdahl per profitable kernel to estimate in-region speedup.
        let mut region = Vec::new();
        for r in &profitable {
            let lf = r.lf_stats();
            let coverage = lf.region_cycles as f64 / lf.cycles.max(1) as f64;
            if let Some(s) = lf_stats::amdahl_region_speedup(r.speedup(), coverage.clamp(0.05, 1.0))
            {
                region.push(s);
            }
        }
        writeln!(
            out,
            "Amdahl-implied in-region loop speedup geomean: {} (paper: +43%)",
            fmt_pct(lf_stats::geomean(&region))
        )
        .unwrap();
        let mut art = RunArtifact::new(self.name(), ctx.scale());
        art.set_config(&cfg);
        for r in &runs {
            art.push_kernel(r);
        }
        if let Some(failures) = ctx.note_suite_failures(&cfg, out) {
            art.set_extra("failures", failures);
        }
        art
    }
}
