//! Figure 6: whole-program speedups across the SPEC CPU 2006 and CPU 2017
//! analog suites (paper: geomean +9.2% and +9.5%).

use crate::engine::{EngineCtx, Planner, Scenario};
use crate::table::write_table;
use crate::{fmt_pct, RunArtifact, RunConfig};
use lf_workloads::Suite;
use std::fmt::Write;

/// The Figure 6 scenario.
pub struct Fig6Speedups;

impl Scenario for Fig6Speedups {
    fn name(&self) -> &'static str {
        "fig6_speedups"
    }

    fn title(&self) -> &'static str {
        "Figure 6: whole-program speedups (LoopFrog vs baseline, hints-as-NOPs)"
    }

    fn plan(&self, p: &mut Planner<'_>) {
        p.request_suite(&RunConfig::default());
    }

    fn render(&self, ctx: &EngineCtx<'_>, out: &mut String) -> RunArtifact {
        let cfg = RunConfig::default();
        let runs = ctx.suite_runs(&cfg);
        writeln!(out, "{}\n", self.title()).unwrap();
        let rows: Vec<Vec<String>> = runs
            .iter()
            .map(|r| {
                vec![
                    r.name.to_string(),
                    r.spec_analog.to_string(),
                    match r.suite {
                        Suite::Cpu2006 => "CPU2006".into(),
                        Suite::Cpu2017 => "CPU2017".into(),
                    },
                    fmt_pct(r.speedup()),
                    if r.deselected {
                        "deselected".into()
                    } else {
                        format!("{} loops", r.selected_loops)
                    },
                    if r.checksum_ok { "ok".into() } else { "MISMATCH".into() },
                ]
            })
            .collect();
        let mut rows = rows;
        rows.extend(ctx.failed_suite_rows(&cfg, 6));
        write_table(out, &["kernel", "analog", "suite", "speedup", "selection", "check"], &rows);

        for (suite, label, paper) in
            [(Suite::Cpu2006, "CPU 2006", "+9.2%"), (Suite::Cpu2017, "CPU 2017", "+9.5%")]
        {
            let s: Vec<f64> =
                runs.iter().filter(|r| r.suite == suite).map(|r| r.speedup()).collect();
            writeln!(
                out,
                "\n{label} geomean: {} (paper: {paper}); {}/{} kernels gain >1%",
                fmt_pct(lf_stats::geomean(&s)),
                s.iter().filter(|&&x| x > 1.01).count(),
                s.len()
            )
            .unwrap();
        }
        assert!(runs.iter().all(|r| r.checksum_ok), "architectural state mismatch");
        let mut art = RunArtifact::new(self.name(), ctx.scale());
        art.set_config(&cfg);
        for r in &runs {
            art.push_kernel(r);
        }
        if let Some(failures) = ctx.note_suite_failures(&cfg, out) {
            art.set_extra("failures", failures);
        }
        art
    }
}
