//! The resident campaign service: `lf-bench serve` and its thin client
//! `lf-bench submit`.
//!
//! `serve` binds a Unix domain socket and executes queued campaign
//! requests through the same planner → lease → cache → render pipeline
//! as `lf-bench run`, while keeping the expensive state warm across
//! requests: the deduplicated plan index (prepared kernels included, see
//! [`crate::engine::WarmEngine`]) and the run-cache handle. A repeat
//! request therefore skips the plan and prepare phases entirely and its
//! latency is dominated by rendering — the simulations themselves were
//! already absorbed by the disk cache.
//!
//! # Protocol
//!
//! Newline-delimited JSON, one connection per request. The client sends
//! exactly one request line:
//!
//! ```text
//! {"names":[...],"all":true,"scale":"smoke","tier":"detailed",
//!  "filter":"stencil","jobs":4,"workers":1,"json_dir":"results",
//!  "assert_dedup":false}
//! ```
//!
//! and the server answers with a stream of records, ending in `done`:
//!
//! | record | meaning |
//! |---|---|
//! | `{"type":"status",...}` | request accepted, campaign running |
//! | `{"type":"stdout","text":...}` | the campaign's stdout, byte-identical to `lf-bench run` |
//! | `{"type":"telemetry","text":...}` | the campaign's stderr telemetry |
//! | `{"type":"phases","plan_us":...,"render_us":...,...}` | per-phase wall time from the span log |
//! | `{"type":"done","exit":N,"simulated":...,...}` | completion; the client exits with `exit` |
//!
//! The client reprints `stdout` text verbatim on its own stdout and every
//! other record as a raw JSON line on stderr (scripts parse `done` and
//! `phases` from there), then exits with the campaign's exit code —
//! `submit` is observationally a `run`, modulo planner telemetry.
//!
//! # Lifecycle
//!
//! Requests execute one at a time in arrival order; concurrent
//! submissions of the same campaign share every simulation through the
//! disk cache instead of racing. SIGTERM/SIGINT stop the accept loop,
//! drain every request already queued, then remove the socket, sweep the
//! lease directory, and exit `128 + signal` — the same drain contract as
//! the supervisor. At startup the server sweeps debris a dead
//! predecessor may have leaked: orphaned commit temps, expired leases,
//! stale scoped request journals, and a stale socket file (a *live*
//! socket is an error — two servers must not share a claim space).
//!
//! Each request journals under its own scoped log
//! (`campaign-req-<id>.journal`, see [`crate::engine::journal`]) and
//! tags its spans with the request id, so one service process yields
//! per-request crash forensics and traces.

use crate::engine::fault::{RunBudget, DEFAULT_BUDGET_CYCLES};
use lf_stats::Json;
use std::path::PathBuf;

/// How long `submit` keeps retrying the connect before giving up, in
/// milliseconds (default 10 000) — tests and scripts that race the
/// server's startup set this.
pub const CONNECT_TIMEOUT_ENV: &str = "LF_SERVE_CONNECT_TIMEOUT_MS";

/// Server configuration (from `lf-bench serve` flags).
pub struct ServeOptions {
    /// The Unix domain socket to bind.
    pub socket: PathBuf,
    /// The shared run cache — also the claim space and journal home.
    pub cache_dir: PathBuf,
    /// Default in-process parallelism for requests (currently requests
    /// carry their own `jobs`; kept for future defaulting).
    pub jobs: usize,
    /// Default worker count (same status as `jobs`).
    pub default_workers: usize,
}

/// One campaign request: the `run` surface that makes sense to ship to a
/// resident service. Scale and tier travel as their CLI tags so the wire
/// format matches the flags one-to-one.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Positional scenario names (ignored when `all` is set).
    pub names: Vec<String>,
    /// Run every registered scenario (`--all`).
    pub all: bool,
    /// Scale tag: `smoke`, `eval`, or `full`.
    pub scale: String,
    /// Simulation tier tag: `functional`, `sampled`, or `detailed`.
    pub tier: String,
    /// Kernel-name substring filter (`--filter`).
    pub filter: Option<String>,
    /// In-process worker threads (`-j`).
    pub jobs: usize,
    /// Supervised worker processes (`--workers`; 1 = in-process).
    pub workers: usize,
    /// Artifact directory (`--json DIR`), resolved in the server's cwd.
    pub json_dir: Option<String>,
    /// Fail the campaign if no deduplication occurred (`--assert-dedup`).
    pub assert_dedup: bool,
}

impl Request {
    /// The wire form of this request (one line, compact).
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.set("names", Json::Arr(self.names.iter().map(|n| Json::Str(n.clone())).collect()));
        j.set("all", self.all);
        j.set("scale", self.scale.as_str());
        j.set("tier", self.tier.as_str());
        if let Some(f) = &self.filter {
            j.set("filter", f.as_str());
        }
        j.set("jobs", self.jobs);
        j.set("workers", self.workers);
        if let Some(d) = &self.json_dir {
            j.set("json_dir", d.as_str());
        }
        j.set("assert_dedup", self.assert_dedup);
        j
    }

    /// Parses a request line; every field is optional except that a
    /// campaign must name scenarios or set `all` (enforced at execution,
    /// not here, so the error reaches the client as a `done` record).
    pub fn from_json(j: &Json) -> Result<Request, String> {
        let names = j
            .get("names")
            .and_then(Json::as_arr)
            .map(|arr| {
                arr.iter()
                    .map(|n| n.as_str().map(str::to_string).ok_or("non-string scenario name"))
                    .collect::<Result<Vec<_>, _>>()
            })
            .transpose()?
            .unwrap_or_default();
        let get_bool =
            |key: &str| matches!(j.get(key), Some(Json::Bool(b)) if *b);
        let get_usize = |key: &str, default: usize| {
            j.get(key).and_then(Json::as_u64).map(|n| n as usize).unwrap_or(default)
        };
        let get_str =
            |key: &str| j.get(key).and_then(Json::as_str).map(str::to_string);
        Ok(Request {
            names,
            all: get_bool("all"),
            scale: get_str("scale").unwrap_or_else(|| "smoke".into()),
            tier: get_str("tier").unwrap_or_else(|| "detailed".into()),
            filter: get_str("filter"),
            jobs: get_usize("jobs", 1).max(1),
            workers: get_usize("workers", 1).max(1),
            json_dir: get_str("json_dir"),
            assert_dedup: get_bool("assert_dedup"),
        })
    }

    /// The run budget a served request executes under — identical to the
    /// `run` default so outputs cannot differ between the two paths.
    pub(crate) fn budget() -> RunBudget {
        RunBudget { max_cycles: Some(DEFAULT_BUDGET_CYCLES), deadline: None }
    }
}

#[cfg(unix)]
pub use imp::{serve_main, submit_main};

#[cfg(not(unix))]
pub fn serve_main(_opts: &ServeOptions) -> i32 {
    eprintln!("error: `lf-bench serve` requires Unix domain sockets");
    2
}

#[cfg(not(unix))]
pub fn submit_main(_socket: &std::path::Path, _request: &Request) -> i32 {
    eprintln!("error: `lf-bench submit` requires Unix domain sockets");
    2
}

#[cfg(unix)]
mod imp {
    use super::{Request, ServeOptions, CONNECT_TIMEOUT_ENV};
    use crate::engine::cache::DiskCache;
    use crate::engine::cli::FinishedCampaign;
    use crate::engine::lease::LeaseDir;
    use crate::engine::spans::SpanLog;
    use crate::engine::{
        by_name, journal, registry, run_scenarios_warm, signals, supervise, EngineOptions,
        EngineOutput, Scenario, WarmEngine,
    };
    use crate::runner::scale_tag;
    use crate::tiered::Tier;
    use lf_stats::Json;
    use lf_workloads::Scale;
    use std::collections::VecDeque;
    use std::io::{self, BufRead, BufReader, Write};
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::{Path, PathBuf};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// Ships one protocol record; a client that hung up mid-stream is not
    /// an error worth dying over (the campaign already ran and committed).
    fn send(stream: &mut UnixStream, record: &Json) {
        let mut line = record.to_string_compact();
        line.push('\n');
        let _ = stream.write_all(line.as_bytes());
    }

    /// The resident service. Returns the process exit code: `128 + signal`
    /// after a drain, small codes for startup failures.
    pub fn serve_main(opts: &ServeOptions) -> i32 {
        signals::install_drain_handlers();
        if let Err(e) = std::fs::create_dir_all(&opts.cache_dir) {
            eprintln!("error: cannot create cache dir {}: {e}", opts.cache_dir.display());
            return 1;
        }
        if let Some(parent) = opts.socket.parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        let cache = DiskCache::new(opts.cache_dir.clone());
        // Startup hygiene: a dead predecessor (or a killed one-shot
        // campaign) may have leaked commit temps, leases, scoped request
        // journals — and its socket file.
        let swept = crate::durable::sweep_orphan_tmps(cache.dir());
        let leases = match LeaseDir::open(&cache.leases_dir(), LeaseDir::env_expiry(), u64::MAX) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: cannot open lease dir: {e}");
                return 1;
            }
        };
        let reclaimed = leases.sweep();
        journal::remove_scoped_logs(cache.dir());
        if swept > 0 || reclaimed > 0 {
            eprintln!("serve: startup sweep: {swept} temp file(s), {reclaimed} lease(s)");
        }
        if opts.socket.exists() {
            match UnixStream::connect(&opts.socket) {
                Ok(_) => {
                    eprintln!(
                        "error: a live service already owns {} — two servers must not share a claim space",
                        opts.socket.display()
                    );
                    return 2;
                }
                Err(_) => {
                    let _ = std::fs::remove_file(&opts.socket);
                    eprintln!("serve: removed stale socket {}", opts.socket.display());
                }
            }
        }
        let listener = match UnixListener::bind(&opts.socket) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: cannot bind {}: {e}", opts.socket.display());
                return 1;
            }
        };
        if let Err(e) = listener.set_nonblocking(true) {
            eprintln!("error: cannot poll {}: {e}", opts.socket.display());
            return 1;
        }
        eprintln!(
            "serve: listening on {} (cache {})",
            opts.socket.display(),
            opts.cache_dir.display()
        );

        let warm = WarmEngine::new();
        let mut queue: VecDeque<UnixStream> = VecDeque::new();
        let mut next_id: u64 = 1;
        let mut served = 0usize;
        let code = loop {
            let draining = signals::drain_signal();
            if draining.is_none() {
                // Pull everything already waiting so arrival order is
                // preserved even while a long campaign runs.
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => queue.push_back(stream),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) => {
                            eprintln!("serve: accept failed: {e}");
                            break;
                        }
                    }
                }
            }
            if let Some(stream) = queue.pop_front() {
                let id = next_id;
                next_id += 1;
                serve_request(stream, id, opts, &cache, &warm);
                served += 1;
            } else if let Some(sig) = draining {
                // The whole queue was drained above; nothing in flight.
                break 128 + sig;
            } else {
                std::thread::sleep(Duration::from_millis(20));
            }
        };
        let _ = std::fs::remove_file(&opts.socket);
        let leaked = leases.sweep();
        eprintln!(
            "serve: drained; {served} request(s) served; {leaked} lease(s) swept; socket removed"
        );
        code
    }

    /// Reads, executes, and answers a single queued request.
    fn serve_request(
        mut stream: UnixStream,
        id: u64,
        opts: &ServeOptions,
        cache: &DiskCache,
        warm: &WarmEngine,
    ) {
        let started = Instant::now();
        // A connected-but-silent client must not wedge the whole queue.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let mut line = String::new();
        if let Ok(clone) = stream.try_clone() {
            let _ = BufReader::new(clone).read_line(&mut line);
        }
        let request = match Json::parse(line.trim()).and_then(|j| Request::from_json(&j)) {
            Ok(r) => r,
            Err(e) => {
                reject(&mut stream, id, 2, &format!("bad request: {e}"));
                return;
            }
        };
        let mut status = Json::obj();
        status.set("type", "status");
        status.set("request", id);
        status.set("state", "running");
        send(&mut stream, &status);
        match execute(&request, id, opts, cache, warm) {
            Err((exit, msg)) => reject(&mut stream, id, exit, &msg),
            Ok((finished, output, phases, plan_warm)) => {
                let mut out = Json::obj();
                out.set("type", "stdout");
                out.set("text", finished.stdout.as_str());
                send(&mut stream, &out);
                let mut tel = Json::obj();
                tel.set("type", "telemetry");
                tel.set("text", finished.stderr.as_str());
                send(&mut stream, &tel);
                let mut ph = Json::obj();
                ph.set("type", "phases");
                ph.set("request", id);
                for (name, us) in &phases {
                    ph.set(&format!("{name}_us"), *us);
                }
                send(&mut stream, &ph);
                let r = &output.report;
                let mut done = Json::obj();
                done.set("type", "done");
                done.set("request", id);
                done.set("exit", finished.exit as u64);
                done.set("requests", r.requests);
                done.set("unique", r.unique);
                done.set("disk_hits", r.disk_hits);
                done.set("simulated", r.simulated);
                done.set("wall_ms", started.elapsed().as_millis() as u64);
                done.set("plan_warm", plan_warm);
                send(&mut stream, &done);
                eprintln!(
                    "serve: request {id}: {} request(s) → {} unique, {} from cache, {} simulated; \
                     plan {}; exit {} in {} ms",
                    r.requests,
                    r.unique,
                    r.disk_hits,
                    r.simulated,
                    if plan_warm { "warm" } else { "cold" },
                    finished.exit,
                    started.elapsed().as_millis()
                );
            }
        }
    }

    fn reject(stream: &mut UnixStream, id: u64, exit: i32, msg: &str) {
        let mut done = Json::obj();
        done.set("type", "done");
        done.set("request", id);
        done.set("exit", exit as u64);
        done.set("error", msg);
        send(stream, &done);
        eprintln!("serve: request {id}: {msg} (exit {exit})");
    }

    /// Runs one campaign with the shared warm state and renders it with
    /// the same back half as `lf-bench run`.
    fn execute(
        request: &Request,
        id: u64,
        opts: &ServeOptions,
        cache: &DiskCache,
        warm: &WarmEngine,
    ) -> Result<(FinishedCampaign, EngineOutput, Vec<(String, u64)>, bool), (i32, String)> {
        let scale = match request.scale.as_str() {
            "smoke" => Scale::Smoke,
            "eval" => Scale::Eval,
            "full" => Scale::Full,
            other => return Err((2, format!("unknown scale {other:?}"))),
        };
        let tier = Tier::parse(&request.tier)
            .ok_or_else(|| (2, format!("unknown tier {:?}", request.tier)))?;
        let scenarios: Vec<Box<dyn Scenario>> = if request.all {
            registry()
        } else if request.names.is_empty() {
            return Err((2, "a request must name scenarios or set \"all\"".into()));
        } else {
            request
                .names
                .iter()
                .map(|n| by_name(n).ok_or((2, format!("unknown scenario {n:?}"))))
                .collect::<Result<_, _>>()?
        };
        let refs: Vec<&dyn Scenario> = scenarios.iter().map(|s| s.as_ref()).collect();
        let span_log = Arc::new(SpanLog::for_request(id));
        let mut eopts = EngineOptions::new(scale);
        eopts.tier = tier;
        eopts.jobs = request.jobs;
        eopts.filter = request.filter.clone();
        eopts.disk_cache = Some(cache.clone());
        eopts.budget = Request::budget();
        eopts.spans = Some(span_log.clone());
        eopts.journal_scope = Some(format!("req-{id}"));
        let hits_before = warm.plan_hits();
        let output = if request.workers > 1 {
            // Multi-process requests go through the supervisor; its own
            // journal/lease protocol coordinates the worker fleet.
            let sup = worker_config(request, opts);
            match supervise::run_supervised(&refs, &eopts, &sup) {
                Ok(out) => out,
                Err(code) => {
                    return Err((code, format!("drained mid-campaign (exit {code})")));
                }
            }
        } else {
            run_scenarios_warm(&refs, &eopts, Some(warm))
        };
        let json_dir = request.json_dir.as_ref().map(PathBuf::from);
        let failures = json_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("results"))
            .join("failures.json");
        let finished = crate::engine::cli::finish_campaign(
            &output,
            refs.len() > 1,
            json_dir.as_deref(),
            &failures,
            scale_tag(scale),
            request.assert_dedup,
        );
        let plan_warm = warm.plan_hits() > hits_before;
        Ok((finished, output, span_log.phase_totals_us(), plan_warm))
    }

    /// Worker argv for a supervised request — the same reconstruction the
    /// one-shot CLI does, from the request instead of the command line.
    fn worker_config(request: &Request, opts: &ServeOptions) -> supervise::SuperviseConfig {
        let mut args: Vec<String> = vec!["worker".into()];
        if request.all {
            args.push("--all".into());
        } else {
            args.extend(request.names.iter().cloned());
        }
        args.push("--scale".into());
        args.push(request.scale.clone());
        args.push("--tier".into());
        args.push(request.tier.clone());
        if let Some(f) = &request.filter {
            args.push("--filter".into());
            args.push(f.clone());
        }
        args.push("--cache-dir".into());
        args.push(opts.cache_dir.display().to_string());
        args.push("-j".into());
        args.push(request.jobs.to_string());
        args.push("--workers".into());
        args.push(request.workers.to_string());
        supervise::SuperviseConfig { workers: request.workers, worker_args: args }
    }

    /// The thin client: ship one request, relay the record stream, exit
    /// with the campaign's exit code.
    pub fn submit_main(socket: &Path, request: &Request) -> i32 {
        let timeout_ms = std::env::var(CONNECT_TIMEOUT_ENV)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(10_000);
        let deadline = Instant::now() + Duration::from_millis(timeout_ms);
        let mut stream = loop {
            match UnixStream::connect(socket) {
                Ok(s) => break s,
                Err(e) => {
                    if Instant::now() >= deadline {
                        eprintln!(
                            "error: no campaign service reachable at {} within {timeout_ms} ms ({e}); \
                             start one with `lf-bench serve --socket {}`",
                            socket.display(),
                            socket.display()
                        );
                        return 3;
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
            }
        };
        let mut line = request.to_json().to_string_compact();
        line.push('\n');
        if let Err(e) = stream.write_all(line.as_bytes()) {
            eprintln!("error: cannot send request: {e}");
            return 3;
        }
        let reader = match stream.try_clone() {
            Ok(s) => BufReader::new(s),
            Err(e) => {
                eprintln!("error: cannot read from service: {e}");
                return 3;
            }
        };
        for record in reader.lines() {
            let Ok(record) = record else { break };
            if record.trim().is_empty() {
                continue;
            }
            let Ok(parsed) = Json::parse(&record) else {
                eprintln!("submit: unparseable record: {record}");
                continue;
            };
            match parsed.get("type").and_then(Json::as_str) {
                // The campaign's stdout, verbatim — this is the
                // byte-identity contract with `lf-bench run`.
                Some("stdout") => {
                    if let Some(text) = parsed.get("text").and_then(Json::as_str) {
                        print!("{text}");
                        let _ = io::stdout().flush();
                    }
                }
                Some("telemetry") => {
                    if let Some(text) = parsed.get("text").and_then(Json::as_str) {
                        eprint!("{text}");
                    }
                }
                Some("done") => {
                    // The raw record goes to stderr so scripts can parse
                    // simulated/disk_hits/exit without scraping prose.
                    eprintln!("{record}");
                    return parsed.get("exit").and_then(Json::as_u64).map(|e| e as i32).unwrap_or(3);
                }
                // status / phases / future records: raw JSON on stderr.
                _ => eprintln!("{record}"),
            }
        }
        eprintln!("error: service closed the connection without a completion record");
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_the_wire_format() {
        let req = Request {
            names: vec!["stencil_sweep".into(), "hint_matrix".into()],
            all: false,
            scale: "eval".into(),
            tier: "sampled".into(),
            filter: Some("blur".into()),
            jobs: 4,
            workers: 2,
            json_dir: Some("results".into()),
            assert_dedup: true,
        };
        let line = req.to_json().to_string_compact();
        assert!(!line.contains('\n'), "a request must be one line, got {line:?}");
        let back = Request::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn request_defaults_fill_missing_fields() {
        let j = Json::parse(r#"{"all":true}"#).unwrap();
        let req = Request::from_json(&j).unwrap();
        assert!(req.all);
        assert_eq!(req.scale, "smoke");
        assert_eq!(req.tier, "detailed");
        assert_eq!(req.jobs, 1);
        assert_eq!(req.workers, 1);
        assert!(req.names.is_empty());
        assert!(req.filter.is_none());
        assert!(req.json_dir.is_none());
        assert!(!req.assert_dedup);
    }

    #[test]
    fn request_rejects_non_string_names() {
        let j = Json::parse(r#"{"names":[1,2]}"#).unwrap();
        assert!(Request::from_json(&j).is_err());
    }

    #[test]
    fn served_requests_run_under_the_one_shot_budget() {
        let b = Request::budget();
        assert_eq!(b.max_cycles, Some(DEFAULT_BUDGET_CYCLES));
        assert!(b.deadline.is_none());
    }
}
