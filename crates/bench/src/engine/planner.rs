//! The run planner: request collection, content-addressed deduplication,
//! and parallel execution of the unique run set.
//!
//! Scenarios *declare* the simulations they need as [`RunRequest`]s; the
//! planner resolves each request to a [`run_fingerprint`] (annotated
//! program × canonical config × scale), collapses duplicates — fig6, fig7,
//! fig8, table2, and friends all want the identical default-config suite —
//! and executes only the unique set on a scoped worker pool, memoizing
//! every outcome for the render phase and (optionally) the on-disk cache.

use crate::engine::pool::parallel_map;
use crate::runner::{run_fingerprint, RunConfig, RunOutcome};
use lf_compiler::{annotate, SelectOptions};
use lf_isa::Program;
use lf_workloads::Workload;
use loopfrog::{simulate, LoopFrogConfig};
use std::collections::HashMap;
use std::sync::Arc;

/// How a requested run's program is derived from the workload.
#[derive(Debug, Clone)]
pub enum Hinting {
    /// The raw, hint-free kernel program (e.g. the Figure 1 width sweep,
    /// which characterizes the baseline core itself).
    Raw,
    /// The compiler pass annotates the program using the golden emulator's
    /// profile and these selection thresholds.
    Annotated(SelectOptions),
}

impl Hinting {
    /// Annotation with the default selection thresholds — what every
    /// headline experiment uses.
    pub fn default_annotated() -> Hinting {
        Hinting::Annotated(SelectOptions::default())
    }

    /// Stable fingerprint of the hinting mode (keys the prepared-kernel
    /// cache and feeds request resolution).
    pub fn fingerprint(&self) -> u64 {
        let mut fp = lf_stats::Fingerprint::new();
        match self {
            Hinting::Raw => {
                fp.str("raw");
            }
            Hinting::Annotated(s) => {
                fp.str("annotated")
                    .usize(s.max_loops)
                    .f64(s.min_trip)
                    .f64(s.min_body_score)
                    .f64(s.min_coverage);
            }
        }
        fp.finish()
    }
}

/// One declared simulation: which kernel, how its program is prepared,
/// and the full simulator configuration. The workload scale is engine
/// state, not request state — a planner instance plans one scale.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Kernel name (must be part of the engine's (possibly filtered)
    /// suite).
    pub kernel: &'static str,
    /// Program preparation.
    pub hinting: Hinting,
    /// Simulator configuration.
    pub config: LoopFrogConfig,
}

/// A workload prepared for simulation: profiled, (optionally) annotated,
/// and content-fingerprinted. Prepared once per `(kernel, hinting)` pair
/// and shared by every request against it.
#[derive(Debug)]
pub struct PreparedKernel {
    /// The source workload (name, metadata, memory image).
    pub workload: Workload,
    /// Golden-emulator final-state checksum; `None` for [`Hinting::Raw`]
    /// preparations, which skip the profiling run.
    pub golden: Option<u64>,
    /// The program that will be simulated (annotated or raw).
    pub program: Program,
    /// Loops the compiler pass placed hints for (0 for raw).
    pub selected_loops: usize,
}

impl PreparedKernel {
    /// Profiles and annotates `w` according to `hinting`.
    pub fn prepare(w: Workload, hinting: &Hinting) -> PreparedKernel {
        match hinting {
            Hinting::Raw => PreparedKernel {
                program: w.program.clone(),
                golden: None,
                selected_loops: 0,
                workload: w,
            },
            Hinting::Annotated(select) => {
                let emu = w.reference_emulator().expect("kernel runs on the golden emulator");
                assert!(emu.is_halted(), "{} did not halt", w.name);
                let golden = emu.state_checksum();
                let ann = annotate(&w.program, emu.profile(), select);
                let selected_loops = ann.reports.iter().filter(|r| r.placement.is_some()).count();
                PreparedKernel {
                    golden: Some(golden),
                    program: ann.program,
                    selected_loops,
                    workload: w,
                }
            }
        }
    }

    /// The run fingerprint of simulating this prepared kernel under `cfg`.
    pub fn request_fingerprint(&self, cfg: &LoopFrogConfig) -> u64 {
        run_fingerprint(&self.program, &self.workload.mem, cfg, self.workload.scale)
    }
}

/// Collects scenario run declarations during the planning phase.
pub struct Planner<'e> {
    suite: &'e [Workload],
    requests: Vec<RunRequest>,
}

impl<'e> Planner<'e> {
    pub(crate) fn new(suite: &'e [Workload]) -> Planner<'e> {
        Planner { suite, requests: Vec::new() }
    }

    /// The engine's (possibly `--filter`ed) kernel suite, in canonical
    /// order. Scenarios must only request kernels listed here.
    pub fn kernels(&self) -> &'e [Workload] {
        self.suite
    }

    /// Declares one simulation.
    pub fn request(&mut self, kernel: &'static str, hinting: Hinting, config: &LoopFrogConfig) {
        debug_assert!(
            self.suite.iter().any(|w| w.name == kernel),
            "request for kernel {kernel:?} outside the planned suite"
        );
        self.requests.push(RunRequest { kernel, hinting, config: config.clone() });
    }

    /// Declares the standard experiment shape: baseline + LoopFrog
    /// simulations of every suite kernel under `rc` — the request-level
    /// equivalent of the old `run_suite`.
    pub fn request_suite(&mut self, rc: &RunConfig) {
        for w in self.suite {
            let hinting = Hinting::Annotated(rc.select.clone());
            self.request(w.name, hinting.clone(), &rc.base);
            self.request(w.name, hinting, &rc.lf);
        }
    }

    /// Number of requests declared so far (engine telemetry).
    pub fn request_count(&self) -> usize {
        self.requests.len()
    }

    pub(crate) fn into_requests(self) -> Vec<RunRequest> {
        self.requests
    }
}

/// Key of the prepared-kernel map.
pub(crate) type PrepKey = (&'static str, u64);

/// Prepares every distinct `(kernel, hinting)` pair referenced by
/// `requests`, in parallel. Profiling runs the golden emulator, which is
/// the second-most expensive step after simulation itself.
pub(crate) fn prepare_kernels(
    suite: &[Workload],
    requests: &[RunRequest],
    jobs: usize,
) -> HashMap<PrepKey, Arc<PreparedKernel>> {
    let mut distinct: Vec<(PrepKey, &Hinting)> = Vec::new();
    for r in requests {
        let key = (r.kernel, r.hinting.fingerprint());
        if !distinct.iter().any(|(k, _)| *k == key) {
            distinct.push((key, &r.hinting));
        }
    }
    let prepared: Vec<Arc<PreparedKernel>> = parallel_map(jobs, &distinct, |((name, _), h)| {
        let w = suite
            .iter()
            .find(|w| w.name == *name)
            .unwrap_or_else(|| panic!("kernel {name} not in suite"))
            .clone();
        Arc::new(PreparedKernel::prepare(w, h))
    });
    distinct.iter().map(|(k, _)| *k).zip(prepared).collect()
}

/// One entry of the deduplicated execution plan.
pub(crate) struct UniqueRun {
    pub fingerprint: u64,
    pub kernel: &'static str,
    pub prepared: Arc<PreparedKernel>,
    pub config: LoopFrogConfig,
}

/// Collapses `requests` to unique fingerprints in first-seen order.
pub(crate) fn dedupe(
    requests: &[RunRequest],
    prepared: &HashMap<PrepKey, Arc<PreparedKernel>>,
) -> Vec<UniqueRun> {
    let mut seen: HashMap<u64, ()> = HashMap::new();
    let mut unique = Vec::new();
    for r in requests {
        let prep = &prepared[&(r.kernel, r.hinting.fingerprint())];
        let fp = prep.request_fingerprint(&r.config);
        if seen.insert(fp, ()).is_none() {
            unique.push(UniqueRun {
                fingerprint: fp,
                kernel: r.kernel,
                prepared: prep.clone(),
                config: r.config.clone(),
            });
        }
    }
    unique
}

/// Simulates `runs` on the worker pool, returning outcomes in input
/// order. `hook` (the planner's counting hook; tests use it to assert
/// each fingerprint simulates exactly once) fires once per executed run.
pub(crate) fn execute(
    runs: &[UniqueRun],
    jobs: usize,
    hook: Option<&(dyn Fn(&'static str) + Send + Sync)>,
) -> Vec<Arc<RunOutcome>> {
    parallel_map(jobs, runs, |run| {
        if let Some(h) = hook {
            h(run.kernel);
        }
        let result =
            simulate(&run.prepared.program, run.prepared.workload.mem.clone(), run.config.clone())
                .unwrap_or_else(|e| panic!("{} failed: {e}", run.kernel));
        Arc::new(RunOutcome::from_result(run.fingerprint, result))
    })
}
