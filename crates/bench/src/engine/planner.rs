//! The run planner: request collection, content-addressed deduplication,
//! and parallel execution of the unique run set.
//!
//! Scenarios *declare* the simulations they need as [`RunRequest`]s; the
//! planner resolves each request to a [`run_fingerprint`] (annotated
//! program × canonical config × scale), collapses duplicates — fig6, fig7,
//! fig8, table2, and friends all want the identical default-config suite —
//! and executes only the unique set on a scoped worker pool, memoizing
//! every outcome for the render phase and (optionally) the on-disk cache.

use crate::engine::fault::{hang_program, render_flight_recorder, FaultPlan, RunBudget, RunError};
use crate::engine::pool::{try_parallel_map, WorkerPanic};
use crate::runner::{run_fingerprint, RunConfig, RunOutcome};
use crate::tiered::{run_fingerprint_tiered, CheckpointStore, Tier};
use lf_compiler::{annotate, SelectOptions};
use lf_isa::Program;
use lf_workloads::Workload;
use loopfrog::{LoopFrogConfig, LoopFrogCore, SimStop};
use std::collections::HashMap;
use std::sync::Arc;

/// How a requested run's program is derived from the workload.
#[derive(Debug, Clone)]
pub enum Hinting {
    /// The raw, hint-free kernel program (e.g. the Figure 1 width sweep,
    /// which characterizes the baseline core itself).
    Raw,
    /// The compiler pass annotates the program using the golden emulator's
    /// profile and these selection thresholds.
    Annotated(SelectOptions),
}

impl Hinting {
    /// Annotation with the default selection thresholds — what every
    /// headline experiment uses.
    pub fn default_annotated() -> Hinting {
        Hinting::Annotated(SelectOptions::default())
    }

    /// Stable fingerprint of the hinting mode (keys the prepared-kernel
    /// cache and feeds request resolution).
    pub fn fingerprint(&self) -> u64 {
        let mut fp = lf_stats::Fingerprint::new();
        match self {
            Hinting::Raw => {
                fp.str("raw");
            }
            Hinting::Annotated(s) => {
                fp.str("annotated")
                    .usize(s.max_loops)
                    .f64(s.min_trip)
                    .f64(s.min_body_score)
                    .f64(s.min_coverage);
            }
        }
        fp.finish()
    }
}

/// One declared simulation: which kernel, how its program is prepared,
/// and the full simulator configuration. The workload scale is engine
/// state, not request state — a planner instance plans one scale.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Kernel name (must be part of the engine's (possibly filtered)
    /// suite).
    pub kernel: &'static str,
    /// Program preparation.
    pub hinting: Hinting,
    /// Simulator configuration.
    pub config: LoopFrogConfig,
}

/// A workload prepared for simulation: profiled, (optionally) annotated,
/// and content-fingerprinted. Prepared once per `(kernel, hinting)` pair
/// and shared by every request against it.
#[derive(Debug)]
pub struct PreparedKernel {
    /// The source workload (name, metadata, memory image).
    pub workload: Workload,
    /// Golden-emulator final-state checksum; `None` for [`Hinting::Raw`]
    /// preparations, which skip the profiling run.
    pub golden: Option<u64>,
    /// The program that will be simulated (annotated or raw).
    pub program: Program,
    /// Loops the compiler pass placed hints for (0 for raw).
    pub selected_loops: usize,
}

impl PreparedKernel {
    /// Profiles and annotates `w` according to `hinting`.
    pub fn prepare(w: Workload, hinting: &Hinting) -> PreparedKernel {
        match hinting {
            Hinting::Raw => PreparedKernel {
                program: w.program.clone(),
                golden: None,
                selected_loops: 0,
                workload: w,
            },
            Hinting::Annotated(select) => {
                let emu = w.reference_emulator().expect("kernel runs on the golden emulator");
                assert!(emu.is_halted(), "{} did not halt", w.name);
                let golden = emu.state_checksum();
                let ann = annotate(&w.program, emu.profile(), select);
                let selected_loops = ann.reports.iter().filter(|r| r.placement.is_some()).count();
                PreparedKernel {
                    golden: Some(golden),
                    program: ann.program,
                    selected_loops,
                    workload: w,
                }
            }
        }
    }

    /// The run fingerprint of simulating this prepared kernel under `cfg`
    /// on the detailed tier.
    pub fn request_fingerprint(&self, cfg: &LoopFrogConfig) -> u64 {
        run_fingerprint(&self.program, &self.workload.mem, cfg, self.workload.scale)
    }

    /// The run fingerprint of simulating this prepared kernel under `cfg`
    /// on `tier` (identical to [`PreparedKernel::request_fingerprint`]
    /// for [`Tier::Detailed`]).
    pub fn request_fingerprint_tiered(&self, cfg: &LoopFrogConfig, tier: Tier) -> u64 {
        run_fingerprint_tiered(&self.program, &self.workload.mem, cfg, self.workload.scale, tier)
    }
}

/// Collects scenario run declarations during the planning phase.
pub struct Planner<'e> {
    suite: &'e [Workload],
    requests: Vec<RunRequest>,
}

impl<'e> Planner<'e> {
    pub(crate) fn new(suite: &'e [Workload]) -> Planner<'e> {
        Planner { suite, requests: Vec::new() }
    }

    /// The engine's (possibly `--filter`ed) kernel suite, in canonical
    /// order. Scenarios must only request kernels listed here.
    pub fn kernels(&self) -> &'e [Workload] {
        self.suite
    }

    /// Declares one simulation.
    pub fn request(&mut self, kernel: &'static str, hinting: Hinting, config: &LoopFrogConfig) {
        debug_assert!(
            self.suite.iter().any(|w| w.name == kernel),
            "request for kernel {kernel:?} outside the planned suite"
        );
        self.requests.push(RunRequest { kernel, hinting, config: config.clone() });
    }

    /// Declares the standard experiment shape: baseline + LoopFrog
    /// simulations of every suite kernel under `rc` — the request-level
    /// equivalent of the old `run_suite`.
    pub fn request_suite(&mut self, rc: &RunConfig) {
        for w in self.suite {
            let hinting = Hinting::Annotated(rc.select.clone());
            self.request(w.name, hinting.clone(), &rc.base);
            self.request(w.name, hinting, &rc.lf);
        }
    }

    /// Number of requests declared so far (engine telemetry).
    pub fn request_count(&self) -> usize {
        self.requests.len()
    }

    pub(crate) fn into_requests(self) -> Vec<RunRequest> {
        self.requests
    }
}

/// Key of the prepared-kernel map.
pub(crate) type PrepKey = (&'static str, u64);

/// Result of the parallel preparation phase: the successfully prepared
/// kernels plus one record per panicking preparation.
pub(crate) type PreparedMap = (HashMap<PrepKey, Arc<PreparedKernel>>, Vec<(PrepKey, WorkerPanic)>);

/// Prepares every distinct `(kernel, hinting)` pair referenced by
/// `requests`, in parallel. Profiling runs the golden emulator, which is
/// the second-most expensive step after simulation itself. A panicking
/// preparation (a kernel the emulator rejects) costs only that pair:
/// every dependent request becomes a structured failure while the rest of
/// the campaign proceeds.
pub(crate) fn prepare_kernels(
    suite: &[Workload],
    requests: &[RunRequest],
    jobs: usize,
) -> PreparedMap {
    let mut distinct: Vec<(PrepKey, &Hinting)> = Vec::new();
    for r in requests {
        let key = (r.kernel, r.hinting.fingerprint());
        if !distinct.iter().any(|(k, _)| *k == key) {
            distinct.push((key, &r.hinting));
        }
    }
    let prepared = try_parallel_map(jobs, &distinct, |((name, _), h)| {
        let w = suite
            .iter()
            .find(|w| w.name == *name)
            .unwrap_or_else(|| panic!("kernel {name} not in suite"))
            .clone();
        Arc::new(PreparedKernel::prepare(w, h))
    });
    let mut map = HashMap::new();
    let mut failures = Vec::new();
    for ((key, _), result) in distinct.iter().zip(prepared) {
        match result {
            Ok(prep) => {
                map.insert(*key, prep);
            }
            Err(panic) => failures.push((*key, panic)),
        }
    }
    (map, failures)
}

/// One entry of the deduplicated execution plan.
#[derive(Clone)]
pub(crate) struct UniqueRun {
    pub fingerprint: u64,
    pub kernel: &'static str,
    pub prepared: Arc<PreparedKernel>,
    pub config: LoopFrogConfig,
}

/// Collapses `requests` to unique fingerprints in first-seen order.
/// Requests against a kernel whose preparation failed have no fingerprint
/// and are skipped here; the engine reports them from the preparation
/// failure list instead.
pub(crate) fn dedupe(
    requests: &[RunRequest],
    prepared: &HashMap<PrepKey, Arc<PreparedKernel>>,
    tier: Tier,
) -> Vec<UniqueRun> {
    let mut seen: HashMap<u64, ()> = HashMap::new();
    let mut unique = Vec::new();
    for r in requests {
        let Some(prep) = prepared.get(&(r.kernel, r.hinting.fingerprint())) else {
            continue;
        };
        let fp = prep.request_fingerprint_tiered(&r.config, tier);
        if seen.insert(fp, ()).is_none() {
            unique.push(UniqueRun {
                fingerprint: fp,
                kernel: r.kernel,
                prepared: prep.clone(),
                config: r.config.clone(),
            });
        }
    }
    unique
}

/// Simulates one run under the campaign budget and fault plan, on the
/// campaign's execution tier.
fn execute_one(
    run: &UniqueRun,
    budget: &RunBudget,
    faults: &FaultPlan,
    tier: Tier,
    ckpt_store: Option<&CheckpointStore>,
) -> Result<RunOutcome, RunError> {
    if faults.should_crash(run.fingerprint) {
        // `abort()` raises SIGABRT with no unwinding and no destructors —
        // for everything on disk it is indistinguishable from `kill -9`,
        // which is exactly what the crash-recovery harness wants to model
        // deterministically from inside the process.
        eprintln!(
            "injected fault: crash (run {}) — aborting the campaign process",
            lf_stats::fingerprint_hex(run.fingerprint)
        );
        std::process::abort();
    }
    if faults.should_panic(run.fingerprint) {
        panic!("injected fault: panic (run {})", lf_stats::fingerprint_hex(run.fingerprint));
    }

    // An injected hang swaps in a deliberately non-terminating kernel so
    // the watchdog path is exercised end to end.
    let hang = faults.should_hang(run.fingerprint);
    let hang_prog;
    let (program, mem) = if hang {
        hang_prog = hang_program();
        (&hang_prog, lf_isa::Memory::new(64))
    } else {
        (&run.prepared.program, run.prepared.workload.mem.clone())
    };

    // The fast tiers run outside the cycle-budget watchdog: the
    // functional tier simulates no cycles at all (its passes are bounded
    // by an instruction fuel cap instead), and the sampled tier exists
    // precisely to keep the detailed-cycle count small.
    match tier {
        Tier::Detailed => {}
        Tier::Functional => {
            return crate::tiered::run_functional(run.fingerprint, program, mem)
                .map_err(|message| RunError::Sim { message });
        }
        Tier::Sampled => {
            return crate::tiered::run_sampled(
                run.fingerprint,
                program,
                &mem,
                &run.config,
                run.prepared.workload.scale,
                ckpt_store,
            )
            .map_err(|message| RunError::Sim { message });
        }
    }

    // The budget clamps a *clone* of the config: the fingerprint (and the
    // cache key) stay functions of the requested configuration, and the
    // clamp only ever binds below the config's own `max_cycles`.
    let mut cfg = run.config.clone();
    let budget_cycles = budget.max_cycles.filter(|&b| b < cfg.max_cycles);
    if let Some(b) = budget_cycles {
        cfg.max_cycles = b;
    }
    // Arm the recorder for any run a watchdog might stop mid-flight, so a
    // budget failure carries a real pre-stop event window. If the run
    // completes normally, the artificially recorded events are stripped
    // again below: cached artifacts must not depend on whether a harness
    // budget happened to be in effect.
    let armed = (hang || budget_cycles.is_some() || budget.deadline.is_some())
        && cfg.telemetry.flight_recorder_depth == 0;
    if armed {
        cfg.telemetry.flight_recorder_depth = 64;
    }
    let mut core = LoopFrogCore::new(program, mem, cfg);
    if let Some(d) = budget.deadline {
        core.set_deadline(std::time::Instant::now() + d);
    }

    let mut result = core.run().map_err(|e| RunError::Sim { message: e.to_string() })?;
    let budget_hit = match result.stop {
        SimStop::Deadline => true,
        // `MaxCycles` is a legitimate outcome when the *config* bounds the
        // run; it is a budget failure only when the harness cap was the
        // binding constraint.
        SimStop::MaxCycles => {
            matches!(budget_cycles, Some(b) if result.stats.cycles >= b)
        }
        _ => false,
    };
    if budget_hit {
        return Err(RunError::BudgetExceeded {
            cycles: result.stats.cycles,
            budget_cycles,
            wall_clock: result.stop == SimStop::Deadline,
            flight_recorder: render_flight_recorder(&result.flight_recorder),
        });
    }
    if armed {
        result.flight_recorder.clear();
    }
    Ok(RunOutcome::from_result(run.fingerprint, result))
}

/// Simulates `runs` on the worker pool, returning per-run results in
/// input order. A panicking, faulting, or over-budget run yields `Err` in
/// its slot without disturbing its siblings. `hook` (the planner's
/// counting hook; tests use it to assert each fingerprint simulates
/// exactly once) fires once per executed run.
// Internal plumbing with a single caller: the arguments are the
// campaign's cross-cutting facilities, and a bundling struct would only
// move the list somewhere else.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute(
    runs: &[UniqueRun],
    jobs: usize,
    hook: Option<&(dyn Fn(&'static str) + Send + Sync)>,
    budget: &RunBudget,
    faults: &FaultPlan,
    tier: Tier,
    ckpt_store: Option<&CheckpointStore>,
    span_log: &Arc<crate::engine::spans::SpanLog>,
    journal: Option<&crate::engine::journal::Journal>,
) -> Vec<Result<Arc<RunOutcome>, RunError>> {
    try_parallel_map(jobs, runs, |run| {
        let _span = span_log.span("run", run.kernel);
        if let Some(h) = hook {
            h(run.kernel);
        }
        // Journal the start *before* simulating: if the process dies
        // mid-run, `--resume` can tell this run was in flight. Journaling
        // is best-effort — a failed append costs diagnostics, not results.
        if let Some(j) = journal {
            if let Err(e) = j.append(crate::engine::journal::JournalEvent::Started(run.fingerprint))
            {
                eprintln!("warning: campaign journal append failed: {e}");
            }
        }
        execute_one(run, budget, faults, tier, ckpt_store)
    })
    .into_iter()
    .map(|r| match r {
        Ok(Ok(outcome)) => Ok(Arc::new(outcome)),
        Ok(Err(e)) => Err(e),
        Err(WorkerPanic { payload }) => Err(RunError::Panicked { payload }),
    })
    .collect()
}
