//! A minimal scoped worker pool for executing unique runs in parallel.
//!
//! The hermetic build has no `rayon`; this is the few dozen lines of it we
//! need. Workers are scoped threads pulling item indices from a shared
//! atomic counter (work stealing by index), results flow back over a
//! channel and are reassembled in input order, so callers observe a
//! deterministic result vector regardless of worker count or scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Maps `f` over `items` using up to `jobs` worker threads, preserving
/// input order in the results. `jobs <= 1` runs inline on the caller's
/// thread. A panic in `f` propagates to the caller.
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                if tx.send((i, f(&items[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter().map(|r| r.expect("a worker panicked before delivering its item")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_every_item() {
        let items: Vec<u64> = (0..100).collect();
        let serial = parallel_map(1, &items, |&x| x * x);
        let parallel = parallel_map(4, &items, |&x| x * x);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[7], 49);
        assert_eq!(parallel.len(), 100);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u64> = parallel_map(4, &Vec::<u64>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_jobs_than_items() {
        let out = parallel_map(16, &[1u64, 2], |&x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }
}
