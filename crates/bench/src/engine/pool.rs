//! A minimal scoped worker pool for executing unique runs in parallel.
//!
//! The hermetic build has no `rayon`; this is the few dozen lines of it we
//! need. Workers are scoped threads pulling item indices from a shared
//! atomic counter (work stealing by index), results flow back over a
//! channel and are reassembled in input order, so callers observe a
//! deterministic result vector regardless of worker count or scheduling.
//!
//! Panics are isolated per *item*, not per worker: [`try_parallel_map`]
//! catches each closure's unwind and delivers it as a [`WorkerPanic`] in
//! that item's slot, so one poisoned run costs exactly one result while
//! the worker thread moves on to the next index. [`parallel_map`] keeps
//! the old propagate-on-panic contract for callers that want it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// A caught panic from one item's closure invocation.
#[derive(Debug, Clone)]
pub struct WorkerPanic {
    /// The panic payload, stringified (`&str` and `String` payloads are
    /// preserved verbatim).
    pub payload: String,
}

impl WorkerPanic {
    /// Stringifies a caught unwind payload.
    pub fn from_payload(payload: Box<dyn std::any::Any + Send>) -> WorkerPanic {
        let payload = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        WorkerPanic { payload }
    }
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker panicked: {}", self.payload)
    }
}

/// Maps `f` over `items` using up to `jobs` worker threads, preserving
/// input order in the results. `jobs <= 1` runs inline on the caller's
/// thread. A panic while processing one item yields `Err(WorkerPanic)` in
/// that item's slot; every other item is still processed and delivered.
pub fn try_parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<Result<R, WorkerPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let run_one =
        |item: &T| catch_unwind(AssertUnwindSafe(|| f(item))).map_err(WorkerPanic::from_payload);

    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        return items.iter().map(run_one).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<R, WorkerPanic>)>();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let run_one = &run_one;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                if tx.send((i, run_one(&items[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<Result<R, WorkerPanic>>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        // Every index was claimed by some worker, and a caught unwind is
        // the only abnormal path, so every slot is filled.
        out.into_iter().map(|r| r.expect("every claimed index delivers a result")).collect()
    })
}

/// Maps `f` over `items`, preserving input order. A panic in `f`
/// propagates to the caller — but only after every other item has been
/// processed, so partial work is never torn down mid-flight.
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    try_parallel_map(jobs, items, f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|p| panic!("{}", p.payload)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_every_item() {
        let items: Vec<u64> = (0..100).collect();
        let serial = parallel_map(1, &items, |&x| x * x);
        let parallel = parallel_map(4, &items, |&x| x * x);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[7], 49);
        assert_eq!(parallel.len(), 100);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u64> = parallel_map(4, &Vec::<u64>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_jobs_than_items() {
        let out = parallel_map(16, &[1u64, 2], |&x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn panicking_item_still_delivers_all_others() {
        let items: Vec<u64> = (0..50).collect();
        for jobs in [1, 4] {
            let out = try_parallel_map(jobs, &items, |&x| {
                if x == 13 {
                    panic!("injected fault: unlucky item {x}");
                }
                x * 2
            });
            assert_eq!(out.len(), 50);
            for (i, r) in out.iter().enumerate() {
                if i == 13 {
                    let p = r.as_ref().unwrap_err();
                    assert!(p.payload.contains("unlucky item 13"), "payload: {}", p.payload);
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i as u64 * 2);
                }
            }
        }
    }

    #[test]
    fn non_string_payloads_are_tagged() {
        let out = try_parallel_map(1, &[0u64], |_| -> u64 {
            std::panic::panic_any(42i32);
        });
        assert_eq!(out[0].as_ref().unwrap_err().payload, "non-string panic payload");
    }

    #[test]
    fn parallel_map_propagates_the_original_payload() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            parallel_map(4, &[1u64, 2, 3], |&x| {
                if x == 2 {
                    panic!("boom on {x}");
                }
                x
            })
        }));
        let p = WorkerPanic::from_payload(caught.unwrap_err());
        assert!(p.payload.contains("boom on 2"));
    }
}
