//! The on-disk run cache: memoized simulation outcomes under
//! `results/cache/`, keyed by run fingerprint.
//!
//! Each unique `(annotated program, config, scale)` fingerprint maps to
//! one pretty-printed JSON file `results/cache/<fingerprint>.json`
//! holding the run's statistics, final-state checksum, and full rendered
//! record. A cache hit skips the cycle-level simulation entirely, so
//! re-rendering a figure after a table-formatting change is free.
//!
//! Entries carry the artifact [`SCHEMA_VERSION`]; [`DiskCache::lookup`]
//! classifies every non-hit so planner telemetry can distinguish an
//! ordinary miss from a schema-version mismatch (a stale but well-formed
//! entry, left in place and overwritten on store) and from corruption (an
//! unparseable or self-inconsistent entry, moved to
//! `<cache>/quarantine/` so it is preserved for diagnosis and can never
//! be re-read). `--no-cache` bypasses both directions.

use crate::artifact::SCHEMA_VERSION;
use crate::durable::atomic_write;
use crate::runner::RunOutcome;
use lf_stats::{fingerprint_hex, parse_fingerprint_hex, Json};
use loopfrog::SimStats;
use std::io;
use std::path::{Path, PathBuf};

/// Handle on a cache directory.
#[derive(Debug, Clone)]
pub struct DiskCache {
    dir: PathBuf,
    schema: u64,
}

/// The classified result of a cache probe.
#[derive(Debug)]
pub enum CacheLookup {
    /// The entry parsed, matched the schema, and reconstructed.
    Hit(Box<RunOutcome>),
    /// No entry on disk.
    Miss,
    /// The entry exists but is unparseable or self-inconsistent (wrong
    /// fingerprint, missing or mistyped fields). The file has been moved
    /// to the quarantine directory when `quarantined` is true (the move
    /// itself is best-effort).
    Corrupt {
        /// Whether the bad entry was successfully moved aside.
        quarantined: bool,
    },
    /// The entry is well-formed but written under a different schema
    /// version; left in place to be overwritten by this run's store.
    SchemaMismatch,
}

impl DiskCache {
    /// Opens (without creating) the cache at `dir` under the current
    /// [`SCHEMA_VERSION`].
    pub fn new(dir: impl Into<PathBuf>) -> DiskCache {
        DiskCache::with_schema(dir, SCHEMA_VERSION)
    }

    /// Opens the cache pinned to an explicit schema version — the test
    /// seam for validating that a version bump invalidates entries.
    pub fn with_schema(dir: impl Into<PathBuf>, schema: u64) -> DiskCache {
        DiskCache { dir: dir.into(), schema }
    }

    /// The entry path for a fingerprint.
    pub fn entry_path(&self, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("{}.json", fingerprint_hex(fingerprint)))
    }

    /// The cache directory itself (the engine sweeps orphaned temp files
    /// from it at campaign startup).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where corrupt entries are moved on detection.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    /// Where the campaign journal lives (see [`crate::engine::journal`]).
    pub fn journal_dir(&self) -> PathBuf {
        self.dir.join("journal")
    }

    /// Where worker-process lease files live (see
    /// [`crate::engine::lease`]).
    pub fn leases_dir(&self) -> PathBuf {
        self.dir.join("leases")
    }

    /// Where poison markers live: a `<fp>.poison` file records that the
    /// fingerprint killed enough distinct workers to be quarantined from
    /// further claiming (see [`crate::engine::supervise`]).
    pub fn poison_dir(&self) -> PathBuf {
        self.dir.join("poison")
    }

    /// Probes the cache, classifying the result. Corrupt entries are
    /// quarantined as a side effect.
    pub fn lookup(&self, fingerprint: u64) -> CacheLookup {
        let path = self.entry_path(fingerprint);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => return CacheLookup::Miss,
        };
        let parse = |text: &str| -> Result<Box<RunOutcome>, bool> {
            let doc = Json::parse(text).map_err(|_| false)?;
            // A well-formed entry under the wrong schema version is stale,
            // not corrupt.
            match doc.get("schema_version").and_then(Json::as_u64) {
                Some(v) if v == self.schema => {}
                Some(_) => return Err(true),
                None => return Err(false),
            }
            let field = |key: &str| doc.get(key).and_then(Json::as_str);
            let stored_fp = field("fingerprint").and_then(parse_fingerprint_hex).ok_or(false)?;
            if stored_fp != fingerprint {
                return Err(false);
            }
            let checksum = field("checksum").and_then(parse_fingerprint_hex).ok_or(false)?;
            let stats = doc.get("stats").and_then(SimStats::from_json).ok_or(false)?;
            let rendered = doc.get("result").ok_or(false)?.clone();
            Ok(Box::new(RunOutcome { fingerprint, stats, checksum, rendered, from_cache: true }))
        };
        match parse(&text) {
            Ok(outcome) => CacheLookup::Hit(outcome),
            Err(true) => CacheLookup::SchemaMismatch,
            Err(false) => {
                let quarantined = self.quarantine(&path, fingerprint).is_ok();
                CacheLookup::Corrupt { quarantined }
            }
        }
    }

    /// Loads a memoized outcome, or `None` on any non-hit. Kept as the
    /// simple interface for callers that do not track miss causes; goes
    /// through [`DiskCache::lookup`], so corrupt entries are still
    /// quarantined.
    pub fn load(&self, fingerprint: u64) -> Option<RunOutcome> {
        match self.lookup(fingerprint) {
            CacheLookup::Hit(outcome) => Some(*outcome),
            _ => None,
        }
    }

    /// Moves a corrupt entry into the quarantine directory.
    fn quarantine(&self, path: &Path, fingerprint: u64) -> io::Result<()> {
        let qdir = self.quarantine_dir();
        std::fs::create_dir_all(&qdir)?;
        std::fs::rename(path, qdir.join(format!("{}.json", fingerprint_hex(fingerprint))))
    }

    /// Persists an outcome, creating the cache directory as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (callers treat the cache as best-effort
    /// and may choose to retry or warn rather than abort).
    pub fn store(&self, outcome: &RunOutcome) -> io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let mut doc = Json::obj();
        doc.set("schema_version", self.schema);
        doc.set("fingerprint", fingerprint_hex(outcome.fingerprint));
        // Full-width u64 checksums do not survive JSON's f64 numbers;
        // store them as hex tokens.
        doc.set("checksum", fingerprint_hex(outcome.checksum));
        doc.set("stats", outcome.stats.to_json());
        doc.set("result", outcome.rendered.clone());
        // Entries commit through the shared atomic path (temp + fsync +
        // rename), so a crashed run cannot leave a half-written entry
        // that later parses as truncated JSON.
        atomic_write(&self.entry_path(outcome.fingerprint), &doc.to_string_pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_stats::Counters;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lf-bench-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_outcome(fingerprint: u64) -> RunOutcome {
        let mut stats = SimStats::new(4);
        stats.cycles = 1000;
        stats.committed_insts = 4000;
        stats.counters = Counters::new();
        stats.counters.add("l2_accesses", 77);
        let mut rendered = Json::obj();
        rendered.set("registry", Json::obj());
        RunOutcome {
            fingerprint,
            stats,
            checksum: 0xdead_beef_dead_beef,
            rendered,
            from_cache: false,
        }
    }

    #[test]
    fn round_trips() {
        let cache = DiskCache::new(scratch_dir("round-trip"));
        let out = sample_outcome(42);
        cache.store(&out).unwrap();
        let back = cache.load(42).expect("entry loads");
        assert!(back.from_cache);
        assert_eq!(back.fingerprint, 42);
        assert_eq!(back.checksum, out.checksum);
        assert_eq!(back.stats.cycles, 1000);
        assert_eq!(back.stats.counters.get("l2_accesses"), 77);
        assert_eq!(back.rendered, out.rendered);
        assert!(cache.load(43).is_none(), "unknown fingerprints miss");
        assert!(matches!(cache.lookup(43), CacheLookup::Miss));
    }

    #[test]
    fn schema_bump_invalidates() {
        let dir = scratch_dir("schema-bump");
        let cache = DiskCache::new(dir.clone());
        cache.store(&sample_outcome(7)).unwrap();
        assert!(cache.load(7).is_some());
        let bumped = DiskCache::with_schema(dir, SCHEMA_VERSION + 1);
        assert!(bumped.load(7).is_none(), "a schema bump must invalidate old entries");
        assert!(
            matches!(bumped.lookup(7), CacheLookup::SchemaMismatch),
            "a stale entry is classified, not treated as corrupt"
        );
        assert!(bumped.entry_path(7).exists(), "stale entries stay in place to be overwritten");
    }

    #[test]
    fn corrupt_entries_miss_and_quarantine() {
        let dir = scratch_dir("corrupt");
        let cache = DiskCache::new(dir.clone());
        cache.store(&sample_outcome(9)).unwrap();
        std::fs::write(cache.entry_path(9), "{ truncated").unwrap();
        assert!(matches!(cache.lookup(9), CacheLookup::Corrupt { quarantined: true }));
        assert!(!cache.entry_path(9).exists(), "the bad entry is moved aside");
        assert!(
            cache.quarantine_dir().join(format!("{}.json", fingerprint_hex(9))).exists(),
            "the bad entry is preserved under quarantine/"
        );
        // The slot is now a plain miss and can be refilled.
        assert!(matches!(cache.lookup(9), CacheLookup::Miss));
        cache.store(&sample_outcome(9)).unwrap();
        assert!(cache.load(9).is_some());
    }

    #[test]
    fn fingerprint_mismatch_is_corrupt() {
        let dir = scratch_dir("fp-mismatch");
        let cache = DiskCache::new(dir.clone());
        cache.store(&sample_outcome(11)).unwrap();
        // An entry stored under the wrong filename claims fingerprint 11.
        std::fs::rename(cache.entry_path(11), cache.entry_path(12)).unwrap();
        assert!(matches!(cache.lookup(12), CacheLookup::Corrupt { .. }));
    }

    #[test]
    fn concurrent_stores_to_one_dir_never_collide() {
        let dir = scratch_dir("concurrent");
        let cache = DiskCache::new(dir.clone());
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..20u64 {
                        // All threads hammer the same fingerprint so their
                        // temp files would collide under a shared name.
                        let _ = i;
                        cache.store(&sample_outcome(1000 + t % 2)).unwrap();
                    }
                });
            }
        });
        assert!(cache.load(1000).is_some());
        assert!(cache.load(1001).is_some());
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "no temp files left behind: {leftovers:?}");
    }
}
