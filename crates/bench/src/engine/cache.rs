//! The on-disk run cache: memoized simulation outcomes under
//! `results/cache/`, keyed by run fingerprint.
//!
//! Each unique `(annotated program, config, scale)` fingerprint maps to
//! one pretty-printed JSON file `results/cache/<fingerprint>.json`
//! holding the run's statistics, final-state checksum, and full rendered
//! record. A cache hit skips the cycle-level simulation entirely, so
//! re-rendering a figure after a table-formatting change is free.
//!
//! Entries carry the artifact [`SCHEMA_VERSION`]; a version bump (or a
//! corrupt/truncated file) invalidates the entry silently — the run is
//! simply re-simulated and the entry rewritten. `--no-cache` bypasses
//! both directions.

use crate::artifact::SCHEMA_VERSION;
use crate::runner::RunOutcome;
use lf_stats::{fingerprint_hex, parse_fingerprint_hex, Json};
use loopfrog::SimStats;
use std::io;
use std::path::{Path, PathBuf};

/// Handle on a cache directory.
#[derive(Debug, Clone)]
pub struct DiskCache {
    dir: PathBuf,
    schema: u64,
}

impl DiskCache {
    /// Opens (without creating) the cache at `dir` under the current
    /// [`SCHEMA_VERSION`].
    pub fn new(dir: impl Into<PathBuf>) -> DiskCache {
        DiskCache::with_schema(dir, SCHEMA_VERSION)
    }

    /// Opens the cache pinned to an explicit schema version — the test
    /// seam for validating that a version bump invalidates entries.
    pub fn with_schema(dir: impl Into<PathBuf>, schema: u64) -> DiskCache {
        DiskCache { dir: dir.into(), schema }
    }

    /// The entry path for a fingerprint.
    pub fn entry_path(&self, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("{}.json", fingerprint_hex(fingerprint)))
    }

    /// Loads a memoized outcome, or `None` on miss, schema mismatch, or a
    /// corrupt entry.
    pub fn load(&self, fingerprint: u64) -> Option<RunOutcome> {
        let text = std::fs::read_to_string(self.entry_path(fingerprint)).ok()?;
        let doc = Json::parse(&text).ok()?;
        if doc.get("schema_version")?.as_u64()? != self.schema {
            return None;
        }
        let stored_fp = parse_fingerprint_hex(doc.get("fingerprint")?.as_str()?)?;
        if stored_fp != fingerprint {
            return None;
        }
        let checksum = parse_fingerprint_hex(doc.get("checksum")?.as_str()?)?;
        let stats = SimStats::from_json(doc.get("stats")?)?;
        let rendered = doc.get("result")?.clone();
        Some(RunOutcome { fingerprint, stats, checksum, rendered, from_cache: true })
    }

    /// Persists an outcome, creating the cache directory as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (callers treat the cache as best-effort
    /// and may choose to warn rather than abort).
    pub fn store(&self, outcome: &RunOutcome) -> io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let mut doc = Json::obj();
        doc.set("schema_version", self.schema);
        doc.set("fingerprint", fingerprint_hex(outcome.fingerprint));
        // Full-width u64 checksums do not survive JSON's f64 numbers;
        // store them as hex tokens.
        doc.set("checksum", fingerprint_hex(outcome.checksum));
        doc.set("stats", outcome.stats.to_json());
        doc.set("result", outcome.rendered.clone());
        write_atomically(&self.entry_path(outcome.fingerprint), &doc.to_string_pretty())
    }
}

/// Writes via a temp file + rename so a crashed run cannot leave a
/// half-written entry that later parses as truncated JSON.
fn write_atomically(path: &Path, text: &str) -> io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_stats::Counters;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lf-bench-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_outcome(fingerprint: u64) -> RunOutcome {
        let mut stats = SimStats::new(4);
        stats.cycles = 1000;
        stats.committed_insts = 4000;
        stats.counters = Counters::new();
        stats.counters.add("l2_accesses", 77);
        let mut rendered = Json::obj();
        rendered.set("registry", Json::obj());
        RunOutcome {
            fingerprint,
            stats,
            checksum: 0xdead_beef_dead_beef,
            rendered,
            from_cache: false,
        }
    }

    #[test]
    fn round_trips() {
        let cache = DiskCache::new(scratch_dir("round-trip"));
        let out = sample_outcome(42);
        cache.store(&out).unwrap();
        let back = cache.load(42).expect("entry loads");
        assert!(back.from_cache);
        assert_eq!(back.fingerprint, 42);
        assert_eq!(back.checksum, out.checksum);
        assert_eq!(back.stats.cycles, 1000);
        assert_eq!(back.stats.counters.get("l2_accesses"), 77);
        assert_eq!(back.rendered, out.rendered);
        assert!(cache.load(43).is_none(), "unknown fingerprints miss");
    }

    #[test]
    fn schema_bump_invalidates() {
        let dir = scratch_dir("schema-bump");
        let cache = DiskCache::new(dir.clone());
        cache.store(&sample_outcome(7)).unwrap();
        assert!(cache.load(7).is_some());
        let bumped = DiskCache::with_schema(dir, SCHEMA_VERSION + 1);
        assert!(bumped.load(7).is_none(), "a schema bump must invalidate old entries");
    }

    #[test]
    fn corrupt_entries_miss() {
        let dir = scratch_dir("corrupt");
        let cache = DiskCache::new(dir.clone());
        cache.store(&sample_outcome(9)).unwrap();
        std::fs::write(cache.entry_path(9), "{ truncated").unwrap();
        assert!(cache.load(9).is_none());
    }
}
