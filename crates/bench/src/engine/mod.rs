//! The unified experiment engine.
//!
//! Every figure and table of the reproduction is a [`Scenario`]: a named
//! experiment that *declares* the simulations it needs ([`Scenario::plan`])
//! and *renders* its tables and JSON artifact from the returned outcomes
//! ([`Scenario::render`]). The engine collects the requests of all selected
//! scenarios, deduplicates them by content fingerprint — the headline
//! experiments overwhelmingly share the same default-config suite — and
//! executes only the unique set on a worker pool, optionally memoized
//! through an on-disk cache. Rendering then happens serially, in registry
//! order, so output is byte-identical regardless of `-j`.
//!
//! ```text
//! plan (all scenarios) → prepare kernels → fingerprint + dedupe
//!   → load disk cache → simulate misses (parallel) → store
//!   → render (serial)
//! ```

pub mod cache;
pub mod cli;
pub mod planner;
pub mod pool;
pub mod scenarios;

use crate::runner::{KernelRun, RunConfig, RunOutcome};
use crate::RunArtifact;
use cache::DiskCache;
use lf_stats::Json;
use lf_workloads::{Scale, Workload};
use planner::{dedupe, execute, prepare_kernels, Hinting, Planner, PrepKey, PreparedKernel};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// One experiment: a registered figure/table reproduction.
pub trait Scenario: Sync {
    /// CLI name (stable; matches the historical binary name).
    fn name(&self) -> &'static str;
    /// One-line human title printed above the rendered output.
    fn title(&self) -> &'static str;
    /// Declares every simulation this scenario needs against the engine's
    /// (possibly filtered) kernel suite. Must be deterministic and must
    /// not simulate anything itself.
    fn plan(&self, p: &mut Planner<'_>);
    /// Renders tables/summaries into `out` and builds the scenario's JSON
    /// artifact from the memoized outcomes in `ctx`. Runs serially.
    fn render(&self, ctx: &EngineCtx<'_>, out: &mut String) -> RunArtifact;
}

/// Engine invocation options.
#[derive(Clone)]
pub struct EngineOptions {
    /// Workload scale for every planned run.
    pub scale: Scale,
    /// Worker threads for kernel preparation and simulation.
    pub jobs: usize,
    /// Kernel-name substring filter; non-matching kernels are dropped from
    /// the suite before planning.
    pub filter: Option<String>,
    /// On-disk run cache; `None` disables memoization across processes
    /// (`--no-cache`).
    pub disk_cache: Option<DiskCache>,
    /// Test hook: fires once per *simulated* (not cached) run, with the
    /// kernel name. Used to assert each unique fingerprint simulates
    /// exactly once.
    pub sim_hook: Option<Arc<dyn Fn(&'static str) + Send + Sync>>,
}

impl EngineOptions {
    /// Options for `scale` with serial execution and no disk cache.
    pub fn new(scale: Scale) -> EngineOptions {
        EngineOptions { scale, jobs: 1, filter: None, disk_cache: None, sim_hook: None }
    }
}

/// Everything a scenario's render phase can consult: the planned suite,
/// the prepared (profiled/annotated) kernels, and the memoized outcome of
/// every requested run.
pub struct EngineCtx<'e> {
    scale: Scale,
    suite: &'e [Workload],
    prepared: HashMap<PrepKey, Arc<PreparedKernel>>,
    outcomes: HashMap<u64, Arc<RunOutcome>>,
}

impl EngineCtx<'_> {
    /// The workload scale of this engine run.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The (possibly filtered) kernel suite, in canonical order.
    pub fn kernels(&self) -> &[Workload] {
        self.suite
    }

    /// The prepared kernel for a `(kernel, hinting)` pair.
    ///
    /// # Panics
    ///
    /// Panics if no scenario requested this pair — rendering may only
    /// consume planned work.
    pub fn prepared(&self, kernel: &str, hinting: &Hinting) -> &Arc<PreparedKernel> {
        self.prepared
            .iter()
            .find(|((name, h), _)| *name == kernel && *h == hinting.fingerprint())
            .map(|(_, p)| p)
            .unwrap_or_else(|| panic!("kernel {kernel} was not prepared — did plan() request it?"))
    }

    /// The memoized outcome of one requested run.
    ///
    /// # Panics
    ///
    /// Panics if the run was never declared during planning.
    pub fn outcome(
        &self,
        kernel: &str,
        hinting: &Hinting,
        cfg: &loopfrog::LoopFrogConfig,
    ) -> Arc<RunOutcome> {
        let prep = self.prepared(kernel, hinting);
        let fp = prep.request_fingerprint(cfg);
        self.outcomes
            .get(&fp)
            .cloned()
            .unwrap_or_else(|| panic!("run for {kernel} was not planned (fingerprint {fp:#x})"))
    }

    /// Assembles the standard experiment view — one [`KernelRun`] per suite
    /// kernel under `rc`, with profile-guided deselection applied — from
    /// memoized outcomes. The engine-side equivalent of the standalone
    /// [`crate::run_suite`].
    pub fn suite_runs(&self, rc: &RunConfig) -> Vec<KernelRun> {
        let hinting = Hinting::Annotated(rc.select.clone());
        self.suite
            .iter()
            .map(|w| {
                let prep = self.prepared(w.name, &hinting);
                let base = self.outcome(w.name, &hinting, &rc.base);
                let lf = self.outcome(w.name, &hinting, &rc.lf);
                let golden = prep.golden.expect("annotated preparations carry a golden checksum");
                KernelRun::from_outcomes(
                    &prep.workload,
                    prep.selected_loops,
                    golden,
                    base,
                    lf,
                    rc.deselect_unprofitable,
                )
            })
            .collect()
    }
}

/// Planner telemetry for one engine invocation: how much the
/// content-addressed deduplication and the caches saved.
#[derive(Debug, Clone)]
pub struct PlannerReport {
    /// Requests declared, per scenario, in registry order.
    pub per_scenario: Vec<(&'static str, usize)>,
    /// Total run requests declared by all scenarios.
    pub requests: usize,
    /// Unique run fingerprints after deduplication.
    pub unique: usize,
    /// Runs served from the on-disk cache.
    pub disk_hits: usize,
    /// Runs actually simulated in this process.
    pub simulated: usize,
    /// Distinct `(kernel, hinting)` preparations (profile + annotate).
    pub prepared: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock milliseconds from planning through the last simulation
    /// (rendering excluded).
    pub execute_wall_ms: u64,
    /// Wall-clock milliseconds for the whole invocation.
    pub total_wall_ms: u64,
}

impl PlannerReport {
    /// The machine-readable planner section embedded in artifacts.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        let mut per = Json::obj();
        for (name, n) in &self.per_scenario {
            per.set(name, *n as u64);
        }
        j.set("requests_per_scenario", per);
        j.set("requests", self.requests as u64);
        j.set("unique_runs", self.unique as u64);
        j.set("deduplicated", (self.requests - self.unique) as u64);
        j.set("disk_cache_hits", self.disk_hits as u64);
        j.set("simulated", self.simulated as u64);
        j.set("prepared_kernels", self.prepared as u64);
        j.set("jobs", self.jobs as u64);
        j.set("execute_wall_ms", self.execute_wall_ms);
        j.set("total_wall_ms", self.total_wall_ms);
        j
    }
}

/// One scenario's rendered output.
pub struct ScenarioOutput {
    /// Scenario CLI name.
    pub name: &'static str,
    /// Human title.
    pub title: &'static str,
    /// The rendered text (tables and summary lines).
    pub text: String,
    /// The finalized JSON artifact (planner section included).
    pub artifact: Json,
}

/// The result of one engine invocation.
pub struct EngineOutput {
    /// Rendered scenarios, in registry order.
    pub scenarios: Vec<ScenarioOutput>,
    /// Planner telemetry.
    pub report: PlannerReport,
}

/// Plans, deduplicates, executes, and renders `scenarios`.
///
/// Phases: every scenario declares its runs; distinct `(kernel, hinting)`
/// pairs are prepared in parallel; requests resolve to content fingerprints
/// and collapse to the unique set; the disk cache absorbs known outcomes;
/// the remainder simulates on the worker pool; finally each scenario
/// renders serially from the shared outcome table. Identical requests from
/// different scenarios are simulated exactly once.
pub fn run_scenarios(scenarios: &[&dyn Scenario], opts: &EngineOptions) -> EngineOutput {
    let started = Instant::now();
    let suite: Vec<Workload> = lf_workloads::all(opts.scale)
        .into_iter()
        .filter(|w| match &opts.filter {
            Some(f) => w.name.contains(f.as_str()),
            None => true,
        })
        .collect();

    // Phase 1: plan. Scenarios only declare work; nothing runs yet.
    let mut planner = Planner::new(&suite);
    let mut per_scenario = Vec::new();
    for s in scenarios {
        let before = planner.request_count();
        s.plan(&mut planner);
        per_scenario.push((s.name(), planner.request_count() - before));
    }
    let requests = planner.into_requests();

    // Phase 2: prepare (profile + annotate) each distinct kernel/hinting
    // pair, then collapse requests to unique fingerprints.
    let prepared = prepare_kernels(&suite, &requests, opts.jobs);
    let unique = dedupe(&requests, &prepared);

    // Phase 3: serve what the disk cache already knows, simulate the rest.
    let mut outcomes: HashMap<u64, Arc<RunOutcome>> = HashMap::new();
    let mut misses = Vec::new();
    let mut disk_hits = 0usize;
    for run in unique.iter() {
        match opts.disk_cache.as_ref().and_then(|c| c.load(run.fingerprint)) {
            Some(hit) => {
                disk_hits += 1;
                outcomes.insert(run.fingerprint, Arc::new(hit));
            }
            None => misses.push(run),
        }
    }
    let misses: Vec<_> = misses; // shadow as immutable for the pool
    let executed = execute_refs(&misses, opts);
    for (run, outcome) in misses.iter().zip(executed) {
        if let Some(cache) = &opts.disk_cache {
            if let Err(e) = cache.store(&outcome) {
                eprintln!("warning: run cache write failed: {e}");
            }
        }
        outcomes.insert(run.fingerprint, outcome);
    }
    let execute_wall_ms = started.elapsed().as_millis() as u64;

    // Phase 4: render serially in registry order — output is deterministic
    // for any `-j`.
    let ctx = EngineCtx { scale: opts.scale, suite: &suite, prepared, outcomes };
    let mut report = PlannerReport {
        requests: per_scenario.iter().map(|(_, n)| n).sum(),
        per_scenario,
        unique: unique.len(),
        disk_hits,
        simulated: misses.len(),
        prepared: ctx.prepared.len(),
        jobs: opts.jobs,
        execute_wall_ms,
        total_wall_ms: 0,
    };
    let mut rendered = Vec::new();
    for s in scenarios {
        let mut text = String::new();
        let mut artifact = s.render(&ctx, &mut text);
        artifact.set_extra("planner", report.to_json());
        rendered.push(ScenarioOutput {
            name: s.name(),
            title: s.title(),
            text,
            artifact: artifact.into_json(),
        });
    }
    report.total_wall_ms = started.elapsed().as_millis() as u64;
    EngineOutput { scenarios: rendered, report }
}

/// [`execute`] over a borrowed miss list (the cache split leaves us with
/// `&UniqueRun`s).
fn execute_refs(misses: &[&planner::UniqueRun], opts: &EngineOptions) -> Vec<Arc<RunOutcome>> {
    let hook = opts.sim_hook.as_deref();
    let owned: Vec<planner::UniqueRun> = misses
        .iter()
        .map(|r| planner::UniqueRun {
            fingerprint: r.fingerprint,
            kernel: r.kernel,
            prepared: r.prepared.clone(),
            config: r.config.clone(),
        })
        .collect();
    execute(&owned, opts.jobs, hook)
}

/// The scenario registry, in render order. Names are stable CLI surface
/// (they match the historical per-figure binaries).
pub fn registry() -> Vec<Box<dyn Scenario>> {
    scenarios::all()
}

/// Looks up one registered scenario by name.
pub fn by_name(name: &str) -> Option<Box<dyn Scenario>> {
    registry().into_iter().find(|s| s.name() == name)
}
