//! The unified experiment engine.
//!
//! Every figure and table of the reproduction is a [`Scenario`]: a named
//! experiment that *declares* the simulations it needs ([`Scenario::plan`])
//! and *renders* its tables and JSON artifact from the returned outcomes
//! ([`Scenario::render`]). The engine collects the requests of all selected
//! scenarios, deduplicates them by content fingerprint — the headline
//! experiments overwhelmingly share the same default-config suite — and
//! executes only the unique set on a worker pool, optionally memoized
//! through an on-disk cache. Rendering then happens serially, in registry
//! order, so output is byte-identical regardless of `-j`.
//!
//! ```text
//! plan (all scenarios) → prepare kernels → fingerprint + dedupe
//!   → load disk cache → simulate misses (parallel) → store
//!   → render (serial)
//! ```
//!
//! Campaigns are fault-tolerant end to end: a panicking worker, a
//! livelocked simulation, or a corrupt cache entry costs exactly the
//! affected run, which becomes a structured [`fault::RunFailure`] (with a
//! repro command) while every other run proceeds. Scenarios render
//! partial tables with explicit `FAILED(<fingerprint>)` cells, the full
//! failure list lands in `failures.json`, and `--resume` replays a
//! campaign re-executing only what previously failed (successes are
//! served from the cache).

pub mod cache;
pub mod cli;
pub mod fault;
pub mod journal;
pub mod lease;
pub mod planner;
pub mod pool;
pub mod scenarios;
pub mod serve;
pub mod signals;
pub mod spans;
pub mod supervise;

use crate::runner::{scale_tag, KernelRun, RunConfig, RunOutcome};
use crate::tiered::{CheckpointStore, Tier};
use crate::RunArtifact;
use cache::{CacheLookup, DiskCache};
use fault::{FaultPlan, FaultStats, RunBudget, RunError, RunFailure};
use journal::{Journal, JournalEvent, Replay, RunState};
use lf_stats::Json;
use lf_workloads::{Scale, Workload};
use planner::{dedupe, execute, prepare_kernels, Hinting, Planner, PrepKey, PreparedKernel};
use pool::WorkerPanic;
use spans::{DurationSummary, SpanLog};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One experiment: a registered figure/table reproduction.
pub trait Scenario: Sync {
    /// CLI name (stable; matches the historical binary name).
    fn name(&self) -> &'static str;
    /// One-line human title printed above the rendered output.
    fn title(&self) -> &'static str;
    /// Declares every simulation this scenario needs against the engine's
    /// (possibly filtered) kernel suite. Must be deterministic and must
    /// not simulate anything itself.
    fn plan(&self, p: &mut Planner<'_>);
    /// Renders tables/summaries into `out` and builds the scenario's JSON
    /// artifact from the memoized outcomes in `ctx`. Runs serially.
    fn render(&self, ctx: &EngineCtx<'_>, out: &mut String) -> RunArtifact;
}

/// Engine invocation options.
#[derive(Clone)]
pub struct EngineOptions {
    /// Workload scale for every planned run.
    pub scale: Scale,
    /// Execution tier for every planned run (`--tier`). The detailed tier
    /// keeps legacy fingerprints, so existing caches stay valid; the
    /// functional and sampled tiers fingerprint (and cache) separately.
    pub tier: Tier,
    /// Worker threads for kernel preparation and simulation.
    pub jobs: usize,
    /// Kernel-name substring filter; non-matching kernels are dropped from
    /// the suite before planning.
    pub filter: Option<String>,
    /// On-disk run cache; `None` disables memoization across processes
    /// (`--no-cache`).
    pub disk_cache: Option<DiskCache>,
    /// Test hook: fires once per *simulated* (not cached) run, with the
    /// kernel name. Used to assert each unique fingerprint simulates
    /// exactly once.
    pub sim_hook: Option<Arc<dyn Fn(&'static str) + Send + Sync>>,
    /// Per-run execution budget (cycle cap + optional wall-clock
    /// deadline); the watchdog converting livelocks into structured
    /// failures.
    pub budget: RunBudget,
    /// Deterministic fault injection (`--inject-fault`); default inactive.
    pub faults: FaultPlan,
    /// Fingerprints from a previous campaign's `failures.json`
    /// (`--resume`). Only used for telemetry: failed runs were never
    /// cached, so they re-execute naturally while successes hit the cache.
    pub resume_from: Option<HashSet<u64>>,
    /// Caller-provided span log (`--trace-out`): phase and per-run spans
    /// are recorded into it for Chrome trace-event export. When `None`,
    /// the engine still records spans into a private log (the per-run
    /// timing summary in [`PlannerReport`] comes from it) but nothing is
    /// exported.
    pub spans: Option<Arc<SpanLog>>,
    /// Runs quarantined as poisonous by the multi-process supervisor
    /// (fingerprint → distinct worker deaths). Poisoned cache misses are
    /// never executed in this process: they become structured
    /// [`fault::RunError::Poisoned`] failures (a poisonous run would
    /// otherwise take this process down too).
    pub poisoned: HashMap<u64, usize>,
    /// Failure counters carried in from a supervising process (worker
    /// deaths, respawns, lease reclaims); merged into this invocation's
    /// own counters so the rendered telemetry covers the whole campaign.
    pub carried_faults: FaultStats,
    /// Journal scope for campaigns sharing one cache directory: a fresh
    /// campaign writes `campaign-<scope>.journal` instead of truncating
    /// the shared `campaign.journal`, so concurrent service requests
    /// never interleave torn state. `None` (every one-shot invocation)
    /// keeps the classic single-log behavior.
    pub journal_scope: Option<String>,
}

impl EngineOptions {
    /// Options for `scale` with serial execution and no disk cache.
    pub fn new(scale: Scale) -> EngineOptions {
        EngineOptions {
            scale,
            tier: Tier::Detailed,
            jobs: 1,
            filter: None,
            disk_cache: None,
            sim_hook: None,
            budget: RunBudget::default(),
            faults: FaultPlan::default(),
            resume_from: None,
            spans: None,
            poisoned: HashMap::new(),
            carried_faults: FaultStats::default(),
            journal_scope: None,
        }
    }
}

/// Everything a scenario's render phase can consult: the planned suite,
/// the prepared (profiled/annotated) kernels, and the memoized outcome of
/// every requested run.
pub struct EngineCtx<'e> {
    scale: Scale,
    tier: Tier,
    suite: &'e [Workload],
    prepared: HashMap<PrepKey, Arc<PreparedKernel>>,
    outcomes: HashMap<u64, Arc<RunOutcome>>,
    /// Failed runs, by fingerprint.
    failures: HashMap<u64, Arc<RunFailure>>,
    /// Kernels whose preparation (profile + annotate) itself failed; their
    /// dependent runs have no fingerprint.
    prep_failures: HashMap<PrepKey, Arc<RunFailure>>,
}

impl EngineCtx<'_> {
    /// The workload scale of this engine run.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The execution tier of this engine run.
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// The (possibly filtered) kernel suite, in canonical order.
    pub fn kernels(&self) -> &[Workload] {
        self.suite
    }

    /// The prepared kernel for a `(kernel, hinting)` pair, or `None` if
    /// its preparation failed (or was never requested).
    pub fn try_prepared(&self, kernel: &str, hinting: &Hinting) -> Option<&Arc<PreparedKernel>> {
        self.prepared
            .iter()
            .find(|((name, h), _)| *name == kernel && *h == hinting.fingerprint())
            .map(|(_, p)| p)
    }

    /// The prepared kernel for a `(kernel, hinting)` pair.
    ///
    /// # Panics
    ///
    /// Panics if no scenario requested this pair — rendering may only
    /// consume planned work.
    pub fn prepared(&self, kernel: &str, hinting: &Hinting) -> &Arc<PreparedKernel> {
        self.try_prepared(kernel, hinting)
            .unwrap_or_else(|| panic!("kernel {kernel} was not prepared — did plan() request it?"))
    }

    /// The memoized outcome of one requested run, or the failure record if
    /// it (or its kernel's preparation) failed.
    ///
    /// # Panics
    ///
    /// Panics if the run was never declared during planning — absence is a
    /// scenario bug, not a runtime failure.
    pub fn try_outcome(
        &self,
        kernel: &str,
        hinting: &Hinting,
        cfg: &loopfrog::LoopFrogConfig,
    ) -> Result<Arc<RunOutcome>, Arc<RunFailure>> {
        if let Some(f) = self.prep_failure(kernel, hinting) {
            return Err(f.clone());
        }
        let prep = self.prepared(kernel, hinting);
        let fp = prep.request_fingerprint_tiered(cfg, self.tier);
        if let Some(outcome) = self.outcomes.get(&fp) {
            return Ok(outcome.clone());
        }
        if let Some(failure) = self.failures.get(&fp) {
            return Err(failure.clone());
        }
        panic!("run for {kernel} was not planned (fingerprint {fp:#x})")
    }

    /// The memoized outcome of one requested run.
    ///
    /// # Panics
    ///
    /// Panics if the run was never declared during planning, or if it
    /// failed (callers that tolerate failures use
    /// [`EngineCtx::try_outcome`]).
    pub fn outcome(
        &self,
        kernel: &str,
        hinting: &Hinting,
        cfg: &loopfrog::LoopFrogConfig,
    ) -> Arc<RunOutcome> {
        self.try_outcome(kernel, hinting, cfg)
            .unwrap_or_else(|f| panic!("run for {kernel} failed: {}", f.error.message()))
    }

    /// The preparation-failure record for a `(kernel, hinting)` pair, if
    /// its profile/annotate step panicked.
    fn prep_failure(&self, kernel: &str, hinting: &Hinting) -> Option<&Arc<RunFailure>> {
        self.prep_failures
            .iter()
            .find(|((name, h), _)| *name == kernel && *h == hinting.fingerprint())
            .map(|(_, f)| f)
    }

    /// The failure record keeping `kernel` out of the suite view under
    /// `rc`, if any: its preparation failure, or the first of its
    /// baseline/LoopFrog run failures.
    pub fn suite_failure(&self, kernel: &str, rc: &RunConfig) -> Option<Arc<RunFailure>> {
        let hinting = Hinting::Annotated(rc.select.clone());
        if let Some(f) = self.prep_failure(kernel, &hinting) {
            return Some(f.clone());
        }
        let prep = self.try_prepared(kernel, &hinting)?;
        for cfg in [&rc.base, &rc.lf] {
            let fp = prep.request_fingerprint_tiered(cfg, self.tier);
            if let Some(f) = self.failures.get(&fp) {
                return Some(f.clone());
            }
        }
        None
    }

    /// Every suite kernel missing from [`EngineCtx::suite_runs`] under
    /// `rc`, with the failure responsible, in canonical suite order.
    pub fn suite_failures(&self, rc: &RunConfig) -> Vec<(&'static str, Arc<RunFailure>)> {
        self.suite
            .iter()
            .filter_map(|w| self.suite_failure(w.name, rc).map(|f| (w.name, f)))
            .collect()
    }

    /// Rows for the failed kernels under `rc`, shaped for a `width`-column
    /// table: kernel name, a `FAILED(<fingerprint>)` cell, then padding.
    /// Scenarios append these below their successful rows so partial
    /// tables stay explicit about what is missing.
    pub fn failed_suite_rows(&self, rc: &RunConfig, width: usize) -> Vec<Vec<String>> {
        self.suite_failures(rc)
            .into_iter()
            .map(|(kernel, f)| {
                let mut row = vec![kernel.to_string(), f.cell()];
                row.resize(width.max(2), "-".to_string());
                row
            })
            .collect()
    }

    /// Appends one explanatory line per failed kernel under `rc` to `out`
    /// and returns the failure records as a JSON array for the scenario's
    /// artifact (`None` when the suite view is complete).
    pub fn note_suite_failures(&self, rc: &RunConfig, out: &mut String) -> Option<Json> {
        let failed = self.suite_failures(rc);
        if failed.is_empty() {
            return None;
        }
        out.push('\n');
        for (kernel, f) in &failed {
            out.push_str(&format!("FAILED {kernel}: {} (repro: {})\n", f.error.message(), f.repro));
        }
        Some(Json::Arr(failed.iter().map(|(_, f)| f.to_json()).collect()))
    }

    /// Sweep-scenario variant of [`EngineCtx::note_suite_failures`]:
    /// appends one line per kernel failed under `rc`, naming the sweep
    /// point `label`, and accumulates the failure records into `acc` for
    /// the scenario's artifact.
    pub fn note_point_failures(
        &self,
        rc: &RunConfig,
        label: &str,
        out: &mut String,
        acc: &mut Vec<Json>,
    ) {
        for (kernel, f) in self.suite_failures(rc) {
            out.push_str(&format!(
                "FAILED {kernel} at {label}: {} ({})\n",
                f.error.message(),
                f.cell()
            ));
            let mut record = f.to_json();
            record.set("sweep_point", label);
            acc.push(record);
        }
    }

    /// Assembles the standard experiment view — one [`KernelRun`] per suite
    /// kernel under `rc`, with profile-guided deselection applied — from
    /// memoized outcomes. The engine-side equivalent of the standalone
    /// [`crate::run_suite`]. Kernels with a failed preparation or run are
    /// omitted (graceful degradation); [`EngineCtx::suite_failures`] lists
    /// them and [`EngineCtx::failed_suite_rows`] renders them.
    pub fn suite_runs(&self, rc: &RunConfig) -> Vec<KernelRun> {
        let hinting = Hinting::Annotated(rc.select.clone());
        self.suite
            .iter()
            .filter_map(|w| {
                let prep = self.try_prepared(w.name, &hinting)?;
                let base = self.try_outcome(w.name, &hinting, &rc.base).ok()?;
                let lf = self.try_outcome(w.name, &hinting, &rc.lf).ok()?;
                let golden = prep.golden.expect("annotated preparations carry a golden checksum");
                Some(KernelRun::from_outcomes(
                    &prep.workload,
                    prep.selected_loops,
                    golden,
                    base,
                    lf,
                    rc.deselect_unprofitable,
                ))
            })
            .collect()
    }
}

/// Planner telemetry for one engine invocation: how much the
/// content-addressed deduplication and the caches saved.
#[derive(Debug, Clone)]
pub struct PlannerReport {
    /// Requests declared, per scenario, in registry order.
    pub per_scenario: Vec<(&'static str, usize)>,
    /// Total run requests declared by all scenarios.
    pub requests: usize,
    /// Unique run fingerprints after deduplication.
    pub unique: usize,
    /// Runs served from the on-disk cache.
    pub disk_hits: usize,
    /// Runs actually simulated in this process.
    pub simulated: usize,
    /// Distinct `(kernel, hinting)` preparations (profile + annotate).
    pub prepared: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock milliseconds from planning through the last simulation
    /// (rendering excluded).
    pub execute_wall_ms: u64,
    /// Wall-clock milliseconds for the whole invocation.
    pub total_wall_ms: u64,
    /// Failure counters: failed runs by cause, cache corruption and
    /// quarantine activity, store retries, resumed runs.
    pub faults: FaultStats,
    /// Distribution of per-run simulation wall times (from the campaign
    /// span log; cached runs are not included).
    pub run_wall: DurationSummary,
}

impl PlannerReport {
    /// The machine-readable planner section embedded in artifacts.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        let mut per = Json::obj();
        for (name, n) in &self.per_scenario {
            per.set(name, *n as u64);
        }
        j.set("requests_per_scenario", per);
        j.set("requests", self.requests as u64);
        j.set("unique_runs", self.unique as u64);
        j.set("deduplicated", (self.requests - self.unique) as u64);
        j.set("disk_cache_hits", self.disk_hits as u64);
        j.set("simulated", self.simulated as u64);
        j.set("prepared_kernels", self.prepared as u64);
        j.set("jobs", self.jobs as u64);
        j.set("execute_wall_ms", self.execute_wall_ms);
        j.set("total_wall_ms", self.total_wall_ms);
        j.set("run_wall_us", self.run_wall.to_json());
        j.set("faults", self.faults.to_json());
        j
    }
}

/// One scenario's rendered output.
pub struct ScenarioOutput {
    /// Scenario CLI name.
    pub name: &'static str,
    /// Human title.
    pub title: &'static str,
    /// The rendered text (tables and summary lines).
    pub text: String,
    /// The finalized JSON artifact (planner section included).
    pub artifact: Json,
}

/// The result of one engine invocation.
pub struct EngineOutput {
    /// Rendered scenarios, in registry order.
    pub scenarios: Vec<ScenarioOutput>,
    /// Planner telemetry.
    pub report: PlannerReport,
    /// Every failure of the campaign (preparation, run, and render), in
    /// deterministic order — the content of `failures.json`.
    pub failures: Vec<Arc<RunFailure>>,
}

/// Plans, deduplicates, executes, and renders `scenarios`.
///
/// Phases: every scenario declares its runs; distinct `(kernel, hinting)`
/// pairs are prepared in parallel; requests resolve to content fingerprints
/// and collapse to the unique set; the disk cache absorbs known outcomes;
/// the remainder simulates on the worker pool; finally each scenario
/// renders serially from the shared outcome table. Identical requests from
/// different scenarios are simulated exactly once.
pub fn run_scenarios(scenarios: &[&dyn Scenario], opts: &EngineOptions) -> EngineOutput {
    run_scenarios_warm(scenarios, opts, None)
}

/// Long-lived engine state for the resident campaign service
/// (`lf-bench serve`): deduplicated campaign plans — including their
/// prepared (profiled + annotated) kernels — cached across requests,
/// keyed by the plan's inputs. The plan is a pure function of
/// (scenarios × scale × tier × filter), so a repeat request skips the
/// plan and prepare phases entirely and goes straight to cache lookups
/// and rendering — which is exactly why a fully-cached service request
/// is dominated by the render phase.
#[derive(Default)]
pub struct WarmEngine {
    plans: std::sync::Mutex<HashMap<u64, Arc<CampaignPlan>>>,
    plan_hits: std::sync::atomic::AtomicUsize,
}

impl WarmEngine {
    /// An empty warm-state holder.
    pub fn new() -> WarmEngine {
        WarmEngine::default()
    }

    /// How many requests were served a cached plan so far.
    pub fn plan_hits(&self) -> usize {
        self.plan_hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The plan-index key: everything [`build_plan`] depends on.
    fn plan_key(scenarios: &[&dyn Scenario], opts: &EngineOptions) -> u64 {
        let mut fp = lf_stats::Fingerprint::new();
        for s in scenarios {
            fp.str(s.name());
        }
        fp.str(scale_tag(opts.scale));
        fp.str(opts.tier.tag());
        fp.str(opts.filter.as_deref().unwrap_or(""));
        fp.finish()
    }

    fn plan_for(
        &self,
        scenarios: &[&dyn Scenario],
        opts: &EngineOptions,
        span_log: &Arc<SpanLog>,
    ) -> Arc<CampaignPlan> {
        let key = Self::plan_key(scenarios, opts);
        if let Some(plan) = self.plans.lock().expect("plan index poisoned").get(&key) {
            self.plan_hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return plan.clone();
        }
        // Built outside the lock: preparation is the expensive part and
        // the server executes requests sequentially anyway; a losing
        // racer merely rebuilds an identical (deterministic) plan.
        let plan = Arc::new(build_plan(scenarios, opts, span_log));
        self.plans.lock().expect("plan index poisoned").insert(key, plan.clone());
        plan
    }
}

/// [`run_scenarios`] against optional long-lived service state: with
/// `warm` provided, the deduplicated plan index persists across
/// invocations and repeat requests skip the plan/prepare phases.
pub fn run_scenarios_warm(
    scenarios: &[&dyn Scenario],
    opts: &EngineOptions,
    warm: Option<&WarmEngine>,
) -> EngineOutput {
    let started = Instant::now();
    // The span log records phase and per-run intervals on every campaign
    // (the timing summary in the planner telemetry feeds off it); the
    // caller's log is used when provided so `--trace-out` can export it.
    let span_log: Arc<SpanLog> = opts.spans.clone().unwrap_or_default();
    // Campaign durability: sweep commit temp files orphaned by a killed
    // predecessor, then open the campaign journal. Both live under the
    // cache directory, so `--no-cache` campaigns run unswept and
    // unjournaled (they publish nothing worth recovering).
    let mut faults = opts.carried_faults.clone();
    let (campaign_journal, journal_replay) = open_journal(opts, &mut faults);

    // Phases 1-2: plan, prepare, dedupe (shared with worker processes,
    // which re-derive the identical plan from the same options, and with
    // the resident service, which reuses it outright). The plan is only
    // borrowed from here on so a warm index can keep it alive across
    // requests; preparation panics are re-reported per invocation.
    let plan: Arc<CampaignPlan> = match warm {
        Some(w) => w.plan_for(scenarios, opts, &span_log),
        None => Arc::new(build_plan(scenarios, opts, &span_log)),
    };
    let suite = &plan.suite;
    let unique = &plan.unique;
    let tag = scale_tag(opts.scale);
    let repro_for = |kernel: &str| repro_command(opts.scale, opts.tier, kernel);
    let mut failure_list: Vec<Arc<RunFailure>> = Vec::new();
    let mut prep_failures: HashMap<PrepKey, Arc<RunFailure>> = HashMap::new();
    for (key, panic) in &plan.prep_panics {
        faults.prep_failures += 1;
        let record = Arc::new(RunFailure {
            fingerprint: 0,
            kernel: key.0.to_string(),
            error: RunError::Panicked { payload: panic.payload.clone() },
            repro: repro_for(key.0),
        });
        failure_list.push(record.clone());
        prep_failures.insert(*key, record);
    }

    // Journal the deduplicated plan in one batch, and on `--resume`
    // classify each planned run against the previous campaign's log: the
    // telemetry states exactly what the crash interrupted (committed /
    // in flight / never started) instead of leaving it to be inferred
    // from cache misses.
    if let Some(j) = &campaign_journal {
        let planned: Vec<JournalEvent> =
            unique.iter().map(|r| JournalEvent::Planned(r.fingerprint)).collect();
        if let Err(e) = j.append_all(&planned) {
            eprintln!("warning: campaign journal write failed: {e}");
        }
        if let Some(replay) = &journal_replay {
            for run in unique.iter() {
                match replay.classify(run.fingerprint) {
                    RunState::Committed => faults.journal_committed += 1,
                    RunState::InFlight => faults.journal_in_flight += 1,
                    RunState::NeverStarted => faults.journal_never_started += 1,
                }
            }
        }
    }

    // Phase 3: serve what the disk cache already knows, simulate the rest.
    // Cache probes are classified so telemetry can separate ordinary
    // misses from schema-stale and corrupt (quarantined) entries.
    let cache_span = span_log.span("phase", "cache");
    let mut outcomes: HashMap<u64, Arc<RunOutcome>> = HashMap::new();
    let mut misses = Vec::new();
    let mut disk_hits = 0usize;
    for run in unique.iter() {
        match opts.disk_cache.as_ref() {
            None => misses.push(run),
            Some(c) => match c.lookup(run.fingerprint) {
                CacheLookup::Hit(hit) => {
                    disk_hits += 1;
                    outcomes.insert(run.fingerprint, Arc::new(*hit));
                }
                CacheLookup::Miss => misses.push(run),
                CacheLookup::Corrupt { quarantined } => {
                    faults.cache_corrupt += 1;
                    if quarantined {
                        faults.quarantined += 1;
                    }
                    misses.push(run);
                }
                CacheLookup::SchemaMismatch => {
                    faults.cache_schema_mismatch += 1;
                    misses.push(run);
                }
            },
        }
    }
    if let Some(resume) = &opts.resume_from {
        // Failed runs are never cached, so a resumed campaign re-executes
        // exactly the previous failures; this counts how many of the
        // misses are such replays.
        faults.resumed = misses.iter().filter(|r| resume.contains(&r.fingerprint)).count();
    }
    // Poisoned runs (they killed K distinct workers under the supervisor)
    // are never executed here — a genuinely poisonous run would take this
    // process down too. A cache hit outranks a poison marker: if any
    // worker managed to commit the run, the result is trusted.
    let mut poisoned_runs: Vec<(&planner::UniqueRun, usize)> = Vec::new();
    misses.retain(|run| match opts.poisoned.get(&run.fingerprint) {
        Some(&deaths) => {
            poisoned_runs.push((*run, deaths));
            false
        }
        None => true,
    });
    drop(cache_span);
    let misses: Vec<_> = misses; // shadow as immutable for the pool
    let simulate_span = span_log.span("phase", "simulate");
    let executed = execute_refs(&misses, opts, &span_log, campaign_journal.as_deref());
    drop(simulate_span);
    let mut failures: HashMap<u64, Arc<RunFailure>> = HashMap::new();
    for (run, deaths) in poisoned_runs {
        faults.poisoned += 1;
        let record = Arc::new(RunFailure {
            fingerprint: run.fingerprint,
            kernel: run.kernel.to_string(),
            error: RunError::Poisoned { worker_deaths: deaths },
            repro: repro_for(run.kernel),
        });
        failure_list.push(record.clone());
        failures.insert(run.fingerprint, record);
    }
    for (run, result) in misses.iter().zip(executed) {
        match result {
            Ok(outcome) => {
                if let Some(cache) = &opts.disk_cache {
                    store_outcome(
                        cache,
                        run.fingerprint,
                        &outcome,
                        opts,
                        &mut faults,
                        campaign_journal.as_deref(),
                    );
                }
                outcomes.insert(run.fingerprint, outcome);
            }
            Err(error) => {
                match &error {
                    RunError::Panicked { .. } => faults.panicked += 1,
                    RunError::Sim { .. } => faults.sim_errors += 1,
                    RunError::BudgetExceeded { .. } => faults.budget_exceeded += 1,
                    // Poisoned runs were filtered out before execution.
                    RunError::Poisoned { .. } => faults.poisoned += 1,
                }
                let record = Arc::new(RunFailure {
                    fingerprint: run.fingerprint,
                    kernel: run.kernel.to_string(),
                    error,
                    repro: repro_for(run.kernel),
                });
                failure_list.push(record.clone());
                failures.insert(run.fingerprint, record);
            }
        }
    }
    let execute_wall_ms = started.elapsed().as_millis() as u64;

    // Phase 4: render serially in registry order — output is deterministic
    // for any `-j`. A panicking render costs only that scenario's output:
    // the campaign still renders everything else and reports the failure.
    let ctx = EngineCtx {
        scale: opts.scale,
        tier: opts.tier,
        suite,
        prepared: plan.prepared.clone(),
        outcomes,
        failures,
        prep_failures,
    };
    let mut report = PlannerReport {
        requests: plan.per_scenario.iter().map(|(_, n)| n).sum(),
        per_scenario: plan.per_scenario.clone(),
        unique: unique.len(),
        disk_hits,
        simulated: misses.len(),
        prepared: ctx.prepared.len(),
        jobs: opts.jobs,
        execute_wall_ms,
        total_wall_ms: 0,
        faults,
        run_wall: DurationSummary::from_durations(&span_log.durations_us("run")),
    };
    let render_span = span_log.span("phase", "render");
    let mut rendered = Vec::new();
    for s in scenarios {
        let _s = span_log.span("render", s.name());
        match catch_unwind(AssertUnwindSafe(|| {
            let mut text = String::new();
            let artifact = s.render(&ctx, &mut text);
            (text, artifact)
        })) {
            Ok((text, mut artifact)) => {
                artifact.set_extra("planner", report.to_json());
                rendered.push(ScenarioOutput {
                    name: s.name(),
                    title: s.title(),
                    text,
                    artifact: artifact.into_json(),
                });
            }
            Err(payload) => {
                let panic = WorkerPanic::from_payload(payload);
                report.faults.render_failures += 1;
                let record = Arc::new(RunFailure {
                    fingerprint: 0,
                    kernel: s.name().to_string(),
                    error: RunError::Panicked { payload: panic.payload.clone() },
                    repro: format!("lf-bench run {} --scale {tag}", s.name()),
                });
                failure_list.push(record.clone());
                let mut artifact = RunArtifact::new(s.name(), opts.scale);
                artifact.set_extra("render_error", record.error.message());
                artifact.set_extra("planner", report.to_json());
                rendered.push(ScenarioOutput {
                    name: s.name(),
                    title: s.title(),
                    text: format!(
                        "{}\n\nRENDER FAILED: {}\n(repro: {})\n",
                        s.title(),
                        panic.payload,
                        record.repro
                    ),
                    artifact: artifact.into_json(),
                });
            }
        }
    }
    drop(render_span);
    report.total_wall_ms = started.elapsed().as_millis() as u64;
    EngineOutput { scenarios: rendered, report, failures: failure_list }
}

/// The deterministic front half of a campaign: the filtered suite, the
/// per-scenario request counts, the prepared kernels (with any
/// preparation panics), and the deduplicated unique-run list. Worker
/// processes re-derive this identical plan from the same options — the
/// plan is a pure function of (scenarios, scale, tier, filter), so no
/// plan data ever needs to cross a process boundary.
pub(crate) struct CampaignPlan {
    /// The (possibly `--filter`ed) kernel suite, canonical order.
    pub suite: Vec<Workload>,
    /// Requests declared per scenario, registry order.
    pub per_scenario: Vec<(&'static str, usize)>,
    /// Successfully prepared `(kernel, hinting)` pairs.
    pub prepared: HashMap<PrepKey, Arc<PreparedKernel>>,
    /// Preparations that panicked.
    pub prep_panics: Vec<(PrepKey, WorkerPanic)>,
    /// The deduplicated execution plan, first-seen order.
    pub unique: Vec<planner::UniqueRun>,
}

/// Runs phases 1-2 (plan → prepare → dedupe). Shared by
/// [`run_scenarios`] and the multi-process worker entry point.
pub(crate) fn build_plan(
    scenarios: &[&dyn Scenario],
    opts: &EngineOptions,
    span_log: &Arc<SpanLog>,
) -> CampaignPlan {
    let suite: Vec<Workload> = lf_workloads::all(opts.scale)
        .into_iter()
        .filter(|w| match &opts.filter {
            Some(f) => w.name.contains(f.as_str()),
            None => true,
        })
        .collect();

    // Phase 1: plan. Scenarios only declare work; nothing runs yet.
    let plan_span = span_log.span("phase", "plan");
    let mut planner = Planner::new(&suite);
    let mut per_scenario = Vec::new();
    for s in scenarios {
        let _s = span_log.span("plan", s.name());
        let before = planner.request_count();
        s.plan(&mut planner);
        per_scenario.push((s.name(), planner.request_count() - before));
    }
    let requests = planner.into_requests();
    drop(plan_span);

    // Phase 2: prepare (profile + annotate) each distinct kernel/hinting
    // pair, then collapse requests to unique fingerprints. A failed
    // preparation drops only that pair's requests; its failure record
    // stands in for every run that depended on it.
    let prepare_span = span_log.span("phase", "prepare");
    let (prepared, prep_panics) = prepare_kernels(&suite, &requests, opts.jobs);
    drop(prepare_span);
    let unique = dedupe(&requests, &prepared, opts.tier);
    CampaignPlan { suite, per_scenario, prepared, prep_panics, unique }
}

/// The one-line repro command attached to failure records.
pub(crate) fn repro_command(scale: Scale, tier: Tier, kernel: &str) -> String {
    let tag = scale_tag(scale);
    let tier_flag = match tier {
        Tier::Detailed => String::new(),
        t => format!(" --tier {}", t.tag()),
    };
    format!("lf-bench run --all --scale {tag}{tier_flag} --filter {kernel} -j 1 --no-cache")
}

/// Executes one unique run in this process (the worker claim loop's unit
/// of work): journals `Started`, applies injection/budget/tier dispatch,
/// and returns the outcome. Panics are contained exactly as in the
/// campaign pool.
pub(crate) fn execute_single(
    run: &planner::UniqueRun,
    opts: &EngineOptions,
    span_log: &Arc<SpanLog>,
    journal: Option<&Journal>,
) -> Result<Arc<RunOutcome>, RunError> {
    execute_refs(&[run], opts, span_log, journal)
        .pop()
        .expect("execute over one run yields one result")
}

/// Opens the campaign journal under the cache directory (fresh on a new
/// campaign, replayed on `--resume`) after sweeping commit temp files a
/// killed predecessor left behind. Journal IO failures cost diagnostics,
/// never the campaign: the engine degrades to running unjournaled.
fn open_journal(
    opts: &EngineOptions,
    faults: &mut FaultStats,
) -> (Option<Arc<Journal>>, Option<Replay>) {
    let Some(cache) = &opts.disk_cache else {
        return (None, None);
    };
    // `+=`: a supervising process may have swept (and counted) already.
    faults.tmp_swept += crate::durable::sweep_orphan_tmps(cache.dir());
    let dir = cache.journal_dir();
    if opts.resume_from.is_some() {
        match Journal::resume(&dir) {
            Ok((j, replay)) => {
                faults.journal_torn_bytes = replay.torn_bytes;
                (Some(Arc::new(j)), Some(replay))
            }
            Err(e) => {
                eprintln!("warning: cannot resume campaign journal: {e}");
                (None, None)
            }
        }
    } else {
        // Service requests write a scoped per-request log instead of
        // truncating the shared campaign.journal out from under their
        // neighbors; a one-shot campaign keeps the classic single log.
        let opened = match &opts.journal_scope {
            Some(scope) => Journal::begin_scoped(&dir, scope),
            None => Journal::begin(&dir),
        };
        match opened {
            Ok(j) => (Some(Arc::new(j)), None),
            Err(e) => {
                eprintln!("warning: cannot open campaign journal: {e}");
                (None, None)
            }
        }
    }
}

/// Persists one outcome through the retry schedule, journals the durable
/// commit, then (under `--inject-fault corrupt-cache:<rate>`) garbles the
/// freshly written entry so the *next* campaign exercises the quarantine
/// path.
pub(crate) fn store_outcome(
    cache: &DiskCache,
    fingerprint: u64,
    outcome: &RunOutcome,
    opts: &EngineOptions,
    faults: &mut FaultStats,
    journal: Option<&Journal>,
) {
    let (tried, stored) =
        lf_stats::fault::retry(2, Duration::from_millis(10), Duration::from_millis(80), || {
            cache.store(outcome)
        });
    faults.store_retries += (tried - 1) as usize;
    match stored {
        Err(e) => {
            // The run itself succeeded; only cross-process memoization is
            // lost.
            faults.store_failures += 1;
            eprintln!("warning: run cache write failed after {tried} attempts: {e}");
        }
        Ok(()) => {
            // The commit record follows the cache rename: a journal that
            // says `Committed` is never ahead of the durable entry (a
            // crash between the two merely downgrades the run to "in
            // flight", which resume treats conservatively).
            if let Some(j) = journal {
                if let Err(e) = j.append(JournalEvent::Committed(fingerprint)) {
                    eprintln!("warning: campaign journal append failed: {e}");
                }
            }
            if opts.faults.should_corrupt(fingerprint) {
                let _ = std::fs::write(
                    cache.entry_path(fingerprint),
                    "{ \"injected\": \"corrupt-cache\"",
                );
            }
        }
    }
}

/// [`execute`] over a borrowed miss list (the cache split leaves us with
/// `&UniqueRun`s).
fn execute_refs(
    misses: &[&planner::UniqueRun],
    opts: &EngineOptions,
    span_log: &Arc<SpanLog>,
    journal: Option<&Journal>,
) -> Vec<Result<Arc<RunOutcome>, RunError>> {
    let hook = opts.sim_hook.as_deref();
    let owned: Vec<planner::UniqueRun> = misses
        .iter()
        .map(|r| planner::UniqueRun {
            fingerprint: r.fingerprint,
            kernel: r.kernel,
            prepared: r.prepared.clone(),
            config: r.config.clone(),
        })
        .collect();
    // Checkpoint plans live next to the run-cache entries and commit
    // through the same atomic-write path; `--no-cache` campaigns rebuild
    // plans in memory instead.
    let ckpt_store = opts.disk_cache.as_ref().map(|c| CheckpointStore::new(c.dir()));
    execute(
        &owned,
        opts.jobs,
        hook,
        &opts.budget,
        &opts.faults,
        opts.tier,
        ckpt_store.as_ref(),
        span_log,
        journal,
    )
}

/// The scenario registry, in render order. Names are stable CLI surface
/// (they match the historical per-figure binaries).
pub fn registry() -> Vec<Box<dyn Scenario>> {
    scenarios::all()
}

/// Looks up one registered scenario by name.
pub fn by_name(name: &str) -> Option<Box<dyn Scenario>> {
    registry().into_iter().find(|s| s.name() == name)
}
