//! `lf-bench profile` — the engine self-profiler over the perf basket.
//!
//! Answers "where does the *simulator's* wall-clock time go?" per pipeline
//! stage, using the core's sampled self-profiler
//! ([`loopfrog::LoopFrogCore::enable_profiler`]) on the same frozen kernel
//! basket as `lf-bench perf`, so a throughput regression in the trajectory
//! can immediately be attributed to a stage. Sampled stage times from all
//! repetitions are pooled (shares converge with more reps; there is no
//! "best of" for a distribution), and kernels are reported individually
//! plus as a basket-wide aggregate.
//!
//! Profiling is core-side state, not configuration: the simulated results
//! of a profiled run are byte-identical to an unprofiled one.

use crate::perf::BASKET;
use crate::runner::scale_tag;
use crate::RunArtifact;
use lf_compiler::{annotate, SelectOptions};
use lf_stats::Json;
use lf_workloads::Scale;
use loopfrog::{LoopFrogConfig, LoopFrogCore, ProfileReport};
use std::path::PathBuf;

/// Options for one `lf-bench profile` invocation.
#[derive(Debug, Clone)]
pub struct ProfileOptions {
    /// Workload scale.
    pub scale: Scale,
    /// Repetitions per (kernel, config) pair; sampled times are pooled.
    pub reps: usize,
    /// Where to write the profile artifact (`None` = print only).
    pub json_path: Option<PathBuf>,
}

impl Default for ProfileOptions {
    fn default() -> ProfileOptions {
        ProfileOptions { scale: Scale::Smoke, reps: 3, json_path: None }
    }
}

/// Stage-time accumulator: pools sampled nanoseconds by stage name across
/// reports while preserving the pipeline's stage order.
#[derive(Debug, Default, Clone)]
struct StagePool {
    stages: Vec<(&'static str, u64)>,
    sampled_ticks: u64,
    total_ticks: u64,
}

impl StagePool {
    fn add(&mut self, report: &ProfileReport) {
        self.sampled_ticks += report.sampled_ticks;
        self.total_ticks += report.total_ticks;
        for s in &report.stages {
            match self.stages.iter_mut().find(|(name, _)| *name == s.name) {
                Some((_, ns)) => *ns += s.sampled_ns,
                None => self.stages.push((s.name, s.sampled_ns)),
            }
        }
    }

    fn total_ns(&self) -> u64 {
        self.stages.iter().map(|(_, ns)| ns).sum()
    }

    fn share(&self, name: &str) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            return 0.0;
        }
        self.stages
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, ns)| *ns as f64 / total as f64)
            .unwrap_or(0.0)
    }

    fn to_json(&self) -> Json {
        let total = self.total_ns();
        let mut stages = Vec::new();
        for (name, ns) in &self.stages {
            let mut o = Json::obj();
            o.set("name", *name);
            o.set("sampled_ns", *ns);
            o.set("share", if total == 0 { 0.0 } else { *ns as f64 / total as f64 });
            stages.push(o);
        }
        let mut j = Json::obj();
        j.set("sampled_ticks", self.sampled_ticks);
        j.set("total_ticks", self.total_ticks);
        j.set("sampled_total_ns", total);
        j.set("stages", Json::Arr(stages));
        j
    }
}

/// Runs the basket with the self-profiler enabled and returns the profile
/// JSON that was written (or would have been, with `json_path: None`).
pub fn run_profile(opts: &ProfileOptions) -> Json {
    let select = SelectOptions::default();
    let configs: [(&'static str, LoopFrogConfig); 2] =
        [("base", LoopFrogConfig::baseline()), ("lf", LoopFrogConfig::default())];

    let mut per_kernel: Vec<(String, StagePool)> = Vec::new();
    let mut aggregate = StagePool::default();
    for name in BASKET {
        let w = lf_workloads::by_name(name, opts.scale)
            .unwrap_or_else(|| panic!("perf basket kernel {name} is not registered"));
        let emu = w.reference_emulator().expect("basket kernel runs on the golden emulator");
        let ann = annotate(&w.program, emu.profile(), &select);
        for (tag, cfg) in &configs {
            let mut pool = StagePool::default();
            for _ in 0..opts.reps.max(1) {
                let mut core = LoopFrogCore::new(&ann.program, w.mem.clone(), cfg.clone());
                core.enable_profiler();
                let r = core.run().unwrap_or_else(|e| panic!("{name} ({tag}) failed: {e}"));
                let report = r.profile.expect("profiler was enabled");
                pool.add(&report);
                aggregate.add(&report);
            }
            per_kernel.push((format!("{name}/{tag}"), pool));
        }
    }

    // One row per (kernel, config), one column per stage, shares of that
    // row's sampled stage time; the aggregate row pools everything.
    let stage_names: Vec<&'static str> = aggregate.stages.iter().map(|(n, _)| *n).collect();
    let mut header: Vec<&str> = vec!["kernel/config"];
    header.extend(stage_names.iter().copied());
    header.push("sampled ms");
    let row_for = |label: &str, pool: &StagePool| -> Vec<String> {
        let mut row = vec![label.to_string()];
        for s in &stage_names {
            row.push(format!("{:5.1}%", pool.share(s) * 100.0));
        }
        row.push(format!("{:.2}", pool.total_ns() as f64 / 1e6));
        row
    };
    let mut rows: Vec<Vec<String>> =
        per_kernel.iter().map(|(label, pool)| row_for(label, pool)).collect();
    rows.push(row_for("TOTAL", &aggregate));

    println!(
        "self-profiler: per-stage wall-clock shares, {} kernels x 2 configs, scale {}, {} rep(s) pooled\n",
        BASKET.len(),
        scale_tag(opts.scale),
        opts.reps.max(1)
    );
    crate::print_table(&header, &rows);
    println!(
        "\nsampled {} of {} ticks (1 in {}); shares are of sampled stage time",
        aggregate.sampled_ticks,
        aggregate.total_ticks,
        loopfrog::profiler::SAMPLE_PERIOD
    );

    let mut profile = Json::obj();
    profile.set("reps", opts.reps.max(1) as u64);
    profile.set("kernels", Json::Arr(BASKET.iter().map(|k| Json::from(*k)).collect()));
    let mut per = Json::obj();
    for (label, pool) in &per_kernel {
        per.set(label, pool.to_json());
    }
    profile.set("per_run", per);
    profile.set("aggregate", aggregate.to_json());

    let mut art = RunArtifact::new("profile", opts.scale);
    art.set_extra("profile", profile);
    let doc = art.into_json();
    if let Some(path) = &opts.json_path {
        match crate::durable::atomic_write_json(&doc, path) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_reports_shares_for_every_stage() {
        let opts = ProfileOptions { scale: Scale::Smoke, reps: 1, json_path: None };
        let doc = run_profile(&opts);
        let profile = doc.get("profile").expect("profile section");
        let agg = profile.get("aggregate").expect("aggregate pool");
        let stages = agg.get("stages").and_then(Json::as_arr).expect("stage array");
        assert_eq!(stages.len(), 6, "six pipeline stages");
        let shares: f64 = stages.iter().filter_map(|s| s.get("share").and_then(Json::as_f64)).sum();
        assert!((shares - 1.0).abs() < 1e-9, "shares sum to 1, got {shares}");
        assert!(
            agg.get("sampled_ticks").and_then(Json::as_u64).unwrap() > 0,
            "a smoke run is long enough to sample"
        );
        let per = profile.get("per_run").expect("per-run pools");
        assert!(per.get("stencil_blur/lf").is_some());
        assert!(per.get("stencil_blur/base").is_some());
    }
}
