//! The atomic-commit path every campaign-side file write goes through.
//!
//! A `kill -9` (or power loss) can land between any two instructions, so a
//! plain `std::fs::write` of an artifact can leave a truncated JSON file
//! that a later campaign (or a human) reads as data. Every durable
//! campaign file — cache entries, `failures.json`, `planner.json`,
//! scenario artifacts, `BENCH_*.json` trajectories, span exports,
//! flight-recorder dumps — therefore commits through [`atomic_write`]:
//!
//! 1. write the full contents to `<file>.tmp.<pid>.<seq>` in the target
//!    directory (same filesystem, so the rename below cannot degrade to a
//!    copy);
//! 2. `fsync` the temp file, so the *data* is on disk before any name
//!    points at it;
//! 3. `rename` over the destination — POSIX rename is atomic, so readers
//!    see either the complete old file or the complete new one, never a
//!    prefix;
//! 4. best-effort `fsync` of the parent directory, so the new name itself
//!    survives a machine crash.
//!
//! The temp name embeds the process id and a per-process sequence number:
//! campaigns in separate processes (or threads) sharing a directory must
//! never write through the same temp file, or one writer's rename would
//! publish the other's half-written bytes.
//!
//! A crash between steps 1 and 3 leaks the temp file. That is the one
//! residue the protocol permits, and [`sweep_orphan_tmps`] removes it:
//! the engine sweeps the cache directory at campaign startup and counts
//! the sweeps in planner telemetry (`tmp_swept`), so a crashy deployment
//! is visible in its own numbers. The crash-recovery harness
//! (`tests/crash_recovery.rs`) asserts that after a kill + resume cycle no
//! temp file survives anywhere.

use lf_stats::Json;
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The infix every temp file carries (`<name>.tmp.<pid>.<seq>`); the
/// orphan sweep keys on it.
pub const TMP_INFIX: &str = ".tmp.";

/// Builds the temp-file path for `path`: same directory, unique suffix.
fn tmp_path(path: &Path) -> PathBuf {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let name = path.file_name().map(|n| n.to_string_lossy()).unwrap_or_default();
    path.with_file_name(format!(
        "{name}{TMP_INFIX}{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Atomically commits `text` to `path` via temp file + fsync + rename.
/// After a crash at any point, `path` holds either its previous contents
/// or the complete new contents — never a prefix.
pub fn atomic_write(path: &Path, text: &str) -> io::Result<()> {
    atomic_write_bytes(path, text.as_bytes())
}

/// [`atomic_write`] for binary payloads (checkpoint blobs); the text path
/// delegates here so every durable commit shares one protocol.
pub fn atomic_write_bytes(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    let commit = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        // Data must reach disk before the rename publishes a name for it;
        // otherwise a machine crash could leave a *named* empty file,
        // which is exactly the torn state the protocol exists to prevent.
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if commit.is_err() {
        let _ = std::fs::remove_file(&tmp);
        return commit;
    }
    // Persisting the directory entry is best-effort: every filesystem
    // we target accepts an fsync on a read-only directory handle, but a
    // failure here only widens the machine-crash window — the rename
    // already happened, so no torn state is possible.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// [`atomic_write`] for a JSON document: creates parent directories and
/// appends the conventional trailing newline. The shape shared by every
/// artifact writer (`failures.json`, `planner.json`, scenario artifacts,
/// trajectory appends, trace exports).
pub fn atomic_write_json(doc: &Json, path: &Path) -> io::Result<()> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    atomic_write(path, &(doc.to_string_pretty() + "\n"))
}

/// Removes orphaned temp files (`*.tmp.<pid>.<seq>`) left in `dir` by a
/// crash between write and rename, returning how many were swept. Only
/// plain files directly in `dir` are considered; subdirectories (e.g.
/// `quarantine/`, `journal/`) keep their own hygiene. A missing directory
/// sweeps zero files.
pub fn sweep_orphan_tmps(dir: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut swept = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        if name.to_string_lossy().contains(TMP_INFIX)
            && entry.file_type().map(|t| t.is_file()).unwrap_or(false)
            && std::fs::remove_file(entry.path()).is_ok()
        {
            swept += 1;
        }
    }
    swept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("lf-bench-durable-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_whole_contents() {
        let dir = scratch_dir("replace");
        let path = dir.join("doc.json");
        atomic_write(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        atomic_write(&path, "second, longer contents").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second, longer contents");
        // No temp residue after successful commits.
        assert_eq!(sweep_orphan_tmps(&dir), 0);
    }

    #[test]
    fn atomic_write_json_creates_parents_and_newline() {
        let dir = scratch_dir("json");
        let path = dir.join("nested/deeper/doc.json");
        let mut doc = Json::obj();
        doc.set("k", 7u64);
        atomic_write_json(&doc, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
        assert_eq!(Json::parse(&text).unwrap().get("k").and_then(Json::as_u64), Some(7));
    }

    #[test]
    fn sweep_removes_only_orphan_tmps() {
        let dir = scratch_dir("sweep");
        std::fs::write(dir.join("entry.json"), "{}").unwrap();
        std::fs::write(dir.join("entry.json.tmp.12345.0"), "half-writ").unwrap();
        std::fs::write(dir.join("other.json.tmp.12345.7"), "").unwrap();
        std::fs::create_dir_all(dir.join("quarantine")).unwrap();
        std::fs::write(dir.join("quarantine/bad.json.tmp.1.1"), "x").unwrap();
        assert_eq!(sweep_orphan_tmps(&dir), 2, "both top-level orphans are swept");
        assert!(dir.join("entry.json").exists(), "real entries are untouched");
        assert!(
            dir.join("quarantine/bad.json.tmp.1.1").exists(),
            "subdirectories are not descended into"
        );
        assert_eq!(sweep_orphan_tmps(&dir), 0, "idempotent");
        assert_eq!(sweep_orphan_tmps(&dir.join("no-such-dir")), 0, "missing dir sweeps nothing");
    }

    #[test]
    fn failed_commit_leaves_no_tmp() {
        let dir = scratch_dir("fail");
        // Destination is a directory: the rename must fail, and the temp
        // file must be cleaned up.
        let path = dir.join("blocked");
        std::fs::create_dir_all(&path).unwrap();
        assert!(atomic_write(&path, "contents").is_err());
        assert_eq!(sweep_orphan_tmps(&dir), 0, "failed commits clean their temp file");
    }
}
