//! Machine-readable run artifacts.
//!
//! Every experiment binary can dump a `results/*.json` document via
//! `--json <path>`: tool name, workload scale, a configuration summary,
//! and one record per kernel carrying the full metrics-registry dump of
//! both the baseline and LoopFrog runs (cycle-accounting buckets,
//! distributions, derived formulas), the interval time series, and the
//! architectural checksum verdict. The schema is stable-ordered (sorted
//! object keys) so artifacts diff cleanly across runs.

use crate::runner::{KernelRun, RunConfig};
use lf_stats::Json;
use lf_workloads::Scale;
use loopfrog::SimResult;
use std::io;
use std::path::Path;

/// Artifact schema version; bump on incompatible layout changes. Also
/// versions the experiment engine's on-disk run cache
/// ([`crate::engine::cache`]): a bump invalidates every cached outcome.
///
/// v2: unified experiment engine — artifacts gain a `planner` section and
/// kernel records are rendered from memoized [`crate::RunOutcome`]s.
///
/// v3: observability — [`loopfrog::SimStats`] gains structure-occupancy
/// counters (`arena_high_water`, `wheel_overflow_hits`,
/// `conflict_probes`), so cached registry dumps change shape; the planner
/// section gains a `run_wall_us` timing summary.
pub const SCHEMA_VERSION: u64 = 3;

/// Builder for one experiment's JSON artifact.
#[derive(Debug, Clone)]
pub struct RunArtifact {
    root: Json,
    kernels: Vec<Json>,
}

impl RunArtifact {
    /// Starts an artifact for the named tool at the given scale.
    pub fn new(tool: &str, scale: Scale) -> RunArtifact {
        let mut art = RunArtifact::for_tool(tool);
        art.root.set("scale", format!("{scale:?}").to_lowercase());
        art
    }

    /// Starts an artifact for a tool with no workload scale (e.g. the
    /// `lf-verify` fuzzer, whose inputs are generated programs).
    pub fn for_tool(tool: &str) -> RunArtifact {
        let mut root = Json::obj();
        root.set("schema_version", SCHEMA_VERSION);
        root.set("tool", tool);
        RunArtifact { root, kernels: Vec::new() }
    }

    /// Records a configuration summary (the knobs that identify the run).
    pub fn set_config(&mut self, cfg: &RunConfig) {
        let mut c = Json::obj();
        c.set("core.width", cfg.lf.core.width as u64);
        c.set("core.commit_width", cfg.lf.core.commit_width as u64);
        c.set("core.rob_size", cfg.lf.core.rob_size as u64);
        c.set("core.threadlets", cfg.lf.core.threadlets as u64);
        c.set("ssb.size_bytes", cfg.lf.ssb.size_bytes as u64);
        c.set("ssb.granule", cfg.lf.ssb.granule as u64);
        c.set("packing.enabled", Json::Bool(cfg.lf.packing.enabled));
        c.set("speculation", Json::Bool(cfg.lf.speculation));
        c.set("deselect_unprofitable", Json::Bool(cfg.deselect_unprofitable));
        let interval = match cfg.lf.telemetry.interval_cycles {
            Some(n) => Json::from(n),
            None => Json::Null,
        };
        c.set("telemetry.interval_cycles", interval);
        self.root.set("config", c);
    }

    /// Appends one kernel's record (both simulations, full registries).
    pub fn push_kernel(&mut self, run: &KernelRun) {
        self.kernels.push(kernel_json(run));
    }

    /// Attaches tool-specific extra data (sweep tables, ablation points).
    pub fn set_extra(&mut self, key: &str, value: impl Into<Json>) {
        self.root.set(key, value);
    }

    /// Finalizes the document.
    pub fn into_json(mut self) -> Json {
        self.root.set("kernels", Json::Arr(self.kernels));
        self.root
    }

    /// Writes the document (pretty-printed) to `path`, creating parent
    /// directories as needed. Commits through the shared atomic path so a
    /// killed run never publishes a truncated artifact.
    pub fn write(self, path: &Path) -> io::Result<()> {
        crate::durable::atomic_write_json(&self.into_json(), path)
    }
}

/// One kernel's record: identity, verdicts, and both full results (the
/// pre-rendered dumps carried by the run's memoized outcomes).
pub fn kernel_json(run: &KernelRun) -> Json {
    let mut k = Json::obj();
    k.set("name", run.name);
    k.set("spec_analog", run.spec_analog);
    k.set("suite", format!("{:?}", run.suite).to_lowercase());
    k.set("category", format!("{:?}", run.category).to_lowercase());
    k.set("in_openmp_region", Json::Bool(run.in_openmp_region));
    k.set("selected_loops", run.selected_loops as u64);
    k.set("checksum_ok", Json::Bool(run.checksum_ok));
    k.set("deselected", Json::Bool(run.deselected));
    k.set("speedup", run.speedup());
    k.set("base", run.base.rendered.clone());
    k.set("loopfrog", run.lf.rendered.clone());
    k
}

/// One simulation's record: the registry dump plus explicit accounting
/// and interval views (also present inside the registry as scalars).
pub fn sim_result_json(r: &SimResult) -> Json {
    let mut j = Json::obj();
    j.set("checksum", r.checksum);
    j.set("registry", r.registry.to_json());
    let mut acct = Json::obj();
    for (bucket, n) in r.accounting.iter() {
        acct.set(bucket.name(), n);
    }
    j.set("accounting", acct);
    let intervals: Vec<Json> = r
        .intervals
        .iter()
        .map(|s| {
            let mut i = Json::obj();
            i.set("cycle", s.cycle);
            i.set("committed_insts", s.committed_insts);
            i.set("issued_insts", s.issued_insts);
            i.set("spawns", s.spawns);
            i.set("squashes", s.squashes);
            i
        })
        .collect();
    j.set("intervals", Json::Arr(intervals));
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_workloads::Scale;

    #[test]
    fn artifact_round_trips_with_registry_and_intervals() {
        let w = lf_workloads::by_name("stencil_blur", Scale::Smoke).unwrap();
        let cfg = RunConfig::default();
        let run = crate::run_kernel(&w, &cfg);
        let mut art = RunArtifact::new("unit_test", Scale::Smoke);
        art.set_config(&cfg);
        art.push_kernel(&run);
        let doc = art.into_json();
        let text = doc.to_string_pretty();
        let back = Json::parse(&text).expect("artifact parses back");

        let kernels = back.get("kernels").and_then(Json::as_arr).unwrap();
        assert_eq!(kernels.len(), 1);
        let k = &kernels[0];
        assert_eq!(k.get("name").and_then(Json::as_str), Some("stencil_blur"));

        // Registry dump carries cycle accounting and core counters.
        let lf = k.get("loopfrog").unwrap();
        let reg = lf.get("registry").unwrap();
        assert!(reg.get("core.cycles").is_some());
        assert!(reg.get("accounting.base_commit").is_some());

        // The interval time series is non-empty by default.
        let intervals = lf.get("intervals").and_then(Json::as_arr).unwrap();
        assert!(!intervals.is_empty(), "default config samples intervals");
        assert!(intervals[0].get("committed_insts").is_some());
    }
}
