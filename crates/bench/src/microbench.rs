//! A minimal wall-clock micro-benchmark harness.
//!
//! Replaces `criterion` (unavailable in hermetic builds) for the
//! `harness = false` bench targets: auto-calibrates an iteration count,
//! takes several samples, and reports best/median ns-per-iteration. The
//! [`Bencher::iter`] API mirrors criterion's closely enough that bench
//! bodies read the same.

use std::time::{Duration, Instant};

/// Passed to each benchmark body; call [`Bencher::iter`] with the code
/// under measurement.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the calibrated iteration count and records the elapsed
    /// wall-clock time.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_once(f: &mut impl FnMut(&mut Bencher), iters: u64) -> Duration {
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    b.elapsed
}

/// Measures one named benchmark: calibrates the per-sample iteration count
/// to ~50 ms, takes 5 samples, and prints best and median ns/iter.
pub fn bench_function(name: &str, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate: grow the iteration count until one sample is long enough
    // for the timer's resolution not to matter.
    let target = Duration::from_millis(50);
    let mut iters = 1u64;
    loop {
        let t = run_once(&mut f, iters);
        if t >= target || iters >= 1 << 28 {
            break;
        }
        // Jump roughly to the target, at least doubling.
        let scale = (target.as_nanos() as f64 / t.as_nanos().max(1) as f64).ceil() as u64;
        iters = (iters * scale.clamp(2, 16)).min(1 << 28);
    }

    let mut per_iter: Vec<f64> =
        (0..5).map(|_| run_once(&mut f, iters).as_nanos() as f64 / iters as f64).collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    println!(
        "{name:40} {:>12.1} ns/iter (median {:>12.1} ns, {iters} iters/sample)",
        per_iter[0], per_iter[2]
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut n = 0u64;
        let mut b = Bencher { iters: 100, elapsed: Duration::ZERO };
        b.iter(|| n += 1);
        assert_eq!(n, 100);
        assert!(b.elapsed > Duration::ZERO || n == 100);
    }
}
