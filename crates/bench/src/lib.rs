//! # lf-bench — experiment harness for the LoopFrog reproduction
//!
//! Shared machinery behind the per-figure/table binaries: run a workload
//! through the full pipeline (profile → hint insertion → baseline and
//! LoopFrog simulations), validate architectural equivalence against the
//! golden emulator, and aggregate suite-level statistics.

#![warn(missing_docs)]

pub mod area;
pub mod artifact;
pub mod microbench;
pub mod runner;
pub mod table;

pub use artifact::RunArtifact;
pub use runner::{run_kernel, run_suite, KernelRun, RunConfig};
pub use table::{fmt_pct, print_table};

/// Parses `--scale smoke|eval` from the process arguments (default smoke).
/// Exits with an error on an unrecognized value rather than silently
/// falling back.
pub fn scale_from_args() -> lf_workloads::Scale {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--scale") {
        None => lf_workloads::Scale::Smoke,
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("eval") => lf_workloads::Scale::Eval,
            Some("smoke") => lf_workloads::Scale::Smoke,
            other => {
                eprintln!(
                    "error: --scale expects `smoke` or `eval`, got {}",
                    other.unwrap_or("nothing")
                );
                std::process::exit(2);
            }
        },
    }
}

/// Parses `--json <path>` from the process arguments: the destination for
/// this run's machine-readable artifact (see [`artifact`]). Returns `None`
/// when the flag is absent; exits with an error when the path is missing.
pub fn json_path_from_args() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--json") {
        None => None,
        Some(i) => match args.get(i + 1) {
            Some(p) if !p.starts_with("--") => Some(std::path::PathBuf::from(p)),
            _ => {
                eprintln!("error: --json expects an output path");
                std::process::exit(2);
            }
        },
    }
}
