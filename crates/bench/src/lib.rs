//! # lf-bench — experiment harness for the LoopFrog reproduction
//!
//! The [`engine`] module is the heart: every figure/table is a registered
//! [`engine::Scenario`] that declares its simulations to a deduplicating
//! run planner and renders from memoized outcomes — `lf-bench run --all`
//! simulates each unique (program × config × scale) exactly once. The
//! [`runner`] module keeps the standalone single-kernel path used by tests
//! and one-off experiments.

#![warn(missing_docs)]

pub mod area;
pub mod artifact;
pub mod durable;
pub mod engine;
pub mod microbench;
pub mod perf;
pub mod profile;
pub mod runner;
pub mod table;
pub mod tiered;
pub mod tracecmd;

pub use artifact::RunArtifact;
pub use runner::{
    run_fingerprint, run_kernel, run_kernel_with, run_suite, scale_tag, KernelRun, RunConfig,
    RunOutcome,
};
pub use table::{fmt_pct, print_table, write_table};
pub use tiered::{run_fingerprint_tiered, CheckpointStore, SampledPlan, Tier};

/// Parses `--scale smoke|eval|full` from the process arguments (default
/// smoke). Exits with an error on an unrecognized value rather than
/// silently falling back.
pub fn scale_from_args() -> lf_workloads::Scale {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--scale") {
        None => lf_workloads::Scale::Smoke,
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("eval") => lf_workloads::Scale::Eval,
            Some("smoke") => lf_workloads::Scale::Smoke,
            Some("full") => lf_workloads::Scale::Full,
            other => {
                eprintln!(
                    "error: --scale expects `smoke`, `eval`, or `full`, got {}",
                    other.unwrap_or("nothing")
                );
                std::process::exit(2);
            }
        },
    }
}

/// Parses `--json <path>` from the process arguments: the destination for
/// this run's machine-readable artifact (see [`artifact`]). Returns `None`
/// when the flag is absent; exits with an error when the path is missing.
pub fn json_path_from_args() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--json") {
        None => None,
        Some(i) => match args.get(i + 1) {
            Some(p) if !p.starts_with("--") => Some(std::path::PathBuf::from(p)),
            _ => {
                eprintln!("error: --json expects an output path");
                std::process::exit(2);
            }
        },
    }
}
