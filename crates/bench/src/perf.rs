//! `lf-bench perf` — the simulator-throughput microbenchmark.
//!
//! Runs a fixed kernel basket at pinned configurations (the default
//! baseline and LoopFrog configs), measures wall-clock time around the
//! simulator alone (annotation and workload construction are excluded),
//! and reports simulated kilocycles per second and committed MIPS. The
//! same basket also runs on the functional fast tier, whose emulation
//! throughput (M insts/s) is what the tiered sampling path fast-forwards
//! at; its wall time is kept out of the detailed-throughput figures. Each
//! invocation appends one entry to `results/BENCH_throughput.json`, so
//! the file accumulates a throughput trajectory across commits the same
//! way `BENCH_harness.json` tracks planner wall time.
//!
//! The basket is deliberately frozen: entries are only comparable when
//! they simulate the same work, so changing [`BASKET`] or the pinned
//! configs invalidates the trajectory (bump the label if you must).

use crate::runner::scale_tag;
use lf_compiler::{annotate, SelectOptions};
use lf_stats::Json;
use lf_workloads::Scale;
use loopfrog::{simulate, LoopFrogConfig};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The fixed kernel basket: one or two representatives per bottleneck
/// category so the hot path is exercised across regular, serial,
/// control-dependent, and irregular behavior.
pub const BASKET: &[&str] =
    &["stencil_blur", "md_force", "compress_rle", "hash_lookup", "graph_relax", "event_queue"];

/// Options for one `lf-bench perf` invocation.
#[derive(Debug, Clone)]
pub struct PerfOptions {
    /// Workload scale (smoke for CI, eval for real measurements).
    pub scale: Scale,
    /// Repetitions per (kernel, config) pair; the best wall time is kept.
    pub reps: usize,
    /// Free-form label recorded in the trajectory entry (e.g. a commit
    /// subject or "pr5-before").
    pub label: Option<String>,
    /// Where to append the trajectory (`None` = print only).
    pub json_path: Option<PathBuf>,
    /// Regression threshold for the non-blocking warning, as a fraction
    /// (0.15 = warn when >15% slower than the best prior entry at the
    /// same scale).
    pub warn_frac: f64,
}

impl Default for PerfOptions {
    fn default() -> PerfOptions {
        PerfOptions {
            scale: Scale::Smoke,
            reps: 3,
            label: None,
            json_path: Some(PathBuf::from("results/BENCH_throughput.json")),
            warn_frac: 0.15,
        }
    }
}

/// One timed (kernel, config) measurement.
struct Sample {
    kernel: &'static str,
    config: &'static str,
    cycles: u64,
    insts: u64,
    best_wall_s: f64,
}

/// Runs the basket and returns the trajectory entry that was appended
/// (or would have been, with `json_path: None`).
pub fn run_perf(opts: &PerfOptions) -> Json {
    let select = SelectOptions::default();
    let configs: [(&'static str, LoopFrogConfig); 2] =
        [("base", LoopFrogConfig::baseline()), ("lf", LoopFrogConfig::default())];

    let mut samples: Vec<Sample> = Vec::new();
    let mut func_samples: Vec<Sample> = Vec::new();
    for name in BASKET {
        let w = lf_workloads::by_name(name, opts.scale)
            .unwrap_or_else(|| panic!("perf basket kernel {name} is not registered"));
        let emu = w.reference_emulator().expect("basket kernel runs on the golden emulator");
        let ann = annotate(&w.program, emu.profile(), &select);
        for (tag, cfg) in &configs {
            let mut best_wall_s = f64::INFINITY;
            let mut cycles = 0u64;
            let mut insts = 0u64;
            for _ in 0..opts.reps.max(1) {
                let mem = w.mem.clone();
                let start = Instant::now();
                let r = simulate(&ann.program, mem, cfg.clone())
                    .unwrap_or_else(|e| panic!("{name} ({tag}) failed: {e}"));
                let wall = start.elapsed().as_secs_f64();
                // The simulator is deterministic: cycle/inst counts are
                // identical across reps, only the wall time varies.
                cycles = r.stats.cycles;
                insts = r.stats.committed_insts;
                best_wall_s = best_wall_s.min(wall);
            }
            samples.push(Sample { kernel: w.name, config: tag, cycles, insts, best_wall_s });
        }
        // The functional fast tier over the same annotated program: zero
        // simulated cycles, instruction throughput only.
        let mut best_wall_s = f64::INFINITY;
        let mut insts = 0u64;
        for _ in 0..opts.reps.max(1) {
            let start = Instant::now();
            let mut fast = lf_isa::FastTier::new(&ann.program, w.mem.clone());
            fast.run_to_inst_count(u64::MAX - 1)
                .unwrap_or_else(|e| panic!("{name} (functional) faulted: {e}"));
            assert!(fast.is_halted(), "{name} did not halt on the fast tier");
            let wall = start.elapsed().as_secs_f64();
            insts = fast.inst_count();
            best_wall_s = best_wall_s.min(wall);
        }
        func_samples.push(Sample {
            kernel: w.name,
            config: "functional",
            cycles: 0,
            insts,
            best_wall_s,
        });
    }

    let total_cycles: u64 = samples.iter().map(|s| s.cycles).sum();
    let total_insts: u64 = samples.iter().map(|s| s.insts).sum();
    let total_wall_s: f64 = samples.iter().map(|s| s.best_wall_s).sum();
    let kcps = total_cycles as f64 / total_wall_s / 1e3;
    let mips = total_insts as f64 / total_wall_s / 1e6;
    let func_insts: u64 = func_samples.iter().map(|s| s.insts).sum();
    let func_wall_s: f64 = func_samples.iter().map(|s| s.best_wall_s).sum();
    let func_mips = func_insts as f64 / func_wall_s / 1e6;

    let mut rows = Vec::new();
    for s in samples.iter().chain(&func_samples) {
        rows.push(vec![
            s.kernel.to_string(),
            s.config.to_string(),
            if s.cycles == 0 { "-".to_string() } else { s.cycles.to_string() },
            s.insts.to_string(),
            format!("{:.2}", s.best_wall_s * 1e3),
            if s.cycles == 0 {
                "-".to_string()
            } else {
                format!("{:.0}", s.cycles as f64 / s.best_wall_s / 1e3)
            },
        ]);
    }
    println!(
        "simulator throughput: {} kernels x 2 configs, scale {}, best of {} rep(s)\n",
        BASKET.len(),
        scale_tag(opts.scale),
        opts.reps.max(1)
    );
    crate::print_table(&["kernel", "config", "sim cycles", "insts", "wall ms", "kcycles/s"], &rows);
    println!(
        "\ntotal: {total_cycles} simulated cycles, {total_insts} committed insts in {:.1} ms",
        total_wall_s * 1e3
    );
    println!("throughput: {kcps:.0} simulated kcycles/s, {mips:.2} committed MIPS");
    println!(
        "functional tier: {func_insts} insts in {:.1} ms — {func_mips:.1} M insts/s",
        func_wall_s * 1e3
    );

    let mut entry = Json::obj();
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    entry.set("unix_time", unix_secs);
    if let Some(label) = &opts.label {
        entry.set("label", label.as_str());
    }
    entry.set("scale", scale_tag(opts.scale));
    entry.set("reps", opts.reps.max(1) as u64);
    entry.set("kernels", Json::Arr(BASKET.iter().map(|k| Json::from(*k)).collect()));
    entry.set("sim_cycles", total_cycles);
    entry.set("committed_insts", total_insts);
    entry.set("wall_ms", total_wall_s * 1e3);
    entry.set("kcycles_per_sec", kcps);
    entry.set("committed_mips", mips);
    entry.set("functional_insts", func_insts);
    entry.set("functional_wall_ms", func_wall_s * 1e3);
    entry.set("functional_mips", func_mips);
    let mut per = Vec::new();
    for s in samples.iter().chain(&func_samples) {
        let mut j = Json::obj();
        j.set("kernel", s.kernel);
        j.set("config", s.config);
        j.set("cycles", s.cycles);
        j.set("insts", s.insts);
        j.set("wall_ms", s.best_wall_s * 1e3);
        per.push(j);
    }
    entry.set("per_run", Json::Arr(per));

    if let Some(path) = &opts.json_path {
        match append_throughput_entry(path, &entry, opts) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: failed to update {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    entry
}

/// Appends `entry` to the throughput trajectory and emits the
/// non-blocking regression warning against the best prior entry at the
/// same scale. File schema mirrors `BENCH_harness.json`: a top-level
/// `runs` array, oldest first.
fn append_throughput_entry(path: &Path, entry: &Json, opts: &PerfOptions) -> std::io::Result<()> {
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .filter(|d| d.get("runs").and_then(Json::as_arr).is_some())
        .unwrap_or_else(|| {
            let mut d = Json::obj();
            d.set("schema_version", crate::artifact::SCHEMA_VERSION);
            d.set("runs", Json::Arr(Vec::new()));
            d
        });
    let mut runs: Vec<Json> =
        doc.get("runs").and_then(Json::as_arr).map(<[Json]>::to_vec).unwrap_or_default();

    // Regression check: the warning is advisory (wall clock varies across
    // hosts and CI runners), so it never affects the exit status.
    let this_kcps = entry.get("kcycles_per_sec").and_then(Json::as_f64).unwrap_or(0.0);
    let prior_best = runs
        .iter()
        .filter(|r| {
            r.get("scale").and_then(Json::as_str) == entry.get("scale").and_then(Json::as_str)
        })
        .filter_map(|r| r.get("kcycles_per_sec").and_then(Json::as_f64))
        .fold(f64::NAN, f64::max);
    if prior_best.is_finite() && this_kcps < prior_best * (1.0 - opts.warn_frac) {
        eprintln!(
            "warning: throughput regression: {this_kcps:.0} kcycles/s is {:.0}% below the best \
             recorded entry ({prior_best:.0} kcycles/s) at this scale",
            (1.0 - this_kcps / prior_best) * 100.0
        );
    } else if prior_best.is_finite() {
        println!(
            "delta vs best recorded entry at this scale: {:+.1}%",
            (this_kcps / prior_best - 1.0) * 100.0
        );
    }

    runs.push(entry.clone());
    doc.set("runs", Json::Arr(runs));
    // The trajectory is read-modify-write: an atomic commit means a crash
    // mid-append preserves the whole prior history instead of truncating
    // it.
    crate::durable::atomic_write_json(&doc, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basket_kernels_exist_at_both_scales() {
        for scale in [Scale::Smoke, Scale::Eval] {
            for name in BASKET {
                assert!(
                    lf_workloads::by_name(name, scale).is_some(),
                    "basket kernel {name} missing at {scale:?}"
                );
            }
        }
    }

    #[test]
    fn perf_entry_has_throughput_fields() {
        let dir = std::env::temp_dir().join(format!("lf-perf-test-{}", std::process::id()));
        let path = dir.join("BENCH_throughput.json");
        let opts = PerfOptions {
            scale: Scale::Smoke,
            reps: 1,
            label: Some("unit-test".into()),
            json_path: Some(path.clone()),
            warn_frac: 0.15,
        };
        let entry = run_perf(&opts);
        assert!(entry.get("kcycles_per_sec").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(entry.get("committed_mips").and_then(Json::as_f64).unwrap() > 0.0);
        assert_eq!(entry.get("scale").and_then(Json::as_str), Some("smoke"));
        // A second run appends rather than overwrites.
        run_perf(&opts);
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("runs").and_then(Json::as_arr).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
