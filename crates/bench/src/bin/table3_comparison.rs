//! Table 3: comparison with past TLS/SpMT schemes.
//!
//! LoopFrog's speedup is measured on this repository's simulator; STAMPede
//! and Multiscalar come from the cost models in `lf-baselines`, driven with
//! their papers' characteristic task sizes, and are calibrated against the
//! published results. As the paper notes, the numbers are not like-for-like.

use lf_baselines::table3;
use lf_bench::{print_table, run_suite, RunConfig};

fn main() {
    let scale = lf_bench::scale_from_args();
    let cfg = RunConfig::default();
    let runs = run_suite(scale, &cfg);
    let suite17: Vec<f64> = runs
        .iter()
        .filter(|r| r.suite == lf_workloads::Suite::Cpu2017)
        .map(|r| r.speedup())
        .collect();
    let measured = lf_stats::geomean(&suite17);

    println!("Table 3: comparison with past TLS/SpMT schemes\n");
    let rows: Vec<Vec<String>> = table3(measured)
        .into_iter()
        .map(|r| {
            vec![
                r.scheme.to_string(),
                format!("{:.2}x", r.speedup),
                r.cores,
                format!("~{:.2}x", r.area),
                r.baseline.to_string(),
                r.task_sizes.to_string(),
                r.deployment.to_string(),
            ]
        })
        .collect();
    print_table(
        &["scheme", "speedup", "cores", "area", "baseline", "task sizes", "deployment"],
        &rows,
    );
    println!(
        "\npaper: LoopFrog 1.1x @ ~1.15x area; STAMPede 1.16x @ >4x; Multiscalar 2.16x @ ~8x."
    );
    lf_bench::artifact::maybe_write_with("table3_comparison", scale, &cfg, &runs, |art| {
        art.set_extra("measured_geomean_cpu2017", measured);
    });
}
