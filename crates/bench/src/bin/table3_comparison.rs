//! Shim: Table 3 (TLS/SpMT comparison) now runs inside the unified
//! experiment engine. Equivalent to `lf-bench run table3_comparison`;
//! kept for the historical per-figure command surface.

fn main() {
    lf_bench::engine::cli::run_single("table3_comparison");
}
