//! Figure 10: sensitivity to the SSB/conflict-detector granule size.
//!
//! Paper: 1-4 B granules are equivalent; 8 B costs one benchmark ~5%;
//! 16 B drops the geomean to +6.5% and full-line (32 B) granularity — the
//! approach of prior work — to +6%, due to false-sharing conflicts.

use lf_bench::{fmt_pct, print_table, run_suite, RunConfig};

fn main() {
    let scale = lf_bench::scale_from_args();
    println!("Figure 10: speedup vs conflict granule size (default 4 B)\n");
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for granule in [1usize, 2, 4, 8, 16, 32] {
        let mut cfg = RunConfig::default();
        cfg.lf.ssb.granule = granule;
        let runs = run_suite(scale, &cfg);
        let g = lf_stats::geomean(&runs.iter().map(|r| r.speedup()).collect::<Vec<_>>());
        let conflicts: u64 = runs.iter().map(|r| r.lf.squashes_conflict).sum();
        rows.push(vec![format!("{granule} B"), fmt_pct(g), conflicts.to_string()]);
        let mut p = lf_stats::Json::obj();
        p.set("granule_bytes", granule);
        p.set("geomean_speedup", g);
        p.set("conflict_squashes", conflicts);
        points.push(p);
    }
    print_table(&["granule", "geomean speedup", "conflict squashes"], &rows);
    println!("\npaper shape: flat ≤4 B; increasing false sharing beyond 8 B.");
    lf_bench::artifact::maybe_write_with(
        "fig10_granule",
        scale,
        &RunConfig::default(),
        &[],
        |art| art.set_extra("sweep", lf_stats::Json::Arr(points)),
    );
}
