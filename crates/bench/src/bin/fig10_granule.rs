//! Shim: Figure 10 (conflict granule sensitivity) now runs inside the unified
//! experiment engine. Equivalent to `lf-bench run fig10_granule`;
//! kept for the historical per-figure command surface.

fn main() {
    lf_bench::engine::cli::run_single("fig10_granule");
}
