//! §6.5: iteration packing ablation.
//!
//! Paper: packing affects 5 of the 13 profitable benchmarks, adds +0.9pp
//! to the geomean (9.5% → 8.6% without), with a mean packing factor of
//! 2.1× and a maximum of 25×.

use lf_bench::{fmt_pct, print_table, run_suite, RunConfig};

fn main() {
    let scale = lf_bench::scale_from_args();
    let cfg_with = RunConfig::default();
    let with = run_suite(scale, &cfg_with);
    let mut cfg = RunConfig::default();
    cfg.lf.packing.enabled = false;
    let without = run_suite(scale, &cfg);

    println!("§6.5: iteration packing ablation\n");
    let mut rows = Vec::new();
    let mut affected = 0;
    for (w, wo) in with.iter().zip(&without) {
        let delta = w.speedup() / wo.speedup();
        if (delta - 1.0).abs() > 0.005 {
            affected += 1;
        }
        rows.push(vec![
            w.name.to_string(),
            fmt_pct(w.speedup()),
            fmt_pct(wo.speedup()),
            format!("{:+.1}pp", (w.speedup() - wo.speedup()) * 100.0),
            format!("{:.1}", w.lf.mean_pack_factor()),
            w.lf.pack_factor_max.to_string(),
        ]);
    }
    print_table(
        &["kernel", "with packing", "without", "delta", "mean factor", "max factor"],
        &rows,
    );
    let g_with = lf_stats::geomean(&with.iter().map(|r| r.speedup()).collect::<Vec<_>>());
    let g_without = lf_stats::geomean(&without.iter().map(|r| r.speedup()).collect::<Vec<_>>());
    let packed_factors: Vec<f64> =
        with.iter().filter(|r| r.lf.packed_spawns > 0).map(|r| r.lf.mean_pack_factor()).collect();
    println!(
        "\ngeomean with packing {} vs without {} ({:+.1}pp; paper +0.9pp)",
        fmt_pct(g_with),
        fmt_pct(g_without),
        (g_with - g_without) * 100.0
    );
    println!(
        "{affected} kernels affected (paper: 5); mean packing factor {:.1} (paper 2.1), max {} (paper 25)",
        lf_stats::mean(&packed_factors),
        with.iter().map(|r| r.lf.pack_factor_max).max().unwrap_or(0)
    );
    lf_bench::artifact::maybe_write_with("packing_ablation", scale, &cfg_with, &with, |art| {
        let mut abl = lf_stats::Json::obj();
        abl.set("geomean_with_packing", g_with);
        abl.set("geomean_without_packing", g_without);
        let no_pack: Vec<lf_stats::Json> = without
            .iter()
            .map(|r| {
                let mut k = lf_stats::Json::obj();
                k.set("name", r.name);
                k.set("speedup", r.speedup());
                k
            })
            .collect();
        abl.set("without_packing", lf_stats::Json::Arr(no_pack));
        art.set_extra("ablation", abl);
    });
}
