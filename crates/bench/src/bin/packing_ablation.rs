//! Shim: §6.5 (iteration packing ablation) now runs inside the unified
//! experiment engine. Equivalent to `lf-bench run packing_ablation`;
//! kept for the historical per-figure command surface.

fn main() {
    lf_bench::engine::cli::run_single("packing_ablation");
}
