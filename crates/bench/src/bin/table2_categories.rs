//! Table 2: sources of performance gains.
//!
//! Paper (over 38 profitable loops): memory parallelism 17 loops / 29% of
//! the gain, control dependencies 9 / 23%, dependency chains 2 / 12%,
//! branch-condition prefetching 6 / 32%, data-value prefetching 4 / 3%.
//! As in the paper, each profitable kernel's speedup is attributed wholly
//! to its dominant category.

use lf_bench::{print_table, run_suite, RunConfig};
use lf_workloads::Category;

fn main() {
    let scale = lf_bench::scale_from_args();
    let cfg = RunConfig::default();
    let runs = run_suite(scale, &cfg);
    let profitable: Vec<_> = runs.iter().filter(|r| r.speedup() > 1.01).collect();
    let total_log_gain: f64 = profitable.iter().map(|r| r.speedup().ln()).sum();

    println!("Table 2: sources of performance gains (profitable kernels only)\n");
    let cats = [
        (Category::MemParallelism, "True parallelism", "Memory parallelism", "29%"),
        (Category::ControlDep, "True parallelism", "Control dependencies", "23%"),
        (Category::DepChains, "True parallelism", "Dependency chains", "12%"),
        (Category::BranchPrefetch, "Prefetching", "Branch conditions", "32%"),
        (Category::DataPrefetch, "Prefetching", "Data values", "3%"),
        (Category::NoSpeedup, "(expected no speedup)", "-", "-"),
    ];
    let mut rows = Vec::new();
    for (cat, class, sub, paper) in cats {
        let in_cat: Vec<_> = profitable.iter().filter(|r| r.category == cat).collect();
        let log_gain: f64 = in_cat.iter().map(|r| r.speedup().ln()).sum();
        let frac = if total_log_gain > 0.0 { log_gain / total_log_gain * 100.0 } else { 0.0 };
        rows.push(vec![
            class.to_string(),
            sub.to_string(),
            in_cat.len().to_string(),
            format!("{frac:.0}%"),
            paper.to_string(),
        ]);
    }
    print_table(&["category", "sub-category", "kernels", "fraction of speedup", "paper"], &rows);
    println!("\n{} of {} kernels profitable", profitable.len(), runs.len());
    lf_bench::artifact::maybe_write("table2_categories", scale, &cfg, &runs);
}
