//! Shim: Table 2 (sources of performance gains) now runs inside the unified
//! experiment engine. Equivalent to `lf-bench run table2_categories`;
//! kept for the historical per-figure command surface.

fn main() {
    lf_bench::engine::cli::run_single("table2_categories");
}
