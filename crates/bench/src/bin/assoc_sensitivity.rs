//! §6.6: SSB associativity sensitivity and the victim buffer.
//!
//! Paper: limiting slice associativity to 4/8 ways costs 2.0%/1.4% of the
//! headline speedup; adding a small shared victim buffer (8 entries)
//! reduces the impact to 1.2% in both cases.

use lf_bench::{fmt_pct, print_table, run_suite, RunConfig};

fn main() {
    let scale = lf_bench::scale_from_args();
    println!("§6.6: SSB associativity sensitivity (default: fully associative)\n");
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for (label, assoc, victim) in [
        ("full assoc", None, 0usize),
        ("8-way", Some(8usize), 0),
        ("4-way", Some(4), 0),
        ("8-way + victim", Some(8), 8),
        ("4-way + victim", Some(4), 8),
    ] {
        let mut cfg = RunConfig::default();
        cfg.lf.ssb.assoc = assoc;
        cfg.lf.ssb.victim_entries = victim;
        let runs = run_suite(scale, &cfg);
        let g = lf_stats::geomean(&runs.iter().map(|r| r.speedup()).collect::<Vec<_>>());
        let stalls: u64 = runs.iter().map(|r| r.lf.squashes_overflow).sum();
        rows.push(vec![label.to_string(), fmt_pct(g), stalls.to_string()]);
        let mut p = lf_stats::Json::obj();
        p.set("label", label);
        p.set("geomean_speedup", g);
        p.set("overflow_stalls", stalls);
        points.push(p);
    }
    print_table(&["SSB slices", "geomean speedup", "overflow stalls"], &rows);
    println!(
        "\npaper shape: limited associativity costs 1-2pp; the victim buffer recovers most of it."
    );
    lf_bench::artifact::maybe_write_with(
        "assoc_sensitivity",
        scale,
        &RunConfig::default(),
        &[],
        |art| art.set_extra("sweep", lf_stats::Json::Arr(points)),
    );
}
