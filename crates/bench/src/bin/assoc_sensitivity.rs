//! Shim: §6.6 (SSB associativity sensitivity) now runs inside the unified
//! experiment engine. Equivalent to `lf-bench run assoc_sensitivity`;
//! kept for the historical per-figure command surface.

fn main() {
    lf_bench::engine::cli::run_single("assoc_sensitivity");
}
