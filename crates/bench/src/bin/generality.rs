//! Shim: §6.7 (generality: non-OpenMP loops) now runs inside the unified
//! experiment engine. Equivalent to `lf-bench run generality`;
//! kept for the historical per-figure command surface.

fn main() {
    lf_bench::engine::cli::run_single("generality");
}
