//! §6.7: generality — the speedup restricted to loops that are *not*
//! inside an OpenMP parallel region in the original benchmark.
//!
//! Paper: considering only non-OpenMP loops, the CPU 2017 geomean is still
//! +7.5%, showing LoopFrog's gains are orthogonal to coarse TLP.

use lf_bench::{fmt_pct, run_suite, RunConfig};
use lf_workloads::Suite;

fn main() {
    let scale = lf_bench::scale_from_args();
    let cfg = RunConfig::default();
    let runs = run_suite(scale, &cfg);
    let s17: Vec<_> = runs.iter().filter(|r| r.suite == Suite::Cpu2017).collect();
    let all: Vec<f64> = s17.iter().map(|r| r.speedup()).collect();
    // Kernels whose source loop sits in an OpenMP region contribute no
    // LoopFrog gain in this analysis (their coarse parallelism is assumed
    // already exploited).
    let non_omp: Vec<f64> =
        s17.iter().map(|r| if r.in_openmp_region { 1.0 } else { r.speedup() }).collect();
    println!("§6.7: generality (CPU 2017 analogs)\n");
    println!("geomean, all loops:                {}", fmt_pct(lf_stats::geomean(&all)));
    println!(
        "geomean, non-OpenMP loops only:    {} (paper: +7.5% vs +9.5%)",
        fmt_pct(lf_stats::geomean(&non_omp))
    );
    let omp = s17.iter().filter(|r| r.in_openmp_region).count();
    println!("\n{omp} of {} CPU 2017 analogs mirror loops inside OpenMP regions", s17.len());
    lf_bench::artifact::maybe_write("generality", scale, &cfg, &runs);
}
