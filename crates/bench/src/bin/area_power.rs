//! Shim: §6.8 (area and power overheads) now runs inside the unified
//! experiment engine. Equivalent to `lf-bench run area_power`;
//! kept for the historical per-figure command surface.

fn main() {
    lf_bench::engine::cli::run_single("area_power");
}
