//! Shim: Figure 8 (commit-rate breakdown) now runs inside the unified
//! experiment engine. Equivalent to `lf-bench run fig8_ipc_breakdown`;
//! kept for the historical per-figure command surface.

fn main() {
    lf_bench::engine::cli::run_single("fig8_ipc_breakdown");
}
