//! Figure 8: instructions committed per cycle by the architectural and
//! speculative threadlets (including misspeculation), normalized to the
//! baseline IPC.
//!
//! Paper: the architectural threadlet runs ~6% below baseline due to
//! resource sharing; successful speculation recoups that and adds the
//! +9.5%; an extra ~31% of commits belong to speculation that later fails.

use lf_bench::{print_table, run_suite, RunConfig};

fn main() {
    let scale = lf_bench::scale_from_args();
    let cfg = RunConfig::default();
    let runs = run_suite(scale, &cfg);
    println!("Figure 8: commit-rate breakdown, normalized to baseline IPC\n");
    let mut rows = Vec::new();
    let (mut archs, mut succs, mut fails) = (Vec::new(), Vec::new(), Vec::new());
    for r in &runs {
        let base_ipc = r.base.ipc();
        let cyc = r.lf.cycles.max(1) as f64;
        let arch = r.lf.commits_arch as f64 / cyc / base_ipc;
        let succ = r.lf.commits_spec_success as f64 / cyc / base_ipc;
        let fail = r.lf.commits_spec_failed as f64 / cyc / base_ipc;
        archs.push(arch);
        succs.push(succ);
        fails.push(fail);
        rows.push(vec![
            r.name.to_string(),
            format!("{:.2}", arch),
            format!("{:.2}", succ),
            format!("{:.2}", fail),
            format!("{:.2}", arch + succ),
        ]);
    }
    print_table(
        &["kernel", "architectural", "spec (success)", "spec (failed)", "useful total"],
        &rows,
    );
    println!(
        "\nmeans: architectural {:.2} (paper ≈0.94 of baseline), successful spec {:.2}, failed spec {:.2} (paper ≈0.31)",
        lf_stats::mean(&archs),
        lf_stats::mean(&succs),
        lf_stats::mean(&fails)
    );
    lf_bench::artifact::maybe_write("fig8_ipc_breakdown", scale, &cfg, &runs);
}
