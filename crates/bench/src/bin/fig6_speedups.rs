//! Figure 6: whole-program speedups across the SPEC CPU 2006 and CPU 2017
//! analog suites (paper: geomean +9.2% and +9.5%).

use lf_bench::{fmt_pct, print_table, run_suite, RunConfig};
use lf_workloads::Suite;

fn main() {
    let scale = lf_bench::scale_from_args();
    let cfg = RunConfig::default();
    let runs = run_suite(scale, &cfg);
    println!("Figure 6: whole-program speedups (LoopFrog vs baseline, hints-as-NOPs)\n");
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.spec_analog.to_string(),
                match r.suite {
                    Suite::Cpu2006 => "CPU2006".into(),
                    Suite::Cpu2017 => "CPU2017".into(),
                },
                fmt_pct(r.speedup()),
                if r.deselected {
                    "deselected".into()
                } else {
                    format!("{} loops", r.selected_loops)
                },
                if r.checksum_ok { "ok".into() } else { "MISMATCH".into() },
            ]
        })
        .collect();
    print_table(&["kernel", "analog", "suite", "speedup", "selection", "check"], &rows);

    for (suite, label, paper) in
        [(Suite::Cpu2006, "CPU 2006", "+9.2%"), (Suite::Cpu2017, "CPU 2017", "+9.5%")]
    {
        let s: Vec<f64> = runs.iter().filter(|r| r.suite == suite).map(|r| r.speedup()).collect();
        println!(
            "\n{label} geomean: {} (paper: {paper}); {}/{} kernels gain >1%",
            fmt_pct(lf_stats::geomean(&s)),
            s.iter().filter(|&&x| x > 1.01).count(),
            s.len()
        );
    }
    assert!(runs.iter().all(|r| r.checksum_ok), "architectural state mismatch");
    lf_bench::artifact::maybe_write("fig6_speedups", scale, &cfg, &runs);
}
