//! Shim: Figure 6 (whole-program speedups) now runs inside the unified
//! experiment engine. Equivalent to `lf-bench run fig6_speedups`;
//! kept for the historical per-figure command surface.

fn main() {
    lf_bench::engine::cli::run_single("fig6_speedups");
}
