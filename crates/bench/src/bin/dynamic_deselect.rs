//! §5.1 ablation: static vs. dynamic loop deselection.
//!
//! The paper's prototype simulates *perfect static selection* via profiling
//! and notes that "unprofitable loops must be excluded by either static or
//! dynamic deselection, as they may lead to slowdown (up to 10% in our
//! tests)". This experiment quantifies all four quadrants on our suite:
//! no deselection at all, dynamic-only (run-time counters), static-only
//! (the profile oracle), and both.

use lf_bench::{fmt_pct, print_table, run_suite, RunConfig};
use loopfrog::DeselectConfig;

fn main() {
    let scale = lf_bench::scale_from_args();
    let variants: Vec<(&str, bool, bool)> = vec![
        ("none", false, false),
        ("dynamic only", false, true),
        ("static only (oracle)", true, false),
        ("static + dynamic", true, true),
    ];
    println!("§5.1: loop deselection ablation\n");
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for (label, static_sel, dynamic) in variants {
        let mut cfg = RunConfig { deselect_unprofitable: static_sel, ..RunConfig::default() };
        cfg.lf.deselect = DeselectConfig { enabled: dynamic, ..DeselectConfig::default() };
        let runs = run_suite(scale, &cfg);
        let speedups: Vec<f64> = runs.iter().map(|r| r.speedup()).collect();
        let worst = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
        let suppressed: u64 = runs.iter().map(|r| r.lf.counters.get("regions_suppressed")).sum();
        rows.push(vec![
            label.to_string(),
            fmt_pct(lf_stats::geomean(&speedups)),
            fmt_pct(worst),
            suppressed.to_string(),
        ]);
        let mut p = lf_stats::Json::obj();
        p.set("label", label);
        p.set("geomean_speedup", lf_stats::geomean(&speedups));
        p.set("worst_speedup", worst);
        p.set("regions_suppressed", suppressed);
        points.push(p);
    }
    print_table(&["deselection", "geomean speedup", "worst kernel", "regions suppressed"], &rows);
    println!("\npaper: without deselection, unprofitable loops cost up to 10%;");
    println!("dynamic deselection should recover most of the static oracle's benefit.");
    lf_bench::artifact::maybe_write_with(
        "dynamic_deselect",
        scale,
        &RunConfig::default(),
        &[],
        |art| art.set_extra("sweep", lf_stats::Json::Arr(points)),
    );
}
