//! Shim: §5.1 (loop deselection ablation) now runs inside the unified
//! experiment engine. Equivalent to `lf-bench run dynamic_deselect`;
//! kept for the historical per-figure command surface.

fn main() {
    lf_bench::engine::cli::run_single("dynamic_deselect");
}
