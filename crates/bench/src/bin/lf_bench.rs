//! `lf-bench` — the unified experiment driver.
//!
//! Lists and runs registered scenarios through the deduplicating run
//! planner; see [`lf_bench::engine::cli`] for the command surface.

fn main() {
    lf_bench::engine::cli::main();
}
