//! Shim: Figure 7 (threadlet utilization) now runs inside the unified
//! experiment engine. Equivalent to `lf-bench run fig7_utilization`;
//! kept for the historical per-figure command surface.

fn main() {
    lf_bench::engine::cli::run_single("fig7_utilization");
}
