//! Figure 7 / §6.3: threadlet utilization over each benchmark's lifetime,
//! and the Amdahl-implied in-region loop speedup.
//!
//! Paper: ≥2 threadlets active 42% of the time in profitable benchmarks
//! (29% overall), all four active 23% (16% overall); in-region geomean
//! speedup 43%.

use lf_bench::{fmt_pct, print_table, run_suite, RunConfig};

fn main() {
    let scale = lf_bench::scale_from_args();
    let cfg = RunConfig::default();
    let runs = run_suite(scale, &cfg);
    println!("Figure 7: threadlet activity distribution (fraction of cycles)\n");
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            let total = r.lf.cycles.max(1) as f64;
            let mut cells = vec![r.name.to_string()];
            for k in 0..=4 {
                let c = r.lf.cycles_with_active.get(k).copied().unwrap_or(0);
                cells.push(format!("{:.0}%", c as f64 / total * 100.0));
            }
            cells.push(format!("{:.0}%", r.lf.frac_active_at_least(2) * 100.0));
            cells
        })
        .collect();
    print_table(&["kernel", "0", "1", "2", "3", "4", "≥2 active"], &rows);

    let profitable: Vec<_> = runs.iter().filter(|r| r.speedup() > 1.01).collect();
    let ge2 = lf_stats::mean(
        &profitable.iter().map(|r| r.lf.frac_active_at_least(2)).collect::<Vec<_>>(),
    );
    let ge4 = lf_stats::mean(
        &profitable.iter().map(|r| r.lf.frac_active_at_least(4)).collect::<Vec<_>>(),
    );
    let all2 =
        lf_stats::mean(&runs.iter().map(|r| r.lf.frac_active_at_least(2)).collect::<Vec<_>>());
    println!(
        "\nprofitable kernels: ≥2 active {:.0}% of cycles (paper 42%), 4 active {:.0}% (paper 23%)",
        ge2 * 100.0,
        ge4 * 100.0
    );
    println!("all kernels: ≥2 active {:.0}% (paper 29%)", all2 * 100.0);

    // §6.3: invert Amdahl per profitable kernel to estimate in-region speedup.
    let mut region = Vec::new();
    for r in &profitable {
        let coverage = r.lf.region_cycles as f64 / r.lf.cycles.max(1) as f64;
        if let Some(s) = lf_stats::amdahl_region_speedup(r.speedup(), coverage.clamp(0.05, 1.0)) {
            region.push(s);
        }
    }
    println!(
        "Amdahl-implied in-region loop speedup geomean: {} (paper: +43%)",
        fmt_pct(lf_stats::geomean(&region))
    );
    lf_bench::artifact::maybe_write("fig7_utilization", scale, &cfg, &runs);
}
