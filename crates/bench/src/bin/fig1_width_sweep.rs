//! Shim: Figure 1 (IPC and commit utilization vs front-end width) now runs inside the unified
//! experiment engine. Equivalent to `lf-bench run fig1_width_sweep`;
//! kept for the historical per-figure command surface.

fn main() {
    lf_bench::engine::cli::run_single("fig1_width_sweep");
}
