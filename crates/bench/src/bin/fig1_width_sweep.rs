//! Figure 1: geomean IPC and commit utilization vs. front-end width.
//!
//! The paper measures four Intel microarchitectures of increasing width and
//! finds IPC rising roughly linearly while the fraction of commit bandwidth
//! actually used falls. We reproduce the trend by sweeping our baseline
//! core's width (4/6/8/10) over the CPU 2017 analog suite.

use lf_bench::{print_table, scale_from_args};
use lf_uarch::CoreConfig;
use loopfrog::{simulate, LoopFrogConfig};

fn main() {
    let scale = scale_from_args();
    let suite = lf_workloads::suite17(scale);
    println!("Figure 1: IPC and commit utilization vs front-end width");
    println!("(paper: Intel Skylake→Golden Cove trend; here: width sweep of our baseline core)\n");
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for width in [4usize, 6, 8, 10] {
        let mut ipcs = Vec::new();
        let mut utils = Vec::new();
        for w in &suite {
            let cfg = LoopFrogConfig {
                core: CoreConfig { threadlets: 1, ..CoreConfig::with_width(width) },
                speculation: false,
                ..LoopFrogConfig::default()
            };
            let r = simulate(&w.program, w.mem.clone(), cfg)
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
            ipcs.push(r.stats.ipc());
            utils.push(r.stats.commit_utilization(width));
        }
        rows.push(vec![
            format!("{width}-wide"),
            format!("{:.2}", lf_stats::geomean(&ipcs)),
            format!("{:.1}%", lf_stats::geomean(&utils) * 100.0),
        ]);
        let mut p = lf_stats::Json::obj();
        p.set("width", width);
        p.set("geomean_ipc", lf_stats::geomean(&ipcs));
        p.set("commit_utilization", lf_stats::geomean(&utils));
        points.push(p);
    }
    print_table(&["core", "geomean IPC", "commit utilization"], &rows);
    println!("\npaper shape: IPC grows with width; commit utilization falls.");
    if let Some(path) = lf_bench::json_path_from_args() {
        let mut art = lf_bench::RunArtifact::new("fig1_width_sweep", scale);
        art.set_extra("sweep", lf_stats::Json::Arr(points));
        match art.write(&path) {
            Ok(()) => println!("\nwrote {}", path.display()),
            Err(e) => {
                eprintln!("error: failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}
