//! Figure 1: geomean IPC and commit utilization vs. front-end width.
//!
//! The paper measures four Intel microarchitectures of increasing width and
//! finds IPC rising roughly linearly while the fraction of commit bandwidth
//! actually used falls. We reproduce the trend by sweeping our baseline
//! core's width (4/6/8/10) over the CPU 2017 analog suite.

use lf_bench::{print_table, scale_from_args};
use lf_uarch::CoreConfig;
use loopfrog::{simulate, LoopFrogConfig};

fn main() {
    let scale = scale_from_args();
    let suite = lf_workloads::suite17(scale);
    println!("Figure 1: IPC and commit utilization vs front-end width");
    println!("(paper: Intel Skylake→Golden Cove trend; here: width sweep of our baseline core)\n");
    let mut rows = Vec::new();
    for width in [4usize, 6, 8, 10] {
        let mut ipcs = Vec::new();
        let mut utils = Vec::new();
        for w in &suite {
            let cfg = LoopFrogConfig {
                core: CoreConfig { threadlets: 1, ..CoreConfig::with_width(width) },
                speculation: false,
                ..LoopFrogConfig::default()
            };
            let r = simulate(&w.program, w.mem.clone(), cfg)
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
            ipcs.push(r.stats.ipc());
            utils.push(r.stats.commit_utilization(width));
        }
        rows.push(vec![
            format!("{width}-wide"),
            format!("{:.2}", lf_stats::geomean(&ipcs)),
            format!("{:.1}%", lf_stats::geomean(&utils) * 100.0),
        ]);
    }
    print_table(&["core", "geomean IPC", "commit utilization"], &rows);
    println!("\npaper shape: IPC grows with width; commit utilization falls.");
}
