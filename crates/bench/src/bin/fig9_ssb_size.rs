//! Shim: Figure 9 (SSB size sensitivity) now runs inside the unified
//! experiment engine. Equivalent to `lf-bench run fig9_ssb_size`;
//! kept for the historical per-figure command surface.

fn main() {
    lf_bench::engine::cli::run_single("fig9_ssb_size");
}
