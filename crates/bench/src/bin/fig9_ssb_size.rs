//! Figure 9: sensitivity of the geomean speedup to the SSB size.
//!
//! Paper: 8 KiB is the headline; 32 KiB adds <0.1%, 2 KiB costs only 0.4%,
//! and even 512 B still gains +6.2% — size acts almost binarily per loop
//! (does the working set fit?).

use lf_bench::{fmt_pct, print_table, run_suite, RunConfig};

fn main() {
    let scale = lf_bench::scale_from_args();
    println!("Figure 9: speedup vs SSB size (default 8 KiB)\n");
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for (label, bytes) in
        [("512 B", 512usize), ("2 KiB", 2 << 10), ("8 KiB", 8 << 10), ("32 KiB", 32 << 10)]
    {
        let mut cfg = RunConfig::default();
        cfg.lf.ssb.size_bytes = bytes;
        let runs = run_suite(scale, &cfg);
        let g = lf_stats::geomean(&runs.iter().map(|r| r.speedup()).collect::<Vec<_>>());
        let stalls: u64 = runs.iter().map(|r| r.lf.squashes_overflow).sum();
        rows.push(vec![label.to_string(), fmt_pct(g), stalls.to_string()]);
        let mut p = lf_stats::Json::obj();
        p.set("size_bytes", bytes);
        p.set("geomean_speedup", g);
        p.set("overflow_stalls", stalls);
        points.push(p);
    }
    print_table(&["SSB size", "geomean speedup", "overflow stalls"], &rows);
    println!("\npaper shape: flat from 2 KiB up; degraded but still positive at 512 B.");
    lf_bench::artifact::maybe_write_with(
        "fig9_ssb_size",
        scale,
        &RunConfig::default(),
        &[],
        |art| art.set_extra("sweep", lf_stats::Json::Arr(points)),
    );
}
