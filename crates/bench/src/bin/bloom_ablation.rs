//! §4.2 / §6.1 ablation: idealized vs. real Bloom-filter conflict sets.
//!
//! The paper's headline configuration models idealized filters ("No false
//! positives modeled") and estimates that a naive design could make ~2% of
//! epochs fail from false aliasing. This experiment swaps in real filters
//! (Swarm-style 4,096-bit, and deliberately undersized ones) and measures
//! the speedup cost and the rate of aliasing-induced squashes.

use lf_bench::{fmt_pct, print_table, run_suite, RunConfig};

fn main() {
    let scale = lf_bench::scale_from_args();
    println!("Bloom-filter conflict-set ablation (default: idealized, exact sets)\n");
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for (label, bloom) in [
        ("idealized (exact)", None),
        ("4096-bit, 4 hashes", Some((4096usize, 4u32))),
        ("1024-bit, 4 hashes", Some((1024, 4))),
        ("256-bit, 2 hashes", Some((256, 2))),
    ] {
        let mut cfg = RunConfig::default();
        cfg.lf.ssb.bloom = bloom;
        let runs = run_suite(scale, &cfg);
        let g = lf_stats::geomean(&runs.iter().map(|r| r.speedup()).collect::<Vec<_>>());
        let fp: u64 = runs.iter().map(|r| r.lf.counters.get("bloom_false_positive_squashes")).sum();
        let spawns: u64 = runs.iter().map(|r| r.lf.spawns).sum();
        let epoch_fail = if spawns == 0 { 0.0 } else { fp as f64 / spawns as f64 * 100.0 };
        rows.push(vec![label.to_string(), fmt_pct(g), fp.to_string(), format!("{epoch_fail:.2}%")]);
        let mut p = lf_stats::Json::obj();
        p.set("label", label);
        p.set("geomean_speedup", g);
        p.set("false_positive_squashes", fp);
        p.set("epoch_fail_pct", epoch_fail);
        points.push(p);
    }
    print_table(
        &["conflict sets", "geomean speedup", "false-positive squashes", "epochs failed"],
        &rows,
    );
    println!("\npaper: a naive design could fail ~2% of epochs; properly sized");
    println!("filters (4,096 bits) should be indistinguishable from idealized sets.");
    lf_bench::artifact::maybe_write_with(
        "bloom_ablation",
        scale,
        &RunConfig::default(),
        &[],
        |art| art.set_extra("sweep", lf_stats::Json::Arr(points)),
    );
}
