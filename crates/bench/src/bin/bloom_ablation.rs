//! Shim: §4.2/§6.1 (Bloom-filter conflict-set ablation) now runs inside the unified
//! experiment engine. Equivalent to `lf-bench run bloom_ablation`;
//! kept for the historical per-figure command surface.

fn main() {
    lf_bench::engine::cli::run_single("bloom_ablation");
}
