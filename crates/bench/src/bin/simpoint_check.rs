//! §6.1 methodology check: SimPoint-style sampled simulation.
//!
//! The paper simulates up to 15 SimPoints of 250M instructions per SPEC
//! benchmark and estimates the whole run from the cluster weights. This
//! experiment validates the same pipeline end-to-end at our scale: collect
//! basic-block vectors on the golden emulator, cluster them (random
//! projection + k-means + BIC), warm-start the cycle simulator at each
//! representative interval, and compare the weighted cycle estimate with
//! the full detailed simulation.

use lf_compiler::{annotate, Cfg, SelectOptions};
use lf_isa::Emulator;
use lf_stats::simpoint::{pick_simpoints, weighted_cycles, BbvCollector};
use loopfrog::{LoopFrogConfig, LoopFrogCore};

fn main() {
    let scale = lf_bench::scale_from_args();
    println!("§6.1 methodology: SimPoint-sampled vs full detailed simulation\n");
    println!(
        "{:<16} {:>9} {:>6} {:>12} {:>12} {:>7}",
        "kernel", "insts", "k", "full cycles", "estimated", "error"
    );

    let mut points = Vec::new();
    for name in ["stencil_blur", "event_queue", "hash_lookup", "md_force"] {
        let w = lf_workloads::by_name(name, scale).expect("kernel exists");
        let emu0 = w.reference_emulator().expect("kernel runs");
        let ann = annotate(&w.program, emu0.profile(), &SelectOptions::default());
        let program = &ann.program;
        let cfg_sim = LoopFrogConfig::default();

        // 1. BBV collection on the golden emulator, with interval-boundary
        //    state snapshots for warm starts.
        let total_insts = {
            let mut e = Emulator::new(program, w.mem.clone());
            e.run(200_000_000).unwrap();
            e.inst_count()
        };
        let interval = (total_insts / 16).max(1_500);
        let cfg_blocks = Cfg::build(program);
        let mut collector = BbvCollector::new(interval);
        let mut snapshots = Vec::new(); // (regs, mem, pc) at interval starts
        {
            let mut e = Emulator::new(program, w.mem.clone());
            let mut since = 0u64;
            snapshots.push((*e.regs(), e.mem().clone(), e.pc()));
            while !e.is_halted() {
                let pc = e.step().unwrap();
                collector.record(cfg_blocks.block_of(pc), 1);
                since += 1;
                if since == interval {
                    since = 0;
                    snapshots.push((*e.regs(), e.mem().clone(), e.pc()));
                }
            }
            collector.finish();
        }

        // 2. Cluster and pick representatives.
        let picks = pick_simpoints(collector.vectors(), 6, 0xC0FFEE);

        // 3. Detailed simulation of each representative interval, with one
        //    preceding interval as microarchitectural warmup (the paper
        //    uses 50M-instruction warmups before each 250M SimPoint).
        let mut samples = Vec::new();
        for p in &picks {
            let idx = p.interval.min(snapshots.len() - 1);
            let warm_idx = idx.saturating_sub(3);
            let warmup = (idx - warm_idx) as u64 * interval;
            let (regs, mem, pc) = &snapshots[warm_idx];
            let mut core =
                LoopFrogCore::with_initial_state(program, mem.clone(), regs, *pc, cfg_sim.clone());
            core.run_until_committed(warmup).expect("warmup simulates");
            let (c0, i0) = (core.cycle(), core.committed_insts());
            core.run_until_committed(warmup + interval).expect("interval simulates");
            let (c1, i1) = (core.cycle(), core.committed_insts());
            samples.push((*p, c1 - c0, (i1 - i0).max(1)));
        }
        let estimate = weighted_cycles(&samples, total_insts);

        // 4. Ground truth: the full detailed run.
        let full = loopfrog::simulate(program, w.mem.clone(), cfg_sim.clone())
            .expect("full run simulates");

        let err = (estimate - full.stats.cycles as f64) / full.stats.cycles as f64 * 100.0;
        println!(
            "{:<16} {:>9} {:>6} {:>12} {:>12.0} {:>+6.1}%",
            name,
            total_insts,
            picks.len(),
            full.stats.cycles,
            estimate,
            err
        );
        let mut p = lf_stats::Json::obj();
        p.set("kernel", name);
        p.set("total_insts", total_insts);
        p.set("simpoints", picks.len());
        p.set("full_cycles", full.stats.cycles);
        p.set("estimated_cycles", estimate);
        p.set("error_pct", err);
        points.push(p);
    }
    println!("\npaper methodology: SimPoint-weighted estimates stand in for full runs;");
    println!("errors within ±10% validate the sampling pipeline at this scale.");
    if let Some(path) = lf_bench::json_path_from_args() {
        let mut art = lf_bench::RunArtifact::new("simpoint_check", scale);
        art.set_extra("simpoint_estimates", lf_stats::Json::Arr(points));
        match art.write(&path) {
            Ok(()) => println!("\nwrote {}", path.display()),
            Err(e) => {
                eprintln!("error: failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}
