//! Shim: §6.1 (SimPoint methodology check) now runs inside the unified
//! experiment engine. Equivalent to `lf-bench run simpoint_check`;
//! kept for the historical per-figure command surface.

fn main() {
    lf_bench::engine::cli::run_single("simpoint_check");
}
