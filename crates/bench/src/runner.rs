//! The kernel experiment runner.
//!
//! [`run_kernel`] / [`run_suite`] drive one workload (or the whole suite)
//! through profile → hint insertion → baseline + LoopFrog simulation, as a
//! standalone convenience for tests and one-off experiments. The unified
//! experiment engine ([`crate::engine`]) produces the same [`KernelRun`]
//! values from memoized, deduplicated [`RunOutcome`]s instead of
//! simulating inline.

use lf_compiler::{annotate, SelectOptions};
use lf_isa::{checksum::fnv1a, Memory, Program};
use lf_stats::Json;
use lf_workloads::{Scale, Workload};
use loopfrog::{LoopFrogConfig, SimResult, SimStats};
use std::sync::Arc;

/// Configuration for one experiment run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The LoopFrog configuration under test.
    pub lf: LoopFrogConfig,
    /// The baseline configuration (hints ignored).
    pub base: LoopFrogConfig,
    /// Loop-selection thresholds for the compiler pass.
    pub select: SelectOptions,
    /// Profile-guided deselection (paper §5.1: "we use profiling
    /// information to annotate the most profitable loops ... simulating
    /// perfect static loop selection", and "unprofitable loops must be
    /// excluded by either static or dynamic deselection"): kernels whose
    /// hinted run is slower than the baseline ship without hints.
    pub deselect_unprofitable: bool,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            lf: LoopFrogConfig::default(),
            base: LoopFrogConfig::baseline(),
            select: SelectOptions::default(),
            deselect_unprofitable: true,
        }
    }
}

/// The memoizable product of one simulation: everything any scenario
/// consumes, detached from the live simulator state so it can be shared
/// (`Arc`), sent across worker threads, and round-tripped through the
/// on-disk run cache.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Content fingerprint of `(annotated program, memory, config, scale)`;
    /// see [`run_fingerprint`].
    pub fingerprint: u64,
    /// Scalar statistics (tables and summary math).
    pub stats: SimStats,
    /// Final architectural state checksum.
    pub checksum: u64,
    /// The full machine-readable record (metrics registry, cycle
    /// accounting, intervals), pre-rendered to JSON for artifacts.
    pub rendered: Json,
    /// Whether this outcome was served from the on-disk cache rather than
    /// simulated in this process.
    pub from_cache: bool,
}

impl RunOutcome {
    /// Converts a finished simulation into its memoizable outcome. The
    /// `SimResult` is consumed — statistics move, and the heavyweight
    /// registry/interval state is rendered to JSON once and dropped.
    pub fn from_result(fingerprint: u64, result: SimResult) -> RunOutcome {
        let rendered = crate::artifact::sim_result_json(&result);
        RunOutcome {
            fingerprint,
            checksum: result.checksum,
            stats: result.stats,
            rendered,
            from_cache: false,
        }
    }
}

/// Stable identity of one simulation, per the experiment engine's
/// deduplication contract: the annotated program's code fingerprint, the
/// initial memory image, the canonicalized [`LoopFrogConfig`], and the
/// workload scale. Equal fingerprints produce identical results (the
/// simulator is deterministic).
pub fn run_fingerprint(program: &Program, mem: &Memory, cfg: &LoopFrogConfig, scale: Scale) -> u64 {
    let mut fp = lf_stats::Fingerprint::new();
    fp.u64(program.code_fingerprint())
        .u64(fnv1a(mem.as_bytes()))
        .str(scale_tag(scale))
        .u64(cfg.fingerprint());
    fp.finish()
}

/// The lowercase tag used for a scale in fingerprints, CLI flags, and
/// artifacts.
pub fn scale_tag(scale: Scale) -> &'static str {
    match scale {
        Scale::Smoke => "smoke",
        Scale::Eval => "eval",
        Scale::Full => "full",
    }
}

/// Outcome of running one kernel under baseline and LoopFrog.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Kernel name.
    pub name: &'static str,
    /// SPEC benchmark analog.
    pub spec_analog: &'static str,
    /// Which suite.
    pub suite: lf_workloads::Suite,
    /// Expected bottleneck category.
    pub category: lf_workloads::Category,
    /// Whether the loop sits in an OpenMP region in the original (§6.7).
    pub in_openmp_region: bool,
    /// Number of loops the compiler annotated.
    pub selected_loops: usize,
    /// Baseline outcome.
    pub base: Arc<RunOutcome>,
    /// LoopFrog outcome; mirrors `base` (shared, not re-simulated) when
    /// the kernel is deselected.
    pub lf: Arc<RunOutcome>,
    /// Whether emulator, baseline, and LoopFrog all agreed on final state.
    pub checksum_ok: bool,
    /// The kernel's loops were deselected as unprofitable (its shipped
    /// configuration is hint-free; `lf` mirrors `base`).
    pub deselected: bool,
}

impl KernelRun {
    /// Applies the profile-guided deselection rule to a pair of outcomes
    /// and assembles the record. Outcomes are shared `Arc`s: a deselected
    /// kernel's `lf` is the same allocation as its `base`, never a copy.
    pub fn from_outcomes(
        w: &Workload,
        selected_loops: usize,
        golden: u64,
        base: Arc<RunOutcome>,
        lf: Arc<RunOutcome>,
        deselect_unprofitable: bool,
    ) -> KernelRun {
        let checksum_ok = base.checksum == golden && lf.checksum == golden;
        let deselected = deselect_unprofitable && lf.stats.cycles > base.stats.cycles;
        let (lf, selected_loops) =
            if deselected { (base.clone(), 0) } else { (lf, selected_loops) };
        KernelRun {
            name: w.name,
            spec_analog: w.spec_analog,
            suite: w.suite,
            category: w.category,
            in_openmp_region: w.in_openmp_region,
            selected_loops,
            base,
            lf,
            checksum_ok,
            deselected,
        }
    }

    /// Whole-program speedup of LoopFrog over the baseline.
    pub fn speedup(&self) -> f64 {
        self.base.stats.cycles as f64 / self.lf.stats.cycles as f64
    }

    /// Baseline run statistics.
    pub fn base_stats(&self) -> &SimStats {
        &self.base.stats
    }

    /// LoopFrog run statistics (the baseline's when deselected).
    pub fn lf_stats(&self) -> &SimStats {
        &self.lf.stats
    }
}

/// Runs one workload through profile → annotate → baseline + LoopFrog.
///
/// # Panics
///
/// Panics if the kernel faults or a simulation deadlocks (reproduction
/// bugs, surfaced loudly).
pub fn run_kernel(w: &Workload, cfg: &RunConfig) -> KernelRun {
    run_kernel_with(w, cfg, |_| {})
}

/// [`run_kernel`] with a core hook: `hook` runs once on each freshly
/// constructed core (baseline, then LoopFrog) before its simulation.
/// Tests use it to attach tracers or enable the self-profiler and assert
/// the results are byte-identical to an unhooked run; observers attached
/// this way are core-side state and never reach the run fingerprint.
///
/// # Panics
///
/// As [`run_kernel`].
pub fn run_kernel_with(
    w: &Workload,
    cfg: &RunConfig,
    mut hook: impl FnMut(&mut loopfrog::LoopFrogCore),
) -> KernelRun {
    let emu = w.reference_emulator().expect("kernel runs on the golden emulator");
    assert!(emu.is_halted(), "{} did not halt", w.name);
    let golden = emu.state_checksum();

    let ann = annotate(&w.program, emu.profile(), &cfg.select);
    let selected_loops = ann.reports.iter().filter(|r| r.placement.is_some()).count();

    let mut sim = |c: &LoopFrogConfig, tag: &str| -> SimResult {
        let mut core = loopfrog::LoopFrogCore::new(&ann.program, w.mem.clone(), c.clone());
        hook(&mut core);
        core.run().unwrap_or_else(|e| panic!("{} {tag} failed: {e}", w.name))
    };
    let base = sim(&cfg.base, "baseline");
    let lf = sim(&cfg.lf, "loopfrog");

    // Results move into shared outcomes; nothing is deep-copied, and a
    // deselected kernel mirrors the baseline by Arc, not by clone.
    let base = Arc::new(RunOutcome::from_result(
        run_fingerprint(&ann.program, &w.mem, &cfg.base, w.scale),
        base,
    ));
    let lf = Arc::new(RunOutcome::from_result(
        run_fingerprint(&ann.program, &w.mem, &cfg.lf, w.scale),
        lf,
    ));
    KernelRun::from_outcomes(w, selected_loops, golden, base, lf, cfg.deselect_unprofitable)
}

/// Runs the whole suite at `scale`.
pub fn run_suite(scale: Scale, cfg: &RunConfig) -> Vec<KernelRun> {
    lf_workloads::all(scale).iter().map(|w| run_kernel(w, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_kernel_end_to_end() {
        let w = lf_workloads::by_name("stencil_blur", Scale::Smoke).unwrap();
        let r = run_kernel(&w, &RunConfig::default());
        assert!(r.checksum_ok, "architectural state must match the emulator");
        assert!(r.selected_loops >= 1, "the hot loop must be selected");
        assert!(r.lf_stats().spawns > 0, "threadlets must spawn");
        assert_ne!(r.base.fingerprint, r.lf.fingerprint, "configs must fingerprint apart");
    }

    #[test]
    fn deselected_kernels_share_the_baseline_outcome() {
        let w = lf_workloads::by_name("compress_rle", Scale::Smoke).unwrap();
        let r = run_kernel(&w, &RunConfig::default());
        if r.deselected {
            assert!(Arc::ptr_eq(&r.base, &r.lf), "mirroring must share, not copy");
            assert_eq!(r.selected_loops, 0);
        }
    }

    #[test]
    fn fingerprint_distinguishes_scale_and_config() {
        let w = lf_workloads::by_name("stencil_blur", Scale::Smoke).unwrap();
        let cfg = LoopFrogConfig::default();
        let fp = run_fingerprint(&w.program, &w.mem, &cfg, Scale::Smoke);
        assert_eq!(fp, run_fingerprint(&w.program, &w.mem, &cfg, Scale::Smoke));
        assert_ne!(fp, run_fingerprint(&w.program, &w.mem, &cfg, Scale::Eval));
        assert_ne!(
            fp,
            run_fingerprint(&w.program, &w.mem, &LoopFrogConfig::baseline(), Scale::Smoke)
        );
        let mut small_ssb = LoopFrogConfig::default();
        small_ssb.ssb.size_bytes = 512;
        assert_ne!(fp, run_fingerprint(&w.program, &w.mem, &small_ssb, Scale::Smoke));
    }
}
