//! The kernel experiment runner.

use lf_compiler::{annotate, SelectOptions};
use lf_isa::Program;
use lf_workloads::{Scale, Workload};
use loopfrog::{simulate, LoopFrogConfig, SimResult, SimStats};

/// Configuration for one experiment run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The LoopFrog configuration under test.
    pub lf: LoopFrogConfig,
    /// The baseline configuration (hints ignored).
    pub base: LoopFrogConfig,
    /// Loop-selection thresholds for the compiler pass.
    pub select: SelectOptions,
    /// Profile-guided deselection (paper §5.1: "we use profiling
    /// information to annotate the most profitable loops ... simulating
    /// perfect static loop selection", and "unprofitable loops must be
    /// excluded by either static or dynamic deselection"): kernels whose
    /// hinted run is slower than the baseline ship without hints.
    pub deselect_unprofitable: bool,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            lf: LoopFrogConfig::default(),
            base: LoopFrogConfig::baseline(),
            select: SelectOptions::default(),
            deselect_unprofitable: true,
        }
    }
}

/// Outcome of running one kernel under baseline and LoopFrog.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Kernel name.
    pub name: &'static str,
    /// SPEC benchmark analog.
    pub spec_analog: &'static str,
    /// Which suite.
    pub suite: lf_workloads::Suite,
    /// Expected bottleneck category.
    pub category: lf_workloads::Category,
    /// Whether the loop sits in an OpenMP region in the original (§6.7).
    pub in_openmp_region: bool,
    /// Number of loops the compiler annotated.
    pub selected_loops: usize,
    /// The annotated program (for further experiments).
    pub annotated: Program,
    /// Baseline run statistics.
    pub base: SimStats,
    /// LoopFrog run statistics.
    pub lf: SimStats,
    /// Full baseline result (metrics registry, cycle accounting, interval
    /// samples) for machine-readable artifacts.
    pub base_result: SimResult,
    /// Full LoopFrog result; mirrors `base_result` when deselected.
    pub lf_result: SimResult,
    /// Whether emulator, baseline, and LoopFrog all agreed on final state.
    pub checksum_ok: bool,
    /// The kernel's loops were deselected as unprofitable (its shipped
    /// configuration is hint-free; `lf` mirrors `base`).
    pub deselected: bool,
}

impl KernelRun {
    /// Whole-program speedup of LoopFrog over the baseline.
    pub fn speedup(&self) -> f64 {
        self.base.cycles as f64 / self.lf.cycles as f64
    }
}

/// Runs one workload through profile → annotate → baseline + LoopFrog.
///
/// # Panics
///
/// Panics if the kernel faults or a simulation deadlocks (reproduction
/// bugs, surfaced loudly).
pub fn run_kernel(w: &Workload, cfg: &RunConfig) -> KernelRun {
    let emu = w.reference_emulator().expect("kernel runs on the golden emulator");
    assert!(emu.is_halted(), "{} did not halt", w.name);
    let golden = emu.state_checksum();

    let ann = annotate(&w.program, emu.profile(), &cfg.select);
    let selected_loops = ann.reports.iter().filter(|r| r.placement.is_some()).count();

    let base = simulate(&ann.program, w.mem.clone(), cfg.base.clone())
        .unwrap_or_else(|e| panic!("{} baseline failed: {e}", w.name));
    let lf = simulate(&ann.program, w.mem.clone(), cfg.lf.clone())
        .unwrap_or_else(|e| panic!("{} loopfrog failed: {e}", w.name));
    let checksum_ok = base.checksum == golden && lf.checksum == golden;

    let deselected = cfg.deselect_unprofitable && lf.stats.cycles > base.stats.cycles;
    let (lf_result, selected_loops) =
        if deselected { (base.clone(), 0) } else { (lf, selected_loops) };
    KernelRun {
        name: w.name,
        spec_analog: w.spec_analog,
        suite: w.suite,
        category: w.category,
        in_openmp_region: w.in_openmp_region,
        selected_loops,
        annotated: ann.program,
        base: base.stats.clone(),
        lf: lf_result.stats.clone(),
        base_result: base,
        lf_result,
        checksum_ok,
        deselected,
    }
}

/// Runs the whole suite at `scale`.
pub fn run_suite(scale: Scale, cfg: &RunConfig) -> Vec<KernelRun> {
    lf_workloads::all(scale).iter().map(|w| run_kernel(w, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_kernel_end_to_end() {
        let w = lf_workloads::by_name("stencil_blur", Scale::Smoke).unwrap();
        let r = run_kernel(&w, &RunConfig::default());
        assert!(r.checksum_ok, "architectural state must match the emulator");
        assert!(r.selected_loops >= 1, "the hot loop must be selected");
        assert!(r.lf.spawns > 0, "threadlets must spawn");
    }
}
