//! Tiered execution: functional fast-forward, warm checkpoints, and
//! sampled cycle-accurate windows.
//!
//! The detailed core simulates a few hundred kilocycles per second; the
//! functional fast tier executes tens of millions of instructions per
//! second. This module trades between them the way gem5 switches CPU
//! models: a run can execute entirely on the fast tier
//! ([`Tier::Functional`]), entirely on the detailed core
//! ([`Tier::Detailed`], the legacy path), or fast-forward with functional
//! warming to SimPoint-selected windows and measure only those in detail
//! ([`Tier::Sampled`]).
//!
//! The sampled pipeline:
//!
//! 1. one functional pass establishes the dynamic instruction count and
//!    the final-state checksum (the golden reference the engine's
//!    `checksum_ok` gate compares against);
//! 2. a second pass splits the run into fixed-length intervals and
//!    collects a basic-block vector per interval (plus a synthetic
//!    working-set dimension, [`lf_isa::BBV_NEW_LINES_KEY`]); a trailing
//!    partial interval shorter than half the interval length is dropped
//!    from clustering so its drain-dominated CPI cannot claim a full
//!    cluster weight;
//! 3. [`pick_simpoints`] clusters the vectors and selects weighted
//!    representative intervals;
//! 4. a third pass captures a [`Checkpoint`] at each representative's
//!    starting instruction: architectural state snapshotted exactly at
//!    the pick, hint streams captured [`WARM_LOOKAHEAD_INSTS`] further
//!    to model the live core's speculative run-ahead;
//! 5. each window restores a detailed core via
//!    `LoopFrogCore::from_checkpoint`, runs a bounded detailed warm-up
//!    (interval / [`WARM_FRACTION`] instructions; skipped at interval 0,
//!    where the restore *is* the pristine cold start), measures the
//!    interval, and [`weighted_cycles`] reconstructs the whole-run cycle
//!    count.
//!
//! Plans (picks + checkpoints) are content-addressed in a
//! [`CheckpointStore`] under the run-cache directory, committed through
//! [`crate::durable::atomic_write_bytes`]. A corrupt entry is quarantined
//! exactly like a corrupt run-cache entry, and the run falls back to full
//! detailed simulation rather than failing the campaign.

use crate::runner::{run_fingerprint, scale_tag, RunOutcome};
use lf_isa::checksum::fnv1a;
use lf_isa::{Checkpoint, CheckpointError, FastTier, Memory, Program};
use lf_stats::simpoint::{pick_simpoints, weighted_cycles, SimPoint};
use lf_stats::{fingerprint_hex, Fingerprint, Json};
use lf_workloads::Scale;
use loopfrog::{LoopFrogConfig, LoopFrogCore, SimStats};
use std::io;
use std::path::{Path, PathBuf};

/// Which execution path a run takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tier {
    /// Emulator-speed fast-forward on the [`FastTier`]: architectural
    /// results and instruction counts only, zero simulated cycles. For
    /// state/BBV collection and throughput work, not timing figures.
    Functional,
    /// SimPoint-sampled detailed simulation from warm checkpoints; the
    /// whole-run cycle count is reconstructed from weighted windows.
    Sampled,
    /// The legacy cycle-accurate path: every instruction through the
    /// detailed core.
    #[default]
    Detailed,
}

impl Tier {
    /// The lowercase tag used in fingerprints, CLI flags, and artifacts.
    pub fn tag(self) -> &'static str {
        match self {
            Tier::Functional => "functional",
            Tier::Sampled => "sampled",
            Tier::Detailed => "detailed",
        }
    }

    /// Parses a CLI tier name.
    pub fn parse(s: &str) -> Option<Tier> {
        match s {
            "functional" => Some(Tier::Functional),
            "sampled" => Some(Tier::Sampled),
            "detailed" => Some(Tier::Detailed),
            _ => None,
        }
    }
}

/// The run fingerprint under a tier. [`Tier::Detailed`] keeps the legacy
/// fingerprint bit-for-bit — existing caches stay valid — while the other
/// tiers mix in their tag so a sampled estimate can never be served where
/// a detailed result was requested (or vice versa).
pub fn run_fingerprint_tiered(
    program: &Program,
    mem: &Memory,
    cfg: &LoopFrogConfig,
    scale: Scale,
    tier: Tier,
) -> u64 {
    let base = run_fingerprint(program, mem, cfg, scale);
    match tier {
        Tier::Detailed => base,
        Tier::Functional | Tier::Sampled => Fingerprint::new().u64(base).str(tier.tag()).finish(),
    }
}

/// Target number of BBV intervals per run.
pub const TARGET_INTERVALS: u64 = 44;
/// Floor on the interval length in instructions (short kernels would
/// otherwise fragment into intervals dominated by warm-up transients).
pub const MIN_INTERVAL_INSTS: u64 = 2_000;
/// Maximum SimPoint clusters (and therefore detailed windows) per run.
/// With [`TARGET_INTERVALS`] intervals and a window costing
/// `(1 + 1/WARM_FRACTION)` intervals of detailed simulation, the
/// worst-case detailed fraction is `6 * 1.125 / 44 ≈ 15%` — a floor of
/// roughly 6.5x detailed-cycle reduction even when BIC picks every
/// cluster it is allowed. (The realized reduction is lower: windows
/// land disproportionately on slow phases, which cost more cycles per
/// instruction than the run average.)
pub const MAX_SIMPOINTS: usize = 6;
/// Detailed warm-up before each measured window, as a divisor of the
/// interval length (SMARTS-style: functional warming delivers the tables,
/// a short detailed burst settles the pipeline and queues). Windows at
/// interval 0 skip the warm-up entirely: a restore at instruction 0 with
/// empty hint streams *is* the pristine cold start, and measuring from
/// cycle 0 reproduces it exactly.
pub const WARM_FRACTION: u64 = 8;
/// Functional-warming lookahead: hint streams in a checkpoint are
/// captured this many instructions *past* the pick. The detailed core's
/// speculative threadlets run ahead of the architectural stream and
/// prefetch lines the architectural replay alone never sees, so a
/// checkpoint warmed strictly from the past leaves the L2 measurably
/// colder than the live core's (pointer-chasing kernels read ~25% slow).
/// Warming through a short future window models that run-ahead; the
/// architectural state still snapshots exactly at the pick. Too much
/// lookahead overcorrects the other way: lines the window itself would
/// miss on arrive pre-warmed and the window reads fast. Keep the
/// measured window at least ~3x this value.
pub const WARM_LOOKAHEAD_INSTS: u64 = 768;
/// Measured-window length as a divisor of the interval length. Kept at 1
/// (full-interval windows): shrinking the window below ~3x
/// [`WARM_LOOKAHEAD_INSTS`] lets the lookahead warming cover most of the
/// window's misses and the measured CPI reads optimistic.
pub const MEASURE_DIVISOR: u64 = 1;
/// Clustering seed (fixed: plans must be deterministic).
const SIMPOINT_SEED: u64 = 0xC0FFEE;
/// Fuel cap for functional passes, matching the golden emulator's
/// reference-run cap: a kernel that does not halt within this many
/// instructions is a structured error, not a hung worker.
const FUNCTIONAL_FUEL: u64 = 200_000_000;

/// Plan-blob format magic.
const PLAN_MAGIC: &[u8; 8] = b"LFPLAN\0\0";
/// Plan-blob format version.
const PLAN_VERSION: u32 = 1;

/// A reusable sampling plan for one `(program, memory, scale)` identity:
/// the interval geometry, the functional ground truth, and one warm
/// checkpoint per selected SimPoint. Config-independent by construction —
/// baseline and LoopFrog configs of the same prepared kernel share it.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledPlan {
    /// BBV interval length in instructions.
    pub interval_len: u64,
    /// Total dynamic instructions of the full run.
    pub total_insts: u64,
    /// Final architectural state checksum of the full run (functional
    /// tier; equals the golden emulator's by construction).
    pub final_checksum: u64,
    /// Selected SimPoints with the checkpoint at each one's starting
    /// instruction, sorted by interval index.
    pub picks: Vec<(SimPoint, Checkpoint)>,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.at.checked_add(n).ok_or(CheckpointError::Truncated)?;
        if end > self.bytes.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

impl SampledPlan {
    /// Serializes the plan to a self-validating byte stream (same
    /// `magic | version | payload checksum | payload` envelope as
    /// [`Checkpoint::to_bytes`]; checkpoints nest with their own envelope,
    /// so corruption is caught at whichever layer it lands in).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_u64(&mut payload, self.interval_len);
        put_u64(&mut payload, self.total_insts);
        put_u64(&mut payload, self.final_checksum);
        put_u64(&mut payload, self.picks.len() as u64);
        for (sp, ckpt) in &self.picks {
            put_u64(&mut payload, sp.interval as u64);
            put_u64(&mut payload, sp.weight.to_bits());
            let bytes = ckpt.to_bytes();
            put_u64(&mut payload, bytes.len() as u64);
            payload.extend_from_slice(&bytes);
        }
        let mut out = Vec::with_capacity(payload.len() + 24);
        out.extend_from_slice(PLAN_MAGIC);
        put_u32(&mut out, PLAN_VERSION);
        put_u64(&mut out, fnv1a(&payload));
        out.extend_from_slice(&payload);
        out
    }

    /// Deserializes and validates a plan blob.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on truncation, a foreign magic, an
    /// unknown version, or a checksum mismatch (in the envelope or in any
    /// nested checkpoint).
    pub fn from_bytes(bytes: &[u8]) -> Result<SampledPlan, CheckpointError> {
        let mut r = Reader { bytes, at: 0 };
        if r.take(8)? != PLAN_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u32()?;
        if version != PLAN_VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let checksum = r.u64()?;
        let payload = &bytes[r.at..];
        if fnv1a(payload) != checksum {
            return Err(CheckpointError::BadChecksum);
        }
        let interval_len = r.u64()?;
        let total_insts = r.u64()?;
        let final_checksum = r.u64()?;
        let n = r.u64()? as usize;
        let mut picks = Vec::with_capacity(n.min(MAX_SIMPOINTS * 4));
        for _ in 0..n {
            let interval = r.u64()? as usize;
            let weight = f64::from_bits(r.u64()?);
            let len = r.u64()? as usize;
            let ckpt = Checkpoint::from_bytes(r.take(len)?)?;
            picks.push((SimPoint { interval, weight }, ckpt));
        }
        Ok(SampledPlan { interval_len, total_insts, final_checksum, picks })
    }
}

/// Builds the sampling plan for one program + memory image: three
/// functional passes (count, BBV-collect, checkpoint at picks).
///
/// # Errors
///
/// Returns a message if the kernel faults or fails to halt within the
/// functional fuel cap.
pub fn build_plan(program: &Program, mem: &Memory) -> Result<SampledPlan, String> {
    // Pass 1: total instruction count and the final-state checksum.
    let mut fast = FastTier::new(program, mem.clone());
    fast.run_to_inst_count(FUNCTIONAL_FUEL).map_err(|e| format!("functional pass faulted: {e}"))?;
    if !fast.is_halted() {
        return Err(format!("kernel did not halt within {FUNCTIONAL_FUEL} instructions"));
    }
    let total_insts = fast.inst_count();
    let final_checksum = fast.state_checksum();
    let interval_len = (total_insts / TARGET_INTERVALS).max(MIN_INTERVAL_INSTS);

    // Pass 2: interval BBVs, collected inline by the fast tier. A trailing
    // partial interval shorter than half an interval is dropped before
    // clustering: it holds a negligible share of the run, but as its own
    // near-empty vector it reliably earns its own cluster, and a full
    // cluster weight on a handful of drain-dominated instructions skews
    // the whole-run estimate far out of proportion to its size.
    let mut fast = FastTier::new(program, mem.clone());
    while !fast.is_halted() {
        fast.run_interval(interval_len).map_err(|e| format!("BBV pass faulted: {e}"))?;
    }
    let mut vectors = fast.vectors();
    if let Some(last) = vectors.last() {
        let insts: u64 =
            last.iter().filter(|(&k, _)| k != lf_isa::BBV_NEW_LINES_KEY).map(|(_, &n)| n).sum();
        if vectors.len() > 1 && insts < interval_len / 2 {
            vectors = &vectors[..vectors.len() - 1];
        }
    }
    let picks = pick_simpoints(vectors, MAX_SIMPOINTS, SIMPOINT_SEED);

    // Pass 3: a warm checkpoint at each pick's starting instruction. Each
    // pick replays from scratch (functional replay costs microseconds at
    // these run lengths): architectural state snapshots exactly at the
    // pick, then the replay continues [`WARM_LOOKAHEAD_INSTS`] further so
    // the hint streams also cover the detailed core's speculative
    // run-ahead. Interval 0 is exempt — nothing ran ahead of a cold start,
    // and its pristine empty-hint checkpoint reproduces it exactly.
    let mut with_ckpts = Vec::with_capacity(picks.len());
    for p in &picks {
        let start = p.interval as u64 * interval_len;
        let mut fast = FastTier::new(program, mem.clone());
        fast.run_to_inst_count(start).map_err(|e| format!("checkpoint pass faulted: {e}"))?;
        let arch = fast.checkpoint();
        if p.interval == 0 {
            with_ckpts.push((*p, arch));
            continue;
        }
        fast.run_to_inst_count(start + WARM_LOOKAHEAD_INSTS)
            .map_err(|e| format!("lookahead pass faulted: {e}"))?;
        let mut ckpt = fast.checkpoint();
        ckpt.regs = arch.regs;
        ckpt.mem = arch.mem;
        ckpt.pc = arch.pc;
        ckpt.insts = arch.insts;
        with_ckpts.push((*p, ckpt));
    }
    Ok(SampledPlan { interval_len, total_insts, final_checksum, picks: with_ckpts })
}

/// The classified result of a checkpoint-store probe.
#[derive(Debug)]
pub enum PlanLookup {
    /// The blob validated end to end and reconstructed.
    Hit(Box<SampledPlan>),
    /// No entry on disk.
    Miss,
    /// The entry exists but failed validation (truncated, bit-rotted, or
    /// foreign); moved to the quarantine directory when `quarantined`.
    Corrupt {
        /// Whether the bad blob was successfully moved aside.
        quarantined: bool,
    },
}

/// Content-addressed sampling plans under the run-cache directory:
/// `<cache>/<key>.ckpt`, committed through the shared atomic-write path
/// and quarantined into the same `quarantine/` subdirectory as corrupt
/// run-cache entries.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (without creating) the store at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> CheckpointStore {
        CheckpointStore { dir: dir.into() }
    }

    /// The plan key for a `(program, memory, scale)` identity. The
    /// simulator config is deliberately absent: plans describe functional
    /// execution, which every config shares.
    pub fn plan_key(program: &Program, mem: &Memory, scale: Scale) -> u64 {
        Fingerprint::new()
            .str("ckpt-plan")
            .u64(program.code_fingerprint())
            .u64(fnv1a(mem.as_bytes()))
            .str(scale_tag(scale))
            .finish()
    }

    /// The blob path for a plan key.
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{}.ckpt", fingerprint_hex(key)))
    }

    /// Where corrupt blobs are moved on detection (shared with the run
    /// cache).
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    /// Probes the store, classifying the result. Corrupt blobs are
    /// quarantined as a side effect.
    pub fn lookup(&self, key: u64) -> PlanLookup {
        let path = self.entry_path(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => return PlanLookup::Miss,
        };
        match SampledPlan::from_bytes(&bytes) {
            Ok(plan) => PlanLookup::Hit(Box::new(plan)),
            Err(_) => {
                let quarantined = self.quarantine(&path, key).is_ok();
                PlanLookup::Corrupt { quarantined }
            }
        }
    }

    /// Moves a corrupt blob into the quarantine directory.
    fn quarantine(&self, path: &Path, key: u64) -> io::Result<()> {
        let qdir = self.quarantine_dir();
        std::fs::create_dir_all(&qdir)?;
        std::fs::rename(path, qdir.join(format!("{}.ckpt", fingerprint_hex(key))))
    }

    /// Persists a plan, creating the store directory as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (the store is best-effort: callers
    /// warn and continue un-memoized).
    pub fn store(&self, key: u64, plan: &SampledPlan) -> io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        crate::durable::atomic_write_bytes(&self.entry_path(key), &plan.to_bytes())
    }
}

/// One measured SimPoint window.
#[derive(Debug, Clone, Copy)]
pub struct Window {
    /// The SimPoint this window represents.
    pub point: SimPoint,
    /// Cycles of the measured region (detailed warm-up excluded).
    pub cycles: u64,
    /// Instructions of the measured region.
    pub insts: u64,
    /// Total detailed cycles this window cost (warm-up included).
    pub detailed_cycles: u64,
}

/// The result of measuring a plan's windows under one config.
#[derive(Debug)]
pub struct SampledMeasurement {
    /// Weighted whole-run cycle estimate.
    pub est_cycles: f64,
    /// Total detailed cycles actually simulated (the cost the tier
    /// exists to reduce).
    pub detailed_cycles: u64,
    /// Per-window measurements.
    pub windows: Vec<Window>,
    /// The last window's full simulation record (carries the registry /
    /// cycle accounting shape artifacts expect).
    pub carrier: loopfrog::SimResult,
}

/// Restores a detailed core at each of the plan's checkpoints, runs the
/// bounded detailed warm-up, measures the representative interval, and
/// reconstructs the whole-run cycle count via [`weighted_cycles`].
///
/// # Errors
///
/// Returns a message if any window's simulation faults.
pub fn sample_windows(
    program: &Program,
    plan: &SampledPlan,
    cfg: &LoopFrogConfig,
) -> Result<SampledMeasurement, String> {
    if plan.picks.is_empty() {
        return Err("sampling plan has no picks".to_string());
    }
    let mut windows = Vec::with_capacity(plan.picks.len());
    let mut samples = Vec::with_capacity(plan.picks.len());
    let mut detailed_total = 0u64;
    let mut carrier = None;
    for (sp, ckpt) in &plan.picks {
        // Interval 0's restore is the pristine cold start itself; measuring
        // from cycle 0 reproduces the run's real cold-start cycles, which a
        // warm-up would wrongly discard.
        let warm = if sp.interval == 0 { 0 } else { plan.interval_len / WARM_FRACTION };
        let measure = plan.interval_len / MEASURE_DIVISOR;
        let mut core = LoopFrogCore::from_checkpoint(program, ckpt, cfg.clone());
        core.run_until_committed(warm)
            .map_err(|e| format!("window {} warm-up failed: {e}", sp.interval))?;
        let (mut c0, mut i0) = (core.cycle(), core.committed_insts());
        let stop = core
            .run_until_committed(warm + measure)
            .map_err(|e| format!("window {} failed: {e}", sp.interval))?;
        let (c1, i1) = (core.cycle(), core.committed_insts());
        if i1 == i0 {
            // The program halted inside (or exactly at the end of) the
            // warm-up: fold the warm-up into the measurement rather than
            // dropping this pick's weight from the estimate.
            (c0, i0) = (0, 0);
        }
        detailed_total += c1;
        windows.push(Window { point: *sp, cycles: c1 - c0, insts: i1 - i0, detailed_cycles: c1 });
        samples.push((*sp, c1 - c0, i1 - i0));
        carrier = Some(core.into_result(stop));
    }
    Ok(SampledMeasurement {
        est_cycles: weighted_cycles(&samples, plan.total_insts),
        detailed_cycles: detailed_total,
        windows,
        carrier: carrier.expect("at least one window"),
    })
}

fn tier_json(tier: Tier) -> Json {
    let mut t = Json::obj();
    t.set("tier", tier.tag());
    t
}

/// Runs one kernel on the functional tier alone: architectural results
/// and instruction counts, zero simulated cycles.
///
/// # Errors
///
/// Returns a message if the kernel faults or fails to halt.
pub fn run_functional(
    fingerprint: u64,
    program: &Program,
    mem: Memory,
) -> Result<RunOutcome, String> {
    let mut fast = FastTier::new(program, mem);
    fast.run_to_inst_count(FUNCTIONAL_FUEL).map_err(|e| format!("functional run faulted: {e}"))?;
    if !fast.is_halted() {
        return Err(format!("kernel did not halt within {FUNCTIONAL_FUEL} instructions"));
    }
    let mut stats = SimStats::new(0);
    stats.committed_insts = fast.inst_count();
    let mut rendered = Json::obj();
    let mut t = tier_json(Tier::Functional);
    t.set("total_insts", fast.inst_count());
    rendered.set("tier", t);
    Ok(RunOutcome {
        fingerprint,
        stats,
        checksum: fast.state_checksum(),
        rendered,
        from_cache: false,
    })
}

/// Runs one kernel on the sampled tier: plan acquisition (store hit,
/// fresh build + store, or corrupt-entry quarantine), window measurement,
/// and whole-run reconstruction.
///
/// The returned outcome's `stats.cycles` is the weighted estimate and
/// `committed_insts` the full-run count, so tables and speedup math read
/// it like a detailed run; its checksum is the functional final-state
/// checksum, so the engine's golden-state gate applies unchanged. Other
/// scalar stats are the carrier window's and are window-local.
///
/// A corrupt store entry is quarantined and the run transparently falls
/// back to full detailed simulation (`tier.fallback_detailed` in the
/// rendered record says so).
///
/// # Errors
///
/// Returns a message if planning or any window simulation faults.
pub fn run_sampled(
    fingerprint: u64,
    program: &Program,
    mem: &Memory,
    cfg: &LoopFrogConfig,
    scale: Scale,
    store: Option<&CheckpointStore>,
) -> Result<RunOutcome, String> {
    let key = CheckpointStore::plan_key(program, mem, scale);
    let (plan, plan_from_cache) = match store.map(|s| s.lookup(key)) {
        Some(PlanLookup::Hit(plan)) => (*plan, true),
        Some(PlanLookup::Corrupt { quarantined }) => {
            eprintln!(
                "warning: corrupt checkpoint plan {} ({}quarantined); falling back to full \
                 detailed simulation",
                fingerprint_hex(key),
                if quarantined { "" } else { "not " }
            );
            return run_detailed_fallback(fingerprint, program, mem, cfg);
        }
        Some(PlanLookup::Miss) | None => {
            let plan = build_plan(program, mem)?;
            if let Some(s) = store {
                if let Err(e) = s.store(key, &plan) {
                    eprintln!("warning: checkpoint plan write failed: {e}");
                }
            }
            (plan, false)
        }
    };

    let m = sample_windows(program, &plan, cfg)?;
    let mut stats = m.carrier.stats.clone();
    stats.cycles = m.est_cycles.round() as u64;
    stats.committed_insts = plan.total_insts;
    let mut rendered = crate::artifact::sim_result_json(&m.carrier);
    let mut t = tier_json(Tier::Sampled);
    t.set("total_insts", plan.total_insts);
    t.set("interval_len", plan.interval_len);
    t.set("est_cycles", m.est_cycles);
    t.set("detailed_cycles", m.detailed_cycles);
    t.set("plan_from_cache", plan_from_cache);
    t.set("fallback_detailed", false);
    let mut wins = Vec::new();
    for w in &m.windows {
        let mut j = Json::obj();
        j.set("interval", w.point.interval as u64);
        j.set("weight", w.point.weight);
        j.set("cycles", w.cycles);
        j.set("insts", w.insts);
        j.set("detailed_cycles", w.detailed_cycles);
        wins.push(j);
    }
    t.set("windows", Json::Arr(wins));
    rendered.set("tier", t);
    Ok(RunOutcome {
        fingerprint,
        stats,
        checksum: plan.final_checksum,
        rendered,
        from_cache: false,
    })
}

/// Full detailed simulation standing in for a sampled run whose plan was
/// corrupt: correctness over speed, campaign never errors.
fn run_detailed_fallback(
    fingerprint: u64,
    program: &Program,
    mem: &Memory,
    cfg: &LoopFrogConfig,
) -> Result<RunOutcome, String> {
    let mut core = LoopFrogCore::new(program, mem.clone(), cfg.clone());
    let result = core.run().map_err(|e| e.to_string())?;
    let mut outcome = RunOutcome::from_result(fingerprint, result);
    let mut t = tier_json(Tier::Sampled);
    t.set("fallback_detailed", true);
    outcome.rendered.set("tier", t);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(name: &str) -> (Program, Memory) {
        let w = lf_workloads::by_name(name, Scale::Smoke).unwrap();
        (w.program.clone(), w.mem.clone())
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lf-bench-tiered-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn tier_tags_round_trip() {
        for t in [Tier::Functional, Tier::Sampled, Tier::Detailed] {
            assert_eq!(Tier::parse(t.tag()), Some(t));
        }
        assert_eq!(Tier::parse("atomic"), None);
        assert_eq!(Tier::default(), Tier::Detailed);
    }

    #[test]
    fn detailed_fingerprint_is_the_legacy_fingerprint() {
        let (program, mem) = kernel("stencil_blur");
        let cfg = LoopFrogConfig::default();
        let legacy = run_fingerprint(&program, &mem, &cfg, Scale::Smoke);
        assert_eq!(
            run_fingerprint_tiered(&program, &mem, &cfg, Scale::Smoke, Tier::Detailed),
            legacy,
            "detailed tier must not invalidate existing caches"
        );
        let f = run_fingerprint_tiered(&program, &mem, &cfg, Scale::Smoke, Tier::Functional);
        let s = run_fingerprint_tiered(&program, &mem, &cfg, Scale::Smoke, Tier::Sampled);
        assert_ne!(f, legacy);
        assert_ne!(s, legacy);
        assert_ne!(f, s);
    }

    #[test]
    fn plan_round_trips_through_bytes() {
        let (program, mem) = kernel("hash_lookup");
        let plan = build_plan(&program, &mem).unwrap();
        assert!(!plan.picks.is_empty());
        assert!(plan.total_insts > 0);
        let back = SampledPlan::from_bytes(&plan.to_bytes()).unwrap();
        assert_eq!(plan, back);
        assert_eq!(plan.to_bytes(), back.to_bytes());
    }

    #[test]
    fn corrupt_plan_blobs_are_rejected() {
        let (program, mem) = kernel("hash_lookup");
        let plan = build_plan(&program, &mem).unwrap();
        let bytes = plan.to_bytes();
        assert!(matches!(
            SampledPlan::from_bytes(&bytes[..bytes.len() - 3]),
            Err(CheckpointError::Truncated | CheckpointError::BadChecksum)
        ));
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(matches!(SampledPlan::from_bytes(&flipped), Err(CheckpointError::BadChecksum)));
        let mut magic = bytes.clone();
        magic[0] = b'X';
        assert!(matches!(SampledPlan::from_bytes(&magic), Err(CheckpointError::BadMagic)));
        let mut version = bytes.clone();
        version[8] = 0xEE;
        assert!(matches!(SampledPlan::from_bytes(&version), Err(CheckpointError::BadVersion(_))));
    }

    #[test]
    fn store_round_trips_and_quarantines() {
        let dir = scratch_dir("store");
        let store = CheckpointStore::new(dir.clone());
        let (program, mem) = kernel("event_queue");
        let key = CheckpointStore::plan_key(&program, &mem, Scale::Smoke);
        assert!(matches!(store.lookup(key), PlanLookup::Miss));
        let plan = build_plan(&program, &mem).unwrap();
        store.store(key, &plan).unwrap();
        match store.lookup(key) {
            PlanLookup::Hit(back) => assert_eq!(*back, plan),
            other => panic!("expected a hit, got {other:?}"),
        }
        // Corruption: truncate the blob in place.
        let blob = std::fs::read(store.entry_path(key)).unwrap();
        std::fs::write(store.entry_path(key), &blob[..blob.len() / 2]).unwrap();
        assert!(matches!(store.lookup(key), PlanLookup::Corrupt { quarantined: true }));
        assert!(!store.entry_path(key).exists(), "the bad blob is moved aside");
        assert!(
            store.quarantine_dir().join(format!("{}.ckpt", fingerprint_hex(key))).exists(),
            "the bad blob is preserved under quarantine/"
        );
        // The slot is a plain miss again and can be refilled.
        assert!(matches!(store.lookup(key), PlanLookup::Miss));
        store.store(key, &plan).unwrap();
        assert!(matches!(store.lookup(key), PlanLookup::Hit(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn functional_run_matches_the_golden_emulator() {
        let w = lf_workloads::by_name("stencil_blur", Scale::Smoke).unwrap();
        let golden = w.reference_emulator().unwrap().state_checksum();
        let out = run_functional(7, &w.program, w.mem.clone()).unwrap();
        assert_eq!(out.checksum, golden);
        assert_eq!(out.stats.cycles, 0, "the functional tier simulates no cycles");
        assert!(out.stats.committed_insts > 1_000);
        assert_eq!(
            out.rendered.get("tier").and_then(|t| t.get("tier")).and_then(Json::as_str),
            Some("functional")
        );
    }

    #[test]
    fn sampled_run_estimates_within_smoke_tolerance() {
        let w = lf_workloads::by_name("stencil_blur", Scale::Smoke).unwrap();
        let cfg = LoopFrogConfig::default();
        let out = run_sampled(9, &w.program, &w.mem, &cfg, Scale::Smoke, None).unwrap();
        let mut core = LoopFrogCore::new(&w.program, w.mem.clone(), cfg.clone());
        let full = core.run().unwrap();
        assert_eq!(out.checksum, full.checksum, "golden-state gate applies to sampled runs");
        assert_eq!(out.stats.committed_insts, full.stats.committed_insts);
        let err =
            (out.stats.cycles as f64 - full.stats.cycles as f64).abs() / full.stats.cycles as f64;
        // Smoke kernels are short, so windows are a large fraction of the
        // run; the eval-scale bound (3%) is asserted in tests/tiered.rs.
        assert!(err < 0.15, "smoke-scale estimate off by {:.1}%", err * 100.0);
        let detailed = out
            .rendered
            .get("tier")
            .and_then(|t| t.get("detailed_cycles"))
            .and_then(Json::as_u64)
            .unwrap();
        assert!(detailed < full.stats.cycles, "sampling must simulate fewer detailed cycles");
    }

    #[test]
    fn sampled_run_is_deterministic() {
        let w = lf_workloads::by_name("event_queue", Scale::Smoke).unwrap();
        let cfg = LoopFrogConfig::default();
        let run = || {
            let out = run_sampled(3, &w.program, &w.mem, &cfg, Scale::Smoke, None).unwrap();
            (out.stats.cycles, out.checksum, out.rendered.to_string_compact())
        };
        assert_eq!(run(), run());
    }
}
