//! Minimal fixed-width table printing for the experiment binaries.

/// Formats a speedup factor as a signed percentage (`1.095` → `"+9.5%"`).
pub fn fmt_pct(factor: f64) -> String {
    format!("{:+.1}%", (factor - 1.0) * 100.0)
}

/// Renders a header row and aligned data rows into `out` (one trailing
/// newline per row). Scenario renderers write here so the engine can
/// compare, capture, and route output deterministically.
pub fn write_table(out: &mut String, headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:w$}  ", c, w = widths[i]));
        }
        out.push_str(s.trim_end());
        out.push('\n');
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Prints a header row and aligned data rows to stdout.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut out = String::new();
    write_table(&mut out, headers, rows);
    print!("{out}");
}
