//! End-to-end simulator throughput benchmarks: cycles-per-second of the
//! baseline and LoopFrog configurations on a representative kernel, and the
//! full compile-and-run pipeline.

use lf_bench::microbench::bench_function;
use lf_compiler::{annotate, SelectOptions};
use lf_workloads::{by_name, Scale};
use loopfrog::{simulate, LoopFrogConfig};
use std::hint::black_box;

fn annotated(name: &str) -> (lf_isa::Program, lf_isa::Memory) {
    let w = by_name(name, Scale::Smoke).expect("kernel exists");
    let emu = w.reference_emulator().expect("kernel runs");
    let ann = annotate(&w.program, emu.profile(), &SelectOptions::default());
    (ann.program, w.mem.clone())
}

fn main() {
    let (program, mem) = annotated("stencil_blur");
    bench_function("simulate_baseline_stencil", |b| {
        b.iter(|| {
            let r = simulate(&program, mem.clone(), LoopFrogConfig::baseline()).unwrap();
            black_box(r.stats.cycles)
        });
    });
    bench_function("simulate_loopfrog_stencil", |b| {
        b.iter(|| {
            let r = simulate(&program, mem.clone(), LoopFrogConfig::default()).unwrap();
            black_box(r.stats.cycles)
        });
    });

    let w = by_name("event_queue", Scale::Smoke).expect("kernel exists");
    let emu = w.reference_emulator().expect("kernel runs");
    bench_function("annotate_event_queue", |b| {
        b.iter(|| {
            let ann = annotate(&w.program, emu.profile(), &SelectOptions::default());
            black_box(ann.program.len())
        });
    });
}
