//! Criterion microbenchmarks for the simulator's hot components: branch
//! prediction, the cache hierarchy, the SSB's versioned read/write path,
//! and conflict detection.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_tage(c: &mut Criterion) {
    use lf_uarch::bpred::{History, Tage};
    c.bench_function("tage_predict_update", |b| {
        let mut tage = Tage::new();
        let mut hist = History::default();
        let mut i = 0u64;
        b.iter(|| {
            let pc = 0x400 + (i % 64) * 4;
            let taken = (i / 3) % 2 == 0;
            let l = tage.predict(black_box(pc), hist);
            tage.update(pc, hist, l, taken);
            hist.push(taken);
            i += 1;
        });
    });
}

fn bench_cache(c: &mut Criterion) {
    use lf_uarch::{AccessKind, MemConfig, MemHierarchy};
    c.bench_function("hierarchy_strided_loads", |b| {
        let mut m = MemHierarchy::new(MemConfig::default());
        let mut now = 0u64;
        let mut addr = 0u64;
        b.iter(|| {
            now = m.access_data(0x40, black_box(addr), AccessKind::Load, now);
            addr = (addr + 64) % (1 << 22);
        });
    });
}

fn bench_ssb(c: &mut Criterion) {
    use lf_isa::Memory;
    use loopfrog::ssb::Ssb;
    use loopfrog::SsbConfig;
    c.bench_function("ssb_write_then_versioned_read", |b| {
        let mut ssb = Ssb::new(&SsbConfig::default(), 4);
        let mem = Memory::new(1 << 16);
        let mut i = 0u64;
        b.iter(|| {
            let addr = (i * 8) % 2048;
            let slice = (i % 4) as usize;
            let _ = ssb.write(slice, addr, &[1, 2, 3, 4, 5, 6, 7, 8], |_| 0);
            let (v, _) = ssb.read(&[0, 1, 2, 3], black_box(addr), 8, &mem);
            black_box(v);
            i += 1;
            if i % 512 == 0 {
                for s in 0..4 {
                    ssb.invalidate_slice(s);
                }
            }
        });
    });
}

fn bench_conflict(c: &mut Criterion) {
    use loopfrog::conflict::ConflictDetector;
    c.bench_function("conflict_read_write_check", |b| {
        let mut cd = ConflictDetector::new(4);
        let mut i = 0u64;
        b.iter(|| {
            let g = i % 256;
            cd.on_read(3, &[g]);
            let squash = cd.on_write(0, black_box(&[g + 1]), &[1, 2, 3]);
            black_box(squash);
            i += 1;
            if i % 1024 == 0 {
                for s in 0..4 {
                    cd.clear(s);
                }
            }
        });
    });
}

criterion_group!(components, bench_tage, bench_cache, bench_ssb, bench_conflict);
criterion_main!(components);
