//! Microbenchmarks for the simulator's hot components: branch prediction,
//! the cache hierarchy, the SSB's versioned read/write path, and conflict
//! detection.

use lf_bench::microbench::{bench_function, Bencher};
use std::hint::black_box;

fn bench_tage(b: &mut Bencher) {
    use lf_uarch::bpred::{History, Tage};
    let mut tage = Tage::new();
    let mut hist = History::default();
    let mut i = 0u64;
    b.iter(|| {
        let pc = 0x400 + (i % 64) * 4;
        let taken = (i / 3).is_multiple_of(2);
        let l = tage.predict(black_box(pc), hist);
        tage.update(pc, hist, l, taken);
        hist.push(taken);
        i += 1;
    });
}

fn bench_cache(b: &mut Bencher) {
    use lf_uarch::{AccessKind, MemConfig, MemHierarchy};
    let mut m = MemHierarchy::new(MemConfig::default());
    let mut now = 0u64;
    let mut addr = 0u64;
    b.iter(|| {
        now = m.access_data(0x40, black_box(addr), AccessKind::Load, now);
        addr = (addr + 64) % (1 << 22);
    });
}

fn bench_ssb(b: &mut Bencher) {
    use lf_isa::Memory;
    use loopfrog::ssb::Ssb;
    use loopfrog::SsbConfig;
    let mut ssb = Ssb::new(&SsbConfig::default(), 4);
    let mem = Memory::new(1 << 16);
    let mut i = 0u64;
    b.iter(|| {
        let addr = (i * 8) % 2048;
        let slice = (i % 4) as usize;
        let _ = ssb.write(slice, addr, &[1, 2, 3, 4, 5, 6, 7, 8], |_| 0);
        let (v, _) = ssb.read(&[0, 1, 2, 3], black_box(addr), 8, &mem);
        black_box(v);
        i += 1;
        if i.is_multiple_of(512) {
            for s in 0..4 {
                ssb.invalidate_slice(s);
            }
        }
    });
}

fn bench_conflict(b: &mut Bencher) {
    use loopfrog::conflict::ConflictDetector;
    let mut cd = ConflictDetector::new(4);
    let mut i = 0u64;
    b.iter(|| {
        let g = i % 256;
        cd.on_read(3, &[g]);
        let squash = cd.on_write(0, black_box(&[g + 1]), &[1, 2, 3]);
        black_box(squash);
        i += 1;
        if i.is_multiple_of(1024) {
            for s in 0..4 {
                cd.clear(s);
            }
        }
    });
}

fn main() {
    bench_function("tage_predict_update", bench_tage);
    bench_function("hierarchy_strided_loads", bench_cache);
    bench_function("ssb_write_then_versioned_read", bench_ssb);
    bench_function("conflict_read_write_check", bench_conflict);
}
