//! Threadlet contexts (paper §3, §4).
//!
//! A threadlet is a lightweight execution context internal to the core:
//! its own program counter, fetch queue, rename map, logical ROB slice and
//! LSQ slices, plus the epoch bookkeeping LoopFrog needs (checkpoint,
//! detach-region state, packing verification data). Completely transparent
//! to the operating system and the programmer.

use crate::dyninst::{FetchedInst, Uid};
use lf_isa::RegionId;
use lf_uarch::rename::RenameMap;
use std::collections::{HashSet, VecDeque};

/// A detach whose spawn is deferred until a threadlet context frees: the
/// register state at the detach is held (reference-counted) so the
/// successor can start later with exactly the inherited state.
#[derive(Debug)]
pub(crate) struct PendingSpawn {
    pub region: RegionId,
    pub map: RenameMap,
    /// Packing factor; when > 1, the spawn also waits until every induction
    /// variable's value is ready so predictions are exact.
    pub factor: u32,
    /// `(arch_reg, stride)` for each induction variable to predict.
    pub ivs: Vec<(usize, i64)>,
}

/// Lifecycle state of a hardware threadlet context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CtxState {
    /// Unused; may be allocated by a detach spawn.
    Free,
    /// Executing an epoch (speculatively, or architecturally if oldest).
    Active,
}

/// One hardware threadlet context.
#[derive(Debug)]
pub(crate) struct Threadlet {
    pub state: CtxState,
    /// Strictly increasing epoch number (program order of epochs).
    pub epoch: u64,

    // ---- fetch side ----
    pub fetch_pc: usize,
    /// Cycle at which fetch may proceed (spawn latency, redirect penalty,
    /// I-cache miss).
    pub fetch_ready: u64,
    /// Fetch has stopped (halting reattach, halt instruction, or awaiting
    /// an unpredictable indirect target).
    pub fetch_halted: bool,
    /// `fetch_halted` because of a region reattach (may be resumed if the
    /// corresponding detach fails to spawn at rename).
    pub fetch_halt_is_reattach: bool,
    /// Fetch stalled on an indirect jump with no prediction.
    pub fetch_stalled_indirect: bool,
    /// Fetch-side detach-region state.
    pub fetch_region: Option<RegionId>,
    /// Fetch-side remaining packed iterations before the halting reattach.
    pub fetch_iters: u32,
    pub fetch_queue: VecDeque<FetchedInst>,
    /// Byte address of the last I-cache line fetched (fetch groups within a
    /// line reuse the lookup).
    pub fetch_line: Option<u64>,

    // ---- rename side ----
    pub map: Option<RenameMap>,
    pub ren_region: Option<RegionId>,
    pub ren_iters: u32,
    /// Dynamic instructions renamed since the last detach of the current
    /// region (trains the epoch-size EMA).
    pub insts_since_detach: u64,
    /// Architectural registers written in the current iteration.
    pub iter_written: HashSet<usize>,
    /// Architectural registers read before being written in the current
    /// iteration (live-ins).
    pub iter_rbw: HashSet<usize>,

    // ---- window slices ----
    pub rob: VecDeque<Uid>,
    pub lq: VecDeque<Uid>,
    pub sq: VecDeque<Uid>,

    // ---- epoch bookkeeping ----
    /// Register checkpoint taken at epoch start (spawn); restored on squash.
    pub checkpoint: Option<RenameMap>,
    /// Epoch start PC (the continuation address).
    pub checkpoint_pc: usize,
    /// Packing predictions to verify at the parent's halting reattach:
    /// `(arch_reg, predicted_value)`.
    pub predicted_regs: Vec<(usize, u64)>,
    /// Architectural registers this epoch read before writing (consumption
    /// check for packing repair). Updated at rename; may transiently
    /// contain wrong-path entries until the squash walk-back.
    pub read_before_write: HashSet<usize>,
    /// Architectural registers this epoch has written (rename-time; may
    /// transiently contain wrong-path entries).
    pub written_regs: HashSet<usize>,
    /// Exact committed-prefix version of `read_before_write`.
    pub c_read_before_write: HashSet<usize>,
    /// Exact committed-prefix version of `written_regs`.
    pub c_written_regs: HashSet<usize>,

    // ---- lifecycle ----
    /// The epoch's halting reattach (or a halt) has committed; the context
    /// waits to become oldest and retire.
    pub finished: bool,
    /// The epoch ended at a `halt` instruction: program ends at promotion.
    pub finished_with_halt: bool,
    /// Cycle at which the finished, oldest threadlet may retire (conflict
    /// check drain delay).
    pub retire_at: Option<u64>,
    /// Instructions committed-to-threadlet during the current epoch while
    /// speculative (classified success/failure at promotion/squash).
    pub committed_this_epoch: u64,
    /// Total instructions committed this epoch (speculative and
    /// architectural), for the dynamic deselector's size estimate.
    pub epoch_committed_total: u64,
    /// The context may not be re-allocated before this cycle (SSB slice
    /// background flush).
    pub slice_flush_until: u64,
    /// Spawning context, if any (diagnostics).
    pub parent: Option<usize>,
    /// Current successor context spawned by this epoch's detach.
    pub spawned_child: Option<usize>,
    /// The region whose detach spawned this threadlet (guards sync squash).
    pub spawn_region: Option<RegionId>,
    /// A spawn waiting for a free context (only ever on the youngest).
    pub pending_spawn: Option<PendingSpawn>,
    /// This epoch already reported an SSB overflow to the deselector.
    pub overflow_reported: bool,
}

impl Threadlet {
    pub fn new_free() -> Threadlet {
        Threadlet {
            state: CtxState::Free,
            epoch: 0,
            fetch_pc: 0,
            fetch_ready: 0,
            fetch_halted: false,
            fetch_halt_is_reattach: false,
            fetch_stalled_indirect: false,
            fetch_region: None,
            fetch_iters: 0,
            fetch_queue: VecDeque::new(),
            fetch_line: None,
            map: None,
            ren_region: None,
            ren_iters: 0,
            insts_since_detach: 0,
            iter_written: HashSet::new(),
            iter_rbw: HashSet::new(),
            rob: VecDeque::new(),
            lq: VecDeque::new(),
            sq: VecDeque::new(),
            checkpoint: None,
            checkpoint_pc: 0,
            predicted_regs: Vec::new(),
            read_before_write: HashSet::new(),
            written_regs: HashSet::new(),
            c_read_before_write: HashSet::new(),
            c_written_regs: HashSet::new(),
            finished: false,
            finished_with_halt: false,
            retire_at: None,
            committed_this_epoch: 0,
            epoch_committed_total: 0,
            slice_flush_until: 0,
            parent: None,
            spawned_child: None,
            spawn_region: None,
            pending_spawn: None,
            overflow_reported: false,
        }
    }

    /// Verify-build invariant: a Free context owns no window entries,
    /// register maps, or deferred spawns (they would leak physical
    /// registers and occupancy on reallocation).
    #[cfg(feature = "verify")]
    pub fn verify_free_is_empty(&self) -> bool {
        self.state != CtxState::Free
            || (self.rob.is_empty()
                && self.lq.is_empty()
                && self.sq.is_empty()
                && self.map.is_none()
                && self.checkpoint.is_none()
                && self.pending_spawn.is_none()
                && !self.finished)
    }

    /// Resets all per-epoch execution state, keeping the checkpoint and
    /// packing predictions (used by squash-restart).
    pub fn reset_for_restart(&mut self, now: u64, refill_latency: u64) {
        self.fetch_pc = self.checkpoint_pc;
        self.fetch_ready = now + refill_latency;
        self.fetch_halted = false;
        self.fetch_halt_is_reattach = false;
        self.fetch_stalled_indirect = false;
        self.fetch_region = None;
        self.fetch_iters = 0;
        self.fetch_queue.clear();
        self.fetch_line = None;
        self.ren_region = None;
        self.ren_iters = 0;
        self.insts_since_detach = 0;
        self.iter_written.clear();
        self.iter_rbw.clear();
        self.read_before_write.clear();
        self.written_regs.clear();
        self.c_read_before_write.clear();
        self.c_written_regs.clear();
        self.finished = false;
        self.finished_with_halt = false;
        self.retire_at = None;
        self.committed_this_epoch = 0;
        self.epoch_committed_total = 0;
        self.spawned_child = None;
        self.overflow_reported = false;
        debug_assert!(self.pending_spawn.is_none(), "caller releases pending spawns");
        debug_assert!(self.rob.is_empty() && self.lq.is_empty() && self.sq.is_empty());
    }
}
