//! Bloom-filter read/write sets (paper §4.2).
//!
//! "The read and write sets of threadlets may be implemented in hardware
//! using Bloom filters, similarly to prior work (Swarm). Doing so leads to
//! a low false-positive rate, but guarantees no false negatives, making the
//! approach safe and efficient."
//!
//! The paper's headline configuration models idealized filters (no false
//! positives; Table 1); this module provides the real thing so the
//! 2%-of-epochs false-aliasing estimate of §6.1 can be measured. A filter
//! is `k` hash functions over a `m`-bit array; membership tests may
//! false-positive but never false-negative, so conflict detection stays
//! conservative (extra squashes, never missed violations).

/// A fixed-size Bloom filter over granule addresses.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    mask: u64,
    hashes: u32,
    inserted: u64,
}

impl BloomFilter {
    /// Creates a filter with `bits` bits (power of two; the paper sizes
    /// Swarm-like filters at 4,096 bits) and `hashes` hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not a power of two or `hashes == 0`.
    pub fn new(bits: usize, hashes: u32) -> BloomFilter {
        assert!(bits.is_power_of_two() && bits >= 64, "bits must be a power of two ≥ 64");
        assert!(hashes > 0);
        BloomFilter { bits: vec![0; bits / 64], mask: bits as u64 - 1, hashes, inserted: 0 }
    }

    #[inline]
    fn index(&self, key: u64, i: u32) -> u64 {
        // Double hashing: h1 + i·h2, both derived from a 64-bit mix.
        let mut x = key.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1));
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        x & self.mask
    }

    /// Inserts a granule address.
    ///
    /// `inserted` approximates the number of *distinct* keys: re-inserting
    /// a present key sets no new bit and leaves the count alone. (A fresh
    /// key whose bits all alias existing ones is also uncounted — the
    /// standard occupancy-based approximation, conservative for
    /// [`BloomFilter::expected_fp_rate`].) Threadlets re-touch the same
    /// granules constantly, so counting every call would inflate `n` and
    /// wildly overestimate the false-positive rate.
    pub fn insert(&mut self, key: u64) {
        let mut newly_set = false;
        for i in 0..self.hashes {
            let b = self.index(key, i);
            let word = &mut self.bits[(b / 64) as usize];
            let bit = 1 << (b % 64);
            newly_set |= *word & bit == 0;
            *word |= bit;
        }
        if newly_set {
            self.inserted += 1;
        }
    }

    /// Tests membership; may false-positive, never false-negatives.
    pub fn may_contain(&self, key: u64) -> bool {
        (0..self.hashes).all(|i| {
            let b = self.index(key, i);
            self.bits[(b / 64) as usize] >> (b % 64) & 1 == 1
        })
    }

    /// Clears the filter.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.inserted = 0;
    }

    /// Distinct keys inserted since the last clear (approximate; see
    /// [`BloomFilter::insert`]).
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// The analytic false-positive probability at the current load.
    pub fn expected_fp_rate(&self) -> f64 {
        let m = (self.mask + 1) as f64;
        let k = self.hashes as f64;
        let n = self.inserted as f64;
        (1.0 - (-k * n / m).exp()).powf(k)
    }
}

/// A Bloom-filtered conflict detector with the same interface semantics as
/// [`crate::conflict::ConflictDetector`] (Algorithm 1), used to measure the
/// cost of false aliasing relative to the idealized exact sets.
#[derive(Debug, Clone)]
pub struct BloomConflictDetector {
    rd: Vec<BloomFilter>,
    wr: Vec<BloomFilter>,
    /// Squash verdicts that an exact detector would not have produced.
    false_positives: u64,
    /// Filter membership tests on the Algorithm 1 hot path.
    probes: u64,
    exact: crate::conflict::ConflictDetector,
}

impl BloomConflictDetector {
    /// Creates a detector with `contexts` slots and `bits`-bit filters.
    pub fn new(contexts: usize, bits: usize, hashes: u32) -> BloomConflictDetector {
        BloomConflictDetector {
            rd: (0..contexts).map(|_| BloomFilter::new(bits, hashes)).collect(),
            wr: (0..contexts).map(|_| BloomFilter::new(bits, hashes)).collect(),
            false_positives: 0,
            probes: 0,
            exact: crate::conflict::ConflictDetector::new(contexts),
        }
    }

    /// Clears a slot.
    pub fn clear(&mut self, slot: usize) {
        self.rd[slot].clear();
        self.wr[slot].clear();
        self.exact.clear(slot);
    }

    /// Algorithm 1 `SpeculativeRead` over filters.
    pub fn on_read(&mut self, slot: usize, granules: &[u64]) {
        self.probes += granules.len() as u64;
        for &g in granules {
            if !self.wr[slot].may_contain(g) {
                self.rd[slot].insert(g);
            }
        }
        self.exact.on_read(slot, granules);
    }

    /// Algorithm 1 `Write` over filters; returns the oldest conflicting
    /// younger slot. Filter aliasing can only add squashes, never lose one.
    pub fn on_write(&mut self, slot: usize, granules: &[u64], younger: &[usize]) -> Option<usize> {
        for &g in granules {
            self.wr[slot].insert(g);
        }
        let exact_verdict = self.exact.on_write(slot, granules, younger);
        let mut fwd: Vec<u64> = granules.to_vec();
        for &t in younger {
            if fwd.is_empty() {
                break;
            }
            let mut conflict = false;
            for &g in &fwd {
                self.probes += 1;
                if self.rd[t].may_contain(g) {
                    conflict = true;
                    break;
                }
            }
            if conflict {
                if exact_verdict != Some(t) {
                    self.false_positives += 1;
                }
                return Some(t);
            }
            self.probes += fwd.len() as u64;
            fwd.retain(|g| !self.wr[t].may_contain(*g));
        }
        debug_assert_eq!(exact_verdict, None, "Bloom sets can never miss a true conflict");
        None
    }

    /// Squash verdicts attributable to filter aliasing alone.
    pub fn false_positive_squashes(&self) -> u64 {
        self.false_positives
    }

    /// Filter membership tests performed by the Algorithm 1 hot path
    /// (the shadow exact detector's probes are counted separately).
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Whether `slot` may have read `granule` (conservative: may
    /// false-positive, never false-negative).
    pub fn may_have_read(&self, slot: usize, granule: u64) -> bool {
        self.rd[slot].may_contain(granule)
    }

    /// Whether `slot` may have written `granule` (conservative).
    pub fn may_have_written(&self, slot: usize, granule: u64) -> bool {
        self.wr[slot].may_contain(granule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(4096, 4);
        for k in 0..512u64 {
            f.insert(k * 7);
        }
        for k in 0..512u64 {
            assert!(f.may_contain(k * 7));
        }
    }

    #[test]
    fn false_positive_rate_is_low_at_paper_sizing() {
        // 4,096-bit filter, 4 hashes, 128 granules (a full SSB slice's
        // worth at 4 B granules): the paper expects ~2% of epochs to fail
        // with a naive design — per-lookup rates must be low.
        let mut f = BloomFilter::new(4096, 4);
        for k in 0..128u64 {
            f.insert(k.wrapping_mul(0x2545_f491_4f6c_dd1d));
        }
        let mut fp = 0;
        let probes = 10_000u64;
        for k in 0..probes {
            if f.may_contain(k.wrapping_mul(0x9e3779b97f4a7c15) | 1 << 63) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        assert!(rate < 0.02, "false-positive rate {rate}");
        assert!(f.expected_fp_rate() < 0.02);
    }

    #[test]
    fn duplicate_insertions_do_not_inflate_the_estimate() {
        // A threadlet hammering one granule must look like one key, not a
        // thousand: the load estimate (and with it expected_fp_rate) stays
        // flat across re-insertions.
        let mut f = BloomFilter::new(4096, 4);
        f.insert(42);
        let (n1, fp1) = (f.inserted(), f.expected_fp_rate());
        for _ in 0..1000 {
            f.insert(42);
        }
        assert_eq!(f.inserted(), n1, "duplicate keys must not count");
        assert_eq!(f.expected_fp_rate(), fp1, "estimate must stay flat");
        assert_eq!(n1, 1);
        // A different key still counts.
        f.insert(43);
        assert_eq!(f.inserted(), 2);
    }

    #[test]
    fn clear_resets() {
        let mut f = BloomFilter::new(256, 2);
        f.insert(42);
        assert!(f.may_contain(42));
        f.clear();
        assert!(!f.may_contain(42));
        assert_eq!(f.inserted(), 0);
    }

    #[test]
    fn bloom_detector_matches_exact_on_true_conflicts() {
        let mut bd = BloomConflictDetector::new(4, 4096, 4);
        bd.on_read(2, &[100]);
        assert_eq!(bd.on_write(0, &[100], &[1, 2, 3]), Some(2));
        assert_eq!(bd.false_positive_squashes(), 0);
    }

    #[test]
    fn bloom_detector_own_write_masks_read() {
        let mut bd = BloomConflictDetector::new(2, 4096, 4);
        assert_eq!(bd.on_write(1, &[7], &[]), None);
        bd.on_read(1, &[7]);
        assert_eq!(bd.on_write(0, &[7], &[1]), None, "forwarded from slot 1's own write");
    }

    #[test]
    fn saturation_raises_fp_rate() {
        let mut f = BloomFilter::new(256, 4);
        for k in 0..512u64 {
            f.insert(k);
        }
        assert!(f.expected_fp_rate() > 0.5, "saturated filter");
    }
}
