//! Iteration packing predictors (paper §4.3).
//!
//! Three cooperating predictors decide whether a `detach` should jump more
//! than one iteration ahead:
//!
//! 1. an exponential moving average of iteration sizes estimates the epoch
//!    size `S`, from which the packing factor `P` is derived (smallest `P`
//!    with `P × S` above the target epoch size);
//! 2. an induction-variable detector derives the register loop-carried
//!    dependencies from cumulative per-iteration read/write sets (a register
//!    is an IV if it is written each iteration *and* its new value is
//!    consumed by the next iteration);
//! 3. a strided value predictor with saturating confidence predicts each
//!    IV's starting value `P − 1` iterations ahead.
//!
//! Packing is only performed when every IV is confidently predictable; the
//! engine later verifies predictions against the parent's final register
//! values and patches or squashes (§4.3).

use crate::config::PackingConfig;
use lf_isa::RegionId;
use lf_stats::Ema;
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone, Copy, Default)]
struct StridePred {
    last: u64,
    stride: i64,
    confidence: u8,
    trained: bool,
}

const CONF_MAX: u8 = 7;
/// Penalty applied to confidence on a stride mismatch ("small positive
/// update on success and large penalty on failure").
const CONF_PENALTY: u8 = 4;

#[derive(Debug, Clone)]
struct RegionState {
    size_ema: Ema,
    iters_observed: u32,
    /// Registers written during the previous iteration.
    prev_written: HashSet<usize>,
    /// Current induction-variable candidate set.
    ivs: HashSet<usize>,
    values: HashMap<usize, StridePred>,
}

/// A packing decision for one detach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackDecision {
    /// Iterations per epoch (1 = no packing).
    pub factor: u32,
    /// Predicted start values `(arch_reg, value, stride)` for the successor
    /// when `factor > 1` (the value `factor − 1` strides ahead). The spawn
    /// recomputes from the parent's live register when available, using
    /// `stride`.
    pub predictions: Vec<(usize, u64, i64)>,
}

impl PackDecision {
    /// The no-packing decision.
    pub fn unpacked() -> PackDecision {
        PackDecision { factor: 1, predictions: Vec::new() }
    }
}

/// Per-region packing predictor state.
#[derive(Debug, Clone)]
pub struct PackingPredictors {
    cfg: PackingConfig,
    regions: HashMap<RegionId, RegionState>,
}

impl PackingPredictors {
    /// Creates the predictors.
    pub fn new(cfg: &PackingConfig) -> PackingPredictors {
        PackingPredictors { cfg: cfg.clone(), regions: HashMap::new() }
    }

    fn region(&mut self, r: RegionId) -> &mut RegionState {
        let alpha = self.cfg.alpha;
        self.regions.entry(r).or_insert_with(|| RegionState {
            size_ema: Ema::new(alpha),
            iters_observed: 0,
            prev_written: HashSet::new(),
            ivs: HashSet::new(),
            values: HashMap::new(),
        })
    }

    /// Feeds one completed iteration of `region`: the registers written
    /// during it, the registers it read before writing (live-ins), and its
    /// dynamic size in instructions.
    pub fn observe_iteration(
        &mut self,
        region: RegionId,
        written: &HashSet<usize>,
        read_before_write: &HashSet<usize>,
        size: u64,
    ) {
        let st = self.region(region);
        st.size_ema.update(size as f64);
        st.iters_observed += 1;
        // IV candidates: written last iteration AND consumed (read before
        // written) this iteration AND written again this iteration.
        if st.iters_observed >= 2 {
            let cand: HashSet<usize> = st
                .prev_written
                .iter()
                .filter(|r| read_before_write.contains(*r) && written.contains(*r))
                .copied()
                .collect();
            // The IV set converges to the intersection over iterations.
            if st.iters_observed == 2 {
                st.ivs = cand;
            } else {
                st.ivs.retain(|r| cand.contains(r));
            }
        }
        st.prev_written = written.clone();
    }

    /// Trains the strided value predictor with `reg`'s value observed at a
    /// detach of `region` (the IV's value for the current iteration).
    pub fn train_value(&mut self, region: RegionId, reg: usize, value: u64) {
        let st = self.region(region);
        let p = st.values.entry(reg).or_default();
        if !p.trained {
            *p = StridePred { last: value, stride: 0, confidence: 0, trained: true };
            return;
        }
        let stride = value.wrapping_sub(p.last) as i64;
        if stride == p.stride {
            p.confidence = (p.confidence + 1).min(CONF_MAX);
        } else {
            p.confidence = p.confidence.saturating_sub(CONF_PENALTY);
            if p.confidence == 0 {
                // Reset both starting value and offset (paper §4.3).
                p.stride = stride;
            }
        }
        p.last = value;
    }

    /// Penalizes a region's value predictor after a verified misprediction
    /// (a squashed packed successor), suppressing further packing until the
    /// predictor retrains.
    pub fn on_mispredict(&mut self, region: RegionId, reg: usize) {
        let st = self.region(region);
        if let Some(v) = st.values.get_mut(&reg) {
            v.confidence = 0;
        }
    }

    /// The current induction-variable set for a region (tests/diagnostics).
    pub fn ivs(&self, region: RegionId) -> Option<&HashSet<usize>> {
        self.regions.get(&region).map(|s| &s.ivs)
    }

    /// Decides the packing factor for a detach of `region`, with predicted
    /// successor start values for every IV. Returns the unpacked decision
    /// unless the region is trained, the estimated iteration size warrants
    /// packing, and *all* IVs are confidently predictable.
    pub fn decide(&mut self, region: RegionId) -> PackDecision {
        if !self.cfg.enabled {
            return PackDecision::unpacked();
        }
        let target = self.cfg.target_epoch_size as f64;
        let max_factor = self.cfg.max_factor;
        let threshold = self.cfg.confidence_threshold;
        let Some(st) = self.regions.get(&region) else {
            return PackDecision::unpacked();
        };
        if st.iters_observed < 4 || st.ivs.is_empty() {
            return PackDecision::unpacked();
        }
        let Some(s) = st.size_ema.value() else {
            return PackDecision::unpacked();
        };
        if s <= 0.0 {
            return PackDecision::unpacked();
        }
        // Largest P with P × S ≤ target: epochs are packed up to the
        // target size, and iterations at or above it are never packed
        // (packing is for ultra-small iterations; §4.3).
        let p = ((target / s).floor() as u32).min(max_factor);
        if p < 2 {
            return PackDecision::unpacked();
        }
        // Every IV must be confidently predictable.
        let mut predictions = Vec::new();
        for &reg in &st.ivs {
            match st.values.get(&reg) {
                Some(v) if v.confidence >= threshold => {
                    let ahead = v.stride.wrapping_mul((p - 1) as i64);
                    predictions.push((reg, v.last.wrapping_add(ahead as u64), v.stride));
                }
                _ => return PackDecision::unpacked(),
            }
        }
        predictions.sort_by_key(|(r, _, _)| *r);
        // Verify-build invariant: a packed decision stays within
        // [2, max_factor] and predicts every detected IV exactly once.
        #[cfg(feature = "verify")]
        {
            assert!((2..=max_factor).contains(&p), "packing factor {p} outside [2, {max_factor}]");
            assert_eq!(predictions.len(), st.ivs.len(), "one prediction per IV");
        }
        PackDecision { factor: p, predictions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(regs: &[usize]) -> HashSet<usize> {
        regs.iter().copied().collect()
    }

    fn train_simple_loop(p: &mut PackingPredictors, region: RegionId, iters: u32, size: u64) {
        // IV in register 5, stride 8; register 6 is a scratch (written but
        // not consumed); register 7 is a live-in invariant (read only).
        for i in 0..iters {
            p.train_value(region, 5, (i as u64) * 8);
            p.observe_iteration(region, &set(&[5, 6]), &set(&[5, 7]), size);
        }
    }

    #[test]
    fn detects_iv_and_rejects_scratch_and_invariants() {
        let mut p = PackingPredictors::new(&PackingConfig::default());
        let r = RegionId(10);
        train_simple_loop(&mut p, r, 6, 20);
        let ivs = p.ivs(r).unwrap();
        assert!(ivs.contains(&5));
        assert!(!ivs.contains(&6), "scratch is not an IV");
        assert!(!ivs.contains(&7), "read-only live-in is not an IV");
    }

    #[test]
    fn packs_small_iterations_with_strided_prediction() {
        let cfg = PackingConfig { target_epoch_size: 100, ..PackingConfig::default() };
        let mut p = PackingPredictors::new(&cfg);
        let r = RegionId(10);
        train_simple_loop(&mut p, r, 8, 20);
        let d = p.decide(r);
        // S ≈ 20, target 100 → P = floor(100/20) = 5.
        assert_eq!(d.factor, 5);
        assert_eq!(d.predictions.len(), 1);
        let (reg, val, stride) = d.predictions[0];
        assert_eq!(reg, 5);
        // last value was 7*8 = 56; 4 strides ahead → 56 + 4*8 = 88.
        assert_eq!(val, 88);
        assert_eq!(stride, 8);
    }

    #[test]
    fn large_iterations_do_not_pack() {
        let cfg = PackingConfig { target_epoch_size: 100, ..PackingConfig::default() };
        let mut p = PackingPredictors::new(&cfg);
        let r = RegionId(3);
        train_simple_loop(&mut p, r, 8, 500);
        assert_eq!(p.decide(r), PackDecision::unpacked());
    }

    #[test]
    fn unconfident_iv_blocks_packing() {
        let cfg = PackingConfig { target_epoch_size: 100, ..PackingConfig::default() };
        let mut p = PackingPredictors::new(&cfg);
        let r = RegionId(4);
        // Noisy IV values: stride never repeats.
        let noisy = [0u64, 3, 11, 12, 40, 41, 77, 90];
        for (i, v) in noisy.iter().enumerate() {
            p.train_value(r, 5, *v);
            let _ = i;
            p.observe_iteration(r, &set(&[5]), &set(&[5]), 20);
        }
        assert_eq!(p.decide(r), PackDecision::unpacked());
    }

    #[test]
    fn confidence_recovers_after_phase_change() {
        let cfg = PackingConfig {
            target_epoch_size: 100,
            confidence_threshold: 3,
            ..PackingConfig::default()
        };
        let mut p = PackingPredictors::new(&cfg);
        let r = RegionId(5);
        train_simple_loop(&mut p, r, 8, 20);
        assert!(p.decide(r).factor > 1);
        // Stride change: confidence collapses...
        p.train_value(r, 5, 1000);
        p.observe_iteration(r, &set(&[5]), &set(&[5]), 20);
        p.train_value(r, 5, 1003);
        p.observe_iteration(r, &set(&[5]), &set(&[5]), 20);
        assert_eq!(p.decide(r).factor, 1);
        // ...then rebuilds on the new stride.
        for i in 2..10u64 {
            p.train_value(r, 5, 1000 + i * 3);
            p.observe_iteration(r, &set(&[5]), &set(&[5]), 20);
        }
        assert!(p.decide(r).factor > 1);
    }

    #[test]
    fn factor_clamps_at_max_factor() {
        // Ultra-small iterations against a huge target: raw P = floor(1000/4)
        // = 250, clamped to the default max_factor of 25 (a packed epoch's
        // squash cost grows with P, so the paper caps it).
        let cfg = PackingConfig { target_epoch_size: 1000, ..PackingConfig::default() };
        let mut p = PackingPredictors::new(&cfg);
        let r = RegionId(11);
        train_simple_loop(&mut p, r, 8, 4);
        let d = p.decide(r);
        assert_eq!(d.factor, 25);
        // The prediction reaches P − 1 = 24 strides past the last value
        // (56): 56 + 24*8 = 248.
        assert_eq!(d.predictions, vec![(5, 248, 8)]);

        // An explicit tighter cap wins over the size-derived factor too.
        let cfg = PackingConfig { target_epoch_size: 1000, max_factor: 3, ..cfg };
        let mut p = PackingPredictors::new(&cfg);
        train_simple_loop(&mut p, r, 8, 4);
        let d = p.decide(r);
        assert_eq!(d.factor, 3);
        assert_eq!(d.predictions, vec![(5, 56 + 2 * 8, 8)]);
    }

    #[test]
    fn factor_one_boundary_stays_unpacked() {
        // S == target → P = 1, which is no packing at all; just below the
        // 2× threshold (S in (target/2, target]) still yields P = 1.
        let cfg = PackingConfig { target_epoch_size: 100, ..PackingConfig::default() };
        let mut p = PackingPredictors::new(&cfg);
        let r = RegionId(12);
        train_simple_loop(&mut p, r, 8, 100);
        assert_eq!(p.decide(r), PackDecision::unpacked());

        let mut p = PackingPredictors::new(&cfg);
        train_simple_loop(&mut p, r, 8, 60);
        assert_eq!(p.decide(r), PackDecision::unpacked());

        // Exactly at the threshold (S == target/2) the first packed factor
        // appears.
        let mut p = PackingPredictors::new(&cfg);
        train_simple_loop(&mut p, r, 8, 50);
        assert_eq!(p.decide(r).factor, 2);
    }

    #[test]
    fn one_unconfident_iv_among_confident_blocks_packing() {
        // Two IVs: reg 5 strides perfectly, reg 6 is erratic. Packing
        // requires *every* IV to be predictable, so the region falls back
        // to unpacked until reg 6 settles.
        let cfg = PackingConfig { target_epoch_size: 100, ..PackingConfig::default() };
        let mut p = PackingPredictors::new(&cfg);
        let r = RegionId(13);
        let noisy = [0u64, 3, 11, 12, 40, 41, 77, 90];
        for (i, v) in noisy.iter().enumerate() {
            p.train_value(r, 5, (i as u64) * 8);
            p.train_value(r, 6, *v);
            p.observe_iteration(r, &set(&[5, 6]), &set(&[5, 6]), 20);
        }
        assert_eq!(p.ivs(r).unwrap(), &set(&[5, 6]));
        assert_eq!(p.decide(r), PackDecision::unpacked());
        // Once reg 6 locks onto a stride, both IVs are predicted.
        for i in 0..8u64 {
            p.train_value(r, 5, 64 + i * 8);
            p.train_value(r, 6, 100 + i * 4);
            p.observe_iteration(r, &set(&[5, 6]), &set(&[5, 6]), 20);
        }
        let d = p.decide(r);
        assert_eq!(d.factor, 5);
        assert_eq!(d.predictions.len(), 2);
    }

    #[test]
    fn mispredict_suppresses_packing_until_retrained() {
        let cfg = PackingConfig { target_epoch_size: 100, ..PackingConfig::default() };
        let mut p = PackingPredictors::new(&cfg);
        let r = RegionId(14);
        train_simple_loop(&mut p, r, 8, 20);
        assert_eq!(p.decide(r).factor, 5);
        // A verified misprediction zeroes confidence: no packing even
        // though the stride tables still hold the old pattern.
        p.on_mispredict(r, 5);
        assert_eq!(p.decide(r), PackDecision::unpacked());
        // Continued correct strides rebuild confidence to the threshold.
        for i in 8..13u32 {
            p.train_value(r, 5, (i as u64) * 8);
            p.observe_iteration(r, &set(&[5, 6]), &set(&[5, 7]), 20);
        }
        assert_eq!(p.decide(r).factor, 5);
    }

    #[test]
    fn disabled_packing_always_unpacked() {
        let cfg =
            PackingConfig { enabled: false, target_epoch_size: 100, ..PackingConfig::default() };
        let mut p = PackingPredictors::new(&cfg);
        let r = RegionId(6);
        train_simple_loop(&mut p, r, 10, 10);
        assert_eq!(p.decide(r), PackDecision::unpacked());
    }

    #[test]
    fn untrained_region_unpacked() {
        let mut p = PackingPredictors::new(&PackingConfig::default());
        assert_eq!(p.decide(RegionId(99)), PackDecision::unpacked());
    }
}
