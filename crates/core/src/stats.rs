//! Simulation statistics, aligned with the paper's evaluation metrics
//! (whole-program cycles, IPC breakdown by threadlet class for Figure 8,
//! threadlet-activity distribution for Figure 7, squash causes, packing
//! behaviour for §6.5).

use lf_stats::Counters;

/// Statistics collected over one simulation.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions committed to architectural state (committed while the
    /// threadlet was architectural, plus speculative commits of epochs that
    /// later promoted).
    pub committed_insts: u64,
    /// Instructions committed while the threadlet was architectural.
    pub commits_arch: u64,
    /// Instructions committed speculatively in epochs that later promoted.
    pub commits_spec_success: u64,
    /// Instructions committed speculatively in epochs that were squashed
    /// (failed speculation; Figure 8's top band).
    pub commits_spec_failed: u64,
    /// Instructions issued to execution pipes (includes wrong-path work).
    pub issued_insts: u64,
    /// Instructions fetched along the predicted path (includes wrong-path
    /// work).
    pub fetched_insts: u64,
    /// Instructions renamed into the out-of-order window.
    pub renamed_insts: u64,
    /// Fetch stall events caused by I-cache misses.
    pub fetch_icache_stalls: u64,
    /// Conditional branches resolved.
    pub branches: u64,
    /// Conditional branches mispredicted.
    pub branch_mispredicts: u64,
    /// Threadlets spawned by detach hints.
    pub spawns: u64,
    /// Spawns with packing factor > 1.
    pub packed_spawns: u64,
    /// Sum of packing factors over packed spawns (mean = sum / packed).
    pub pack_factor_sum: u64,
    /// Largest packing factor used.
    pub pack_factor_max: u32,
    /// Mispredicted induction variables repaired in place.
    pub pack_patches: u64,
    /// Threadlet squashes: inter-threadlet RAW conflicts.
    pub squashes_conflict: u64,
    /// SSB capacity overflow stall events (drains deferred until the
    /// threadlet became architectural).
    pub squashes_overflow: u64,
    /// Successor squashes: loop exit (sync).
    pub squashes_sync: u64,
    /// Successor squashes: packing misprediction with consumed value.
    pub squashes_packing: u64,
    /// Successor squashes: wrong-path detach discarded on branch recovery.
    pub squashes_wrong_path: u64,
    /// `cycles_with_active[k]` = cycles during which exactly `k` threadlet
    /// contexts were actively executing (Figure 7).
    pub cycles_with_active: Vec<u64>,
    /// Cycles during which the core was inside a parallel region (any
    /// threadlet detached or more than one context active).
    pub region_cycles: u64,
    /// Memory system and miscellaneous counters.
    pub counters: Counters,
}

impl SimStats {
    /// Creates stats sized for `threadlets` contexts.
    pub fn new(threadlets: usize) -> SimStats {
        SimStats { cycles_with_active: vec![0; threadlets + 1], ..SimStats::default() }
    }

    /// Architectural IPC: committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_insts as f64 / self.cycles as f64
        }
    }

    /// Commit-bandwidth utilization for a core of `commit_width`.
    pub fn commit_utilization(&self, commit_width: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_insts as f64 / (self.cycles as f64 * commit_width as f64)
        }
    }

    /// Branch misprediction rate (mispredicts per resolved branch).
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branches as f64
        }
    }

    /// Fraction of cycles with at least `k` threadlets active.
    pub fn frac_active_at_least(&self, k: usize) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let n: u64 = self.cycles_with_active.iter().skip(k).sum();
        n as f64 / self.cycles as f64
    }

    /// Mean packing factor over packed spawns (1.0 if none packed).
    pub fn mean_pack_factor(&self) -> f64 {
        if self.packed_spawns == 0 {
            1.0
        } else {
            self.pack_factor_sum as f64 / self.packed_spawns as f64
        }
    }

    /// Serializes every field to JSON, for the experiment engine's on-disk
    /// run cache. Inverse of [`SimStats::from_json`]. All counts here are
    /// far below 2^53, so the number representation is lossless.
    pub fn to_json(&self) -> lf_stats::Json {
        let mut j = lf_stats::Json::obj();
        j.set("cycles", self.cycles);
        j.set("committed_insts", self.committed_insts);
        j.set("commits_arch", self.commits_arch);
        j.set("commits_spec_success", self.commits_spec_success);
        j.set("commits_spec_failed", self.commits_spec_failed);
        j.set("issued_insts", self.issued_insts);
        j.set("fetched_insts", self.fetched_insts);
        j.set("renamed_insts", self.renamed_insts);
        j.set("fetch_icache_stalls", self.fetch_icache_stalls);
        j.set("branches", self.branches);
        j.set("branch_mispredicts", self.branch_mispredicts);
        j.set("spawns", self.spawns);
        j.set("packed_spawns", self.packed_spawns);
        j.set("pack_factor_sum", self.pack_factor_sum);
        j.set("pack_factor_max", self.pack_factor_max as u64);
        j.set("pack_patches", self.pack_patches);
        j.set("squashes_conflict", self.squashes_conflict);
        j.set("squashes_overflow", self.squashes_overflow);
        j.set("squashes_sync", self.squashes_sync);
        j.set("squashes_packing", self.squashes_packing);
        j.set("squashes_wrong_path", self.squashes_wrong_path);
        j.set(
            "cycles_with_active",
            lf_stats::Json::Arr(
                self.cycles_with_active.iter().map(|&c| lf_stats::Json::from(c)).collect(),
            ),
        );
        j.set("region_cycles", self.region_cycles);
        let mut counters = lf_stats::Json::obj();
        for (name, n) in self.counters.iter() {
            counters.set(name, n);
        }
        j.set("counters", counters);
        j
    }

    /// Reconstructs stats from a [`SimStats::to_json`] document; `None` if
    /// any field is missing or mistyped (a corrupt or stale cache entry).
    pub fn from_json(j: &lf_stats::Json) -> Option<SimStats> {
        let u = |key: &str| j.get(key).and_then(lf_stats::Json::as_u64);
        let mut counters = Counters::new();
        match j.get("counters")? {
            lf_stats::Json::Obj(m) => {
                for (name, v) in m {
                    counters.add(name, v.as_u64()?);
                }
            }
            _ => return None,
        }
        Some(SimStats {
            cycles: u("cycles")?,
            committed_insts: u("committed_insts")?,
            commits_arch: u("commits_arch")?,
            commits_spec_success: u("commits_spec_success")?,
            commits_spec_failed: u("commits_spec_failed")?,
            issued_insts: u("issued_insts")?,
            fetched_insts: u("fetched_insts")?,
            renamed_insts: u("renamed_insts")?,
            fetch_icache_stalls: u("fetch_icache_stalls")?,
            branches: u("branches")?,
            branch_mispredicts: u("branch_mispredicts")?,
            spawns: u("spawns")?,
            packed_spawns: u("packed_spawns")?,
            pack_factor_sum: u("pack_factor_sum")?,
            pack_factor_max: u("pack_factor_max")? as u32,
            pack_patches: u("pack_patches")?,
            squashes_conflict: u("squashes_conflict")?,
            squashes_overflow: u("squashes_overflow")?,
            squashes_sync: u("squashes_sync")?,
            squashes_packing: u("squashes_packing")?,
            squashes_wrong_path: u("squashes_wrong_path")?,
            cycles_with_active: j
                .get("cycles_with_active")?
                .as_arr()?
                .iter()
                .map(lf_stats::Json::as_u64)
                .collect::<Option<Vec<u64>>>()?,
            region_cycles: u("region_cycles")?,
            counters,
        })
    }
}

/// Why the simulation stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimStop {
    /// The program's `halt` committed architecturally.
    Halted,
    /// The committed-instruction budget was exhausted.
    MaxInsts,
    /// The cycle budget was exhausted.
    MaxCycles,
    /// The harness-side wall-clock deadline passed (see
    /// [`crate::LoopFrogCore::set_deadline`]). Never produced unless a
    /// deadline was armed; results are partial and must not be cached.
    Deadline,
}

/// Final outcome of a simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Why the run stopped.
    pub stop: SimStop,
    /// Collected statistics.
    pub stats: SimStats,
    /// Checksum over final architectural registers and memory; comparable
    /// with [`lf_isa::Emulator::state_checksum`].
    pub checksum: u64,
    /// Final architectural register values.
    pub final_regs: Vec<u64>,
    /// The full hierarchical metrics dump (every pipeline stage's counters,
    /// distributions, cycle-accounting buckets, and derived formulas).
    pub registry: lf_stats::MetricsRegistry,
    /// Per-commit-slot cycle accounting; sums to `cycles × commit_width`.
    pub accounting: crate::telemetry::CycleAccounting,
    /// Interval snapshots (one per `telemetry.interval_cycles`, plus a
    /// final partial interval); empty when sampling is disabled.
    pub intervals: Vec<crate::telemetry::IntervalSample>,
    /// Flight-recorder capture: the trace events immediately preceding the
    /// most recent threadlet squash, or the live end-of-run window when the
    /// run never squashed or stopped mid-flight (empty if the recorder was
    /// off).
    pub flight_recorder: Vec<crate::trace::TraceEvent>,
    /// Sampled wall-clock stage profile (see [`crate::profiler`]); `None`
    /// unless [`crate::LoopFrogCore::enable_profiler`] was called.
    /// Deliberately excluded from the deterministic statistics and every
    /// cached/committed artifact.
    pub profile: Option<crate::profiler::ProfileReport>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_utilization() {
        let mut s = SimStats::new(4);
        s.cycles = 100;
        s.committed_insts = 400;
        assert!((s.ipc() - 4.0).abs() < 1e-12);
        assert!((s.commit_utilization(8) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn activity_fractions() {
        let mut s = SimStats::new(4);
        s.cycles = 10;
        s.cycles_with_active = vec![0, 5, 3, 1, 1];
        assert!((s.frac_active_at_least(2) - 0.5).abs() < 1e-12);
        assert!((s.frac_active_at_least(4) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = SimStats::new(2);
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.mean_pack_factor(), 1.0);
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let mut s = SimStats::new(4);
        s.cycles = 12_345;
        s.committed_insts = 54_321;
        s.commits_arch = 40_000;
        s.commits_spec_success = 10_000;
        s.commits_spec_failed = 4_321;
        s.issued_insts = 60_000;
        s.spawns = 17;
        s.packed_spawns = 5;
        s.pack_factor_sum = 12;
        s.pack_factor_max = 7;
        s.squashes_conflict = 3;
        s.cycles_with_active = vec![1, 2, 3, 4, 5];
        s.region_cycles = 9_000;
        s.counters.add("l2_accesses", 999);
        s.counters.add("bloom_false_positive_squashes", 2);

        let text = s.to_json().to_string_pretty();
        let parsed = lf_stats::Json::parse(&text).expect("stats JSON parses");
        let back = SimStats::from_json(&parsed).expect("stats reconstruct");
        assert_eq!(format!("{s:?}"), format!("{back:?}"));

        // Corrupt documents are rejected, not mis-read.
        assert!(SimStats::from_json(&lf_stats::Json::obj()).is_none());
    }
}
