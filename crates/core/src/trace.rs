//! Pipeline tracing: a gem5-style event stream for debugging and teaching.
//!
//! Attach a [`Tracer`] to a [`crate::LoopFrogCore`] with
//! [`crate::LoopFrogCore::set_tracer`] and every significant pipeline event
//! — renames, commits, threadlet spawns, squashes, mispredicts,
//! retirements — is reported as it happens. [`TextTracer`] renders events
//! as one line each; [`CountingTracer`] aggregates per-kind counts (useful
//! in tests and for cheap profiling).

use lf_isa::{Inst, RegionId};
use std::fmt;
use std::io::Write;

/// Why a threadlet (and its successors) was squashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SquashReason {
    /// Inter-threadlet read-after-write conflict (Algorithm 1).
    Conflict,
    /// Loop exit: a committed `sync` discarded the misspeculated successor.
    SyncExit,
    /// The spawning detach was on a mispredicted path.
    WrongPath,
    /// Iteration-packing value misprediction.
    Packing,
    /// Stale inherited register consumed (body→continuation dataflow).
    RegisterViolation,
}

/// One pipeline event.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// An instruction entered the out-of-order window.
    Rename {
        /// Cycle of the event.
        cycle: u64,
        /// Threadlet context.
        tid: usize,
        /// Dynamic instruction id.
        uid: u64,
        /// Static program counter.
        pc: usize,
        /// The instruction.
        inst: Inst,
    },
    /// An instruction committed to its threadlet.
    Commit {
        /// Cycle of the event.
        cycle: u64,
        /// Threadlet context.
        tid: usize,
        /// Dynamic instruction id.
        uid: u64,
        /// Static program counter.
        pc: usize,
        /// Whether the committing threadlet was architectural.
        architectural: bool,
    },
    /// A detach spawned a successor threadlet.
    Spawn {
        /// Cycle of the event.
        cycle: u64,
        /// Spawning context.
        parent: usize,
        /// New context.
        child: usize,
        /// Region (continuation address).
        region: RegionId,
        /// Iteration-packing factor (1 = unpacked).
        factor: u32,
    },
    /// A threadlet (and everything younger) was squashed.
    SquashThreadlets {
        /// Cycle of the event.
        cycle: u64,
        /// Oldest squashed context.
        first: usize,
        /// Whether `first` restarts from its checkpoint (vs. recycled).
        restart: bool,
        /// Cause.
        reason: SquashReason,
    },
    /// A control instruction resolved against its prediction.
    Mispredict {
        /// Cycle of the event.
        cycle: u64,
        /// Threadlet context.
        tid: usize,
        /// Branch program counter.
        pc: usize,
        /// Resolved target.
        actual: usize,
    },
    /// The architectural threadlet retired and its successor was promoted.
    Retire {
        /// Cycle of the event.
        cycle: u64,
        /// Retiring context.
        tid: usize,
        /// Retiring epoch number.
        epoch: u64,
    },
}

/// The kind of a [`TraceEvent`], for filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// [`TraceEvent::Rename`]
    Rename,
    /// [`TraceEvent::Commit`]
    Commit,
    /// [`TraceEvent::Spawn`]
    Spawn,
    /// [`TraceEvent::SquashThreadlets`]
    Squash,
    /// [`TraceEvent::Mispredict`]
    Mispredict,
    /// [`TraceEvent::Retire`]
    Retire,
}

impl TraceEvent {
    /// The event's cycle.
    pub fn cycle(&self) -> u64 {
        match self {
            TraceEvent::Rename { cycle, .. }
            | TraceEvent::Commit { cycle, .. }
            | TraceEvent::Spawn { cycle, .. }
            | TraceEvent::SquashThreadlets { cycle, .. }
            | TraceEvent::Mispredict { cycle, .. }
            | TraceEvent::Retire { cycle, .. } => *cycle,
        }
    }

    /// The event's kind.
    pub fn kind(&self) -> TraceKind {
        match self {
            TraceEvent::Rename { .. } => TraceKind::Rename,
            TraceEvent::Commit { .. } => TraceKind::Commit,
            TraceEvent::Spawn { .. } => TraceKind::Spawn,
            TraceEvent::SquashThreadlets { .. } => TraceKind::Squash,
            TraceEvent::Mispredict { .. } => TraceKind::Mispredict,
            TraceEvent::Retire { .. } => TraceKind::Retire,
        }
    }

    /// The threadlet context the event concerns: the acting `tid` for
    /// per-threadlet events, the spawning parent for [`TraceEvent::Spawn`],
    /// and the oldest victim for [`TraceEvent::SquashThreadlets`].
    pub fn tid(&self) -> usize {
        match self {
            TraceEvent::Rename { tid, .. }
            | TraceEvent::Commit { tid, .. }
            | TraceEvent::Mispredict { tid, .. }
            | TraceEvent::Retire { tid, .. } => *tid,
            TraceEvent::Spawn { parent, .. } => *parent,
            TraceEvent::SquashThreadlets { first, .. } => *first,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Rename { cycle, tid, uid, pc, inst } => {
                write!(f, "{cycle:>8} T{tid} rename  u{uid} pc{pc}: {inst}")
            }
            TraceEvent::Commit { cycle, tid, uid, pc, architectural } => {
                let m = if *architectural { "arch" } else { "spec" };
                write!(f, "{cycle:>8} T{tid} commit  u{uid} pc{pc} [{m}]")
            }
            TraceEvent::Spawn { cycle, parent, child, region, factor } => {
                write!(f, "{cycle:>8} T{parent} spawn   T{child} {region} x{factor}")
            }
            TraceEvent::SquashThreadlets { cycle, first, restart, reason } => {
                let k = if *restart { "restart" } else { "recycle" };
                write!(f, "{cycle:>8} -- squash  from T{first} ({k}, {reason:?})")
            }
            TraceEvent::Mispredict { cycle, tid, pc, actual } => {
                write!(f, "{cycle:>8} T{tid} mispred pc{pc} -> {actual}")
            }
            TraceEvent::Retire { cycle, tid, epoch } => {
                write!(f, "{cycle:>8} T{tid} retire  epoch {epoch}")
            }
        }
    }
}

/// An observer of pipeline events.
pub trait Tracer {
    /// Receives one event; called synchronously from the pipeline loop.
    fn event(&mut self, ev: &TraceEvent);
}

/// Writes one line per event to a [`Write`] sink, with optional filters
/// restricting output to a cycle range, one threadlet, and/or a set of
/// event kinds. Filters compose (all must match); by default everything
/// passes.
#[derive(Debug)]
pub struct TextTracer<W: Write> {
    sink: W,
    cycle_range: Option<(u64, u64)>,
    tid: Option<usize>,
    kinds: Option<Vec<TraceKind>>,
}

impl<W: Write> TextTracer<W> {
    /// Creates a tracer writing to `sink` (no filtering).
    pub fn new(sink: W) -> TextTracer<W> {
        TextTracer { sink, cycle_range: None, tid: None, kinds: None }
    }

    /// Restricts output to cycles in `[start, end]` (inclusive).
    pub fn with_cycle_range(mut self, start: u64, end: u64) -> TextTracer<W> {
        self.cycle_range = Some((start, end));
        self
    }

    /// Restricts output to events concerning threadlet `tid`
    /// (see [`TraceEvent::tid`]).
    pub fn with_tid(mut self, tid: usize) -> TextTracer<W> {
        self.tid = Some(tid);
        self
    }

    /// Restricts output to the given event kinds.
    pub fn with_kinds(mut self, kinds: &[TraceKind]) -> TextTracer<W> {
        self.kinds = Some(kinds.to_vec());
        self
    }

    fn passes(&self, ev: &TraceEvent) -> bool {
        if let Some((lo, hi)) = self.cycle_range {
            let c = ev.cycle();
            if c < lo || c > hi {
                return false;
            }
        }
        if let Some(tid) = self.tid {
            if ev.tid() != tid {
                return false;
            }
        }
        if let Some(kinds) = &self.kinds {
            if !kinds.contains(&ev.kind()) {
                return false;
            }
        }
        true
    }

    /// Returns the sink.
    pub fn into_inner(self) -> W {
        self.sink
    }

    /// Mutable access to the sink (e.g. to take a captured buffer).
    pub fn sink_mut(&mut self) -> &mut W {
        &mut self.sink
    }
}

impl<W: Write> Tracer for TextTracer<W> {
    fn event(&mut self, ev: &TraceEvent) {
        if self.passes(ev) {
            let _ = writeln!(self.sink, "{ev}");
        }
    }
}

/// Counts events per kind.
#[derive(Debug, Default, Clone)]
pub struct CountingTracer {
    /// Rename events seen.
    pub renames: u64,
    /// Commit events seen.
    pub commits: u64,
    /// Spawn events seen.
    pub spawns: u64,
    /// Squash events seen.
    pub squashes: u64,
    /// Mispredict events seen.
    pub mispredicts: u64,
    /// Retire events seen.
    pub retires: u64,
}

impl Tracer for CountingTracer {
    fn event(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::Rename { .. } => self.renames += 1,
            TraceEvent::Commit { .. } => self.commits += 1,
            TraceEvent::Spawn { .. } => self.spawns += 1,
            TraceEvent::SquashThreadlets { .. } => self.squashes += 1,
            TraceEvent::Mispredict { .. } => self.mispredicts += 1,
            TraceEvent::Retire { .. } => self.retires += 1,
        }
    }
}

/// Sharing adapter: lets callers keep a handle to the tracer while the
/// core owns the boxed trait object.
impl<T: Tracer> Tracer for std::rc::Rc<std::cell::RefCell<T>> {
    fn event(&mut self, ev: &TraceEvent) {
        self.borrow_mut().event(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_line_each() {
        let evs = [
            TraceEvent::Spawn { cycle: 7, parent: 0, child: 1, region: RegionId(9), factor: 2 },
            TraceEvent::Retire { cycle: 9, tid: 0, epoch: 3 },
            TraceEvent::SquashThreadlets {
                cycle: 11,
                first: 2,
                restart: true,
                reason: SquashReason::Conflict,
            },
        ];
        for ev in &evs {
            let s = ev.to_string();
            assert!(!s.contains('\n'));
            assert!(!s.is_empty());
        }
        assert_eq!(evs[0].cycle(), 7);
    }

    #[test]
    fn text_tracer_writes_lines() {
        let mut t = TextTracer::new(Vec::new());
        t.event(&TraceEvent::Retire { cycle: 1, tid: 0, epoch: 0 });
        t.event(&TraceEvent::Mispredict { cycle: 2, tid: 1, pc: 5, actual: 9 });
        let out = String::from_utf8(t.into_inner()).unwrap();
        assert_eq!(out.lines().count(), 2);
    }

    #[test]
    fn text_tracer_filters_compose() {
        let evs = [
            TraceEvent::Retire { cycle: 1, tid: 0, epoch: 0 },
            TraceEvent::Retire { cycle: 5, tid: 1, epoch: 1 },
            TraceEvent::Mispredict { cycle: 5, tid: 1, pc: 3, actual: 7 },
            TraceEvent::Retire { cycle: 9, tid: 1, epoch: 2 },
        ];
        let feed = |mut t: TextTracer<Vec<u8>>| {
            for ev in &evs {
                t.event(ev);
            }
            String::from_utf8(t.into_inner()).unwrap()
        };

        let by_cycle = feed(TextTracer::new(Vec::new()).with_cycle_range(2, 8));
        assert_eq!(by_cycle.lines().count(), 2);

        let by_tid = feed(TextTracer::new(Vec::new()).with_tid(0));
        assert_eq!(by_tid.lines().count(), 1);

        let by_kind = feed(TextTracer::new(Vec::new()).with_kinds(&[TraceKind::Mispredict]));
        assert_eq!(by_kind.lines().count(), 1);
        assert!(by_kind.contains("mispred"));

        let combined = feed(
            TextTracer::new(Vec::new())
                .with_cycle_range(2, 8)
                .with_tid(1)
                .with_kinds(&[TraceKind::Retire]),
        );
        assert_eq!(combined.lines().count(), 1);
        assert!(combined.contains("epoch 1"));
    }

    #[test]
    fn event_kind_and_tid_accessors() {
        let spawn =
            TraceEvent::Spawn { cycle: 3, parent: 2, child: 3, region: RegionId(4), factor: 1 };
        assert_eq!(spawn.kind(), TraceKind::Spawn);
        assert_eq!(spawn.tid(), 2);
        let squash = TraceEvent::SquashThreadlets {
            cycle: 4,
            first: 1,
            restart: false,
            reason: SquashReason::Packing,
        };
        assert_eq!(squash.kind(), TraceKind::Squash);
        assert_eq!(squash.tid(), 1);
    }

    #[test]
    fn counting_tracer_counts() {
        let mut c = CountingTracer::default();
        c.event(&TraceEvent::Retire { cycle: 1, tid: 0, epoch: 0 });
        c.event(&TraceEvent::Retire { cycle: 2, tid: 1, epoch: 1 });
        c.event(&TraceEvent::Spawn {
            cycle: 3,
            parent: 0,
            child: 1,
            region: RegionId(4),
            factor: 1,
        });
        assert_eq!(c.retires, 2);
        assert_eq!(c.spawns, 1);
    }
}
