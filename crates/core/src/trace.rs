//! Pipeline tracing: a gem5-style event stream for debugging and teaching.
//!
//! Attach a [`Tracer`] to a [`crate::LoopFrogCore`] with
//! [`crate::LoopFrogCore::set_tracer`] and every significant pipeline event
//! — renames, issues, completions, commits, threadlet spawns, squashes,
//! per-instruction flushes, mispredicts, retirements, region deselections —
//! is reported as it happens. There is exactly one event stream; sinks
//! differ in how they render it:
//!
//! * [`TextTracer`] renders events as one line each,
//! * [`KonataTracer`] renders the per-instruction lifecycle in the
//!   Konata/O3PipeView `Kanata 0004` format (gem5's pipeline viewer),
//! * [`CountingTracer`] aggregates per-kind counts (tests, cheap profiling),
//! * [`TraceMux`] fans one stream out to several sinks.
//!
//! All sinks share the same [`TraceFilter`] admission logic, so a filtered
//! text trace and a filtered Konata trace show the same slice of the run.

use lf_isa::{Inst, RegionId};
use std::fmt;
use std::io::Write;

/// Why a threadlet (and its successors) was squashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SquashReason {
    /// Inter-threadlet read-after-write conflict (Algorithm 1).
    Conflict,
    /// Loop exit: a committed `sync` discarded the misspeculated successor.
    SyncExit,
    /// The spawning detach was on a mispredicted path.
    WrongPath,
    /// Iteration-packing value misprediction.
    Packing,
    /// Stale inherited register consumed (body→continuation dataflow).
    RegisterViolation,
}

/// One pipeline event.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// An instruction entered the out-of-order window.
    Rename {
        /// Cycle of the event.
        cycle: u64,
        /// Threadlet context.
        tid: usize,
        /// Dynamic instruction id.
        uid: u64,
        /// Static program counter.
        pc: usize,
        /// The instruction.
        inst: Inst,
    },
    /// An instruction left the issue queue for a functional unit.
    Issue {
        /// Cycle of the event.
        cycle: u64,
        /// Threadlet context.
        tid: usize,
        /// Dynamic instruction id.
        uid: u64,
    },
    /// An instruction's result wrote back (execution complete).
    Complete {
        /// Cycle of the event.
        cycle: u64,
        /// Threadlet context.
        tid: usize,
        /// Dynamic instruction id.
        uid: u64,
    },
    /// An instruction committed to its threadlet.
    Commit {
        /// Cycle of the event.
        cycle: u64,
        /// Threadlet context.
        tid: usize,
        /// Dynamic instruction id.
        uid: u64,
        /// Static program counter.
        pc: usize,
        /// Whether the committing threadlet was architectural.
        architectural: bool,
    },
    /// An in-flight instruction was discarded by a squash.
    Flush {
        /// Cycle of the event.
        cycle: u64,
        /// Threadlet context.
        tid: usize,
        /// Dynamic instruction id.
        uid: u64,
    },
    /// A detach spawned a successor threadlet.
    Spawn {
        /// Cycle of the event.
        cycle: u64,
        /// Spawning context.
        parent: usize,
        /// New context.
        child: usize,
        /// Region (continuation address).
        region: RegionId,
        /// Iteration-packing factor (1 = unpacked).
        factor: u32,
    },
    /// A threadlet (and everything younger) was squashed.
    SquashThreadlets {
        /// Cycle of the event.
        cycle: u64,
        /// Oldest squashed context.
        first: usize,
        /// Whether `first` restarts from its checkpoint (vs. recycled).
        restart: bool,
        /// Cause.
        reason: SquashReason,
    },
    /// A control instruction resolved against its prediction.
    Mispredict {
        /// Cycle of the event.
        cycle: u64,
        /// Threadlet context.
        tid: usize,
        /// Branch program counter.
        pc: usize,
        /// Resolved target.
        actual: usize,
    },
    /// The architectural threadlet retired and its successor was promoted.
    Retire {
        /// Cycle of the event.
        cycle: u64,
        /// Retiring context.
        tid: usize,
        /// Retiring epoch number.
        epoch: u64,
    },
    /// A detach for a deselected (unprofitable) region fetched as a no-op.
    Deselect {
        /// Cycle of the event.
        cycle: u64,
        /// Fetching context.
        tid: usize,
        /// Suppressed region.
        region: RegionId,
    },
}

/// The kind of a [`TraceEvent`], for filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// [`TraceEvent::Rename`]
    Rename,
    /// [`TraceEvent::Issue`]
    Issue,
    /// [`TraceEvent::Complete`]
    Complete,
    /// [`TraceEvent::Commit`]
    Commit,
    /// [`TraceEvent::Flush`]
    Flush,
    /// [`TraceEvent::Spawn`]
    Spawn,
    /// [`TraceEvent::SquashThreadlets`]
    Squash,
    /// [`TraceEvent::Mispredict`]
    Mispredict,
    /// [`TraceEvent::Retire`]
    Retire,
    /// [`TraceEvent::Deselect`]
    Deselect,
}

impl TraceKind {
    /// Parses the lowercase kind name used by CLI filters.
    pub fn parse(name: &str) -> Option<TraceKind> {
        Some(match name {
            "rename" => TraceKind::Rename,
            "issue" => TraceKind::Issue,
            "complete" => TraceKind::Complete,
            "commit" => TraceKind::Commit,
            "flush" => TraceKind::Flush,
            "spawn" => TraceKind::Spawn,
            "squash" => TraceKind::Squash,
            "mispredict" => TraceKind::Mispredict,
            "retire" => TraceKind::Retire,
            "deselect" => TraceKind::Deselect,
            _ => return None,
        })
    }
}

impl TraceEvent {
    /// The event's cycle.
    pub fn cycle(&self) -> u64 {
        match self {
            TraceEvent::Rename { cycle, .. }
            | TraceEvent::Issue { cycle, .. }
            | TraceEvent::Complete { cycle, .. }
            | TraceEvent::Commit { cycle, .. }
            | TraceEvent::Flush { cycle, .. }
            | TraceEvent::Spawn { cycle, .. }
            | TraceEvent::SquashThreadlets { cycle, .. }
            | TraceEvent::Mispredict { cycle, .. }
            | TraceEvent::Retire { cycle, .. }
            | TraceEvent::Deselect { cycle, .. } => *cycle,
        }
    }

    /// The event's kind.
    pub fn kind(&self) -> TraceKind {
        match self {
            TraceEvent::Rename { .. } => TraceKind::Rename,
            TraceEvent::Issue { .. } => TraceKind::Issue,
            TraceEvent::Complete { .. } => TraceKind::Complete,
            TraceEvent::Commit { .. } => TraceKind::Commit,
            TraceEvent::Flush { .. } => TraceKind::Flush,
            TraceEvent::Spawn { .. } => TraceKind::Spawn,
            TraceEvent::SquashThreadlets { .. } => TraceKind::Squash,
            TraceEvent::Mispredict { .. } => TraceKind::Mispredict,
            TraceEvent::Retire { .. } => TraceKind::Retire,
            TraceEvent::Deselect { .. } => TraceKind::Deselect,
        }
    }

    /// The threadlet context the event concerns: the acting `tid` for
    /// per-threadlet events, the spawning parent for [`TraceEvent::Spawn`],
    /// and the oldest victim for [`TraceEvent::SquashThreadlets`].
    pub fn tid(&self) -> usize {
        match self {
            TraceEvent::Rename { tid, .. }
            | TraceEvent::Issue { tid, .. }
            | TraceEvent::Complete { tid, .. }
            | TraceEvent::Commit { tid, .. }
            | TraceEvent::Flush { tid, .. }
            | TraceEvent::Mispredict { tid, .. }
            | TraceEvent::Retire { tid, .. }
            | TraceEvent::Deselect { tid, .. } => *tid,
            TraceEvent::Spawn { parent, .. } => *parent,
            TraceEvent::SquashThreadlets { first, .. } => *first,
        }
    }

    /// The dynamic instruction id, for per-instruction lifecycle events.
    pub fn uid(&self) -> Option<u64> {
        match self {
            TraceEvent::Rename { uid, .. }
            | TraceEvent::Issue { uid, .. }
            | TraceEvent::Complete { uid, .. }
            | TraceEvent::Commit { uid, .. }
            | TraceEvent::Flush { uid, .. } => Some(*uid),
            _ => None,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Rename { cycle, tid, uid, pc, inst } => {
                write!(f, "{cycle:>8} T{tid} rename  u{uid} pc{pc}: {inst}")
            }
            TraceEvent::Issue { cycle, tid, uid } => {
                write!(f, "{cycle:>8} T{tid} issue   u{uid}")
            }
            TraceEvent::Complete { cycle, tid, uid } => {
                write!(f, "{cycle:>8} T{tid} wback   u{uid}")
            }
            TraceEvent::Commit { cycle, tid, uid, pc, architectural } => {
                let m = if *architectural { "arch" } else { "spec" };
                write!(f, "{cycle:>8} T{tid} commit  u{uid} pc{pc} [{m}]")
            }
            TraceEvent::Flush { cycle, tid, uid } => {
                write!(f, "{cycle:>8} T{tid} flush   u{uid}")
            }
            TraceEvent::Spawn { cycle, parent, child, region, factor } => {
                write!(f, "{cycle:>8} T{parent} spawn   T{child} {region} x{factor}")
            }
            TraceEvent::SquashThreadlets { cycle, first, restart, reason } => {
                let k = if *restart { "restart" } else { "recycle" };
                write!(f, "{cycle:>8} -- squash  from T{first} ({k}, {reason:?})")
            }
            TraceEvent::Mispredict { cycle, tid, pc, actual } => {
                write!(f, "{cycle:>8} T{tid} mispred pc{pc} -> {actual}")
            }
            TraceEvent::Retire { cycle, tid, epoch } => {
                write!(f, "{cycle:>8} T{tid} retire  epoch {epoch}")
            }
            TraceEvent::Deselect { cycle, tid, region } => {
                write!(f, "{cycle:>8} T{tid} deslect {region}")
            }
        }
    }
}

/// An observer of pipeline events.
pub trait Tracer {
    /// Receives one event; called synchronously from the pipeline loop.
    fn event(&mut self, ev: &TraceEvent);
}

/// Admission filter shared by every sink: an optional cycle range, one
/// threadlet, and/or a set of event kinds. Filters compose (all present
/// restrictions must match); the default passes everything. Because text
/// and Konata sinks consult the same filter, a filtered text trace and a
/// filtered Konata trace describe the same slice of the run.
#[derive(Debug, Default, Clone)]
pub struct TraceFilter {
    cycle_range: Option<(u64, u64)>,
    tid: Option<usize>,
    kinds: Option<Vec<TraceKind>>,
}

impl TraceFilter {
    /// A filter that passes every event.
    pub fn new() -> TraceFilter {
        TraceFilter::default()
    }

    /// Restricts to cycles in `[start, end]` (inclusive).
    pub fn with_cycle_range(mut self, start: u64, end: u64) -> TraceFilter {
        self.cycle_range = Some((start, end));
        self
    }

    /// Restricts to events concerning threadlet `tid` (see
    /// [`TraceEvent::tid`]).
    pub fn with_tid(mut self, tid: usize) -> TraceFilter {
        self.tid = Some(tid);
        self
    }

    /// Restricts to the given event kinds.
    pub fn with_kinds(mut self, kinds: &[TraceKind]) -> TraceFilter {
        self.kinds = Some(kinds.to_vec());
        self
    }

    /// Whether `ev` passes every restriction.
    pub fn passes(&self, ev: &TraceEvent) -> bool {
        if let Some((lo, hi)) = self.cycle_range {
            let c = ev.cycle();
            if c < lo || c > hi {
                return false;
            }
        }
        if let Some(tid) = self.tid {
            if ev.tid() != tid {
                return false;
            }
        }
        if let Some(kinds) = &self.kinds {
            if !kinds.contains(&ev.kind()) {
                return false;
            }
        }
        true
    }
}

/// Writes one line per event to a [`Write`] sink, with a [`TraceFilter`]
/// deciding admission. By default everything passes.
#[derive(Debug)]
pub struct TextTracer<W: Write> {
    sink: W,
    filter: TraceFilter,
}

impl<W: Write> TextTracer<W> {
    /// Creates a tracer writing to `sink` (no filtering).
    pub fn new(sink: W) -> TextTracer<W> {
        TextTracer { sink, filter: TraceFilter::new() }
    }

    /// Replaces the admission filter wholesale.
    pub fn with_filter(mut self, filter: TraceFilter) -> TextTracer<W> {
        self.filter = filter;
        self
    }

    /// Restricts output to cycles in `[start, end]` (inclusive).
    pub fn with_cycle_range(mut self, start: u64, end: u64) -> TextTracer<W> {
        self.filter = self.filter.with_cycle_range(start, end);
        self
    }

    /// Restricts output to events concerning threadlet `tid`
    /// (see [`TraceEvent::tid`]).
    pub fn with_tid(mut self, tid: usize) -> TextTracer<W> {
        self.filter = self.filter.with_tid(tid);
        self
    }

    /// Restricts output to the given event kinds.
    pub fn with_kinds(mut self, kinds: &[TraceKind]) -> TextTracer<W> {
        self.filter = self.filter.with_kinds(kinds);
        self
    }

    /// Returns the sink.
    pub fn into_inner(self) -> W {
        self.sink
    }

    /// Mutable access to the sink (e.g. to take a captured buffer).
    pub fn sink_mut(&mut self) -> &mut W {
        &mut self.sink
    }
}

impl<W: Write> Tracer for TextTracer<W> {
    fn event(&mut self, ev: &TraceEvent) {
        if self.filter.passes(ev) {
            let _ = writeln!(self.sink, "{ev}");
        }
    }
}

/// Renders the per-instruction lifecycle in the `Kanata 0004` log format
/// consumed by [Konata] (and structurally equivalent to gem5's O3PipeView
/// traces). Load the output file in Konata to scrub through the pipeline
/// visually: one row per instruction, colored stage segments, flushed
/// instructions greyed out.
///
/// Lifecycles anchor at rename (the fetch queue has no dynamic id yet):
/// `Rn` covers rename→issue, `Is` issue→writeback, `Cp` writeback→commit.
/// Commit retires the row; a squash flushes it.
///
/// Admission is decided by the shared [`TraceFilter`] **on the
/// instruction's rename event only**: once admitted, the instruction's
/// whole lifecycle is rendered even if later events fall outside a cycle
/// filter — a torn lifecycle would render as a stuck row. Non-instruction
/// events (spawn, retire, …) are not part of the Konata format and are
/// ignored here; pair this sink with a [`TextTracer`] via [`TraceMux`] to
/// capture them.
///
/// [Konata]: https://github.com/shioyadan/Konata
#[derive(Debug)]
pub struct KonataTracer<W: Write> {
    sink: W,
    filter: TraceFilter,
    header_done: bool,
    last_cycle: Option<u64>,
    /// uid → (konata row id, currently-open stage), for admitted uids.
    open: std::collections::HashMap<u64, (u64, &'static str)>,
    next_row: u64,
    retired: u64,
}

impl<W: Write> KonataTracer<W> {
    /// Creates a tracer writing to `sink` (no filtering).
    pub fn new(sink: W) -> KonataTracer<W> {
        KonataTracer {
            sink,
            filter: TraceFilter::new(),
            header_done: false,
            last_cycle: None,
            open: std::collections::HashMap::new(),
            next_row: 0,
            retired: 0,
        }
    }

    /// Replaces the admission filter (applied at rename; see type docs).
    pub fn with_filter(mut self, filter: TraceFilter) -> KonataTracer<W> {
        self.filter = filter;
        self
    }

    /// Returns the sink.
    pub fn into_inner(self) -> W {
        self.sink
    }

    fn sync_cycle(&mut self, cycle: u64) {
        match self.last_cycle {
            None => {
                let _ = writeln!(self.sink, "C=\t{cycle}");
                self.last_cycle = Some(cycle);
            }
            Some(last) if cycle > last => {
                let _ = writeln!(self.sink, "C\t{}", cycle - last);
                self.last_cycle = Some(cycle);
            }
            _ => {}
        }
    }

    fn close_stage(&mut self, row: u64, stage: &str) {
        let _ = writeln!(self.sink, "E\t{row}\t0\t{stage}");
    }

    fn open_stage(&mut self, row: u64, stage: &str) {
        let _ = writeln!(self.sink, "S\t{row}\t0\t{stage}");
    }
}

impl<W: Write> Tracer for KonataTracer<W> {
    fn event(&mut self, ev: &TraceEvent) {
        let Some(uid) = ev.uid() else { return };
        if !self.header_done {
            let _ = writeln!(self.sink, "Kanata\t0004");
            self.header_done = true;
        }
        match ev {
            TraceEvent::Rename { cycle, tid, uid, pc, inst } => {
                if !self.filter.passes(ev) {
                    return; // never admitted: later events find no open row
                }
                let row = self.next_row;
                self.next_row += 1;
                self.sync_cycle(*cycle);
                let _ = writeln!(self.sink, "I\t{row}\t{uid}\t{tid}");
                let _ = writeln!(self.sink, "L\t{row}\t0\tu{uid} pc{pc}: {inst}");
                self.open_stage(row, "Rn");
                self.open.insert(*uid, (row, "Rn"));
            }
            TraceEvent::Issue { cycle, .. } => {
                if let Some(&(row, stage)) = self.open.get(&uid) {
                    self.sync_cycle(*cycle);
                    self.close_stage(row, stage);
                    self.open_stage(row, "Is");
                    self.open.insert(uid, (row, "Is"));
                }
            }
            TraceEvent::Complete { cycle, .. } => {
                if let Some(&(row, stage)) = self.open.get(&uid) {
                    self.sync_cycle(*cycle);
                    self.close_stage(row, stage);
                    self.open_stage(row, "Cp");
                    self.open.insert(uid, (row, "Cp"));
                }
            }
            TraceEvent::Commit { cycle, .. } => {
                if let Some((row, stage)) = self.open.remove(&uid) {
                    self.sync_cycle(*cycle);
                    self.close_stage(row, stage);
                    let _ = writeln!(self.sink, "R\t{row}\t{}\t0", self.retired);
                    self.retired += 1;
                }
            }
            TraceEvent::Flush { cycle, .. } => {
                if let Some((row, stage)) = self.open.remove(&uid) {
                    self.sync_cycle(*cycle);
                    self.close_stage(row, stage);
                    let _ = writeln!(self.sink, "R\t{row}\t{}\t1", self.retired);
                }
            }
            _ => {}
        }
    }
}

/// Fans one event stream out to several sinks, preserving order.
#[derive(Default)]
pub struct TraceMux {
    sinks: Vec<Box<dyn Tracer>>,
}

impl TraceMux {
    /// An empty mux (events are dropped until a sink is added).
    pub fn new() -> TraceMux {
        TraceMux::default()
    }

    /// Adds a sink; events are delivered in insertion order.
    pub fn add(&mut self, sink: Box<dyn Tracer>) {
        self.sinks.push(sink);
    }

    /// Builder-style [`TraceMux::add`].
    pub fn with(mut self, sink: Box<dyn Tracer>) -> TraceMux {
        self.add(sink);
        self
    }

    /// Number of attached sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether the mux has no sinks.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl Tracer for TraceMux {
    fn event(&mut self, ev: &TraceEvent) {
        for sink in &mut self.sinks {
            sink.event(ev);
        }
    }
}

/// Counts events per kind.
#[derive(Debug, Default, Clone)]
pub struct CountingTracer {
    /// Rename events seen.
    pub renames: u64,
    /// Issue events seen.
    pub issues: u64,
    /// Complete (writeback) events seen.
    pub completes: u64,
    /// Commit events seen.
    pub commits: u64,
    /// Per-instruction flush events seen.
    pub flushes: u64,
    /// Spawn events seen.
    pub spawns: u64,
    /// Squash events seen.
    pub squashes: u64,
    /// Mispredict events seen.
    pub mispredicts: u64,
    /// Retire events seen.
    pub retires: u64,
    /// Deselect events seen.
    pub deselects: u64,
}

impl Tracer for CountingTracer {
    fn event(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::Rename { .. } => self.renames += 1,
            TraceEvent::Issue { .. } => self.issues += 1,
            TraceEvent::Complete { .. } => self.completes += 1,
            TraceEvent::Commit { .. } => self.commits += 1,
            TraceEvent::Flush { .. } => self.flushes += 1,
            TraceEvent::Spawn { .. } => self.spawns += 1,
            TraceEvent::SquashThreadlets { .. } => self.squashes += 1,
            TraceEvent::Mispredict { .. } => self.mispredicts += 1,
            TraceEvent::Retire { .. } => self.retires += 1,
            TraceEvent::Deselect { .. } => self.deselects += 1,
        }
    }
}

/// Sharing adapter: lets callers keep a handle to the tracer while the
/// core owns the boxed trait object.
impl<T: Tracer> Tracer for std::rc::Rc<std::cell::RefCell<T>> {
    fn event(&mut self, ev: &TraceEvent) {
        self.borrow_mut().event(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_line_each() {
        let evs = [
            TraceEvent::Spawn { cycle: 7, parent: 0, child: 1, region: RegionId(9), factor: 2 },
            TraceEvent::Retire { cycle: 9, tid: 0, epoch: 3 },
            TraceEvent::SquashThreadlets {
                cycle: 11,
                first: 2,
                restart: true,
                reason: SquashReason::Conflict,
            },
            TraceEvent::Issue { cycle: 12, tid: 1, uid: 40 },
            TraceEvent::Complete { cycle: 13, tid: 1, uid: 40 },
            TraceEvent::Flush { cycle: 14, tid: 1, uid: 41 },
            TraceEvent::Deselect { cycle: 15, tid: 0, region: RegionId(9) },
        ];
        for ev in &evs {
            let s = ev.to_string();
            assert!(!s.contains('\n'));
            assert!(!s.is_empty());
        }
        assert_eq!(evs[0].cycle(), 7);
        assert_eq!(evs[3].uid(), Some(40));
        assert_eq!(evs[0].uid(), None);
    }

    #[test]
    fn text_tracer_writes_lines() {
        let mut t = TextTracer::new(Vec::new());
        t.event(&TraceEvent::Retire { cycle: 1, tid: 0, epoch: 0 });
        t.event(&TraceEvent::Mispredict { cycle: 2, tid: 1, pc: 5, actual: 9 });
        let out = String::from_utf8(t.into_inner()).unwrap();
        assert_eq!(out.lines().count(), 2);
    }

    #[test]
    fn text_tracer_filters_compose() {
        let evs = [
            TraceEvent::Retire { cycle: 1, tid: 0, epoch: 0 },
            TraceEvent::Retire { cycle: 5, tid: 1, epoch: 1 },
            TraceEvent::Mispredict { cycle: 5, tid: 1, pc: 3, actual: 7 },
            TraceEvent::Retire { cycle: 9, tid: 1, epoch: 2 },
        ];
        let feed = |mut t: TextTracer<Vec<u8>>| {
            for ev in &evs {
                t.event(ev);
            }
            String::from_utf8(t.into_inner()).unwrap()
        };

        let by_cycle = feed(TextTracer::new(Vec::new()).with_cycle_range(2, 8));
        assert_eq!(by_cycle.lines().count(), 2);

        let by_tid = feed(TextTracer::new(Vec::new()).with_tid(0));
        assert_eq!(by_tid.lines().count(), 1);

        let by_kind = feed(TextTracer::new(Vec::new()).with_kinds(&[TraceKind::Mispredict]));
        assert_eq!(by_kind.lines().count(), 1);
        assert!(by_kind.contains("mispred"));

        let combined = feed(
            TextTracer::new(Vec::new())
                .with_cycle_range(2, 8)
                .with_tid(1)
                .with_kinds(&[TraceKind::Retire]),
        );
        assert_eq!(combined.lines().count(), 1);
        assert!(combined.contains("epoch 1"));
    }

    #[test]
    fn shared_filter_admits_identically_for_text_and_konata() {
        // The same TraceFilter drives both sinks: an instruction renamed by
        // T1 passes, one renamed by T0 is invisible in both outputs.
        let evs = [
            TraceEvent::Rename { cycle: 1, tid: 1, uid: 10, pc: 0, inst: Inst::Halt },
            TraceEvent::Rename { cycle: 1, tid: 0, uid: 11, pc: 1, inst: Inst::Halt },
            TraceEvent::Issue { cycle: 2, tid: 1, uid: 10 },
            TraceEvent::Issue { cycle: 2, tid: 0, uid: 11 },
        ];
        let filter = TraceFilter::new().with_tid(1);
        let mut text = TextTracer::new(Vec::new()).with_filter(filter.clone());
        let mut kon = KonataTracer::new(Vec::new()).with_filter(filter);
        for ev in &evs {
            text.event(ev);
            kon.event(ev);
        }
        let text_out = String::from_utf8(text.into_inner()).unwrap();
        let kon_out = String::from_utf8(kon.into_inner()).unwrap();
        assert!(text_out.contains("u10") && !text_out.contains("u11"));
        assert!(kon_out.contains("u10") && !kon_out.contains("u11"));
        // Both rename and issue of the admitted uid made it to Konata.
        assert!(kon_out.contains("I\t0\t10\t1"));
        assert!(kon_out.contains("S\t0\t0\tIs"));
    }

    #[test]
    fn konata_renders_full_lifecycle() {
        let mut kon = KonataTracer::new(Vec::new());
        let inst = Inst::Halt;
        kon.event(&TraceEvent::Rename { cycle: 4, tid: 0, uid: 7, pc: 2, inst });
        kon.event(&TraceEvent::Issue { cycle: 5, tid: 0, uid: 7 });
        kon.event(&TraceEvent::Complete { cycle: 8, tid: 0, uid: 7 });
        kon.event(&TraceEvent::Commit { cycle: 9, tid: 0, uid: 7, pc: 2, architectural: true });
        let out = String::from_utf8(kon.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "Kanata\t0004");
        assert_eq!(lines[1], "C=\t4");
        assert!(lines.contains(&"I\t0\t7\t0"));
        // Rename opens Rn; issue closes Rn and opens Is; complete closes Is
        // and opens Cp; commit closes Cp and retires cleanly (flag 0).
        assert!(lines.contains(&"S\t0\t0\tRn"));
        assert!(lines.contains(&"E\t0\t0\tRn"));
        assert!(lines.contains(&"S\t0\t0\tIs"));
        assert!(lines.contains(&"E\t0\t0\tIs"));
        assert!(lines.contains(&"S\t0\t0\tCp"));
        assert!(lines.contains(&"E\t0\t0\tCp"));
        assert!(lines.contains(&"R\t0\t0\t0"));
        // Cycle advances are deltas.
        assert!(lines.contains(&"C\t1"));
        assert!(lines.contains(&"C\t3"));
    }

    #[test]
    fn konata_marks_flushed_instructions() {
        let mut kon = KonataTracer::new(Vec::new());
        kon.event(&TraceEvent::Rename { cycle: 1, tid: 2, uid: 3, pc: 0, inst: Inst::Halt });
        kon.event(&TraceEvent::Flush { cycle: 6, tid: 2, uid: 3 });
        let out = String::from_utf8(kon.into_inner()).unwrap();
        assert!(out.contains("R\t0\t0\t1"), "flush must retire with flag 1:\n{out}");
    }

    #[test]
    fn trace_mux_fans_out_in_order() {
        let a = std::rc::Rc::new(std::cell::RefCell::new(CountingTracer::default()));
        let b = std::rc::Rc::new(std::cell::RefCell::new(CountingTracer::default()));
        let mut mux = TraceMux::new().with(Box::new(a.clone())).with(Box::new(b.clone()));
        assert_eq!(mux.len(), 2);
        mux.event(&TraceEvent::Retire { cycle: 1, tid: 0, epoch: 0 });
        mux.event(&TraceEvent::Issue { cycle: 2, tid: 0, uid: 1 });
        assert_eq!(a.borrow().retires, 1);
        assert_eq!(b.borrow().issues, 1);
    }

    #[test]
    fn event_kind_and_tid_accessors() {
        let spawn =
            TraceEvent::Spawn { cycle: 3, parent: 2, child: 3, region: RegionId(4), factor: 1 };
        assert_eq!(spawn.kind(), TraceKind::Spawn);
        assert_eq!(spawn.tid(), 2);
        let squash = TraceEvent::SquashThreadlets {
            cycle: 4,
            first: 1,
            restart: false,
            reason: SquashReason::Packing,
        };
        assert_eq!(squash.kind(), TraceKind::Squash);
        assert_eq!(squash.tid(), 1);
        assert_eq!(TraceKind::parse("flush"), Some(TraceKind::Flush));
        assert_eq!(TraceKind::parse("nope"), None);
    }

    #[test]
    fn counting_tracer_counts() {
        let mut c = CountingTracer::default();
        c.event(&TraceEvent::Retire { cycle: 1, tid: 0, epoch: 0 });
        c.event(&TraceEvent::Retire { cycle: 2, tid: 1, epoch: 1 });
        c.event(&TraceEvent::Spawn {
            cycle: 3,
            parent: 0,
            child: 1,
            region: RegionId(4),
            factor: 1,
        });
        c.event(&TraceEvent::Flush { cycle: 4, tid: 1, uid: 9 });
        assert_eq!(c.retires, 2);
        assert_eq!(c.spawns, 1);
        assert_eq!(c.flushes, 1);
    }
}
