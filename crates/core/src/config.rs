//! LoopFrog configuration: the core and memory parameters from `lf-uarch`
//! plus the SSB, conflict-detector, and iteration-packing knobs of Table 1.

use crate::deselect::DeselectConfig;
use lf_uarch::{CoreConfig, MemConfig};

/// Speculative state buffer and conflict detector parameters (Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct SsbConfig {
    /// Total granule-cache capacity in bytes across all slices (8 KiB).
    pub size_bytes: usize,
    /// SSB cache line size in bytes (32 B).
    pub line: usize,
    /// Conflict-tracking granule size in bytes (4 B). Must divide `line`.
    pub granule: usize,
    /// Set associativity of each slice; `None` models a fully associative
    /// slice (the paper's headline config: "associativity not modelled").
    pub assoc: Option<usize>,
    /// Shared victim-buffer entries easing low associativity (§6.6).
    pub victim_entries: usize,
    /// Speculative read latency in cycles, including the parallel L1D
    /// lookup (3 cycles).
    pub read_latency: u64,
    /// Speculative write (drain into slice) latency in cycles (1 cycle).
    pub write_latency: u64,
    /// Conflict-checking latency charged before a threadlet commits
    /// (4 cycles).
    pub conflict_check_latency: u64,
    /// Conflict-set implementation: `None` models the paper's idealized
    /// Bloom filters (exact sets, no false positives; Table 1);
    /// `Some((bits, hashes))` uses real Bloom filters of that geometry.
    pub bloom: Option<(usize, u32)>,
    /// Lines flushed to the memory system per cycle after commit, using
    /// spare bandwidth.
    pub flush_lines_per_cycle: usize,
}

impl Default for SsbConfig {
    fn default() -> SsbConfig {
        SsbConfig {
            size_bytes: 8 << 10,
            line: 32,
            granule: 4,
            assoc: None,
            victim_entries: 0,
            read_latency: 3,
            write_latency: 1,
            conflict_check_latency: 4,
            bloom: None,
            flush_lines_per_cycle: 1,
        }
    }
}

impl SsbConfig {
    /// Granules per SSB line.
    pub fn granules_per_line(&self) -> usize {
        self.line / self.granule
    }

    /// Lines per slice given `threadlets` contexts.
    pub fn lines_per_slice(&self, threadlets: usize) -> usize {
        (self.size_bytes / self.line / threadlets).max(1)
    }
}

/// Iteration packing parameters (paper §4.3).
#[derive(Debug, Clone, PartialEq)]
pub struct PackingConfig {
    /// Master enable; the §6.5 ablation turns this off.
    pub enabled: bool,
    /// EMA smoothing factor α for the epoch-size predictor.
    pub alpha: f64,
    /// Target epoch size in instructions: the smallest packing factor `P`
    /// with `P × S` above this is chosen.
    pub target_epoch_size: u64,
    /// Maximum allowed packing factor.
    pub max_factor: u32,
    /// Strided value-predictor confidence (0..=7) required to pack.
    pub confidence_threshold: u8,
}

impl Default for PackingConfig {
    fn default() -> PackingConfig {
        PackingConfig {
            enabled: true,
            alpha: 0.7,
            target_epoch_size: 16,
            max_factor: 25,
            confidence_threshold: 4,
        }
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopFrogConfig {
    /// Pipeline parameters.
    pub core: CoreConfig,
    /// Memory system parameters.
    pub mem: MemConfig,
    /// SSB and conflict detector parameters.
    pub ssb: SsbConfig,
    /// Iteration packing parameters.
    pub packing: PackingConfig,
    /// Dynamic run-time loop deselection (paper §5.1; off by default, as
    /// the paper's prototype uses static selection).
    pub deselect: DeselectConfig,
    /// Master speculation switch: `false` reproduces the paper's baseline
    /// run in which hints are ignored (treated as NOPs).
    pub speculation: bool,
    /// Cycles between a detach spawning a threadlet and the child's first
    /// fetch (front-end spawn overhead).
    pub spawn_latency: u64,
    /// Hard limit on simulated instructions (safety fuel).
    pub max_insts: u64,
    /// Hard limit on simulated cycles (safety fuel).
    pub max_cycles: u64,
    /// Telemetry knobs: interval sampling and the flight recorder.
    pub telemetry: crate::telemetry::TelemetryConfig,
}

impl Default for LoopFrogConfig {
    /// The paper's headline 4-threadlet LoopFrog configuration.
    fn default() -> LoopFrogConfig {
        LoopFrogConfig {
            core: CoreConfig::default(),
            mem: MemConfig::default(),
            ssb: SsbConfig::default(),
            packing: PackingConfig::default(),
            deselect: DeselectConfig::default(),
            speculation: true,
            spawn_latency: 4,
            max_insts: u64::MAX,
            max_cycles: u64::MAX,
            telemetry: crate::telemetry::TelemetryConfig::default(),
        }
    }
}

impl LoopFrogConfig {
    /// The baseline configuration: same core, hints treated as NOPs, one
    /// threadlet (paper §6.1: "In the baseline run, hints are ignored").
    pub fn baseline() -> LoopFrogConfig {
        LoopFrogConfig {
            core: CoreConfig::baseline(),
            speculation: false,
            ..LoopFrogConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ssb_matches_table_1() {
        let s = SsbConfig::default();
        assert_eq!(s.size_bytes, 8192);
        assert_eq!(s.granules_per_line(), 8);
        assert_eq!(s.lines_per_slice(4), 64);
    }

    #[test]
    fn baseline_disables_speculation() {
        let c = LoopFrogConfig::baseline();
        assert!(!c.speculation);
        assert_eq!(c.core.threadlets, 1);
    }
}
