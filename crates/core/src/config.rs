//! LoopFrog configuration: the core and memory parameters from `lf-uarch`
//! plus the SSB, conflict-detector, and iteration-packing knobs of Table 1.

use crate::deselect::DeselectConfig;
use lf_uarch::{CoreConfig, MemConfig};

/// Speculative state buffer and conflict detector parameters (Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct SsbConfig {
    /// Total granule-cache capacity in bytes across all slices (8 KiB).
    pub size_bytes: usize,
    /// SSB cache line size in bytes (32 B).
    pub line: usize,
    /// Conflict-tracking granule size in bytes (4 B). Must divide `line`.
    pub granule: usize,
    /// Set associativity of each slice; `None` models a fully associative
    /// slice (the paper's headline config: "associativity not modelled").
    pub assoc: Option<usize>,
    /// Shared victim-buffer entries easing low associativity (§6.6).
    pub victim_entries: usize,
    /// Speculative read latency in cycles, including the parallel L1D
    /// lookup (3 cycles).
    pub read_latency: u64,
    /// Speculative write (drain into slice) latency in cycles (1 cycle).
    pub write_latency: u64,
    /// Conflict-checking latency charged before a threadlet commits
    /// (4 cycles).
    pub conflict_check_latency: u64,
    /// Conflict-set implementation: `None` models the paper's idealized
    /// Bloom filters (exact sets, no false positives; Table 1);
    /// `Some((bits, hashes))` uses real Bloom filters of that geometry.
    pub bloom: Option<(usize, u32)>,
    /// Lines flushed to the memory system per cycle after commit, using
    /// spare bandwidth.
    pub flush_lines_per_cycle: usize,
}

impl Default for SsbConfig {
    fn default() -> SsbConfig {
        SsbConfig {
            size_bytes: 8 << 10,
            line: 32,
            granule: 4,
            assoc: None,
            victim_entries: 0,
            read_latency: 3,
            write_latency: 1,
            conflict_check_latency: 4,
            bloom: None,
            flush_lines_per_cycle: 1,
        }
    }
}

impl SsbConfig {
    /// Granules per SSB line.
    pub fn granules_per_line(&self) -> usize {
        self.line / self.granule
    }

    /// Lines per slice given `threadlets` contexts.
    pub fn lines_per_slice(&self, threadlets: usize) -> usize {
        (self.size_bytes / self.line / threadlets).max(1)
    }
}

/// Iteration packing parameters (paper §4.3).
#[derive(Debug, Clone, PartialEq)]
pub struct PackingConfig {
    /// Master enable; the §6.5 ablation turns this off.
    pub enabled: bool,
    /// EMA smoothing factor α for the epoch-size predictor.
    pub alpha: f64,
    /// Target epoch size in instructions: the smallest packing factor `P`
    /// with `P × S` above this is chosen.
    pub target_epoch_size: u64,
    /// Maximum allowed packing factor.
    pub max_factor: u32,
    /// Strided value-predictor confidence (0..=7) required to pack.
    pub confidence_threshold: u8,
}

impl Default for PackingConfig {
    fn default() -> PackingConfig {
        PackingConfig {
            enabled: true,
            alpha: 0.7,
            target_epoch_size: 16,
            max_factor: 25,
            confidence_threshold: 4,
        }
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopFrogConfig {
    /// Pipeline parameters.
    pub core: CoreConfig,
    /// Memory system parameters.
    pub mem: MemConfig,
    /// SSB and conflict detector parameters.
    pub ssb: SsbConfig,
    /// Iteration packing parameters.
    pub packing: PackingConfig,
    /// Dynamic run-time loop deselection (paper §5.1; off by default, as
    /// the paper's prototype uses static selection).
    pub deselect: DeselectConfig,
    /// Master speculation switch: `false` reproduces the paper's baseline
    /// run in which hints are ignored (treated as NOPs).
    pub speculation: bool,
    /// Cycles between a detach spawning a threadlet and the child's first
    /// fetch (front-end spawn overhead).
    pub spawn_latency: u64,
    /// Hard limit on simulated instructions (safety fuel).
    pub max_insts: u64,
    /// Hard limit on simulated cycles (safety fuel).
    pub max_cycles: u64,
    /// Telemetry knobs: interval sampling and the flight recorder.
    pub telemetry: crate::telemetry::TelemetryConfig,
}

impl Default for LoopFrogConfig {
    /// The paper's headline 4-threadlet LoopFrog configuration.
    fn default() -> LoopFrogConfig {
        LoopFrogConfig {
            core: CoreConfig::default(),
            mem: MemConfig::default(),
            ssb: SsbConfig::default(),
            packing: PackingConfig::default(),
            deselect: DeselectConfig::default(),
            speculation: true,
            spawn_latency: 4,
            max_insts: u64::MAX,
            max_cycles: u64::MAX,
            telemetry: crate::telemetry::TelemetryConfig::default(),
        }
    }
}

impl LoopFrogConfig {
    /// The baseline configuration: same core, hints treated as NOPs, one
    /// threadlet (paper §6.1: "In the baseline run, hints are ignored").
    pub fn baseline() -> LoopFrogConfig {
        LoopFrogConfig {
            core: CoreConfig::baseline(),
            speculation: false,
            ..LoopFrogConfig::default()
        }
    }

    /// A stable canonical fingerprint over *every* configuration field,
    /// including telemetry knobs (they change the [`crate::SimResult`]
    /// contents, so runs under different telemetry settings must not be
    /// deduplicated against each other). Combined with the annotated
    /// program's code fingerprint and the workload scale, this identifies
    /// a simulation: equal fingerprints ⇒ identical results.
    ///
    /// Any new configuration field MUST be fed here, otherwise the
    /// experiment engine's cache will serve stale results when that field
    /// changes; `fingerprint_covers_every_field` below guards the known
    /// ones.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = lf_stats::Fingerprint::new();
        fingerprint_core(&mut fp, &self.core);
        fingerprint_mem(&mut fp, &self.mem);
        fingerprint_ssb(&mut fp, &self.ssb);
        fingerprint_packing(&mut fp, &self.packing);
        fingerprint_deselect(&mut fp, &self.deselect);
        fp.bool(self.speculation)
            .u64(self.spawn_latency)
            .u64(self.max_insts)
            .u64(self.max_cycles)
            .opt_u64(self.telemetry.interval_cycles)
            .usize(self.telemetry.flight_recorder_depth);
        fp.finish()
    }
}

fn fingerprint_core(fp: &mut lf_stats::Fingerprint, c: &CoreConfig) {
    fp.str("core")
        .usize(c.width)
        .usize(c.commit_width)
        .usize(c.rob_size)
        .usize(c.iq_size)
        .usize(c.lq_size)
        .usize(c.sq_size)
        .usize(c.fetch_queue_size)
        .usize(c.int_phys_regs)
        .usize(c.fp_phys_regs)
        .usize(c.fu.int_alu)
        .usize(c.fu.int_mul_div)
        .usize(c.fu.fp)
        .usize(c.fu.fp_div_sqrt)
        .usize(c.fu.load)
        .usize(c.fu.store)
        .u64(c.frontend_latency)
        .usize(c.threadlets);
}

fn fingerprint_cache(fp: &mut lf_stats::Fingerprint, c: &lf_uarch::CacheConfig) {
    fp.usize(c.size).usize(c.ways).usize(c.line).u64(c.hit_latency).usize(c.mshrs);
}

fn fingerprint_mem(fp: &mut lf_stats::Fingerprint, m: &MemConfig) {
    fp.str("mem");
    fingerprint_cache(fp, &m.l1i);
    fingerprint_cache(fp, &m.l1d);
    fingerprint_cache(fp, &m.l2);
    fp.u64(m.dram_latency).usize(m.l1d_prefetch_degree).usize(m.l2_prefetch_degree);
}

fn fingerprint_ssb(fp: &mut lf_stats::Fingerprint, s: &SsbConfig) {
    fp.str("ssb")
        .usize(s.size_bytes)
        .usize(s.line)
        .usize(s.granule)
        .opt_usize(s.assoc)
        .usize(s.victim_entries)
        .u64(s.read_latency)
        .u64(s.write_latency)
        .u64(s.conflict_check_latency)
        .opt_u64(s.bloom.map(|(bits, hashes)| ((bits as u64) << 8) | hashes as u64))
        .usize(s.flush_lines_per_cycle);
}

fn fingerprint_packing(fp: &mut lf_stats::Fingerprint, p: &PackingConfig) {
    fp.str("packing")
        .bool(p.enabled)
        .f64(p.alpha)
        .u64(p.target_epoch_size)
        .u64(p.max_factor as u64)
        .u64(p.confidence_threshold as u64);
}

fn fingerprint_deselect(fp: &mut lf_stats::Fingerprint, d: &DeselectConfig) {
    fp.str("deselect")
        .bool(d.enabled)
        .u64(d.warmup_epochs)
        .f64(d.max_conflict_rate)
        .f64(d.max_overflow_rate)
        .f64(d.min_epoch_insts)
        .u64(d.retry_after);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ssb_matches_table_1() {
        let s = SsbConfig::default();
        assert_eq!(s.size_bytes, 8192);
        assert_eq!(s.granules_per_line(), 8);
        assert_eq!(s.lines_per_slice(4), 64);
    }

    #[test]
    fn baseline_disables_speculation() {
        let c = LoopFrogConfig::baseline();
        assert!(!c.speculation);
        assert_eq!(c.core.threadlets, 1);
    }

    #[test]
    fn fingerprint_is_deterministic_and_distinguishes_presets() {
        assert_eq!(
            LoopFrogConfig::default().fingerprint(),
            LoopFrogConfig::default().fingerprint()
        );
        assert_ne!(
            LoopFrogConfig::default().fingerprint(),
            LoopFrogConfig::baseline().fingerprint()
        );
    }

    #[test]
    fn fingerprint_covers_every_field() {
        // Mutate one field at a time; every mutation must move the hash.
        type Mutation = Box<dyn Fn(&mut LoopFrogConfig)>;
        let base = LoopFrogConfig::default().fingerprint();
        let mutations: Vec<Mutation> = vec![
            Box::new(|c| c.core.width += 1),
            Box::new(|c| c.core.commit_width += 1),
            Box::new(|c| c.core.rob_size += 1),
            Box::new(|c| c.core.iq_size += 1),
            Box::new(|c| c.core.lq_size += 1),
            Box::new(|c| c.core.sq_size += 1),
            Box::new(|c| c.core.fetch_queue_size += 1),
            Box::new(|c| c.core.int_phys_regs += 1),
            Box::new(|c| c.core.fp_phys_regs += 1),
            Box::new(|c| c.core.fu.int_alu += 1),
            Box::new(|c| c.core.fu.int_mul_div += 1),
            Box::new(|c| c.core.fu.fp += 1),
            Box::new(|c| c.core.fu.fp_div_sqrt += 1),
            Box::new(|c| c.core.fu.load += 1),
            Box::new(|c| c.core.fu.store += 1),
            Box::new(|c| c.core.frontend_latency += 1),
            Box::new(|c| c.core.threadlets += 1),
            Box::new(|c| c.mem.l1i.size *= 2),
            Box::new(|c| c.mem.l1d.ways += 1),
            Box::new(|c| c.mem.l2.hit_latency += 1),
            Box::new(|c| c.mem.dram_latency += 1),
            Box::new(|c| c.mem.l1d_prefetch_degree += 1),
            Box::new(|c| c.mem.l2_prefetch_degree += 1),
            Box::new(|c| c.ssb.size_bytes *= 2),
            Box::new(|c| c.ssb.line *= 2),
            Box::new(|c| c.ssb.granule *= 2),
            Box::new(|c| c.ssb.assoc = Some(8)),
            Box::new(|c| c.ssb.victim_entries = 8),
            Box::new(|c| c.ssb.read_latency += 1),
            Box::new(|c| c.ssb.write_latency += 1),
            Box::new(|c| c.ssb.conflict_check_latency += 1),
            Box::new(|c| c.ssb.bloom = Some((4096, 4))),
            Box::new(|c| c.ssb.flush_lines_per_cycle += 1),
            Box::new(|c| c.packing.enabled = !c.packing.enabled),
            Box::new(|c| c.packing.alpha += 0.1),
            Box::new(|c| c.packing.target_epoch_size += 1),
            Box::new(|c| c.packing.max_factor += 1),
            Box::new(|c| c.packing.confidence_threshold += 1),
            Box::new(|c| c.deselect.enabled = !c.deselect.enabled),
            Box::new(|c| c.deselect.warmup_epochs += 1),
            Box::new(|c| c.deselect.max_conflict_rate += 0.5),
            Box::new(|c| c.deselect.max_overflow_rate += 0.5),
            Box::new(|c| c.deselect.min_epoch_insts += 1.0),
            Box::new(|c| c.deselect.retry_after += 1),
            Box::new(|c| c.speculation = !c.speculation),
            Box::new(|c| c.spawn_latency += 1),
            Box::new(|c| c.max_insts = 1 << 40),
            Box::new(|c| c.max_cycles = 1 << 40),
            Box::new(|c| c.telemetry.interval_cycles = None),
            Box::new(|c| c.telemetry.flight_recorder_depth += 1),
        ];
        for (i, m) in mutations.iter().enumerate() {
            let mut c = LoopFrogConfig::default();
            m(&mut c);
            assert_ne!(base, c.fingerprint(), "mutation {i} did not change the fingerprint");
        }
    }
}
