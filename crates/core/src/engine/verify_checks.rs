//! Engine-side invariant checks for the `verify` feature (see
//! [`crate::verify`] for the invariant catalogue). Kept in a separate
//! module so the hot-path stage files only carry one-line hook calls.

use super::LoopFrogCore;
use crate::threadlet::CtxState;
use crate::verify::BoundaryPre;
use lf_isa::NUM_ARCH_REGS;

impl LoopFrogCore<'_> {
    /// Per-cycle invariants: occupancy conservation, epoch-sorted active
    /// list, free-context emptiness, and (sampled) SSB ownership.
    pub(super) fn verify_tick(&mut self) {
        let (mut rob, mut lq, mut sq) = (0usize, 0usize, 0usize);
        for t in &self.ctx {
            rob += t.rob.len();
            lq += t.lq.len();
            sq += t.sq.len();
        }
        if rob != self.rob_occupancy || lq != self.lq_occupancy || sq != self.sq_occupancy {
            let msg = format!(
                "occupancy: counters rob={}/lq={}/sq={} but queues sum rob={rob}/lq={lq}/sq={sq} \
                 at cycle {}",
                self.rob_occupancy, self.lq_occupancy, self.sq_occupancy, self.cycle
            );
            self.verify.violation(msg);
        }

        let mut prev_epoch: Option<u64> = None;
        let mut order_bad = None;
        for &t in &self.order {
            let e = self.ctx[t].epoch;
            if prev_epoch.is_some_and(|p| e <= p) {
                order_bad = Some((t, e));
            }
            prev_epoch = Some(e);
        }
        if let Some((t, e)) = order_bad {
            let msg = format!(
                "epoch-order: active list {:?} not strictly increasing (ctx{t} epoch {e}) at \
                 cycle {}",
                self.order, self.cycle
            );
            self.verify.violation(msg);
        }

        let free_bad: Vec<usize> =
            (0..self.ctx.len()).filter(|&i| !self.ctx[i].verify_free_is_empty()).collect();
        for i in free_bad {
            let msg = format!("free-context: ctx{i} is Free but holds window or rename state");
            self.verify.violation(msg);
        }

        // The SSB scan walks every line; sample it so verify builds stay
        // usable on long runs (retirement also triggers a full scan).
        if self.cycle.is_multiple_of(64) {
            self.verify_ssb();
        }
    }

    /// SSB ownership scan: data only in active, non-architectural slices;
    /// valid masks within the line's granule count; capacities respected.
    pub(super) fn verify_ssb(&mut self) {
        let active: Vec<bool> = self.ctx.iter().map(|t| t.state == CtxState::Active).collect();
        let arch = self.order.front().copied();
        if let Err(msg) = self.ssb.check_invariants(&active, arch) {
            let msg = format!("ssb: {msg} at cycle {}", self.cycle);
            self.verify.violation(msg);
        }
    }

    /// Conflict-set ⊇ accesses, write side: called right after a store
    /// drained and ran `conflict.on_write` — every granule it touched must
    /// be in the threadlet's write set.
    pub(super) fn verify_store_granules(&mut self, tid: usize, granules: &[u64]) {
        let missing: Vec<u64> =
            granules.iter().copied().filter(|&g| !self.conflict.has_written(tid, g)).collect();
        if !missing.is_empty() {
            let msg = format!(
                "conflict-write-set: ctx{tid} drained store granules {granules:?} but write set \
                 is missing {missing:?} at cycle {}",
                self.cycle
            );
            self.verify.violation(msg);
        }
    }

    /// Conflict-set ⊇ accesses, read side: after a load ran
    /// `conflict.on_read`, every granule is in the read set or masked by
    /// the threadlet's own write set.
    pub(super) fn verify_load_granules(&mut self, tid: usize, granules: &[u64]) {
        let missing: Vec<u64> = granules
            .iter()
            .copied()
            .filter(|&g| !self.conflict.has_read(tid, g) && !self.conflict.has_written(tid, g))
            .collect();
        if !missing.is_empty() {
            let msg = format!(
                "conflict-read-set: ctx{tid} load granules {granules:?} not covered; missing \
                 {missing:?} at cycle {}",
                self.cycle
            );
            self.verify.violation(msg);
        }
    }

    /// Retirement-time bookkeeping: epoch-order check plus (when lockstep
    /// recording is on) the pre-retire half of a [`CommitBoundary`].
    pub(super) fn verify_boundary_pre(&mut self, tid: usize) -> Option<BoundaryPre> {
        let epoch = self.ctx[tid].epoch;
        if let Some(prev) = self.verify.last_retired_epoch {
            if epoch <= prev {
                let msg =
                    format!("epoch-order: retiring epoch {epoch} after already-retired {prev}");
                self.verify.violation(msg);
            }
        }
        self.verify.last_retired_epoch = Some(epoch);
        self.verify_ssb();
        if !self.verify.record_boundaries {
            return None;
        }
        let map = self.ctx[tid].map.as_ref().expect("retiring threadlet has a map");
        let regs: Vec<u64> = (0..NUM_ARCH_REGS)
            .map(|a| {
                let p = map.get(a);
                if self.prf.is_ready(p) {
                    self.prf.read(p)
                } else {
                    0
                }
            })
            .collect();
        // Subtract the spawn-point reattach hints re-committed by promoted
        // successors so the count is comparable with emulator program order.
        let insts_before = self.stats.committed_insts - self.verify.promoted_spawns;
        Some(BoundaryPre { epoch, insts_before, regs })
    }

    /// Completes a boundary record after the successor's slice applied and
    /// its speculative commits were credited.
    pub(super) fn verify_boundary_post(&mut self, pre: Option<BoundaryPre>) {
        let Some(pre) = pre else { return };
        let mem_checksum_after = self.mem.checksum();
        self.verify.boundaries.push(crate::verify::CommitBoundary {
            epoch: pre.epoch,
            insts_before: pre.insts_before,
            regs: pre.regs,
            insts_after: self.stats.committed_insts - self.verify.promoted_spawns,
            mem_checksum_after,
        });
    }

    /// End-of-run invariant: accounting buckets sum to `cycles × width`.
    pub(super) fn verify_finish(&mut self) {
        let want = self.stats.cycles * self.cfg.core.commit_width as u64;
        let got = self.telem.accounting.total();
        if got != want {
            let msg = format!(
                "accounting: buckets sum to {got} but cycles×width = {} × {} = {want}",
                self.stats.cycles, self.cfg.core.commit_width
            );
            self.verify.violation(msg);
        }
        self.verify_ssb();
    }

    /// Read access to the invariant log and recorded boundaries.
    pub fn verify_state(&self) -> &crate::verify::VerifyState {
        &self.verify
    }

    /// Enables per-retirement [`CommitBoundary`] recording (lockstep mode).
    pub fn set_lockstep_recording(&mut self, on: bool) {
        self.verify.record_boundaries = on;
    }

    /// Fault injection: drops the first granule from every conflict-detector
    /// write-set insertion (exact detector only), leaving all other behavior
    /// intact. Used to prove the harness catches detector bugs.
    pub fn inject_drop_write_granule(&mut self) {
        if let super::ConflictSets::Exact(c) = &mut self.conflict {
            c.set_inject_drop_write_granule(true);
        }
    }
}
