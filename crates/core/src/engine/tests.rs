//! Engine-level tests: differential correctness against the golden
//! emulator, threadlet lifecycle scenarios, squash/recovery paths, and
//! speedup sanity checks.

use super::*;
use crate::config::{LoopFrogConfig, PackingConfig, SsbConfig};
use lf_isa::{reg, AluOp, BranchCond, Emulator, MemSize, Memory, Program, ProgramBuilder};

/// Runs `program` on the emulator and both core configurations and checks
/// all three produce the same architectural state. Returns (baseline,
/// loopfrog) results.
fn differential(program: &Program, mem: Memory) -> (SimResult, SimResult) {
    let mut emu = Emulator::new(program, mem.clone());
    emu.run(50_000_000).unwrap();
    assert!(emu.is_halted(), "emulator must halt");
    let golden = emu.state_checksum();

    let base = simulate(program, mem.clone(), LoopFrogConfig::baseline()).unwrap();
    assert_eq!(base.stop, SimStop::Halted);
    assert_eq!(base.checksum, golden, "baseline diverged from emulator");

    let lf = simulate(program, mem, LoopFrogConfig::default()).unwrap();
    assert_eq!(lf.stop, SimStop::Halted);
    assert_eq!(lf.checksum, golden, "LoopFrog diverged from emulator");
    (base, lf)
}

/// A hinted `for i in 0..trip { a[i] = f(a[i + src_off]) }` loop over u64
/// elements at `base`; `src_off = 0` gives independent iterations, negative
/// offsets create cross-iteration memory dependencies.
fn hinted_array_loop(trip: i64, src_off: i64, work: usize) -> Program {
    let base = 0x1000i64;
    let mut b = ProgramBuilder::new();
    let cont = b.label("cont");
    let head = b.label("head");
    let exit = b.label("exit");
    b.li(reg::x(1), 0); // byte index
    b.li(reg::x(2), trip * 8);
    b.bind(head);
    b.detach(cont);
    b.load(reg::x(3), reg::x(1), base + src_off * 8, MemSize::B8);
    for _ in 0..work {
        b.alui(AluOp::Mul, reg::x(3), reg::x(3), 3);
        b.alui(AluOp::Add, reg::x(3), reg::x(3), 7);
    }
    b.store(reg::x(3), reg::x(1), base, MemSize::B8);
    b.reattach(cont);
    b.bind(cont);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), head);
    b.sync(cont);
    b.bind(exit);
    b.halt();
    b.build().unwrap()
}

fn mem_with_pattern(size: usize) -> Memory {
    let mut mem = Memory::new(size);
    for i in 0..(size as u64 / 8) {
        mem.write_u64(i * 8, i.wrapping_mul(0x9e3779b97f4a7c15) | 1).unwrap();
    }
    mem
}

#[test]
fn straightline_matches_emulator() {
    let mut b = ProgramBuilder::new();
    b.li(reg::x(1), 7);
    b.alui(AluOp::Mul, reg::x(2), reg::x(1), 6);
    b.alu(AluOp::Add, reg::x(3), reg::x(2), reg::x(1));
    b.store(reg::x(3), reg::x(1), 0x100, MemSize::B8);
    b.load(reg::x(4), reg::x(1), 0x100, MemSize::B8);
    b.halt();
    let p = b.build().unwrap();
    let (base, _) = differential(&p, Memory::new(0x400));
    assert_eq!(base.final_regs[4], 49);
}

#[test]
fn plain_loop_matches_emulator() {
    // No hints at all: both cores run it sequentially.
    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    b.li(reg::x(1), 0);
    b.li(reg::x(2), 0);
    b.li(reg::x(3), 300);
    b.bind(top);
    b.alu(AluOp::Add, reg::x(2), reg::x(2), reg::x(1));
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 1);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(3), top);
    b.halt();
    let p = b.build().unwrap();
    let (base, _) = differential(&p, Memory::new(64));
    assert_eq!(base.final_regs[2], 300 * 299 / 2);
}

#[test]
fn hinted_independent_loop_spawns_and_matches() {
    let p = hinted_array_loop(64, 0, 3);
    let mem = mem_with_pattern(0x2000);
    let (_, lf) = differential(&p, mem);
    assert!(lf.stats.spawns > 0, "LoopFrog must spawn threadlets");
    assert!(lf.stats.frac_active_at_least(2) > 0.0, "some dual-threadlet cycles");
}

#[test]
fn hinted_loop_with_memory_dependency_is_still_correct() {
    // a[i] = f(a[i-1]): every iteration reads the previous one's store.
    // Speculation conflicts and squashes, but results must stay exact.
    let p = hinted_array_loop(64, -1, 2);
    let mem = mem_with_pattern(0x2000);
    let (_, lf) = differential(&p, mem);
    assert!(
        lf.stats.squashes_conflict > 0,
        "cross-iteration RAW must trigger conflict squashes (got {:?})",
        lf.stats
    );
}

#[test]
fn independent_loop_gets_speedup() {
    let p = hinted_array_loop(256, 0, 8);
    let mem = mem_with_pattern(0x4000);
    let (base, lf) = differential(&p, mem);
    let speedup = base.stats.cycles as f64 / lf.stats.cycles as f64;
    assert!(
        speedup > 1.02,
        "independent loop should speed up: base {} vs lf {} ({speedup:.3}x)",
        base.stats.cycles,
        lf.stats.cycles
    );
}

#[test]
fn early_exit_break_loop_is_correct() {
    // while (a[i] != 0) { a[i] *= 3; i++ } with a sentinel zero: the exit
    // is data-dependent and lives in the header (sync on exit edge).
    let base_addr = 0x800i64;
    let mut b = ProgramBuilder::new();
    let cont = b.label("cont");
    let head = b.label("head");
    let exit = b.label("exit");
    b.li(reg::x(1), 0);
    b.bind(head);
    b.load(reg::x(3), reg::x(1), base_addr, MemSize::B8);
    b.branch(BranchCond::Eq, reg::x(3), reg::ZERO, exit);
    b.detach(cont);
    b.alui(AluOp::Mul, reg::x(3), reg::x(3), 3);
    b.store(reg::x(3), reg::x(1), base_addr, MemSize::B8);
    b.reattach(cont);
    b.bind(cont);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.jump(head);
    b.bind(exit);
    b.sync(cont);
    b.halt();
    let p = b.build().unwrap();

    let mut mem = Memory::new(0x1000);
    for i in 0..40u64 {
        mem.write_u64(0x800 + i * 8, i + 1).unwrap();
    }
    // Sentinel at i == 40 terminates the loop.
    differential(&p, mem);
}

#[test]
fn nested_inner_region_is_ignored_while_outer_active() {
    // Outer hinted loop whose body contains an inner hinted loop: region
    // IDs differ; the inner hints must be ignored while detached on the
    // outer region (paper §3.3).
    let base_addr = 0x1000i64;
    let mut b = ProgramBuilder::new();
    let ocont = b.label("ocont");
    let ohead = b.label("ohead");
    let icont = b.label("icont");
    let ihead = b.label("ihead");
    b.li(reg::x(1), 0); // outer idx
    b.li(reg::x(2), 16 * 8);
    b.bind(ohead);
    b.detach(ocont);
    // inner loop: sum 8 elements
    b.li(reg::x(4), 0);
    b.li(reg::x(5), 8);
    b.li(reg::x(6), 0);
    b.bind(ihead);
    b.detach(icont);
    b.load(reg::x(7), reg::x(4), base_addr, MemSize::B8);
    b.alu(AluOp::Add, reg::x(6), reg::x(6), reg::x(7));
    b.reattach(icont);
    b.bind(icont);
    b.alui(AluOp::Add, reg::x(4), reg::x(4), 8);
    b.alui(AluOp::Sub, reg::x(5), reg::x(5), 1);
    b.branch(BranchCond::Ne, reg::x(5), reg::ZERO, ihead);
    b.sync(icont);
    b.store(reg::x(6), reg::x(1), base_addr + 0x800, MemSize::B8);
    b.reattach(ocont);
    b.bind(ocont);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), ohead);
    b.sync(ocont);
    b.halt();
    let p = b.build().unwrap();
    let (_, lf) = differential(&p, mem_with_pattern(0x2000));
    assert!(lf.stats.spawns > 0);
}

#[test]
fn function_call_in_body_is_correct() {
    let base_addr = 0x1000i64;
    let mut b = ProgramBuilder::new();
    let cont = b.label("cont");
    let head = b.label("head");
    let func = b.label("func");
    let start = b.label("start");
    b.jump(start);
    // x10 = x10 * 3 + 1
    b.bind(func);
    b.alui(AluOp::Mul, reg::x(10), reg::x(10), 3);
    b.alui(AluOp::Add, reg::x(10), reg::x(10), 1);
    b.jump_reg(reg::RA);
    b.bind(start);
    b.li(reg::x(12), 0);
    b.li(reg::x(2), 32 * 8);
    b.bind(head);
    b.detach(cont);
    b.load(reg::x(10), reg::x(12), base_addr, MemSize::B8);
    b.call(func, reg::RA);
    b.store(reg::x(10), reg::x(12), base_addr, MemSize::B8);
    b.reattach(cont);
    b.bind(cont);
    b.alui(AluOp::Add, reg::x(12), reg::x(12), 8);
    b.branch(BranchCond::Lt, reg::x(12), reg::x(2), head);
    b.sync(cont);
    b.halt();
    let p = b.build().unwrap();
    differential(&p, mem_with_pattern(0x2000));
}

#[test]
fn tiny_loop_triggers_iteration_packing() {
    // A very small body: packing should engage (trip count large enough to
    // train the predictors).
    let p = hinted_array_loop(512, 0, 0);
    let mem = mem_with_pattern(0x4000);
    let cfg = LoopFrogConfig {
        packing: PackingConfig { target_epoch_size: 64, ..PackingConfig::default() },
        ..LoopFrogConfig::default()
    };
    let mut emu = Emulator::new(&p, mem.clone());
    emu.run(10_000_000).unwrap();
    let lf = simulate(&p, mem, cfg).unwrap();
    assert_eq!(lf.checksum, emu.state_checksum());
    assert!(lf.stats.packed_spawns > 0, "packing should engage: {:?}", lf.stats);
    assert!(lf.stats.mean_pack_factor() > 1.5);
}

#[test]
fn packing_disabled_still_correct() {
    let p = hinted_array_loop(128, 0, 0);
    let mem = mem_with_pattern(0x4000);
    let cfg = LoopFrogConfig {
        packing: PackingConfig { enabled: false, ..PackingConfig::default() },
        ..LoopFrogConfig::default()
    };
    let mut emu = Emulator::new(&p, mem.clone());
    emu.run(10_000_000).unwrap();
    let lf = simulate(&p, mem, cfg).unwrap();
    assert_eq!(lf.checksum, emu.state_checksum());
    assert_eq!(lf.stats.packed_spawns, 0);
}

#[test]
fn ssb_overflow_squashes_but_stays_correct() {
    // Each iteration writes a large scattered footprint so a speculative
    // epoch overflows a tiny SSB slice.
    let base_addr = 0x1000i64;
    let mut b = ProgramBuilder::new();
    let cont = b.label("cont");
    let head = b.label("head");
    b.li(reg::x(1), 0);
    b.li(reg::x(2), 16);
    b.bind(head);
    b.detach(cont);
    // 32 stores, 64 B apart: 32 distinct SSB lines per iteration.
    b.alui(AluOp::Mul, reg::x(4), reg::x(1), 8);
    for k in 0..32i64 {
        b.store(reg::x(1), reg::x(4), base_addr + k * 64, MemSize::B8);
    }
    b.reattach(cont);
    b.bind(cont);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 1);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), head);
    b.sync(cont);
    b.halt();
    let p = b.build().unwrap();
    let mem = Memory::new(0x4000);

    let mut emu = Emulator::new(&p, mem.clone());
    emu.run(10_000_000).unwrap();
    let cfg = LoopFrogConfig {
        ssb: SsbConfig { size_bytes: 512, ..SsbConfig::default() },
        ..LoopFrogConfig::default()
    };
    let lf = simulate(&p, mem, cfg).unwrap();
    assert_eq!(lf.checksum, emu.state_checksum());
    assert!(lf.stats.squashes_overflow > 0, "tiny SSB must overflow: {:?}", lf.stats);
}

#[test]
fn unpredictable_branches_in_body_are_correct() {
    // Data-dependent branch inside the body exercises in-threadlet
    // mispredict recovery interleaved with threadlet speculation.
    let base_addr = 0x1000i64;
    let mut b = ProgramBuilder::new();
    let cont = b.label("cont");
    let head = b.label("head");
    let odd = b.label("odd");
    let join = b.label("join");
    b.li(reg::x(1), 0);
    b.li(reg::x(2), 96 * 8);
    b.bind(head);
    b.detach(cont);
    b.load(reg::x(3), reg::x(1), base_addr, MemSize::B8);
    b.alui(AluOp::And, reg::x(4), reg::x(3), 1);
    b.branch(BranchCond::Ne, reg::x(4), reg::ZERO, odd);
    b.alui(AluOp::Mul, reg::x(3), reg::x(3), 5);
    b.jump(join);
    b.bind(odd);
    b.alui(AluOp::Add, reg::x(3), reg::x(3), 11);
    b.bind(join);
    b.store(reg::x(3), reg::x(1), base_addr, MemSize::B8);
    b.reattach(cont);
    b.bind(cont);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), head);
    b.sync(cont);
    b.halt();
    let p = b.build().unwrap();
    let (_, lf) = differential(&p, mem_with_pattern(0x2000));
    assert!(lf.stats.branch_mispredicts > 0, "random parity must mispredict");
}

#[test]
fn two_sequential_hinted_loops() {
    // Exercises full region teardown and re-entry: sync, retire, respawn.
    let mut b = ProgramBuilder::new();
    let c1 = b.label("c1");
    let h1 = b.label("h1");
    let c2 = b.label("c2");
    let h2 = b.label("h2");
    b.li(reg::x(1), 0);
    b.li(reg::x(2), 24 * 8);
    b.bind(h1);
    b.detach(c1);
    b.load(reg::x(3), reg::x(1), 0x1000, MemSize::B8);
    b.alui(AluOp::Add, reg::x(3), reg::x(3), 5);
    b.store(reg::x(3), reg::x(1), 0x1000, MemSize::B8);
    b.reattach(c1);
    b.bind(c1);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), h1);
    b.sync(c1);
    b.li(reg::x(1), 0);
    b.bind(h2);
    b.detach(c2);
    b.load(reg::x(3), reg::x(1), 0x1000, MemSize::B8);
    b.alui(AluOp::Mul, reg::x(3), reg::x(3), 3);
    b.store(reg::x(3), reg::x(1), 0x2000, MemSize::B8);
    b.reattach(c2);
    b.bind(c2);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), h2);
    b.sync(c2);
    b.halt();
    let p = b.build().unwrap();
    let (_, lf) = differential(&p, mem_with_pattern(0x3000));
    assert!(lf.stats.spawns >= 2);
}

#[test]
fn one_threadlet_config_with_speculation_off_equals_baseline() {
    let p = hinted_array_loop(64, 0, 2);
    let mem = mem_with_pattern(0x2000);
    let a = simulate(&p, mem.clone(), LoopFrogConfig::baseline()).unwrap();
    let b = simulate(&p, mem, LoopFrogConfig::baseline()).unwrap();
    assert_eq!(a.stats.cycles, b.stats.cycles, "simulation is deterministic");
    assert_eq!(a.checksum, b.checksum);
}

#[test]
fn determinism_of_loopfrog_runs() {
    let p = hinted_array_loop(100, 0, 4);
    let mem = mem_with_pattern(0x2000);
    let a = simulate(&p, mem.clone(), LoopFrogConfig::default()).unwrap();
    let b = simulate(&p, mem, LoopFrogConfig::default()).unwrap();
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.stats.spawns, b.stats.spawns);
    assert_eq!(a.checksum, b.checksum);
}

#[test]
fn architectural_fault_is_reported() {
    let mut b = ProgramBuilder::new();
    b.li(reg::x(1), 1 << 40);
    b.load(reg::x(2), reg::x(1), 0, MemSize::B8);
    b.halt();
    let p = b.build().unwrap();
    let err = simulate(&p, Memory::new(64), LoopFrogConfig::baseline()).unwrap_err();
    assert!(matches!(err, SimError::Fault { .. }));
}

#[test]
fn wrong_path_fault_is_squashed() {
    // A mispredictable branch guards an out-of-bounds load; wrong-path
    // execution of the load must not kill the run.
    let mut b = ProgramBuilder::new();
    let skip = b.label("skip");
    let top = b.label("top");
    b.li(reg::x(1), 0);
    b.li(reg::x(2), 200);
    b.li(reg::x(5), 1 << 40);
    b.bind(top);
    b.alui(AluOp::And, reg::x(3), reg::x(1), 7);
    b.branch(BranchCond::Ne, reg::x(3), reg::ZERO, skip);
    b.nop();
    b.bind(skip);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 1);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    b.halt();
    let p = b.build().unwrap();
    differential(&p, Memory::new(0x400));
}

#[test]
fn store_to_load_forwarding_in_spec_threadlet() {
    // Body stores then reloads the same address: forwarding + SSB paths.
    let base_addr = 0x1000i64;
    let mut b = ProgramBuilder::new();
    let cont = b.label("cont");
    let head = b.label("head");
    b.li(reg::x(1), 0);
    b.li(reg::x(2), 48 * 8);
    b.bind(head);
    b.detach(cont);
    b.load(reg::x(3), reg::x(1), base_addr, MemSize::B8);
    b.alui(AluOp::Add, reg::x(3), reg::x(3), 1);
    b.store(reg::x(3), reg::x(1), base_addr, MemSize::B8);
    b.load(reg::x(4), reg::x(1), base_addr, MemSize::B8);
    b.alui(AluOp::Mul, reg::x(4), reg::x(4), 2);
    b.store(reg::x(4), reg::x(1), base_addr + 0x800, MemSize::B8);
    b.reattach(cont);
    b.bind(cont);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), head);
    b.sync(cont);
    b.halt();
    let p = b.build().unwrap();
    differential(&p, mem_with_pattern(0x2000));
}

#[test]
fn subword_stores_with_false_sharing_granules() {
    // 1-byte stores into shared granules: exercises partial-granule
    // read-fills and false-sharing conflicts.
    let base_addr = 0x1000i64;
    let mut b = ProgramBuilder::new();
    let cont = b.label("cont");
    let head = b.label("head");
    b.li(reg::x(1), 0);
    b.li(reg::x(2), 64);
    b.bind(head);
    b.detach(cont);
    b.load(reg::x(3), reg::x(1), base_addr, MemSize::B1);
    b.alui(AluOp::Add, reg::x(3), reg::x(3), 1);
    b.store(reg::x(3), reg::x(1), base_addr, MemSize::B1);
    b.reattach(cont);
    b.bind(cont);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 1);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), head);
    b.sync(cont);
    b.halt();
    let p = b.build().unwrap();
    // Byte-stride writes with 4-byte granules: adjacent iterations share
    // granules, forcing read-fill conflicts; results must stay exact.
    differential(&p, mem_with_pattern(0x2000));
}

#[test]
fn max_cycles_fuel_stops_cleanly() {
    let p = hinted_array_loop(1 << 20, 0, 4);
    let cfg = LoopFrogConfig { max_cycles: 2_000, ..LoopFrogConfig::default() };
    let r = simulate(&p, mem_with_pattern(1 << 24), cfg).unwrap();
    assert_eq!(r.stop, SimStop::MaxCycles);
    assert!(r.stats.cycles <= 2_001);
}

#[test]
fn dynamic_deselection_suppresses_conflicting_region() {
    // a[i] = f(a[i-1]): every speculative epoch conflicts. With the §5.1
    // dynamic deselector on, the region is suppressed after warmup and the
    // run both stays correct and stops paying for squashes.
    let p = hinted_array_loop(200, -1, 2);
    let mem = mem_with_pattern(0x4000);
    let mut emu = Emulator::new(&p, mem.clone());
    emu.run(10_000_000).unwrap();

    let plain = simulate(&p, mem.clone(), LoopFrogConfig::default()).unwrap();
    let cfg = LoopFrogConfig {
        deselect: crate::deselect::DeselectConfig {
            enabled: true,
            // One conflict per retired epoch (every iteration squashes once)
            // counts as a storm for this test.
            max_conflict_rate: 0.9,
            ..crate::deselect::DeselectConfig::default()
        },
        ..LoopFrogConfig::default()
    };
    let dyn_run = simulate(&p, mem, cfg).unwrap();

    assert_eq!(dyn_run.checksum, emu.state_checksum());
    assert!(
        dyn_run.stats.counters.get("regions_suppressed") >= 1,
        "conflict-storm region must be suppressed: dyn squashes={} plain squashes={} spawns={} counters={:?}",
        dyn_run.stats.squashes_conflict,
        plain.stats.squashes_conflict,
        dyn_run.stats.spawns,
        dyn_run.stats.counters
    );
    assert!(
        dyn_run.stats.squashes_conflict < plain.stats.squashes_conflict,
        "suppression must cut conflict squashes ({} vs {})",
        dyn_run.stats.squashes_conflict,
        plain.stats.squashes_conflict
    );
}

#[test]
fn dynamic_deselection_leaves_profitable_loops_alone() {
    let p = hinted_array_loop(200, 0, 4);
    let mem = mem_with_pattern(0x4000);
    let mut emu = Emulator::new(&p, mem.clone());
    emu.run(10_000_000).unwrap();
    let cfg = LoopFrogConfig {
        deselect: crate::deselect::DeselectConfig {
            enabled: true,
            ..crate::deselect::DeselectConfig::default()
        },
        ..LoopFrogConfig::default()
    };
    let r = simulate(&p, mem, cfg).unwrap();
    assert_eq!(r.checksum, emu.state_checksum());
    assert_eq!(r.stats.counters.get("regions_suppressed"), 0);
    assert!(r.stats.spawns > 50, "healthy region keeps spawning");
}

#[test]
fn warm_start_resumes_mid_program() {
    // Run the emulator halfway, capture state, and warm-start the core
    // there: the final state must match a straight-through run.
    let p = hinted_array_loop(64, 0, 2);
    let mem = mem_with_pattern(0x2000);
    let mut full = Emulator::new(&p, mem.clone());
    full.run(10_000_000).unwrap();

    let mut half = Emulator::new(&p, mem.clone());
    for _ in 0..300 {
        half.step().unwrap();
    }
    let mut core = LoopFrogCore::with_initial_state(
        &p,
        half.mem().clone(),
        half.regs(),
        half.pc(),
        LoopFrogConfig::default(),
    );
    let r = core.run().unwrap();
    assert_eq!(r.stop, SimStop::Halted);
    assert_eq!(r.checksum, full.state_checksum());
}

#[test]
fn from_checkpoint_resumes_and_matches_straight_run() {
    // Fast-forward with the functional tier, snapshot, and restore the
    // detailed core from the checkpoint: the final architectural state
    // must match an uninterrupted emulator run.
    let p = hinted_array_loop(64, 0, 2);
    let mem = mem_with_pattern(0x2000);
    let mut full = Emulator::new(&p, mem.clone());
    full.run(10_000_000).unwrap();

    let mut fast = lf_isa::FastTier::new(&p, mem.clone());
    fast.run_to_inst_count(300).unwrap();
    let ckpt = fast.checkpoint();
    assert!(!ckpt.hints.branches.is_empty(), "warming recorded branches");
    assert!(!ckpt.hints.mem_accesses.is_empty(), "warming recorded accesses");

    let mut core = LoopFrogCore::from_checkpoint(&p, &ckpt, LoopFrogConfig::default());
    assert_eq!(core.committed_insts(), 0, "commit count is checkpoint-relative");
    let r = core.run().unwrap();
    assert_eq!(r.stop, SimStop::Halted);
    assert_eq!(r.checksum, full.state_checksum());
}

#[test]
fn from_checkpoint_restore_is_deterministic() {
    // Two restores from the same serialized checkpoint must produce
    // byte-identical stats over the same measured window.
    let p = hinted_array_loop(64, 0, 2);
    let mem = mem_with_pattern(0x2000);
    let mut fast = lf_isa::FastTier::new(&p, mem);
    fast.run_to_inst_count(400).unwrap();
    let bytes = fast.checkpoint().to_bytes();

    let run = || {
        let ckpt = lf_isa::fast::Checkpoint::from_bytes(&bytes).unwrap();
        let mut core = LoopFrogCore::from_checkpoint(&p, &ckpt, LoopFrogConfig::default());
        let stop = core.run_until_committed(500).unwrap();
        core.into_result(stop)
    };
    let a = run();
    let b = run();
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.checksum, b.checksum);
    assert_eq!(
        a.stats.to_json().to_string_compact(),
        b.stats.to_json().to_string_compact(),
        "restored runs must be byte-identical"
    );
}

#[test]
fn checkpoint_warming_installs_state_not_events() {
    // Restoring installs warm tags/tables but every counter still starts
    // from zero: warming must establish state, never events.
    let p = hinted_array_loop(64, 0, 2);
    let mem = mem_with_pattern(0x2000);
    let mut fast = lf_isa::FastTier::new(&p, mem);
    fast.run_to_inst_count(600).unwrap();
    let ckpt = fast.checkpoint();
    let core = LoopFrogCore::from_checkpoint(&p, &ckpt, LoopFrogConfig::default());
    assert_eq!(core.stats.cycles, 0);
    assert_eq!(core.stats.committed_insts, 0);
    assert_eq!(core.hier.cache_stats(), [(0, 0); 3], "no access/miss events from warming");
    assert_eq!(core.hier.counters().get("dram_accesses"), 0);
}

#[test]
fn phased_run_until_committed_is_cumulative() {
    let p = hinted_array_loop(64, 0, 2);
    let mem = mem_with_pattern(0x2000);
    let mut core = LoopFrogCore::new(&p, mem.clone(), LoopFrogConfig::default());
    core.run_until_committed(100).unwrap();
    let (c0, i0) = (core.cycle(), core.committed_insts());
    assert!(i0 >= 100);
    let stop = core.run_until_committed(u64::MAX).unwrap();
    assert_eq!(stop, SimStop::Halted);
    assert!(core.cycle() > c0);
    // Phased and monolithic runs agree on the final state.
    let whole = simulate(&p, mem, LoopFrogConfig::default()).unwrap();
    assert_eq!(core.into_result(stop).checksum, whole.checksum);
}

#[test]
fn tracer_observes_pipeline_events() {
    use std::cell::RefCell;
    use std::rc::Rc;
    let p = hinted_array_loop(32, 0, 2);
    let mem = mem_with_pattern(0x2000);
    let counts = Rc::new(RefCell::new(crate::trace::CountingTracer::default()));
    let mut core = LoopFrogCore::new(&p, mem.clone(), LoopFrogConfig::default());
    core.set_tracer(Box::new(Rc::clone(&counts)));
    let traced = core.run().unwrap();

    let c = counts.borrow();
    assert!(c.renames > 100, "renames traced: {c:?}");
    assert!(c.commits > 100, "commits traced: {c:?}");
    assert!(c.spawns > 0 && c.retires > 0, "threadlet lifecycle traced: {c:?}");

    // Tracing must not perturb the simulation.
    let plain = simulate(&p, mem, LoopFrogConfig::default()).unwrap();
    assert_eq!(plain.stats.cycles, traced.stats.cycles);
    assert_eq!(plain.checksum, traced.checksum);
}

#[test]
fn zero_trip_hinted_loop_is_correct() {
    // The loop guard fails immediately: the detach path never executes,
    // but the sync at the exit target still commits as a NOP.
    let base_addr = 0x1000i64;
    let mut b = ProgramBuilder::new();
    let cont = b.label("cont");
    let head = b.label("head");
    let exit_l = b.label("exit");
    b.li(reg::x(1), 0);
    b.li(reg::x(2), 0); // bound 0: zero iterations
    b.branch(BranchCond::Geu, reg::x(1), reg::x(2), exit_l);
    b.bind(head);
    b.detach(cont);
    b.load(reg::x(3), reg::x(1), base_addr, MemSize::B8);
    b.store(reg::x(3), reg::x(1), base_addr + 0x800, MemSize::B8);
    b.reattach(cont);
    b.bind(cont);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), head);
    b.bind(exit_l);
    b.sync(cont);
    b.halt();
    let p = b.build().unwrap();
    differential(&p, mem_with_pattern(0x2000));
}

#[test]
fn single_trip_hinted_loop_is_correct() {
    let p = hinted_array_loop(1, 0, 2);
    differential(&p, mem_with_pattern(0x2000));
}

#[test]
fn triple_nested_hinted_loops_are_correct() {
    // Three nesting levels, all hinted with distinct regions; only the
    // outermost active region may speculate at a time (§3.3).
    let mut b = ProgramBuilder::new();
    let (c1, h1) = (b.label("c1"), b.label("h1"));
    let (c2, h2) = (b.label("c2"), b.label("h2"));
    let (c3, h3) = (b.label("c3"), b.label("h3"));
    b.li(reg::x(1), 4); // outer count
    b.bind(h1);
    b.detach(c1);
    b.li(reg::x(2), 3); // middle count
    b.bind(h2);
    b.detach(c2);
    b.li(reg::x(3), 3); // inner count
    b.li(reg::x(4), 0);
    b.bind(h3);
    b.detach(c3);
    b.load(reg::x(5), reg::x(4), 0x1000, MemSize::B8);
    b.alui(AluOp::Add, reg::x(5), reg::x(5), 1);
    b.store(reg::x(5), reg::x(4), 0x1000, MemSize::B8);
    b.reattach(c3);
    b.bind(c3);
    b.alui(AluOp::Add, reg::x(4), reg::x(4), 8);
    b.alui(AluOp::Sub, reg::x(3), reg::x(3), 1);
    b.branch(BranchCond::Ne, reg::x(3), reg::ZERO, h3);
    b.sync(c3);
    b.reattach(c2);
    b.bind(c2);
    b.alui(AluOp::Sub, reg::x(2), reg::x(2), 1);
    b.branch(BranchCond::Ne, reg::x(2), reg::ZERO, h2);
    b.sync(c2);
    b.reattach(c1);
    b.bind(c1);
    b.alui(AluOp::Sub, reg::x(1), reg::x(1), 1);
    b.branch(BranchCond::Ne, reg::x(1), reg::ZERO, h1);
    b.sync(c1);
    b.halt();
    let p = b.build().unwrap();
    differential(&p, mem_with_pattern(0x2000));
}

#[test]
fn bloom_filters_end_to_end_equivalence() {
    // Real Bloom filters may add squashes but never change results.
    let p = hinted_array_loop(96, -1, 2); // with true conflicts
    let mem = mem_with_pattern(0x2000);
    let mut emu = Emulator::new(&p, mem.clone());
    emu.run(10_000_000).unwrap();
    for (bits, hashes) in [(4096usize, 4u32), (256, 2)] {
        let mut cfg = LoopFrogConfig::default();
        cfg.ssb.bloom = Some((bits, hashes));
        let r = simulate(&p, mem.clone(), cfg).unwrap();
        assert_eq!(r.checksum, emu.state_checksum(), "bloom {bits}/{hashes}");
    }
}

#[test]
fn external_write_during_conflicting_speculation() {
    // Combine remote traffic with a loop that already conflicts
    // internally: both squash paths interleave, results stay exact on the
    // final memory ordering invariants.
    let p = hinted_array_loop(64, -1, 1);
    let mem = mem_with_pattern(0x2000);
    let mut core = LoopFrogCore::new(&p, mem, LoopFrogConfig::default());
    core.run_until_committed(80).unwrap();
    // Touch an element well ahead of the architectural point.
    core.external_write(0x1000 + 60 * 8, 8, 0xDEAD).unwrap();
    let stop = core.run_until_committed(u64::MAX).unwrap();
    assert_eq!(stop, SimStop::Halted);
    // a[60] was overwritten externally, then possibly recomputed by the
    // loop (iteration 60 writes a[60] from a[59]); either way the value
    // must equal what a sequential re-execution from the external write
    // point would produce — verified structurally: the element is either
    // the external value (loop already passed it... impossible, external
    // write landed ahead) or f(a[59]).
    let a59 = core.mem().read_u64(0x1000 + 59 * 8).unwrap();
    let expect = a59.wrapping_mul(3).wrapping_add(7);
    let got = core.mem().read_u64(0x1000 + 60 * 8).unwrap();
    assert_eq!(got, expect, "iteration 60 must observe the post-write ordering");
}
