//! Issue/execute stage and writeback.
//!
//! Ready instructions issue from the shared queue oldest-first, claim a
//! functional unit, compute their result (reading the physical register
//! file), and schedule a completion event. Loads go through the LSQ
//! disambiguation rules and the SSB (speculative threadlets) or the L1D
//! (architectural threadlet); branch resolution happens at completion.

use super::LoopFrogCore;
use crate::dyninst::Uid;
use lf_isa::{emu, Inst, MemSize};
use lf_uarch::{AccessKind, IssueQueue, PhysReg};

/// The `Copy` subset of a [`crate::dyninst::DynInst`] that the issue path
/// reads. Extracted up front so an issue *attempt* — the IQ re-offers every
/// ready entry each cycle until its structural hazard clears — costs one
/// arena lookup and a small register-sized copy instead of a full `DynInst`
/// clone (which heap-allocates for `iv_capture`).
#[derive(Clone, Copy)]
struct IssueView {
    uid: Uid,
    tid: usize,
    pc: usize,
    inst: Inst,
    srcs: [Option<PhysReg>; 2],
}

impl IssueView {
    fn of(d: &crate::dyninst::DynInst) -> IssueView {
        IssueView { uid: d.uid, tid: d.tid, pc: d.pc, inst: d.inst, srcs: d.srcs }
    }
}

impl LoopFrogCore<'_> {
    /// Issues ready instructions up to the aggregate execution bandwidth.
    pub(super) fn do_issue(&mut self) {
        // Aggregate issue bandwidth: bounded by total execution pipes.
        let fu = &self.cfg.core.fu;
        let width = fu.int_alu + fu.int_mul_div + fu.fp + fu.load + fu.store;
        let mut iq = std::mem::replace(&mut self.iq, IssueQueue::new(0));
        let issued = iq.select(width, |uid, _tid| self.try_issue_one(uid));
        self.iq = iq;
        self.stats.issued_insts += issued as u64;
    }

    /// Attempts to issue one instruction; `false` leaves it in the queue.
    fn try_issue_one(&mut self, uid: Uid) -> bool {
        let v = IssueView::of(self.slab.get(uid).expect("IQ entries are live"));
        debug_assert!(!self.slab[uid].issued);

        // Loads must pass memory disambiguation before claiming a pipe.
        if v.inst.is_load() && !self.load_can_issue(v) {
            return false;
        }

        let class = v.inst.fu_class();
        let latency = v.inst.exec_latency();
        if !self.fu.try_issue(class, self.cycle, latency) {
            return false;
        }

        let read =
            |core: &Self, p: Option<PhysReg>| -> u64 { p.map(|p| core.prf.read(p)).unwrap_or(0) };

        let mut complete_at = self.cycle + latency;
        let mut result = 0u64;
        let mut actual_next = v.pc + 1;
        match v.inst {
            Inst::Alu { op, a: _, b, .. } => {
                let av = read(self, v.srcs[0]);
                let bv = match b {
                    lf_isa::Operand::Reg(_) => read(self, v.srcs[1]),
                    lf_isa::Operand::Imm(i) => i as u64,
                };
                result = emu::eval_alu(op, av, bv);
            }
            Inst::Fpu { op, .. } => {
                result = emu::eval_fpu(op, read(self, v.srcs[0]), read(self, v.srcs[1]));
            }
            Inst::MovImm { imm, .. } => result = imm as u64,
            Inst::Branch { cond, target, .. } => {
                let taken = emu::eval_branch(cond, read(self, v.srcs[0]), read(self, v.srcs[1]));
                actual_next = if taken { target } else { v.pc + 1 };
            }
            Inst::JumpReg { .. } => {
                actual_next = read(self, v.srcs[0]) as usize;
            }
            Inst::Load { offset, size, signed, .. } => {
                let addr = read(self, v.srcs[0]).wrapping_add(offset as u64);
                match self.execute_load(v, addr, size) {
                    LoadOutcome::Value { value, ready } => {
                        result = emu::extend_load(value, size, signed);
                        complete_at = ready;
                    }
                    LoadOutcome::Fault => {
                        let e = self.slab.get_mut(uid).expect("live");
                        e.issued = true;
                        e.eff_addr = Some(addr);
                        e.faulted = true;
                        return true; // leaves the IQ; never completes
                    }
                }
                self.slab.get_mut(uid).expect("live").eff_addr = Some(addr);
            }
            Inst::Store { offset, size, .. } => {
                // Sources: [base, data].
                let addr = read(self, v.srcs[0]).wrapping_add(offset as u64);
                let data = read(self, v.srcs[1]);
                let e = self.slab.get_mut(uid).expect("live");
                e.eff_addr = Some(addr);
                e.store_data = data;
                if addr.checked_add(size.bytes()).is_none_or(|end| end > self.mem.len() as u64) {
                    let e = self.slab.get_mut(uid).expect("live");
                    e.issued = true;
                    e.faulted = true;
                    return true;
                }
            }
            _ => unreachable!("non-executing instruction in IQ: {:?}", v.inst),
        }

        let e = self.slab.get_mut(uid).expect("live");
        e.issued = true;
        e.result = result;
        e.actual_next = actual_next;
        self.completions.schedule(complete_at.max(self.cycle + 1), uid);
        if self.observing() {
            self.emit(crate::trace::TraceEvent::Issue {
                cycle: self.cycle,
                tid: v.tid,
                uid: uid.seq(),
            });
        }
        true
    }

    /// Memory disambiguation for a load (conservative): every older store in
    /// the same threadlet must have a known address; a fully containing
    /// older store forwards; any partial overlap delays the load until the
    /// store drains.
    fn load_can_issue(&self, v: IssueView) -> bool {
        let t = &self.ctx[v.tid];
        for &suid in t.sq.iter().rev() {
            if suid >= v.uid {
                continue;
            }
            let s = &self.slab[suid];
            if !s.issued {
                return false; // unknown store address
            }
        }
        // Addresses all known; check for partial overlaps (full containment
        // is handled as forwarding inside execute_load).
        let (addr, len) = match v.inst {
            Inst::Load { offset, size, .. } => {
                let base = v.srcs[0].map(|p| self.prf.read(p)).unwrap_or(0);
                (base.wrapping_add(offset as u64), size.bytes())
            }
            _ => unreachable!(),
        };
        for &suid in t.sq.iter().rev() {
            if suid >= v.uid {
                continue;
            }
            let s = &self.slab[suid];
            if s.drained || s.faulted {
                continue;
            }
            let (sa, sl) = (s.eff_addr.expect("issued"), store_len(&s.inst));
            let overlap = sa < addr + len && addr < sa + sl;
            let contains = sa <= addr && addr + len <= sa + sl;
            if overlap && !contains {
                return false; // partial overlap: wait for the drain
            }
            if contains {
                return true; // youngest containing store forwards
            }
        }
        true
    }

    /// Executes a load's data access: own-SQ forwarding, then SSB + L1D
    /// (speculative) or L1D (architectural).
    fn execute_load(&mut self, v: IssueView, addr: u64, size: MemSize) -> LoadOutcome {
        let len = size.bytes();

        // Store-to-load forwarding from the youngest containing older store.
        let t = &self.ctx[v.tid];
        for &suid in t.sq.iter().rev() {
            if suid >= v.uid {
                continue;
            }
            let s = &self.slab[suid];
            if s.drained || s.faulted {
                continue;
            }
            let (sa, sl) = (s.eff_addr.expect("issued"), store_len(&s.inst));
            if sa <= addr && addr + len <= sa + sl {
                let bytes = s.store_data.to_le_bytes();
                let off = (addr - sa) as usize;
                let mut buf = [0u8; 8];
                buf[..len as usize].copy_from_slice(&bytes[off..off + len as usize]);
                return LoadOutcome::Value {
                    value: u64::from_le_bytes(buf),
                    ready: self.cycle + 1,
                };
            }
        }

        // Memory path. Bounds check against the architectural image.
        if addr.checked_add(len).is_none_or(|end| end > self.mem.len() as u64) {
            return LoadOutcome::Fault;
        }
        let granules = self.ssb.granules_of(addr, len);
        let is_arch = self.arch_tid() == v.tid;
        if is_arch {
            // Dispatched directly to the L1D, but still updates the
            // conflict detector (§4, "they still update the conflict
            // detector").
            let ready = self.hier.access_data(v.pc as u64, addr, AccessKind::Load, self.cycle);
            self.conflict.on_read(v.tid, &granules);
            #[cfg(feature = "verify")]
            self.verify_load_granules(v.tid, &granules);
            let value = self.mem.read(addr, len).expect("bounds checked");
            LoadOutcome::Value { value, ready }
        } else {
            // SSB lookup in parallel with the L1D (paper: 3-cycle reads
            // including the L1D lookup). The L1D access also models the
            // prefetching side effect of (possibly failed) speculation.
            let order = self.slice_order(v.tid);
            let (bytes, all_ssb) = self.ssb.read(order.as_slice(), addr, len, &self.mem);
            let l1d_ready = self.hier.access_data(v.pc as u64, addr, AccessKind::Load, self.cycle);
            let ssb_ready = self.cycle + self.cfg.ssb.read_latency;
            let ready = if all_ssb { ssb_ready } else { ssb_ready.max(l1d_ready) };
            self.conflict.on_read(v.tid, &granules);
            #[cfg(feature = "verify")]
            self.verify_load_granules(v.tid, &granules);
            let mut buf = [0u8; 8];
            buf[..len as usize].copy_from_slice(&bytes);
            LoadOutcome::Value { value: u64::from_le_bytes(buf), ready }
        }
    }

    /// Processes completion events scheduled for the current cycle: writes
    /// results, wakes consumers, and resolves control flow.
    pub(super) fn do_writeback(&mut self) {
        let mut uids = std::mem::take(&mut self.wb_scratch);
        debug_assert!(uids.is_empty());
        self.completions.drain_due(self.cycle, &mut uids);
        for &uid in &uids {
            if !self.slab.contains(uid) {
                continue; // squashed while in flight
            }
            let (tid, dst, result) = {
                let d = self.slab.get_mut(uid).expect("checked");
                d.completed = true;
                (d.tid, d.dst, d.result)
            };
            if self.observing() {
                self.emit(crate::trace::TraceEvent::Complete {
                    cycle: self.cycle,
                    tid,
                    uid: uid.seq(),
                });
            }
            if let Some(dst) = dst {
                self.prf.write(dst.new, result);
                self.iq.wakeup(dst.new);
            }
            let d = &self.slab[uid];
            let (inst, bp, pc, pred_next, actual_next) =
                (d.inst, d.bp, d.pc, d.pred_next, d.actual_next);
            match inst {
                Inst::Branch { .. } => {
                    self.stats.branches += 1;
                    let lookup = bp.expect("branches carry predictor state");
                    let taken = actual_next != pc + 1;
                    self.bpred.update_branch(tid, pc as u64, lookup, taken);
                    if actual_next != pred_next {
                        self.stats.branch_mispredicts += 1;
                        self.recover_from_mispredict(tid, uid);
                    }
                }
                Inst::JumpReg { .. } => {
                    self.bpred.update_target(pc as u64, actual_next);
                    if actual_next != pred_next || self.ctx[tid].fetch_stalled_indirect {
                        self.recover_from_mispredict(tid, uid);
                    }
                }
                _ => {}
            }
        }
        uids.clear();
        self.wb_scratch = uids;
    }

    /// Redirects fetch and squashes the wrong path after a mispredicted
    /// control instruction `uid` in threadlet `tid`.
    fn recover_from_mispredict(&mut self, tid: usize, uid: Uid) {
        if self.observing() {
            let d = &self.slab[uid];
            self.emit(crate::trace::TraceEvent::Mispredict {
                cycle: self.cycle,
                tid,
                pc: d.pc,
                actual: d.actual_next,
            });
        }
        self.squash_younger_in_threadlet(tid, uid);
        if tid == self.arch_tid() {
            self.recovery_until =
                self.recovery_until.max(self.cycle + self.cfg.core.frontend_latency);
        }
        let d = &self.slab[uid];
        let (region, iters) = d.region_after;
        let next = d.actual_next;
        let t = &mut self.ctx[tid];
        t.fetch_pc = next;
        t.fetch_ready = self.cycle + self.cfg.core.frontend_latency;
        t.fetch_halted = false;
        t.fetch_halt_is_reattach = false;
        t.fetch_stalled_indirect = false;
        t.fetch_queue.clear();
        t.fetch_line = None;
        t.fetch_region = region;
        t.fetch_iters = iters;
        t.ren_region = region;
        t.ren_iters = iters;
    }
}

enum LoadOutcome {
    Value { value: u64, ready: u64 },
    Fault,
}

fn store_len(inst: &Inst) -> u64 {
    match inst {
        Inst::Store { size, .. } => size.bytes(),
        _ => unreachable!("store_len on non-store"),
    }
}
