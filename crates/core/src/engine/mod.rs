//! The LoopFrog out-of-order core (paper §4, Figure 3).
//!
//! An 8-wide, cycle-level pipeline shared by up to four threadlet contexts.
//! Fetch, decode/rename, issue, execution, and commit resources are
//! dynamically shared; each threadlet owns its program counter, fetch queue,
//! rename map, and logical ROB/LSQ slices. The speculative state buffer,
//! conflict detector, checkpoint store, and iteration-packing predictors
//! implement the paper's threadlet execution model; with `speculation`
//! disabled the same core is the paper's baseline (hints execute as NOPs).
//!
//! Stage methods live in the sibling modules: [`fetch`], [`rename_stage`],
//! [`issue`], [`commit`], and [`squash`].

mod coherence;
mod commit;
mod fetch;
mod issue;
mod rename_stage;
mod squash;
#[cfg(test)]
mod tests;
#[cfg(feature = "verify")]
mod verify_checks;

use crate::arena::InstArena;
use crate::bloom::BloomConflictDetector;
use crate::config::LoopFrogConfig;
use crate::conflict::ConflictDetector;
use crate::deselect::Deselector;
use crate::dyninst::Uid;
use crate::packing::PackingPredictors;
use crate::profiler::{Profiler, Stage};
use crate::ssb::Ssb;
use crate::stats::{SimResult, SimStats, SimStop};
use crate::telemetry::{CycleBucket, IntervalSample, IntervalSampler, Telemetry};
use crate::threadlet::{CtxState, Threadlet};
use crate::trace::{TraceEvent, Tracer};
use crate::wheel::CompletionWheel;
use lf_isa::fast::Checkpoint;
use lf_isa::{Memory, Program, NUM_ARCH_REGS};
use lf_uarch::rename::RenameMap;
use lf_uarch::{BranchPredictor, FuPools, IssueQueue, MemHierarchy, PhysRegFile};
use std::collections::VecDeque;
use std::fmt;

/// Errors terminating a simulation abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// An architectural memory access faulted (program bug).
    Fault {
        /// Program counter of the faulting instruction.
        pc: usize,
        /// Faulting effective address.
        addr: u64,
    },
    /// The architectural program counter left the program.
    PcOutOfRange {
        /// The faulting PC.
        pc: usize,
    },
    /// No instruction committed for an implausibly long time (internal
    /// deadlock; indicates a simulator bug).
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Fault { pc, addr } => {
                write!(f, "architectural memory fault at pc {pc}, address {addr:#x}")
            }
            SimError::PcOutOfRange { pc } => write!(f, "architectural pc {pc} out of range"),
            SimError::Deadlock { cycle } => write!(f, "no commit progress by cycle {cycle}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Cycles without any architectural commit before the watchdog trips.
const WATCHDOG_CYCLES: u64 = 200_000;

/// How often (in cycles) the step loop consults the wall-clock deadline.
/// A power of two so the check is a mask; coarse enough that the common
/// undeadlined case pays one branch per cycle and armed runs pay one
/// `Instant::now()` per four thousand cycles.
const DEADLINE_CHECK_CYCLES: u64 = 4096;

/// Hard cap on threadlet contexts (sizes the inline ordering lists used on
/// the per-access hot path).
const MAX_CONTEXTS: usize = 16;

/// A small inline list of context ids (avoids a heap allocation per memory
/// access when computing slice lookup orders).
#[derive(Debug, Clone, Copy)]
pub(crate) struct TidList {
    arr: [usize; MAX_CONTEXTS],
    len: usize,
}

impl TidList {
    fn new() -> TidList {
        TidList { arr: [0; MAX_CONTEXTS], len: 0 }
    }

    fn push(&mut self, t: usize) {
        self.arr[self.len] = t;
        self.len += 1;
    }

    /// The contexts as a slice.
    pub(crate) fn as_slice(&self) -> &[usize] {
        &self.arr[..self.len]
    }
}

/// The LoopFrog core simulator.
///
/// # Examples
///
/// ```
/// use lf_isa::{Memory, ProgramBuilder, reg, AluOp};
/// use loopfrog::{LoopFrogConfig, LoopFrogCore};
///
/// let mut b = ProgramBuilder::new();
/// b.li(reg::x(1), 2);
/// b.alui(AluOp::Add, reg::x(1), reg::x(1), 40);
/// b.halt();
/// let program = b.build()?;
/// let mut core = LoopFrogCore::new(&program, Memory::new(64), LoopFrogConfig::baseline());
/// let result = core.run()?;
/// assert_eq!(result.final_regs[1], 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct LoopFrogCore<'p> {
    pub(crate) cfg: LoopFrogConfig,
    pub(crate) program: &'p Program,
    pub(crate) mem: Memory,
    pub(crate) hier: MemHierarchy,
    pub(crate) bpred: BranchPredictor,
    pub(crate) prf: PhysRegFile,
    pub(crate) iq: IssueQueue<Uid>,
    pub(crate) fu: FuPools,
    pub(crate) ssb: Ssb,
    pub(crate) conflict: ConflictSets,
    pub(crate) packing: PackingPredictors,
    pub(crate) deselect: Deselector,

    pub(crate) ctx: Vec<Threadlet>,
    /// Active contexts, oldest (architectural) first.
    pub(crate) order: VecDeque<usize>,
    pub(crate) slab: InstArena,
    pub(crate) completions: CompletionWheel,
    /// Reused per-cycle scratch for writeback's completion drain.
    pub(crate) wb_scratch: Vec<Uid>,

    pub(crate) cycle: u64,
    pub(crate) rob_occupancy: usize,
    pub(crate) lq_occupancy: usize,
    pub(crate) sq_occupancy: usize,

    pub(crate) stats: SimStats,
    pub(crate) telem: Telemetry,
    pub(crate) tracer: Option<Box<dyn Tracer>>,
    /// Sampled wall-clock stage profiler (see [`crate::profiler`]); `None`
    /// unless [`LoopFrogCore::enable_profiler`] was called.
    pub(crate) profiler: Option<Profiler>,
    /// When set, [`LoopFrogCore::finish`] reports the flight recorder's
    /// live end-of-run window instead of the pre-squash capture (armed by
    /// [`LoopFrogCore::arm_flight_recorder_live`] for on-demand dumps).
    pub(crate) recorder_live_dump: bool,
    pub(crate) halted: bool,
    pub(crate) fault: Option<SimError>,
    /// Harness-side wall-clock watchdog; checked every
    /// [`DEADLINE_CHECK_CYCLES`] cycles in the step loop.
    pub(crate) deadline: Option<std::time::Instant>,
    pub(crate) last_commit_cycle: u64,

    /// Instructions committed by the current cycle's commit stage (cycle
    /// accounting's productive slots).
    pub(crate) committed_this_cycle: usize,
    /// Front-end recovery window after the latest squash or misprediction.
    pub(crate) recovery_until: u64,
    /// Cycle of the latest SSB-overflow drain stall (accounting signal).
    pub(crate) overflow_stall_cycle: u64,
    /// Structural back-pressure observed by rename this cycle.
    pub(crate) rename_stall: RenameStall,
    /// Invariant log and lockstep boundary recorder (verify builds only).
    #[cfg(feature = "verify")]
    pub(crate) verify: crate::verify::VerifyState,
}

/// Which shared structure blocked rename this cycle (reset every tick).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RenameStall {
    pub(crate) rob: bool,
    pub(crate) iq: bool,
    pub(crate) lsq: bool,
}

impl fmt::Debug for LoopFrogCore<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LoopFrogCore")
            .field("cycle", &self.cycle)
            .field("order", &self.order)
            .field("rob_occupancy", &self.rob_occupancy)
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

impl<'p> LoopFrogCore<'p> {
    /// Creates a core over `program` with the given initial memory image.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero threadlets or a
    /// physical register file smaller than the architectural state).
    pub fn new(program: &'p Program, mem: Memory, cfg: LoopFrogConfig) -> LoopFrogCore<'p> {
        let entry = program.entry();
        LoopFrogCore::with_initial_state(program, mem, &[0; NUM_ARCH_REGS], entry, cfg)
    }

    /// Creates a core resuming from a warm architectural state: register
    /// values `regs` and program counter `entry` (e.g. a SimPoint interval
    /// boundary captured from the golden emulator).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate or `regs` is shorter than
    /// the architectural register count.
    pub fn with_initial_state(
        program: &'p Program,
        mem: Memory,
        regs: &[u64],
        entry: usize,
        cfg: LoopFrogConfig,
    ) -> LoopFrogCore<'p> {
        assert!(cfg.core.threadlets >= 1, "need at least one threadlet context");
        assert!(cfg.core.threadlets <= MAX_CONTEXTS, "at most {MAX_CONTEXTS} threadlet contexts");
        let total_regs = cfg.core.total_phys_regs();
        assert!(total_regs > NUM_ARCH_REGS + 16, "physical register file too small");
        let mut prf = PhysRegFile::new(total_regs);
        let threadlets = cfg.core.threadlets;
        let mut ctx: Vec<Threadlet> = (0..threadlets).map(|_| Threadlet::new_free()).collect();

        // Context 0 starts architectural at the requested entry.
        ctx[0].state = CtxState::Active;
        ctx[0].epoch = 0;
        ctx[0].fetch_pc = entry;
        ctx[0].map = Some(RenameMap::new_with_values(&mut prf, regs));
        let mut order = VecDeque::new();
        order.push_back(0);

        LoopFrogCore {
            hier: MemHierarchy::new(cfg.mem.clone()),
            bpred: BranchPredictor::new(threadlets),
            iq: IssueQueue::new(cfg.core.iq_size),
            fu: FuPools::new(&cfg.core.fu),
            ssb: Ssb::new(&cfg.ssb, threadlets),
            conflict: match cfg.ssb.bloom {
                None => ConflictSets::Exact(ConflictDetector::new(threadlets)),
                Some((bits, hashes)) => {
                    ConflictSets::Bloom(BloomConflictDetector::new(threadlets, bits, hashes))
                }
            },
            packing: PackingPredictors::new(&cfg.packing),
            deselect: Deselector::new(&cfg.deselect),
            ctx,
            order,
            slab: InstArena::new(),
            completions: CompletionWheel::new(),
            wb_scratch: Vec::new(),
            cycle: 0,
            rob_occupancy: 0,
            lq_occupancy: 0,
            sq_occupancy: 0,
            stats: SimStats::new(threadlets),
            telem: Telemetry::new(&cfg),
            tracer: None,
            profiler: None,
            recorder_live_dump: false,
            halted: false,
            fault: None,
            deadline: None,
            last_commit_cycle: 0,
            committed_this_cycle: 0,
            recovery_until: 0,
            overflow_stall_cycle: u64::MAX,
            rename_stall: RenameStall::default(),
            #[cfg(feature = "verify")]
            verify: crate::verify::VerifyState::default(),
            prf,
            mem,
            program,
            cfg,
        }
    }

    /// Creates a core resuming from a fast-tier [`Checkpoint`]: restores
    /// the architectural state (registers, memory image, program counter)
    /// exactly, then installs the checkpoint's functional-warming hints
    /// into the microarchitecture — recorded branch outcomes replayed
    /// through the branch predictor (training TAGE/loop tables and
    /// leaving context 0's global history where live execution would),
    /// indirect targets installed in the BTB, and the fetch-line and
    /// data-access streams warm-filled into the cache tags and stride
    /// prefetchers in recorded order (stream position as the LRU clock).
    ///
    /// Warming establishes *state*, never *events*: `SimStats` and all
    /// cache/DRAM counters still start from zero, and
    /// [`LoopFrogCore::committed_insts`] counts from zero after restore,
    /// so `run_until_committed` targets are relative to the checkpoint.
    /// Callers wanting SMARTS-style detailed warm-up simply run a bounded
    /// number of committed instructions before the measured window.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint was taken from a different program (code
    /// fingerprint mismatch) or the configuration is degenerate.
    pub fn from_checkpoint(
        program: &'p Program,
        ckpt: &Checkpoint,
        cfg: LoopFrogConfig,
    ) -> LoopFrogCore<'p> {
        assert_eq!(
            ckpt.code_fingerprint,
            program.code_fingerprint(),
            "checkpoint belongs to a different program"
        );
        let mut core =
            LoopFrogCore::with_initial_state(program, ckpt.mem.clone(), &ckpt.regs, ckpt.pc, cfg);
        for &(pc, taken) in &ckpt.hints.branches {
            core.bpred.warm_branch(0, pc as u64, taken);
        }
        for &(pc, target) in &ckpt.hints.indirect_targets {
            core.bpred.update_target(pc as u64, target as usize);
        }
        // Replay the two access streams on one shared clock so I-side and
        // D-side recency stay comparable in the shared L2.
        let mut seq = 0u64;
        for &line in &ckpt.hints.fetch_lines {
            core.hier.warm_inst(line * 64, seq);
            seq += 1;
        }
        for a in &ckpt.hints.mem_accesses {
            core.hier.warm_data(a.pc as u64, a.addr, seq);
            seq += 1;
        }
        core
    }

    /// The context id of the architectural (oldest) threadlet.
    pub(crate) fn arch_tid(&self) -> usize {
        *self.order.front().expect("at least one active threadlet")
    }

    /// The active context ids strictly younger than `tid`, old → young.
    pub(crate) fn younger_than(&self, tid: usize) -> TidList {
        let mut v = TidList::new();
        let mut seen = false;
        for &t in &self.order {
            if seen {
                v.push(t);
            }
            if t == tid {
                seen = true;
            }
        }
        debug_assert!(seen, "tid active");
        v
    }

    /// The slice lookup order for a read by `tid`: all active contexts from
    /// the oldest up to and including `tid` (oldest → newest).
    pub(crate) fn slice_order(&self, tid: usize) -> TidList {
        let mut v = TidList::new();
        for &t in &self.order {
            v.push(t);
            if t == tid {
                break;
            }
        }
        v
    }

    /// Simulates one cycle.
    fn tick(&mut self) -> Result<(), SimError> {
        self.rename_stall = RenameStall::default();
        // Sampled self-profiling: on a sampled tick every stage call is
        // wall-clock timed; otherwise each stage pays one `Option` test.
        let sampling = self.profiler.is_some() && Profiler::is_sample(self.cycle);
        if sampling {
            self.profiler.as_mut().expect("sampling implies profiler").count_tick();
        }
        let t0 = sampling.then(std::time::Instant::now);
        self.do_commit()?;
        self.prof(Stage::Commit, t0);
        if self.halted {
            // The halting partial cycle is not counted in `stats.cycles`,
            // so it gets no accounting slots either (the sum invariant
            // holds over counted cycles only).
            return Ok(());
        }
        // Contexts freed by retirement can immediately host a deferred
        // spawn, keeping the epoch chain full.
        let t0 = sampling.then(std::time::Instant::now);
        self.service_pending_spawns();
        self.prof(Stage::Spawn, t0);
        let t0 = sampling.then(std::time::Instant::now);
        self.do_writeback();
        self.prof(Stage::Writeback, t0);
        let t0 = sampling.then(std::time::Instant::now);
        self.do_issue();
        self.prof(Stage::Issue, t0);
        let t0 = sampling.then(std::time::Instant::now);
        self.do_rename();
        self.prof(Stage::Rename, t0);
        let t0 = sampling.then(std::time::Instant::now);
        self.do_fetch();
        self.prof(Stage::Fetch, t0);

        // Activity statistics (Figure 7): contexts actively executing.
        let active = self
            .order
            .iter()
            .filter(|&&t| self.ctx[t].state == CtxState::Active && !self.ctx[t].finished)
            .count();
        self.stats.cycles_with_active[active.min(self.cfg.core.threadlets)] += 1;
        let in_region =
            self.order.len() > 1 || self.order.iter().any(|&t| self.ctx[t].ren_region.is_some());
        if in_region {
            self.stats.region_cycles += 1;
        }

        // Cycle accounting: every one of this cycle's commit slots goes to
        // exactly one bucket — committed slots are productive, the rest are
        // attributed to a single stall cause.
        let committed = self.committed_this_cycle as u64;
        let width = self.cfg.core.commit_width as u64;
        self.telem.accounting.add(CycleBucket::BaseCommit, committed);
        if committed < width {
            let cause = self.classify_stall();
            self.telem.accounting.add(cause, width - committed);
        }
        self.telem.commit_bandwidth.record(committed);
        self.telem.rob_occupancy.record(self.rob_occupancy as u64);
        self.telem.iq_occupancy.record(self.iq.len() as u64);

        #[cfg(feature = "verify")]
        self.verify_tick();

        self.cycle += 1;
        self.stats.cycles = self.cycle;
        if self.telem.sampler.is_some() {
            let sample = self.interval_sample();
            if let Some(s) = &mut self.telem.sampler {
                s.on_cycle(sample.cycle, sample);
            }
        }
        Ok(())
    }

    /// Records a sampled stage duration (no-op on unsampled ticks).
    #[inline]
    fn prof(&mut self, stage: Stage, t0: Option<std::time::Instant>) {
        if let Some(t0) = t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            if let Some(p) = &mut self.profiler {
                p.record(stage, ns);
            }
        }
    }

    /// A cumulative snapshot of the headline counters for interval stats.
    fn interval_sample(&self) -> IntervalSample {
        let s = &self.stats;
        IntervalSample {
            cycle: self.cycle,
            committed_insts: s.committed_insts,
            issued_insts: s.issued_insts,
            spawns: s.spawns,
            squashes: s.squashes_conflict
                + s.squashes_sync
                + s.squashes_packing
                + s.squashes_wrong_path
                + s.counters.get("squashes_register"),
        }
    }

    /// Attributes this cycle's idle commit slots to one stall cause, in
    /// priority order (see [`CycleBucket`]).
    fn classify_stall(&self) -> CycleBucket {
        if self.overflow_stall_cycle == self.cycle {
            return CycleBucket::SsbOverflow;
        }
        if self.cycle < self.recovery_until {
            return CycleBucket::SquashRecovery;
        }
        let Some(&tid) = self.order.front() else {
            return CycleBucket::FetchStall;
        };
        let t = &self.ctx[tid];
        match t.rob.front() {
            None if t.finished => CycleBucket::RetireWait,
            None => CycleBucket::FetchStall,
            Some(&uid) => {
                let d = &self.slab[uid];
                if !d.issued {
                    // The head cannot issue: blame observed structural
                    // back-pressure first, then the dependence chain.
                    if self.rename_stall.rob {
                        CycleBucket::RobFull
                    } else if self.rename_stall.iq {
                        CycleBucket::IqFull
                    } else if self.rename_stall.lsq {
                        CycleBucket::LsqFull
                    } else if d.inst.is_load() {
                        CycleBucket::Memory
                    } else {
                        CycleBucket::Exec
                    }
                } else if !d.completed && d.inst.is_load() {
                    CycleBucket::Memory
                } else if !d.completed {
                    CycleBucket::Exec
                } else {
                    // Completed but not committed: an undrained store at
                    // the head waiting on the memory system.
                    CycleBucket::Memory
                }
            }
        }
    }

    /// Runs to completion (architectural `halt`), a fuel limit, or an error.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on architectural faults or internal deadlock.
    pub fn run(&mut self) -> Result<SimResult, SimError> {
        let stop = self.run_until_committed(self.cfg.max_insts)?;
        Ok(self.finish(stop))
    }

    /// Advances the simulation until `target` instructions have committed
    /// architecturally (or the program halts / the cycle budget runs out).
    /// May be called repeatedly for phased measurement (e.g. SimPoint
    /// warmup followed by a measured interval); statistics are cumulative.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on architectural faults or internal deadlock.
    pub fn run_until_committed(&mut self, target: u64) -> Result<SimStop, SimError> {
        while !self.halted {
            if self.stats.committed_insts >= target {
                return Ok(SimStop::MaxInsts);
            }
            if self.cycle >= self.cfg.max_cycles {
                return Ok(SimStop::MaxCycles);
            }
            if self.cycle - self.last_commit_cycle > WATCHDOG_CYCLES {
                return Err(SimError::Deadlock { cycle: self.cycle });
            }
            if let Some(d) = self.deadline {
                if self.cycle & (DEADLINE_CHECK_CYCLES - 1) == 0 && std::time::Instant::now() >= d {
                    return Ok(SimStop::Deadline);
                }
            }
            self.tick()?;
            if let Some(f) = self.fault.take() {
                return Err(f);
            }
        }
        Ok(SimStop::Halted)
    }

    /// Collects final results without running further (for phased runs
    /// driven through [`LoopFrogCore::run_until_committed`]).
    pub fn into_result(mut self, stop: SimStop) -> SimResult {
        self.finish(stop)
    }

    /// Cumulative committed-instruction count (for phased measurement).
    pub fn committed_insts(&self) -> u64 {
        self.stats.committed_insts
    }

    /// Assembles the [`SimResult`], *moving* the accumulated statistics
    /// and telemetry out of the core (they can be megabytes of interval
    /// samples and trace events; cloning them doubled peak memory). The
    /// core is drained afterwards: callers get results exactly once.
    fn finish(&mut self, stop: SimStop) -> SimResult {
        #[cfg(feature = "verify")]
        self.verify_finish();
        // Final architectural registers come from the architectural
        // threadlet's rename map. x0 reads as zero by construction.
        let tid = self.arch_tid();
        let map = self.ctx[tid].map.as_ref().expect("arch threadlet has a map");
        let final_regs: Vec<u64> = (0..NUM_ARCH_REGS)
            .map(|a| {
                let p = map.get(a);
                if self.prf.is_ready(p) {
                    self.prf.read(p)
                } else {
                    0
                }
            })
            .collect();
        let checksum = lf_isa::checksum::fnv1a_u64(&final_regs) ^ self.mem.checksum();

        // Close out the sampler while `self.stats` is still live (the final
        // partial interval snapshots the cumulative counters), then move
        // the statistics out.
        if self.telem.sampler.is_some() {
            let sample = self.interval_sample();
            if let Some(s) = &mut self.telem.sampler {
                s.finish(sample.cycle, sample);
            }
        }
        let mut stats = std::mem::replace(&mut self.stats, SimStats::new(self.ctx.len()));
        stats.counters.merge(self.hier.counters());
        let [(l1i_a, l1i_m), (l1d_a, l1d_m), (l2_a, l2_m)] = self.hier.cache_stats();
        for (k, v) in [
            ("l1i_accesses", l1i_a),
            ("l1i_misses", l1i_m),
            ("l1d_accesses", l1d_a),
            ("l1d_misses", l1d_m),
            ("l2_demand_accesses", l2_a),
            ("l2_demand_misses", l2_m),
            ("ssb_overflows", self.ssb.overflows()),
            ("regions_suppressed", self.deselect.suppressed_count() as u64),
            ("bloom_false_positive_squashes", self.conflict.false_positive_squashes()),
            // Structure-occupancy counters for the self-profiler's data
            // feed: how hard each hot-path structure was actually driven.
            ("arena_high_water", self.slab.high_water() as u64),
            ("wheel_overflow_hits", self.completions.overflow_hits()),
            ("conflict_probes", self.conflict.probes()),
        ] {
            stats.counters.add(k, v);
        }

        // The registry reads the accounting and histograms, so build it
        // before the telemetry is moved out.
        let registry = crate::telemetry::build_registry(&stats, &self.telem, &self.cfg);
        let accounting = std::mem::take(&mut self.telem.accounting);
        let intervals =
            self.telem.sampler.take().map(IntervalSampler::into_samples).unwrap_or_default();
        // A run stopped mid-flight (cycle cap or deadline) reports the
        // *live* event window — what the pipeline was doing when time ran
        // out; normal completions keep the pre-squash capture.
        let live_dump = self.recorder_live_dump;
        let flight_recorder = self
            .telem
            .recorder
            .take()
            .map(|r| match stop {
                _ if live_dump => r.live_window(),
                SimStop::MaxCycles | SimStop::Deadline => r.live_window(),
                _ => r.into_pre_squash(),
            })
            .unwrap_or_default();
        // Wall-clock data stays out of the deterministic statistics: the
        // report rides alongside them and is rendered only by callers that
        // asked for profiling.
        let profile = self.profiler.take().map(|p| p.report(self.cycle));

        SimResult {
            stop,
            stats,
            checksum,
            final_regs,
            registry,
            accounting,
            intervals,
            flight_recorder,
            profile,
        }
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The architectural memory image.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Arms a wall-clock watchdog: once `deadline` passes, the step loop
    /// stops with [`SimStop::Deadline`] at its next check (every
    /// [`DEADLINE_CHECK_CYCLES`] cycles). The harness uses this to convert
    /// a livelocked simulation into a structured budget failure instead of
    /// hanging the worker pool; a deadline-stopped run's results are
    /// partial and must not be treated as a completed simulation.
    pub fn set_deadline(&mut self, deadline: std::time::Instant) {
        self.deadline = Some(deadline);
    }

    /// Attaches a pipeline-event observer (see [`crate::trace`]). Pass a
    /// [`crate::TextTracer`] for a gem5-style textual trace.
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Detaches and returns the tracer, if one was attached.
    pub fn take_tracer(&mut self) -> Option<Box<dyn Tracer>> {
        self.tracer.take()
    }

    /// Enables the sampled wall-clock stage profiler (see
    /// [`crate::profiler`]). A core-side switch rather than a config field:
    /// profiled and unprofiled runs share a config fingerprint, so the
    /// harness's dedup/cache/determinism guarantees are unaffected. The
    /// report is returned in [`SimResult::profile`].
    pub fn enable_profiler(&mut self) {
        self.profiler = Some(Profiler::new());
    }

    /// Arms the flight recorder at `depth` events for an on-demand dump:
    /// [`LoopFrogCore::finish`] will report the live end-of-run window —
    /// the last `depth` events before the run ended, however it ended —
    /// instead of the pre-squash capture. Like
    /// [`LoopFrogCore::enable_profiler`], a core-side switch so the config
    /// fingerprint (and with it dedup and caching) is unaffected.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn arm_flight_recorder_live(&mut self, depth: usize) {
        self.telem.recorder = Some(crate::telemetry::FlightRecorder::new(depth));
        self.recorder_live_dump = true;
    }

    /// Whether any event observer (tracer or flight recorder) is active.
    /// Emit sites check this before constructing an event so the common
    /// unobserved case pays nothing.
    #[inline]
    pub(crate) fn observing(&self) -> bool {
        self.tracer.is_some() || self.telem.recorder.is_some()
    }

    /// Emits a trace event to the flight recorder and/or tracer.
    #[inline]
    pub(crate) fn emit(&mut self, ev: TraceEvent) {
        if let Some(r) = &mut self.telem.recorder {
            r.push(&ev);
        }
        if let Some(t) = &mut self.tracer {
            t.event(&ev);
        }
    }

    /// A human-readable snapshot of threadlet and window state, for
    /// debugging stalls.
    pub fn dump_state(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cycle {} order {:?} rob_occ {} iq {} lq {} sq {}",
            self.cycle,
            self.order,
            self.rob_occupancy,
            self.iq.len(),
            self.lq_occupancy,
            self.sq_occupancy
        );
        for (i, t) in self.ctx.iter().enumerate() {
            let head = t.rob.front().map(|&u| {
                let d = &self.slab[u];
                format!(
                    "pc{} {:?} issued={} completed={} drained={} faulted={}",
                    d.pc, d.inst, d.issued, d.completed, d.drained, d.faulted
                )
            });
            let _ = writeln!(out,
                "ctx{i}: {:?} epoch {} finished {} fhalt {} fstall {} fpc {} fready {} region {:?}/{} roblen {} head {:?}",
                t.state, t.epoch, t.finished, t.fetch_halted, t.fetch_stalled_indirect,
                t.fetch_pc, t.fetch_ready, t.ren_region, t.ren_iters, t.rob.len(), head);
        }
        out
    }

    /// Finds a free threadlet context whose SSB slice has finished flushing.
    pub(crate) fn find_free_context(&self) -> Option<usize> {
        (0..self.ctx.len()).find(|&i| {
            self.ctx[i].state == CtxState::Free && self.ctx[i].slice_flush_until <= self.cycle
        })
    }
}

/// Conflict-set implementation selected by [`crate::SsbConfig::bloom`]:
/// exact sets (the paper's idealized filters) or real Bloom filters.
#[derive(Debug, Clone)]
pub(crate) enum ConflictSets {
    Exact(ConflictDetector),
    Bloom(BloomConflictDetector),
}

impl ConflictSets {
    pub(crate) fn clear(&mut self, slot: usize) {
        match self {
            ConflictSets::Exact(c) => c.clear(slot),
            ConflictSets::Bloom(c) => c.clear(slot),
        }
    }

    pub(crate) fn on_read(&mut self, slot: usize, granules: &[u64]) {
        match self {
            ConflictSets::Exact(c) => c.on_read(slot, granules),
            ConflictSets::Bloom(c) => c.on_read(slot, granules),
        }
    }

    pub(crate) fn on_write(
        &mut self,
        slot: usize,
        granules: &[u64],
        younger: &[usize],
    ) -> Option<usize> {
        match self {
            ConflictSets::Exact(c) => c.on_write(slot, granules, younger),
            ConflictSets::Bloom(c) => c.on_write(slot, granules, younger),
        }
    }

    pub(crate) fn false_positive_squashes(&self) -> u64 {
        match self {
            ConflictSets::Exact(_) => 0,
            ConflictSets::Bloom(c) => c.false_positive_squashes(),
        }
    }

    pub(crate) fn probes(&self) -> u64 {
        match self {
            ConflictSets::Exact(c) => c.probes(),
            ConflictSets::Bloom(c) => c.probes(),
        }
    }

    pub(crate) fn has_read(&self, slot: usize, granule: u64) -> bool {
        match self {
            ConflictSets::Exact(c) => c.has_read(slot, granule),
            ConflictSets::Bloom(c) => c.may_have_read(slot, granule),
        }
    }

    pub(crate) fn has_written(&self, slot: usize, granule: u64) -> bool {
        match self {
            ConflictSets::Exact(c) => c.has_written(slot, granule),
            ConflictSets::Bloom(c) => c.may_have_written(slot, granule),
        }
    }
}

/// Convenience entry point: simulates `program` on `mem` under `cfg`.
///
/// # Errors
///
/// Returns [`SimError`] on architectural faults or internal deadlock.
pub fn simulate(
    program: &Program,
    mem: Memory,
    cfg: LoopFrogConfig,
) -> Result<SimResult, SimError> {
    LoopFrogCore::new(program, mem, cfg).run()
}
