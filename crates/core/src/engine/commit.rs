//! Commit stage: two-level commit (paper §4).
//!
//! Instructions first commit *to their threadlet* in program order (stores
//! drain to the SSB for speculative threadlets, or the L1D for the
//! architectural one, running the Algorithm 1 conflict check). A threadlet
//! then commits *to the architectural state* when it is the oldest,
//! finished, and conflict-checked: its SSB slice is applied atomically and
//! the successor becomes architectural.

use super::{LoopFrogCore, SimError};
use crate::ssb::WriteOutcome;
use lf_isa::Inst;
use lf_uarch::AccessKind;

enum DrainOutcome {
    Done,
    /// The SSB slice is full: the drain stalls until the threadlet becomes
    /// architectural (its stores then bypass the SSB; §4.1.2 allows
    /// stalling or squashing — stalling is livelock-free because the
    /// squashed epoch would re-create the same footprint).
    Stall,
}

impl LoopFrogCore<'_> {
    /// Commits up to `commit_width` instructions, oldest threadlet first,
    /// and retires/promotes threadlets.
    pub(super) fn do_commit(&mut self) -> Result<(), SimError> {
        self.committed_this_cycle = 0;
        let budget_start = self.cfg.core.commit_width;
        let mut budget = budget_start;
        let mut idx = 0;
        while budget > 0 && !self.halted && idx < self.order.len() {
            let tid = self.order[idx];
            let is_arch = idx == 0;

            let mut stalled = false;
            while budget > 0 {
                let Some(&uid) = self.ctx[tid].rob.front() else { break };
                let (completed, faulted, is_store, drained) = {
                    let d = &self.slab[uid];
                    (d.completed, d.faulted, d.inst.is_store(), d.drained)
                };
                if faulted && is_arch {
                    let d = &self.slab[uid];
                    return Err(SimError::Fault { pc: d.pc, addr: d.eff_addr.unwrap_or(0) });
                }
                if !completed {
                    break; // faulted instructions never complete
                }
                if is_store && !drained {
                    match self.drain_store(tid, uid, is_arch)? {
                        DrainOutcome::Done => {}
                        DrainOutcome::Stall => {
                            stalled = true;
                            break;
                        }
                    }
                }
                self.commit_one(tid, uid, is_arch);
                budget -= 1;
                self.committed_this_cycle += 1;
                if self.halted {
                    return Ok(());
                }
                if self.ctx[tid].finished {
                    break;
                }
            }
            if stalled {
                idx += 1;
                continue;
            }

            // Threadlet-level commit: retire the oldest once finished and
            // fully drained, after the conflict-check delay. A finished
            // threadlet whose deferred spawn can never fire (e.g. a single
            // threadlet context) resumes sequential execution at its
            // continuation instead.
            if is_arch && self.ctx[tid].finished && self.ctx[tid].rob.is_empty() {
                if self.ctx[tid].pending_spawn.is_some() {
                    self.service_pending_spawns();
                    if self.ctx[tid].pending_spawn.is_some() {
                        // An architectural threadlet holding a deferred
                        // spawn is necessarily alone (only its own spawn
                        // could create younger threadlets), so no context
                        // will ever free: cancel and resume sequentially
                        // past the halting reattach.
                        let p = self.ctx[tid].pending_spawn.take().expect("checked");
                        p.map.release_all(&mut self.prf);
                        let t = &mut self.ctx[tid];
                        t.finished = false;
                        t.fetch_halted = false;
                        t.fetch_halt_is_reattach = false;
                        t.retire_at = None;
                        t.ren_region = None;
                        t.ren_iters = 0;
                        t.fetch_region = None;
                        t.fetch_iters = 0;
                        idx += 1;
                        continue;
                    }
                }
                match self.ctx[tid].retire_at {
                    None => {
                        self.ctx[tid].retire_at =
                            Some(self.cycle + self.cfg.ssb.conflict_check_latency);
                        idx += 1;
                    }
                    Some(at) if self.cycle >= at => {
                        self.retire_arch(tid);
                        // The promoted successor may commit this same cycle.
                        continue;
                    }
                    Some(_) => idx += 1,
                }
            } else {
                idx += 1;
            }
        }
        // Stall attribution (top-down-style): when nothing committed this
        // cycle, classify what the architectural threadlet's head waits on.
        if budget == budget_start && !self.halted && !self.order.is_empty() {
            let tid = self.arch_tid();
            let t = &self.ctx[tid];
            let reason = match t.rob.front() {
                None if t.finished => "stall_retire_wait",
                None => "stall_frontend",
                Some(&uid) => {
                    let d = &self.slab[uid];
                    if !d.issued {
                        "stall_not_issued"
                    } else if !d.completed && d.inst.is_load() {
                        "stall_load"
                    } else if !d.completed {
                        "stall_exec"
                    } else {
                        "stall_drain"
                    }
                }
            };
            self.stats.counters.add(reason, 1);
        }
        Ok(())
    }

    /// Commits one completed instruction to its threadlet.
    fn commit_one(&mut self, tid: usize, uid: crate::dyninst::Uid, is_arch: bool) {
        let front = self.ctx[tid].rob.pop_front();
        debug_assert_eq!(front, Some(uid));
        self.rob_occupancy -= 1;
        let d = self.slab.remove(uid).expect("committing live instruction");
        if let Some(dst) = d.dst {
            self.prf.release(dst.old);
        }
        if d.inst.is_load() {
            let f = self.ctx[tid].lq.pop_front();
            debug_assert_eq!(f, Some(uid));
            self.lq_occupancy -= 1;
        }
        if d.inst.is_store() {
            let f = self.ctx[tid].sq.pop_front();
            debug_assert_eq!(f, Some(uid));
            self.sq_occupancy -= 1;
        }

        {
            let t = &mut self.ctx[tid];
            for u in d.inst.uses().iter().flatten() {
                if !t.c_written_regs.contains(&u.index()) {
                    t.c_read_before_write.insert(u.index());
                }
            }
            if let Some(def) = d.inst.def() {
                t.c_written_regs.insert(def.index());
            }
        }
        if self.observing() {
            self.emit(crate::trace::TraceEvent::Commit {
                cycle: self.cycle,
                tid,
                uid: uid.seq(),
                pc: d.pc,
                architectural: is_arch,
            });
        }
        self.ctx[tid].epoch_committed_total += 1;
        if is_arch {
            self.stats.commits_arch += 1;
            self.stats.committed_insts += 1;
        } else {
            self.ctx[tid].committed_this_epoch += 1;
        }
        self.last_commit_cycle = self.cycle;

        // Hint and halt effects take place at in-order commit, where they
        // are non-speculative within the threadlet.
        if let Some((lf_isa::HintKind::Detach, region)) = d.inst.hint() {
            self.deselect.note_suppressed_detach(region);
        }
        if !d.iv_capture.is_empty() {
            if let Some((_, region)) = d.inst.hint() {
                for &(a, p) in &d.iv_capture {
                    debug_assert!(self.prf.is_ready(p), "older producer committed first");
                    let v = self.prf.read(p);
                    self.packing.train_value(region, a, v);
                }
            }
        }
        if d.is_sync_exit {
            if let Some((_, region)) = d.inst.hint() {
                // Cancel a still-deferred spawn for this region...
                let cancel = matches!(
                    &self.ctx[tid].pending_spawn,
                    Some(p) if p.region == region
                );
                if cancel {
                    let p = self.ctx[tid].pending_spawn.take().expect("checked");
                    p.map.release_all(&mut self.prf);
                }
                // ...and squash a live successor spawned for it.
                if let Some(child) = self.ctx[tid].spawned_child {
                    if self.ctx[child].state == crate::threadlet::CtxState::Active
                        && self.ctx[child].parent == Some(tid)
                        && self.ctx[child].spawn_region == Some(region)
                    {
                        self.stats.squashes_sync += 1;
                        self.squash_threadlets_from(child, false);
                    }
                }
            }
        }
        if d.is_halting_reattach {
            self.ctx[tid].finished = true;
            self.verify_packing(tid);
        }
        if matches!(d.inst, Inst::Halt) {
            if is_arch {
                self.halted = true;
            } else {
                self.ctx[tid].finished = true;
                self.ctx[tid].finished_with_halt = true;
            }
        }
    }

    /// Drains a store at commit: architectural stores write the L1D and
    /// memory; speculative stores write the threadlet's SSB slice. Both run
    /// the Algorithm 1 write check against younger threadlets.
    fn drain_store(
        &mut self,
        tid: usize,
        uid: crate::dyninst::Uid,
        is_arch: bool,
    ) -> Result<DrainOutcome, SimError> {
        let (pc, addr, len, data) = {
            let d = &self.slab[uid];
            let len = match d.inst {
                Inst::Store { size, .. } => size.bytes(),
                _ => unreachable!("drain of non-store"),
            };
            (d.pc, d.eff_addr.expect("issued store"), len, d.store_data)
        };
        let granules = self.ssb.granules_of(addr, len);

        if is_arch {
            self.mem.write(addr, len, data).map_err(|_| SimError::Fault { pc, addr })?;
            let _ = self.hier.access_data(pc as u64, addr, AccessKind::Store, self.cycle);
            let younger = self.younger_than(tid);
            if let Some(victim) = self.conflict.on_write(tid, &granules, younger.as_slice()) {
                self.stats.squashes_conflict += 1;
                if let Some(r) = self.ctx[victim].spawn_region {
                    self.deselect.on_conflict(r);
                }
                self.squash_threadlets_from(victim, true);
            }
        } else {
            // Precompute this threadlet's pre-store view of the granule
            // range, for read-filling partially written granules.
            let g = self.ssb.granule();
            let range_start = (addr / g) * g;
            let range_end = ((addr + len - 1) / g + 1) * g;
            let order = self.slice_order(tid);
            let (view, _) =
                self.ssb.read(order.as_slice(), range_start, range_end - range_start, &self.mem);
            let bytes = data.to_le_bytes();
            let outcome = self
                .ssb
                .write(tid, addr, &bytes[..len as usize], |a| view[(a - range_start) as usize]);
            match outcome {
                WriteOutcome::Overflow => {
                    // Speculative writes cannot be discarded: stall the
                    // drain until this threadlet is architectural.
                    self.overflow_stall_cycle = self.cycle;
                    self.stats.squashes_overflow += 1;
                    if !self.ctx[tid].overflow_reported {
                        self.ctx[tid].overflow_reported = true;
                        if let Some(r) = self.ctx[tid].spawn_region {
                            self.deselect.on_overflow(r);
                        }
                    }
                    return Ok(DrainOutcome::Stall);
                }
                WriteOutcome::Ok { fill_reads } => {
                    if !fill_reads.is_empty() {
                        // The read-fill is an additional (false-sharing)
                        // read by this threadlet.
                        self.conflict.on_read(tid, &fill_reads);
                    }
                    let younger = self.younger_than(tid);
                    if let Some(victim) = self.conflict.on_write(tid, &granules, younger.as_slice())
                    {
                        self.stats.squashes_conflict += 1;
                        if let Some(r) = self.ctx[victim].spawn_region {
                            self.deselect.on_conflict(r);
                        }
                        self.squash_threadlets_from(victim, true);
                    }
                }
            }
        }
        #[cfg(feature = "verify")]
        self.verify_store_granules(tid, &granules);
        if let Some(d) = self.slab.get_mut(uid) {
            d.drained = true;
            d.completed = true;
        }
        Ok(DrainOutcome::Done)
    }

    /// Verifies iteration-packing predictions at the parent's halting
    /// reattach: compares each predicted induction-variable start value with
    /// the parent's final value, patching unconsumed mispredictions in place
    /// or squash-restarting the child (§4.3).
    fn verify_packing(&mut self, parent: usize) {
        let Some(child) = self.ctx[parent].spawned_child else { return };
        if self.ctx[child].predicted_regs.is_empty() {
            return;
        }
        let preds = self.ctx[child].predicted_regs.clone();
        for (i, (arch, predicted)) in preds.iter().enumerate() {
            let p = self.ctx[parent].map.as_ref().expect("map").get(*arch);
            debug_assert!(self.prf.is_ready(p), "parent epoch fully committed");
            let actual = self.prf.read(p);
            if actual == *predicted {
                continue;
            }
            let ct = &self.ctx[child];
            let consumed =
                ct.c_read_before_write.contains(arch) || ct.read_before_write.contains(arch);
            if !consumed && ct.c_written_regs.contains(arch) {
                continue; // the child overwrote the prediction unread
            }
            if !consumed
                && self.ctx[child].spawned_child.is_none()
                && !self.ctx[child].written_regs.contains(arch)
            {
                // Safe in-place repair: nobody has read the register.
                let cp = self.ctx[child].map.as_ref().expect("map").get(*arch);
                self.prf.patch_value(cp, actual);
                self.ctx[child].predicted_regs[i].1 = actual;
                self.stats.pack_patches += 1;
            } else {
                // The stale value was consumed (or propagated): squash and
                // restart the child from a corrected checkpoint, and stop
                // packing this region until the predictor retrains.
                self.stats.squashes_packing += 1;
                if let Some(region) = self.ctx[child].spawn_region {
                    self.packing.on_mispredict(region, *arch);
                }
                self.squash_threadlets_with_reason(
                    child,
                    true,
                    crate::trace::SquashReason::Packing,
                );
                // After restart the map is a fresh checkpoint clone sharing
                // the predicted physical registers: patch them all.
                for (j, (a2, pred2)) in preds.iter().enumerate() {
                    let p2 = self.ctx[parent].map.as_ref().expect("map").get(*a2);
                    let actual2 = self.prf.read(p2);
                    if actual2 != *pred2 {
                        let cp = self.ctx[child].map.as_ref().expect("map").get(*a2);
                        self.prf.patch_value(cp, actual2);
                        self.ctx[child].predicted_regs[j].1 = actual2;
                    }
                }
                return;
            }
        }
    }

    /// Merges the retiring threadlet's final register state into its
    /// successor. The successor inherited registers at the *detach*, but the
    /// parent's body executes before the successor in program order, so any
    /// register the successor chain never wrote must take the parent's final
    /// value. If the successor *read* a stale value, the body→continuation
    /// register-independence contract (§3) was violated and the successor is
    /// squash-restarted from a corrected checkpoint.
    fn merge_registers_into_successor(&mut self, parent: usize, succ: usize) {
        // Compare against the successor's *inherited* values (its epoch
        // checkpoint): the current map already reflects its own writes.
        let mut diffs: Vec<(usize, lf_uarch::PhysReg)> = Vec::new();
        let mut violation = false;
        {
            let pmap = self.ctx[parent].map.as_ref().expect("parent map");
            let succ_t = &self.ctx[succ];
            let chk = succ_t.checkpoint.as_ref().expect("speculative successor");
            for a in 0..lf_isa::NUM_ARCH_REGS {
                let pp = pmap.get(a);
                let inherited = chk.get(a);
                if pp == inherited {
                    continue;
                }
                debug_assert!(self.prf.is_ready(pp), "retiring threadlet fully committed");
                if !self.prf.is_ready(inherited) || self.prf.read(pp) != self.prf.read(inherited) {
                    diffs.push((a, pp));
                    // A read-before-write anywhere in the epoch (committed
                    // prefix is exact; the renamed set conservatively
                    // includes possible wrong-path reads) consumed the
                    // stale inherited value: violation.
                    if succ_t.c_read_before_write.contains(&a)
                        || succ_t.read_before_write.contains(&a)
                    {
                        violation = true;
                    }
                }
            }
        }
        if diffs.is_empty() {
            return;
        }
        // Patch the checkpoint in every case: a future restart must start
        // from the parent's final (program-order-correct) values.
        {
            let mut chk = self.ctx[succ].checkpoint.take().expect("speculative successor");
            for &(a, pp) in &diffs {
                self.prf.add_ref(pp);
                let old = chk.set(a, pp);
                self.prf.release(old);
            }
            self.ctx[succ].checkpoint = Some(chk);
        }
        if violation {
            // Restart the successor from the corrected checkpoint (its
            // younger chain is recycled and will respawn).
            self.stats.counters.add("squashes_register", 1);
            self.squash_threadlets_with_reason(
                succ,
                true,
                crate::trace::SquashReason::RegisterViolation,
            );
        } else {
            for &(a, pp) in &diffs {
                if self.ctx[succ].c_written_regs.contains(&a) {
                    // The successor's committed write is newer: skip.
                    continue;
                }
                if self.ctx[succ].written_regs.contains(&a) {
                    // An in-flight write already owns the map entry; but if
                    // a branch squash walks it back, the restore target
                    // must be the parent's value, not the stale inherited
                    // register. Patch the oldest in-flight writer's
                    // old-mapping reference.
                    let oldest = self.ctx[succ]
                        .rob
                        .iter()
                        .copied()
                        .find(|&u| self.slab[u].dst.is_some_and(|dst| dst.arch == a))
                        .expect("renamed write is in flight");
                    let d = self.slab.get_mut(oldest).expect("live");
                    let dst = d.dst.as_mut().expect("writer has a destination");
                    self.prf.add_ref(pp);
                    let prev = std::mem::replace(&mut dst.old, pp);
                    self.prf.release(prev);
                    continue;
                }
                // Untouched: point the live map at the parent's value.
                self.prf.add_ref(pp);
                let old = self.ctx[succ].map.as_mut().expect("map").set(a, pp);
                self.prf.release(old);
            }
        }
    }

    /// Retires the architectural threadlet and promotes its successor,
    /// applying the successor's SSB slice to architectural memory atomically
    /// (the `S_arch` increment of §4.1.4).
    fn retire_arch(&mut self, tid: usize) {
        #[cfg(feature = "verify")]
        let boundary = self.verify_boundary_pre(tid);
        if self.observing() {
            self.emit(crate::trace::TraceEvent::Retire {
                cycle: self.cycle,
                tid,
                epoch: self.ctx[tid].epoch,
            });
        }
        if let Some(r) = self.ctx[tid].spawn_region {
            self.deselect.on_retire(r, self.ctx[tid].epoch_committed_total);
        }
        if let Some(&succ) = self.order.get(1) {
            self.merge_registers_into_successor(tid, succ);
        }
        let front = self.order.pop_front();
        debug_assert_eq!(front, Some(tid));
        self.conflict.clear(tid);
        {
            let t = &mut self.ctx[tid];
            if let Some(m) = t.map.take() {
                m.release_all(&mut self.prf);
            }
            if let Some(c) = t.checkpoint.take() {
                c.release_all(&mut self.prf);
            }
            t.state = crate::threadlet::CtxState::Free;
            t.slice_flush_until = t.slice_flush_until.max(self.cycle);
            t.spawned_child = None;
            t.finished = false;
            t.retire_at = None;
        }

        let Some(&succ) = self.order.front() else {
            // The last threadlet retired without a successor: can only
            // happen if the program ended; stop.
            debug_assert!(self.halted, "architectural threadlet retired without successor");
            self.halted = true;
            #[cfg(feature = "verify")]
            self.verify_boundary_post(boundary);
            return;
        };
        // Atomic threadlet commit: the successor's buffered state becomes
        // architecturally visible at once; the slice then flushes in the
        // background, limiting context reuse.
        let lines = self.ssb.take_slice(succ);
        let flush_cycles = lines.len().div_ceil(self.cfg.ssb.flush_lines_per_cycle.max(1)) as u64;
        for (la, bytes, valid) in &lines {
            self.ssb.apply_line(&mut self.mem, *la, bytes, *valid);
        }
        let s = &mut self.ctx[succ];
        s.slice_flush_until = self.cycle + flush_cycles;
        s.parent = None;
        self.stats.commits_spec_success += s.committed_this_epoch;
        self.stats.committed_insts += s.committed_this_epoch;
        s.committed_this_epoch = 0;
        if let Some(c) = s.checkpoint.take() {
            c.release_all(&mut self.prf);
        }
        s.predicted_regs.clear();
        if s.finished_with_halt {
            self.halted = true;
        }
        // A successor spawned *on* its region's reattach hint (the usual
        // compiler placement) commits that hint once beyond program order;
        // count those so boundary recording can subtract them (see
        // `VerifyState::promoted_spawns`). Successors spawned past the
        // reattach start on a program-order instruction and count nothing.
        #[cfg(feature = "verify")]
        if let Some(r) = self.ctx[succ].spawn_region {
            let starts_on_reattach = matches!(
                self.program.insts().get(r.0),
                Some(lf_isa::Inst::Hint { kind: lf_isa::HintKind::Reattach, region })
                    if *region == r
            );
            if starts_on_reattach {
                self.verify.promoted_spawns += 1;
            }
        }
        #[cfg(feature = "verify")]
        self.verify_boundary_post(boundary);
    }
}
