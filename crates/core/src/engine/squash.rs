//! Squash machinery: wrong-path recovery within a threadlet (branch
//! mispredicts) and threadlet-level squash cascades (conflicts, SSB
//! overflow, sync exits, packing mispredictions).
//!
//! Register reclamation is exact thanks to reference counting: walking a
//! ROB slice back restores the rename map instruction by instruction, while
//! a full threadlet squash releases the live map wholesale and (for
//! restarts) re-clones the epoch checkpoint.

use super::LoopFrogCore;
use crate::threadlet::CtxState;
use crate::trace::SquashReason;

impl LoopFrogCore<'_> {
    /// Squashes all instructions of threadlet `tid` younger than `from_uid`
    /// (exclusive), walking the rename map back and discarding any threadlet
    /// spawned by a squashed detach.
    pub(crate) fn squash_younger_in_threadlet(
        &mut self,
        tid: usize,
        from_uid: crate::dyninst::Uid,
    ) {
        let mut spawned_victims = Vec::new();
        while let Some(&tail) = self.ctx[tid].rob.back() {
            if tail <= from_uid {
                break;
            }
            self.ctx[tid].rob.pop_back();
            self.rob_occupancy -= 1;
            let d = self.slab.remove(tail).expect("squashing live instruction");
            if self.observing() {
                self.emit(crate::trace::TraceEvent::Flush {
                    cycle: self.cycle,
                    tid,
                    uid: tail.seq(),
                });
            }
            if let Some(dst) = d.dst {
                // Restore the previous mapping; the map's reference to the
                // new register dies here.
                let cur = self.ctx[tid].map.as_mut().expect("map").set(dst.arch, dst.old);
                self.prf.release(cur);
                if d.epoch_first_write {
                    self.ctx[tid].written_regs.remove(&dst.arch);
                }
            }
            for a in d.epoch_first_rbw.iter().flatten() {
                self.ctx[tid].read_before_write.remove(a);
            }
            if d.inst.is_load() {
                let b = self.ctx[tid].lq.pop_back();
                debug_assert_eq!(b, Some(tail));
                self.lq_occupancy -= 1;
            }
            if d.inst.is_store() {
                debug_assert!(!d.drained, "drained store younger than unresolved branch");
                let b = self.ctx[tid].sq.pop_back();
                debug_assert_eq!(b, Some(tail));
                self.sq_occupancy -= 1;
            }
            if let Some(child) = d.spawned {
                spawned_victims.push(child);
            }
            if d.made_pending {
                if let Some(p) = self.ctx[tid].pending_spawn.take() {
                    p.map.release_all(&mut self.prf);
                }
            }
        }
        self.iq.squash(|u, t| t == tid && u > from_uid);
        for child in spawned_victims {
            self.stats.squashes_wrong_path += 1;
            self.squash_threadlets_with_reason(child, false, SquashReason::WrongPath);
            self.ctx[tid].spawned_child = None;
        }
    }

    /// Squashes threadlet `first` and every younger threadlet. When
    /// `restart_first` is set, `first` restarts from its epoch checkpoint
    /// (the conflict/overflow/packing recovery of §4); otherwise all victims
    /// are recycled (sync exits and wrong-path spawns).
    pub(crate) fn squash_threadlets_from(&mut self, first: usize, restart_first: bool) {
        let reason = if restart_first { SquashReason::Conflict } else { SquashReason::SyncExit };
        self.squash_threadlets_with_reason(first, restart_first, reason);
    }

    /// As [`Self::squash_threadlets_from`], with an explicit trace reason.
    pub(crate) fn squash_threadlets_with_reason(
        &mut self,
        first: usize,
        restart_first: bool,
        reason: SquashReason,
    ) {
        let Some(pos) = self.order.iter().position(|&t| t == first) else {
            return; // already gone
        };
        if self.observing() {
            self.emit(crate::trace::TraceEvent::SquashThreadlets {
                cycle: self.cycle,
                first,
                restart: restart_first,
                reason,
            });
        }
        debug_assert!(pos > 0, "the architectural threadlet is never squashed");
        self.recovery_until = self.recovery_until.max(self.cycle + self.cfg.core.frontend_latency);
        let victims: Vec<usize> = self.order.drain(pos..).collect();
        for (i, &tid) in victims.iter().enumerate() {
            let restart = restart_first && i == 0;
            self.teardown_threadlet(tid, restart);
            if restart {
                self.order.push_back(tid);
            }
        }
        // The spawning parent forgets a recycled child (it may spawn again).
        if !restart_first {
            if let Some(parent) = self.ctx[first].parent {
                if self.ctx[parent].state == CtxState::Active
                    && self.ctx[parent].spawned_child == Some(first)
                {
                    self.ctx[parent].spawned_child = None;
                }
            }
        }
    }

    /// Releases every resource held by threadlet `tid` and either restarts
    /// it from its checkpoint or frees the context.
    fn teardown_threadlet(&mut self, tid: usize, restart: bool) {
        self.iq.squash(|_, t| t == tid);
        while let Some(uid) = self.ctx[tid].rob.pop_front() {
            self.rob_occupancy -= 1;
            let d = self.slab.remove(uid).expect("live");
            if self.observing() {
                self.emit(crate::trace::TraceEvent::Flush {
                    cycle: self.cycle,
                    tid,
                    uid: uid.seq(),
                });
            }
            if let Some(dst) = d.dst {
                self.prf.release(dst.old);
            }
        }
        self.lq_occupancy -= self.ctx[tid].lq.len();
        self.sq_occupancy -= self.ctx[tid].sq.len();
        self.ctx[tid].lq.clear();
        self.ctx[tid].sq.clear();

        self.stats.commits_spec_failed += self.ctx[tid].committed_this_epoch;
        if let Some(p) = self.ctx[tid].pending_spawn.take() {
            p.map.release_all(&mut self.prf);
        }
        if let Some(m) = self.ctx[tid].map.take() {
            m.release_all(&mut self.prf);
        }
        self.ssb.invalidate_slice(tid);
        self.conflict.clear(tid);

        if restart {
            let chk = self.ctx[tid]
                .checkpoint
                .as_ref()
                .expect("restartable threadlet has a checkpoint")
                .clone_with_refs(&mut self.prf);
            self.ctx[tid].map = Some(chk);
            let refill = self.cfg.core.frontend_latency;
            let now = self.cycle;
            self.ctx[tid].reset_for_restart(now, refill);
        } else {
            if let Some(c) = self.ctx[tid].checkpoint.take() {
                c.release_all(&mut self.prf);
            }
            let flush_until = self.ctx[tid].slice_flush_until.max(self.cycle);
            self.ctx[tid] = crate::threadlet::Threadlet::new_free();
            self.ctx[tid].slice_flush_until = flush_until;
        }
    }
}
