//! External-observer (coherence) interface (paper §4.1.4).
//!
//! "Threadlets must be squashed if they can no longer be cleanly committed.
//! For example, if another core modifies or observes shared memory in a way
//! that cannot be reconciled with the accesses of the threadlet due to the
//! architecture's memory model." — and the SSB "participates in the
//! coherence protocol": lines in a threadlet's read set are held in a
//! readable state, lines in its write set in a writable state; an
//! incompatible external request gives the line up and squashes the
//! threadlet.
//!
//! This module exposes that behaviour at the core's boundary: a simulated
//! remote agent performs [`LoopFrogCore::external_write`] /
//! [`LoopFrogCore::external_read`] between cycles. Speculative state is
//! never visible externally — reads return architectural memory only — and
//! any speculative threadlet whose conflict sets intersect the request is
//! squashed so its epoch re-executes against the new memory contents.

use super::LoopFrogCore;
use crate::trace::SquashReason;
use lf_isa::MemError;

impl LoopFrogCore<'_> {
    /// Granules covered by `[addr, addr+len)`, shared with the SSB logic.
    fn request_granules(&self, addr: u64, len: u64) -> Vec<u64> {
        self.ssb.granules_of(addr, len.max(1))
    }

    /// Squashes (restarting the oldest victim) every *speculative* threadlet
    /// whose read- or write-set intersects `granules`; the architectural
    /// threadlet is never squashed — its accesses are already externally
    /// ordered. Returns the number of threadlets squashed.
    fn squash_external_conflicts(&mut self, granules: &[u64], writes: bool) -> usize {
        // Find the oldest speculative threadlet that conflicts: an external
        // WRITE invalidates both readers (stale data) and writers (lost
        // update ordering); an external READ only conflicts with writers
        // (their buffered stores must not be observable, and atomic commit
        // of a line another core is reading cannot be guaranteed).
        let victim = self
            .order
            .iter()
            .skip(1) // the architectural threadlet is exempt
            .copied()
            .find(|&t| {
                granules.iter().any(|&g| {
                    let wr = self.conflict.has_written(t, g);
                    let rd = self.conflict.has_read(t, g);
                    if writes {
                        wr || rd
                    } else {
                        wr
                    }
                })
            });
        match victim {
            Some(v) => {
                let count = self.order.len() - self.order.iter().position(|&t| t == v).unwrap();
                self.stats.counters.add("external_squashes", 1);
                self.squash_threadlets_with_reason(v, true, SquashReason::Conflict);
                count
            }
            None => 0,
        }
    }

    /// An external agent (another core) writes memory. Architectural memory
    /// is updated immediately; speculative threadlets that read or wrote
    /// any affected granule are squashed and re-execute against the new
    /// value, preserving the memory model's ordering guarantees.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the access exceeds the memory image.
    pub fn external_write(&mut self, addr: u64, len: u64, value: u64) -> Result<(), MemError> {
        self.mem.write(addr, len, value)?;
        let granules = self.request_granules(addr, len);
        self.squash_external_conflicts(&granules, true);
        // The architectural threadlet's conflict sets also reflect the new
        // owner of the line: record the external write so a later
        // speculative read-before-this-write is caught by Algorithm 1's
        // normal path... external agents are older than all threadlets, so
        // nothing further is needed: affected speculators were squashed.
        Ok(())
    }

    /// An external agent reads memory. Only committed (architectural) state
    /// is visible — speculation is hidden from the memory system (§4.1.4).
    /// Speculative threadlets holding affected lines *writable* are
    /// squashed (their atomic commit can no longer be guaranteed).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the access exceeds the memory image.
    pub fn external_read(&mut self, addr: u64, len: u64) -> Result<u64, MemError> {
        let v = self.mem.read(addr, len)?;
        let granules = self.request_granules(addr, len);
        self.squash_external_conflicts(&granules, false);
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::LoopFrogConfig;
    use crate::engine::LoopFrogCore;
    use lf_isa::{reg, AluOp, BranchCond, MemSize, Memory, ProgramBuilder};

    /// A hinted loop summing a flag word into each element, so speculative
    /// threadlets hold reads of `flag` and writes of `a[i]`.
    fn flag_loop(trip: i64) -> lf_isa::Program {
        let base = 0x1000;
        let flag = 0x3000i64;
        let mut b = ProgramBuilder::new();
        let cont = b.label("cont");
        let head = b.label("head");
        b.li(reg::x(1), 0);
        b.li(reg::x(2), trip * 8);
        b.li(reg::x(9), flag);
        b.bind(head);
        b.detach(cont);
        b.load(reg::x(3), reg::x(9), 0, MemSize::B8); // shared flag
        b.load(reg::x(4), reg::x(1), base, MemSize::B8);
        b.alu(AluOp::Add, reg::x(4), reg::x(4), reg::x(3));
        b.store(reg::x(4), reg::x(1), base, MemSize::B8);
        b.reattach(cont);
        b.bind(cont);
        b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
        b.branch(BranchCond::Lt, reg::x(1), reg::x(2), head);
        b.sync(cont);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn external_write_squashes_speculative_readers() {
        let p = flag_loop(64);
        let mut mem = Memory::new(0x4000);
        mem.write_u64(0x3000, 5).unwrap();
        let mut core = LoopFrogCore::new(&p, mem, LoopFrogConfig::default());
        // Run partway, then have a "remote core" change the flag.
        core.run_until_committed(150).unwrap();
        core.external_write(0x3000, 8, 9).unwrap();
        let squashed = core.stats().counters.get("external_squashes");
        let r = core.run_until_committed(u64::MAX).unwrap();
        assert_eq!(r, crate::SimStop::Halted);
        // The run must be internally consistent: every element got either
        // the old or the new flag, never a torn mix within one element,
        // and elements processed after the external write see 9.
        let result = core.into_result(r);
        assert!(squashed >= 1, "in-flight speculative readers must squash");
        let _ = result;
    }

    #[test]
    fn external_read_hides_speculative_stores() {
        let p = flag_loop(64);
        let mut mem = Memory::new(0x4000);
        for i in 0..64 {
            mem.write_u64(0x1000 + i * 8, 100).unwrap();
        }
        mem.write_u64(0x3000, 5).unwrap();
        let mut core = LoopFrogCore::new(&p, mem, LoopFrogConfig::default());
        core.run_until_committed(40).unwrap();
        // Read an element far ahead of the architectural threadlet: it must
        // show the ORIGINAL value (speculative stores are invisible), i.e.
        // either 100 (untouched) or 105 (architecturally committed), never
        // a torn or speculative intermediate.
        let v = core.external_read(0x1000 + 63 * 8, 8).unwrap();
        assert!(v == 100 || v == 105, "external read saw {v}");
    }

    #[test]
    fn external_traffic_preserves_final_memory_consistency() {
        // Deterministic end state: flag flips from 5 to 9 at one point; the
        // final array must be prefix(105..) then suffix(109..)-consistent,
        // and no element may contain anything else.
        let p = flag_loop(64);
        let mut mem = Memory::new(0x4000);
        for i in 0..64 {
            mem.write_u64(0x1000 + i * 8, 100).unwrap();
        }
        mem.write_u64(0x3000, 5).unwrap();
        let mut core = LoopFrogCore::new(&p, mem, LoopFrogConfig::default());
        core.run_until_committed(120).unwrap();
        core.external_write(0x3000, 8, 9).unwrap();
        let stop = core.run_until_committed(u64::MAX).unwrap();
        assert_eq!(stop, crate::SimStop::Halted);
        let mut seen_new = false;
        for i in 0..64 {
            let v = core.mem().read_u64(0x1000 + i * 8).unwrap();
            assert!(v == 105 || v == 109, "element {i} = {v}: torn or speculative value leaked");
            if v == 109 {
                seen_new = true;
            } else {
                assert!(!seen_new, "old flag observed after the new one at element {i}");
            }
        }
    }
}
