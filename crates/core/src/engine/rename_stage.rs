//! Rename/dispatch stage: drains fetch queues oldest-threadlet-first,
//! renames registers, allocates window resources, interprets hints
//! (spawning threadlets on detach, marking epoch boundaries), and feeds the
//! iteration-packing predictors.

use super::LoopFrogCore;
use crate::dyninst::{DstInfo, DynInst};
use crate::threadlet::CtxState;
use lf_isa::{HintKind, Inst};
use lf_uarch::rename::RenameMap;

impl LoopFrogCore<'_> {
    /// Renames up to `width` instructions across threadlets, oldest first.
    pub(super) fn do_rename(&mut self) {
        let mut budget = self.cfg.core.width;
        let order: Vec<usize> = self.order.iter().copied().collect();
        for tid in order {
            while budget > 0 {
                if self.ctx[tid].state != CtxState::Active || self.ctx[tid].fetch_queue.is_empty() {
                    break;
                }
                if !self.rename_one(tid) {
                    break;
                }
                budget -= 1;
            }
            if budget == 0 {
                break;
            }
        }
    }

    /// Renames the next instruction of `tid`; returns `false` on a resource
    /// stall (the instruction stays in the fetch queue).
    fn rename_one(&mut self, tid: usize) -> bool {
        // Resource checks before any state changes. Speculative threadlets
        // may not take the last few entries of any shared structure: the
        // architectural threadlet must always be able to make progress
        // (otherwise a capacity-stalled speculative threadlet starves the
        // core — the priority-inversion hazard of §6.3).
        let is_arch = self.arch_tid() == tid;
        let width = self.cfg.core.width;
        let (rob_res, win_res, prf_res) =
            if is_arch { (0, 0, 1) } else { (2 * width, width, 2 * width) };
        let f = self.ctx[tid].fetch_queue.front().expect("checked nonempty").clone();
        if self.rob_occupancy + rob_res >= self.cfg.core.rob_size {
            self.rename_stall.rob = true;
            return false;
        }
        let needs_def = f.inst.def().is_some();
        if needs_def && self.prf.free_count() < prf_res {
            return false;
        }
        let needs_exec = crate::dyninst::inst_needs_execute(&f.inst);
        if needs_exec && self.iq.len() + win_res >= self.cfg.core.iq_size {
            self.rename_stall.iq = true;
            return false;
        }
        if f.inst.is_load() && self.lq_occupancy + win_res >= self.cfg.core.lq_size {
            self.rename_stall.lsq = true;
            return false;
        }
        if f.inst.is_store() && self.sq_occupancy + win_res >= self.cfg.core.sq_size {
            self.rename_stall.lsq = true;
            return false;
        }

        self.ctx[tid].fetch_queue.pop_front();
        let mut d = DynInst::new(tid, &f);

        // --- register rename ---
        {
            let uses = f.inst.uses();
            let map = self.ctx[tid].map.as_ref().expect("active threadlet has a map");
            for (i, u) in uses.iter().enumerate() {
                if let Some(r) = u {
                    d.srcs[i] = Some(map.get(r.index()));
                }
            }
        }
        // Packing / epoch register-set tracking happens at rename: reads of
        // registers not yet written this iteration/epoch are live-ins.
        {
            let t = &mut self.ctx[tid];
            for (i, u) in f.inst.uses().iter().enumerate() {
                let Some(u) = u else { continue };
                let a = u.index();
                if !t.iter_written.contains(&a) {
                    t.iter_rbw.insert(a);
                }
                if !t.written_regs.contains(&a) && t.read_before_write.insert(a) {
                    d.epoch_first_rbw[i] = Some(a);
                }
            }
        }
        if let Some(def) = f.inst.def() {
            let new = self.prf.alloc().expect("free count checked");
            let t = &mut self.ctx[tid];
            let old = t.map.as_mut().expect("map").set(def.index(), new);
            d.dst = Some(DstInfo { arch: def.index(), new, old });
            t.iter_written.insert(def.index());
            d.epoch_first_write = t.written_regs.insert(def.index());
        }
        self.ctx[tid].insts_since_detach += 1;

        // --- hint and control handling ---
        let spec = self.cfg.speculation;
        match f.inst {
            Inst::Hint { kind, region } if spec && !f.suppressed => match kind {
                HintKind::Detach => self.rename_detach(tid, &mut d, region, &f),
                HintKind::Reattach => {
                    let t = &mut self.ctx[tid];
                    if t.ren_region == Some(region) {
                        t.ren_iters = t.ren_iters.saturating_sub(1);
                        if t.ren_iters == 0 {
                            d.is_halting_reattach = true;
                            t.ren_region = None;
                        }
                    }
                }
                HintKind::Sync => {
                    let t = &mut self.ctx[tid];
                    match t.ren_region {
                        Some(r) if r == region => {
                            d.is_sync_exit = true;
                            t.ren_region = None;
                            t.ren_iters = 0;
                        }
                        // Not detached: the epoch took a loop exit before its
                        // own detach; there is no successor to squash.
                        None => {}
                        _ => {} // inner region while detached: ignored
                    }
                }
            },
            Inst::Call { link, .. } => {
                // The link value is known at rename; no execution needed.
                if let Some(dst) = d.dst {
                    debug_assert_eq!(dst.arch, link.index());
                    self.prf.write(dst.new, (f.pc + 1) as u64);
                    self.iq.wakeup(dst.new);
                }
            }
            _ => {}
        }
        d.region_after = (self.ctx[tid].ren_region, self.ctx[tid].ren_iters);

        // --- window allocation ---
        if !needs_exec {
            d.completed = true;
        }
        let srcs = d.srcs;
        // The arena insert assigns the instruction's identity (uid); the
        // sequence is monotonic, so allocation order stays program order.
        let uid = self.slab.insert(d);
        if needs_exec {
            let inserted = self.iq.insert(uid, tid, srcs, &self.prf);
            debug_assert!(inserted, "IQ fullness checked above");
        }
        if f.inst.is_load() {
            self.ctx[tid].lq.push_back(uid);
            self.lq_occupancy += 1;
        }
        if f.inst.is_store() {
            self.ctx[tid].sq.push_back(uid);
            self.sq_occupancy += 1;
        }
        self.ctx[tid].rob.push_back(uid);
        self.rob_occupancy += 1;
        self.stats.renamed_insts += 1;
        if self.observing() {
            self.emit(crate::trace::TraceEvent::Rename {
                cycle: self.cycle,
                tid,
                uid: uid.seq(),
                pc: f.pc,
                inst: f.inst,
            });
        }
        true
    }

    /// Handles a detach at rename: trains the packing predictors on the
    /// iteration boundary and spawns a successor threadlet if possible.
    fn rename_detach(
        &mut self,
        tid: usize,
        d: &mut DynInst,
        region: lf_isa::RegionId,
        f: &crate::dyninst::FetchedInst,
    ) {
        let already_in_region = self.ctx[tid].ren_region.is_some();
        if already_in_region && self.ctx[tid].ren_region != Some(region) {
            return; // inner region while detached: ignored entirely
        }

        // Iteration boundary: detach→detach delimits one loop iteration.
        {
            let t = &mut self.ctx[tid];
            let written = std::mem::take(&mut t.iter_written);
            let rbw = std::mem::take(&mut t.iter_rbw);
            let size = t.insts_since_detach;
            t.insts_since_detach = 0;
            self.packing.observe_iteration(region, &written, &rbw, size);
        }
        // Capture the current IV mappings; the value predictor trains at
        // this detach's commit, when the values are guaranteed ready.
        if let Some(ivs) = self.packing.ivs(region) {
            let map = self.ctx[tid].map.as_ref().expect("map");
            d.iv_capture = ivs.iter().map(|&a| (a, map.get(a))).collect();
            d.iv_capture.sort_by_key(|(a, _)| *a);
        }

        if already_in_region {
            return; // subsequent iterations of a packed epoch: no spawn
        }

        // First detach of the epoch: spawn the successor, or queue the
        // spawn until a context frees (the parent still plans to halt at
        // its reattach — §3.1's execution model, with the spawn deferred).
        let is_youngest = self.order.back() == Some(&tid);
        if !is_youngest {
            // A mid-chain epoch cannot spawn (its successor exists); the
            // detach degenerates to a NOP and it runs on sequentially.
            let t = &mut self.ctx[tid];
            t.ren_region = None;
            t.ren_iters = 0;
            t.fetch_region = None;
            t.fetch_iters = 0;
            if t.fetch_halted && t.fetch_halt_is_reattach {
                t.fetch_halted = false;
                t.fetch_halt_is_reattach = false;
            }
            return;
        }
        let factor = f.pack_factor.max(1);
        {
            let t = &mut self.ctx[tid];
            t.ren_region = Some(region);
            t.ren_iters = factor;
        }
        // Queue the spawn; it fires as soon as a context is free and (for
        // packed spawns) the induction-variable values are ready, so the
        // predicted successor state is exact. Wrong-path detaches cancel
        // the pending entry during squash walk-back.
        let map = self.ctx[tid].map.as_ref().expect("map").clone_with_refs(&mut self.prf);
        self.ctx[tid].pending_spawn = Some(crate::threadlet::PendingSpawn {
            region,
            map,
            factor,
            ivs: f.pack_predictions.iter().map(|&(a, _, stride)| (a, stride)).collect(),
        });
        d.made_pending = true;
        self.service_pending_spawns();
        if let Some(child) = self.ctx[tid].spawned_child {
            if self.ctx[tid].pending_spawn.is_none() {
                d.spawned = Some(child);
                d.made_pending = false;
            }
        }
    }

    /// Fires deferred spawns once a context is free and the predicted
    /// register values are available. Only the youngest active threadlet
    /// can hold a pending spawn.
    pub(crate) fn service_pending_spawns(&mut self) {
        let Some(&tid) = self.order.back() else { return };
        let Some(pending) = &self.ctx[tid].pending_spawn else { return };
        if self.prf.free_count() <= 72 + pending.ivs.len() {
            return;
        }
        if pending.factor > 1
            && !pending.ivs.iter().all(|&(a, _)| self.prf.is_ready(pending.map.get(a)))
        {
            return; // producers still in flight; retry next cycle
        }
        let Some(child) = self.find_free_context() else { return };
        let p = self.ctx[tid].pending_spawn.take().expect("checked");
        // Exact predictions from the snapshot values.
        let predictions: Vec<(usize, u64)> = p
            .ivs
            .iter()
            .map(|&(a, stride)| {
                let base = self.prf.read(p.map.get(a));
                (a, base.wrapping_add(stride.wrapping_mul((p.factor - 1) as i64) as u64))
            })
            .collect();
        self.spawn_threadlet(tid, child, p.region, p.factor, p.map, &predictions);
    }

    /// Spawns `child` as the successor epoch of `parent`, starting at the
    /// region's continuation address with the inherited register state
    /// `map` (ownership of its references transfers to the child), plus
    /// packing-predicted induction variables.
    fn spawn_threadlet(
        &mut self,
        parent: usize,
        child: usize,
        region: lf_isa::RegionId,
        factor: u32,
        mut child_map: RenameMap,
        predictions: &[(usize, u64)],
    ) {
        let parent_epoch = self.ctx[parent].epoch;
        let mut predicted_regs = Vec::new();
        if factor > 1 {
            for &(a, v) in predictions {
                let p = self.prf.alloc_ready(v).expect("headroom checked");
                let old = child_map.set(a, p);
                self.prf.release(old);
                predicted_regs.push((a, v));
            }
        }
        let checkpoint = child_map.clone_with_refs(&mut self.prf);

        let t = &mut self.ctx[child];
        *t = crate::threadlet::Threadlet::new_free();
        t.state = CtxState::Active;
        t.epoch = parent_epoch + 1;
        t.fetch_pc = region.0;
        t.fetch_ready = self.cycle + self.cfg.spawn_latency;
        t.map = Some(child_map);
        t.checkpoint = Some(checkpoint);
        t.checkpoint_pc = region.0;
        t.predicted_regs = predicted_regs;
        t.parent = Some(parent);
        t.spawn_region = Some(region);
        self.ctx[parent].spawned_child = Some(child);
        self.bpred.clone_context(parent, child);
        self.order.push_back(child);
        self.deselect.on_spawn(region);
        if self.observing() {
            self.emit(crate::trace::TraceEvent::Spawn {
                cycle: self.cycle,
                parent,
                child,
                region,
                factor,
            });
        }
        self.stats.spawns += 1;
        if factor > 1 {
            self.stats.packed_spawns += 1;
            self.stats.pack_factor_sum += factor as u64;
            self.stats.pack_factor_max = self.stats.pack_factor_max.max(factor);
        }
    }
}
