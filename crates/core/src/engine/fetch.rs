//! Fetch stage: per-threadlet instruction fetch along the predicted path,
//! with fetch-side interpretation of LoopFrog hints (detach-region tracking,
//! reattach halt, packing iteration counts).

use super::LoopFrogCore;
use crate::dyninst::FetchedInst;
use crate::threadlet::CtxState;
use lf_isa::{HintKind, Inst};

/// Instruction word size in bytes (for I-cache addressing).
pub(crate) const INST_BYTES: u64 = 4;

impl LoopFrogCore<'_> {
    /// Fetches up to `width` instructions across threadlets, oldest first.
    pub(super) fn do_fetch(&mut self) {
        let mut budget = self.cfg.core.width;
        let order: Vec<usize> = self.order.iter().copied().collect();
        for tid in order {
            if budget == 0 {
                break;
            }
            budget = self.fetch_threadlet(tid, budget);
        }
    }

    /// Fetches for one threadlet; returns the remaining fetch budget.
    fn fetch_threadlet(&mut self, tid: usize, mut budget: usize) -> usize {
        let spec = self.cfg.speculation;
        let fq_cap = self.cfg.core.fetch_queue_size;
        {
            let t = &self.ctx[tid];
            if t.state != CtxState::Active
                || t.fetch_halted
                || t.fetch_stalled_indirect
                || self.cycle < t.fetch_ready
            {
                return budget;
            }
        }

        while budget > 0 && self.ctx[tid].fetch_queue.len() < fq_cap {
            let pc = self.ctx[tid].fetch_pc;

            // I-cache: one lookup per line; a miss stalls this threadlet.
            let line_bytes = 64;
            let addr = pc as u64 * INST_BYTES;
            let line = addr / line_bytes;
            if self.ctx[tid].fetch_line != Some(line) {
                let ready = self.hier.access_inst(addr, self.cycle);
                if ready > self.cycle + 1 {
                    self.ctx[tid].fetch_ready = ready;
                    self.stats.fetch_icache_stalls += 1;
                    break;
                }
                self.ctx[tid].fetch_line = Some(line);
            }

            let Some(inst) = self.program.fetch(pc) else {
                // Off the end of the program: necessarily a wrong path (or a
                // program bug caught when the faulting control instruction
                // reaches the architectural head). Stall until redirected.
                self.ctx[tid].fetch_stalled_indirect = true;
                break;
            };

            let mut fetched = FetchedInst {
                pc,
                inst,
                bp: None,
                pred_next: pc + 1,
                pack_factor: 1,
                pack_predictions: Vec::new(),
                suppressed: false,
            };
            let mut stop_after = false; // taken control flow ends the group
            match inst {
                Inst::Branch { .. } => {
                    let lookup = self.bpred.predict_branch(tid, pc as u64);
                    let target = match inst {
                        Inst::Branch { target, .. } => target,
                        _ => unreachable!(),
                    };
                    fetched.pred_next = if lookup.taken { target } else { pc + 1 };
                    fetched.bp = Some(lookup);
                    stop_after = lookup.taken;
                }
                Inst::Jump { target } => {
                    fetched.pred_next = target;
                    stop_after = true;
                }
                Inst::Call { target, .. } => {
                    self.bpred.on_call(tid, pc + 1);
                    fetched.pred_next = target;
                    stop_after = true;
                }
                Inst::JumpReg { .. } => {
                    match self.bpred.predict_indirect(tid, pc as u64) {
                        Some(t) => {
                            fetched.pred_next = t;
                            stop_after = true;
                        }
                        None => {
                            // No prediction: fetch waits for resolution.
                            fetched.pred_next = pc + 1;
                            self.ctx[tid].fetch_stalled_indirect = true;
                            stop_after = true;
                        }
                    }
                }
                Inst::Hint { kind, region } if spec => {
                    // Dynamic deselection (§5.1): a suppressed region's
                    // hints degenerate to NOPs at fetch.
                    if matches!(kind, HintKind::Detach)
                        && self.ctx[tid].fetch_region.is_none()
                        && self.deselect.is_suppressed(region)
                    {
                        fetched.suppressed = true;
                        if self.observing() {
                            self.emit(crate::trace::TraceEvent::Deselect {
                                cycle: self.cycle,
                                tid,
                                region,
                            });
                        }
                    }
                    let t = &mut self.ctx[tid];
                    match kind {
                        HintKind::Detach => {
                            if !fetched.suppressed && t.fetch_region.is_none() {
                                let decision = self.packing.decide(region);
                                let t = &mut self.ctx[tid];
                                t.fetch_region = Some(region);
                                t.fetch_iters = decision.factor;
                                fetched.pack_factor = decision.factor;
                                fetched.pack_predictions = decision.predictions;
                            }
                        }
                        HintKind::Reattach => {
                            if t.fetch_region == Some(region) {
                                if t.fetch_iters <= 1 {
                                    // Epoch ends here: successor covers the
                                    // continuation.
                                    t.fetch_halted = true;
                                    t.fetch_halt_is_reattach = true;
                                    stop_after = true;
                                } else {
                                    t.fetch_iters -= 1;
                                }
                            }
                        }
                        HintKind::Sync => {
                            if t.fetch_region == Some(region) {
                                t.fetch_region = None;
                                t.fetch_iters = 0;
                            }
                        }
                    }
                }
                Inst::Hint { .. } => {} // speculation off: pure NOP
                Inst::Halt => {
                    self.ctx[tid].fetch_halted = true;
                    stop_after = true;
                }
                _ => {}
            }

            let next = fetched.pred_next;
            self.ctx[tid].fetch_queue.push_back(fetched);
            self.ctx[tid].fetch_pc = next;
            self.stats.fetched_insts += 1;
            budget -= 1;
            if stop_after {
                // Redirected fetch resumes on a new line next cycle.
                self.ctx[tid].fetch_line = None;
                break;
            }
        }
        budget
    }
}
