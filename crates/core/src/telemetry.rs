//! Run-time telemetry: cycle accounting, interval sampling, and a flight
//! recorder, feeding the [`lf_stats::MetricsRegistry`] dump in
//! [`crate::SimResult`].
//!
//! Three instruments, all cheap enough to stay on for every run:
//!
//! - **Cycle accounting** (gem5/top-down style): every commit slot of every
//!   cycle is attributed to exactly one [`CycleBucket`] — productive commit
//!   or a specific stall cause — so the buckets always sum to
//!   `cycles × commit_width` and a slowdown can be read off as "where did
//!   the slots go".
//! - **Interval sampling**: a snapshot of the headline counters every
//!   `interval_cycles`, plus one final partial interval, giving exactly
//!   `⌈cycles / N⌉` samples — the time series behind phase plots.
//! - **Flight recorder**: a bounded ring of the most recent pipeline
//!   [`TraceEvent`]s; on a threadlet squash the ring is frozen so the events
//!   *leading up to* the squash can be dumped post-mortem without paying
//!   for full tracing.

use crate::trace::TraceEvent;
use lf_stats::Histogram;

/// Where one commit slot of one cycle went. The order here is the priority
/// order used when classifying an idle slot (earlier variants win).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleBucket {
    /// The slot committed an instruction (the only productive bucket).
    BaseCommit,
    /// A speculative store drain stalled on a full SSB slice this cycle.
    SsbOverflow,
    /// The front end is refilling after a squash or branch misprediction.
    SquashRecovery,
    /// Rename is blocked on a full reorder buffer.
    RobFull,
    /// Rename is blocked on a full issue queue.
    IqFull,
    /// Rename is blocked on a full load or store queue.
    LsqFull,
    /// The architectural head is an outstanding load (or undrained store).
    Memory,
    /// The architectural head is executing or waiting for operands.
    Exec,
    /// The architectural threadlet is finished and waiting out the
    /// conflict-check latency before retiring.
    RetireWait,
    /// The architectural ROB is empty and fetch has not delivered.
    FetchStall,
}

impl CycleBucket {
    /// All buckets, in dump order.
    pub const ALL: [CycleBucket; 10] = [
        CycleBucket::BaseCommit,
        CycleBucket::SsbOverflow,
        CycleBucket::SquashRecovery,
        CycleBucket::RobFull,
        CycleBucket::IqFull,
        CycleBucket::LsqFull,
        CycleBucket::Memory,
        CycleBucket::Exec,
        CycleBucket::RetireWait,
        CycleBucket::FetchStall,
    ];

    /// Stable snake_case name used in text/JSON dumps.
    pub fn name(self) -> &'static str {
        match self {
            CycleBucket::BaseCommit => "base_commit",
            CycleBucket::SsbOverflow => "ssb_overflow",
            CycleBucket::SquashRecovery => "squash_recovery",
            CycleBucket::RobFull => "rob_full",
            CycleBucket::IqFull => "iq_full",
            CycleBucket::LsqFull => "lsq_full",
            CycleBucket::Memory => "memory",
            CycleBucket::Exec => "exec",
            CycleBucket::RetireWait => "retire_wait",
            CycleBucket::FetchStall => "fetch_stall",
        }
    }
}

/// Per-bucket commit-slot totals. The invariant — checked by tests, relied
/// on by the breakdown figures — is `total() == cycles × commit_width`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleAccounting {
    slots: [u64; CycleBucket::ALL.len()],
}

impl CycleAccounting {
    /// Attributes `n` commit slots to `bucket`.
    pub fn add(&mut self, bucket: CycleBucket, n: u64) {
        self.slots[bucket as usize] += n;
    }

    /// Slots attributed to `bucket`.
    pub fn get(&self, bucket: CycleBucket) -> u64 {
        self.slots[bucket as usize]
    }

    /// Sum over all buckets.
    pub fn total(&self) -> u64 {
        self.slots.iter().sum()
    }

    /// Iterates `(bucket, slots)` in dump order.
    pub fn iter(&self) -> impl Iterator<Item = (CycleBucket, u64)> + '_ {
        CycleBucket::ALL.iter().map(|&b| (b, self.slots[b as usize]))
    }
}

/// One interval snapshot. All fields are cumulative; consumers diff
/// consecutive samples to get per-interval rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalSample {
    /// Cycle at which the snapshot was taken (the interval's end).
    pub cycle: u64,
    /// Cumulative architecturally committed instructions.
    pub committed_insts: u64,
    /// Cumulative issued instructions (includes wrong-path work).
    pub issued_insts: u64,
    /// Cumulative threadlet spawns.
    pub spawns: u64,
    /// Cumulative threadlet squashes, all causes.
    pub squashes: u64,
}

/// Collects [`IntervalSample`]s every `period` cycles.
#[derive(Debug, Clone)]
pub struct IntervalSampler {
    period: u64,
    samples: Vec<IntervalSample>,
}

impl IntervalSampler {
    /// Creates a sampler with the given period (cycles per interval).
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(period: u64) -> IntervalSampler {
        assert!(period > 0, "interval period must be positive");
        IntervalSampler { period, samples: Vec::new() }
    }

    /// The sampling period in cycles.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Called once per cycle (with the post-increment cycle count); records
    /// a sample on interval boundaries.
    pub fn on_cycle(&mut self, cycle: u64, sample: IntervalSample) {
        if cycle > 0 && cycle.is_multiple_of(self.period) {
            self.samples.push(sample);
        }
    }

    /// Records the final partial interval, if the run did not end exactly
    /// on a boundary. After this, `samples().len() == ⌈cycles / period⌉`.
    pub fn finish(&mut self, cycle: u64, sample: IntervalSample) {
        if !cycle.is_multiple_of(self.period) {
            self.samples.push(sample);
        }
    }

    /// The samples collected so far.
    pub fn samples(&self) -> &[IntervalSample] {
        &self.samples
    }

    /// Consumes the sampler, returning its samples.
    pub fn into_samples(self) -> Vec<IntervalSample> {
        self.samples
    }
}

/// A bounded ring of recent [`TraceEvent`]s, frozen at the first event of
/// each threadlet squash so the lead-up survives.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    ring: std::collections::VecDeque<TraceEvent>,
    pre_squash: Vec<TraceEvent>,
}

impl FlightRecorder {
    /// Creates a recorder keeping the last `cap` events.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> FlightRecorder {
        assert!(cap > 0, "flight recorder depth must be positive");
        FlightRecorder {
            cap,
            ring: std::collections::VecDeque::with_capacity(cap),
            pre_squash: Vec::new(),
        }
    }

    /// Records one event. A [`TraceEvent::SquashThreadlets`] freezes the
    /// current ring contents (overwriting any earlier freeze: the *latest*
    /// squash is the one worth debugging) before being recorded itself.
    pub fn push(&mut self, ev: &TraceEvent) {
        if matches!(ev, TraceEvent::SquashThreadlets { .. }) {
            self.pre_squash = self.ring.iter().cloned().collect();
        }
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(ev.clone());
    }

    /// The events captured before the most recent squash (empty if no
    /// squash happened).
    pub fn pre_squash(&self) -> &[TraceEvent] {
        &self.pre_squash
    }

    /// The live ring — the last `cap` events recorded, regardless of
    /// squashes. This is the window a watchdog wants when a run is
    /// stopped mid-flight by a cycle budget or deadline.
    pub fn live_window(&self) -> Vec<TraceEvent> {
        self.ring.iter().cloned().collect()
    }

    /// Consumes the recorder, returning the pre-squash capture.
    pub fn into_pre_squash(self) -> Vec<TraceEvent> {
        self.pre_squash
    }
}

/// Telemetry knobs, part of [`crate::LoopFrogConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Interval-sampling period in cycles; `None` disables sampling.
    pub interval_cycles: Option<u64>,
    /// Flight-recorder depth in events; `0` disables the recorder.
    pub flight_recorder_depth: usize,
}

impl Default for TelemetryConfig {
    /// Sampling on (8192-cycle intervals), flight recorder off.
    fn default() -> TelemetryConfig {
        TelemetryConfig { interval_cycles: Some(8192), flight_recorder_depth: 0 }
    }
}

/// Live telemetry state owned by the core during a run.
#[derive(Debug)]
pub(crate) struct Telemetry {
    pub(crate) accounting: CycleAccounting,
    pub(crate) sampler: Option<IntervalSampler>,
    pub(crate) recorder: Option<FlightRecorder>,
    /// Per-cycle ROB occupancy (all threadlets).
    pub(crate) rob_occupancy: Histogram,
    /// Per-cycle issue-queue occupancy.
    pub(crate) iq_occupancy: Histogram,
    /// Instructions committed per cycle (0..=commit_width).
    pub(crate) commit_bandwidth: Histogram,
}

impl Telemetry {
    pub(crate) fn new(cfg: &crate::LoopFrogConfig) -> Telemetry {
        let rob_w = (cfg.core.rob_size as u64 / 32).max(1);
        let iq_w = (cfg.core.iq_size as u64 / 32).max(1);
        Telemetry {
            accounting: CycleAccounting::default(),
            sampler: cfg.telemetry.interval_cycles.map(IntervalSampler::new),
            recorder: match cfg.telemetry.flight_recorder_depth {
                0 => None,
                k => Some(FlightRecorder::new(k)),
            },
            rob_occupancy: Histogram::new(rob_w, 33),
            iq_occupancy: Histogram::new(iq_w, 33),
            commit_bandwidth: Histogram::new(1, cfg.core.commit_width + 1),
        }
    }
}

/// Builds the full hierarchical metrics dump for a finished run: every
/// pipeline stage's counters under dotted names, the cycle-accounting
/// buckets, occupancy distributions, and derived formulas (IPC, miss and
/// squash rates) evaluated over the final counter values.
pub(crate) fn build_registry(
    stats: &crate::SimStats,
    telem: &Telemetry,
    cfg: &crate::LoopFrogConfig,
) -> lf_stats::MetricsRegistry {
    use lf_stats::Expr;
    let mut reg = lf_stats::MetricsRegistry::new();

    // Core pipeline, stage by stage.
    reg.set("core.cycles", stats.cycles);
    reg.set("core.fetch.insts", stats.fetched_insts);
    reg.set("core.fetch.icache_stalls", stats.fetch_icache_stalls);
    reg.set("core.rename.insts", stats.renamed_insts);
    reg.set("core.issue.insts", stats.issued_insts);
    reg.set("core.commit.arch_insts", stats.commits_arch);
    reg.set("core.commit.spec_success_insts", stats.commits_spec_success);
    reg.set("core.commit.spec_failed_insts", stats.commits_spec_failed);
    reg.set("core.commit.total_insts", stats.committed_insts);
    reg.set("core.branch.resolved", stats.branches);
    reg.set("core.branch.mispredicts", stats.branch_mispredicts);
    reg.set("core.config.commit_width", cfg.core.commit_width as u64);

    // Threadlet machinery: spawns, packing, squash causes, activity.
    reg.set("threadlet.spawns", stats.spawns);
    reg.set("threadlet.packing.packed_spawns", stats.packed_spawns);
    reg.set("threadlet.packing.factor_sum", stats.pack_factor_sum);
    reg.set("threadlet.packing.factor_max", stats.pack_factor_max as u64);
    reg.set("threadlet.packing.patches", stats.pack_patches);
    reg.set("threadlet.squash.conflict", stats.squashes_conflict);
    reg.set("threadlet.squash.sync_exit", stats.squashes_sync);
    reg.set("threadlet.squash.packing", stats.squashes_packing);
    reg.set("threadlet.squash.wrong_path", stats.squashes_wrong_path);
    reg.set("threadlet.squash.register", stats.counters.get("squashes_register"));
    reg.set("threadlet.region_cycles", stats.region_cycles);
    for (k, cycles) in stats.cycles_with_active.iter().enumerate() {
        reg.set(&format!("threadlet.active.{k}"), *cycles);
    }

    // Memory hierarchy, SSB, conflict detection, deselection.
    let mapped = [
        ("mem.l1i.accesses", "l1i_accesses"),
        ("mem.l1i.misses", "l1i_misses"),
        ("mem.l1d.accesses", "l1d_accesses"),
        ("mem.l1d.misses", "l1d_misses"),
        ("mem.l2.demand_accesses", "l2_demand_accesses"),
        ("mem.l2.demand_misses", "l2_demand_misses"),
        ("ssb.overflow_stalls", "ssb_overflows"),
        ("conflict.bloom_false_positive_squashes", "bloom_false_positive_squashes"),
        ("deselect.regions_suppressed", "regions_suppressed"),
    ];
    for (name, key) in mapped {
        reg.set(name, stats.counters.get(key));
    }
    let mapped_keys: std::collections::BTreeSet<&str> =
        mapped.iter().map(|&(_, k)| k).chain(["squashes_register"]).collect();
    for (k, v) in stats.counters.iter() {
        if !mapped_keys.contains(k) {
            reg.set(&format!("counters.{k}"), v);
        }
    }

    // Cycle accounting.
    for (bucket, slots) in telem.accounting.iter() {
        reg.set(&format!("accounting.{}", bucket.name()), slots);
    }

    // Occupancy and bandwidth distributions.
    for (name, hist) in [
        ("core.rob.occupancy", &telem.rob_occupancy),
        ("core.iq.occupancy", &telem.iq_occupancy),
        ("core.commit.bandwidth", &telem.commit_bandwidth),
    ] {
        reg.insert_distribution(name, "per-cycle samples", hist.clone())
            .expect("fresh registry name");
    }

    // Derived formulas, evaluated at dump time over the values above.
    let formulas: [(&str, &str, Expr); 7] = [
        (
            "core.ipc",
            "architectural instructions per cycle",
            Expr::metric("core.commit.total_insts") / Expr::metric("core.cycles"),
        ),
        (
            "core.commit.utilization",
            "committed slots over available slots",
            Expr::metric("core.commit.total_insts")
                / (Expr::metric("core.cycles") * Expr::metric("core.config.commit_width")),
        ),
        (
            "core.branch.miss_rate",
            "mispredicts per resolved branch",
            Expr::metric("core.branch.mispredicts") / Expr::metric("core.branch.resolved"),
        ),
        (
            "core.branch.mpki",
            "mispredicts per kilo-instruction",
            Expr::metric("core.branch.mispredicts") * Expr::constant(1000.0)
                / Expr::metric("core.commit.total_insts"),
        ),
        (
            "mem.l1d.miss_rate",
            "L1D misses per access",
            Expr::metric("mem.l1d.misses") / Expr::metric("mem.l1d.accesses"),
        ),
        (
            "mem.l2.demand_miss_rate",
            "L2 demand misses per access",
            Expr::metric("mem.l2.demand_misses") / Expr::metric("mem.l2.demand_accesses"),
        ),
        (
            "threadlet.squash.per_kilo_inst",
            "threadlet squashes per kilo-instruction",
            (Expr::metric("threadlet.squash.conflict")
                + Expr::metric("threadlet.squash.sync_exit")
                + Expr::metric("threadlet.squash.packing")
                + Expr::metric("threadlet.squash.wrong_path")
                + Expr::metric("threadlet.squash.register"))
                * Expr::constant(1000.0)
                / Expr::metric("core.commit.total_insts"),
        ),
    ];
    for (name, desc, expr) in formulas {
        reg.register_formula(name, desc, expr).expect("fresh registry name");
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_sums_over_buckets() {
        let mut a = CycleAccounting::default();
        a.add(CycleBucket::BaseCommit, 5);
        a.add(CycleBucket::Memory, 3);
        a.add(CycleBucket::BaseCommit, 2);
        assert_eq!(a.get(CycleBucket::BaseCommit), 7);
        assert_eq!(a.total(), 10);
        assert_eq!(a.iter().count(), CycleBucket::ALL.len());
    }

    #[test]
    fn bucket_names_are_unique() {
        let names: std::collections::BTreeSet<&str> =
            CycleBucket::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), CycleBucket::ALL.len());
    }

    #[test]
    fn sampler_emits_ceil_cycles_over_period() {
        // 10 cycles at period 4 -> boundary samples at 4 and 8, final
        // partial at 10: ceil(10/4) = 3.
        let mut s = IntervalSampler::new(4);
        let snap = |cycle| IntervalSample {
            cycle,
            committed_insts: cycle,
            issued_insts: 0,
            spawns: 0,
            squashes: 0,
        };
        for c in 1..=10 {
            s.on_cycle(c, snap(c));
        }
        s.finish(10, snap(10));
        assert_eq!(s.samples().len(), 3);
        assert_eq!(s.samples()[2].cycle, 10);

        // Exact multiple: no extra partial sample.
        let mut s = IntervalSampler::new(5);
        for c in 1..=10 {
            s.on_cycle(c, snap(c));
        }
        s.finish(10, snap(10));
        assert_eq!(s.samples().len(), 2);

        // Zero cycles: zero samples.
        let mut s = IntervalSampler::new(5);
        s.finish(0, snap(0));
        assert!(s.samples().is_empty());
    }

    #[test]
    fn flight_recorder_freezes_on_squash() {
        let mut r = FlightRecorder::new(2);
        let retire = |cycle| TraceEvent::Retire { cycle, tid: 0, epoch: 0 };
        r.push(&retire(1));
        r.push(&retire(2));
        r.push(&retire(3)); // evicts cycle 1
        assert!(r.pre_squash().is_empty());
        r.push(&TraceEvent::SquashThreadlets {
            cycle: 4,
            first: 1,
            restart: false,
            reason: crate::trace::SquashReason::Conflict,
        });
        let pre: Vec<u64> = r.pre_squash().iter().map(|e| e.cycle()).collect();
        assert_eq!(pre, [2, 3]);
        // Later events do not disturb the capture.
        r.push(&retire(5));
        assert_eq!(r.pre_squash().len(), 2);
    }
}
