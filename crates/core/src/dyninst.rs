//! Dynamic (in-flight) instruction state.

use lf_isa::{Inst, RegionId};
use lf_uarch::bpred::BpLookup;
use lf_uarch::rename::PhysReg;

pub(crate) use crate::arena::Uid;

/// An instruction sitting in a fetch queue, with the front end's predictions
/// and fetch-side hint decisions attached.
#[derive(Debug, Clone)]
pub(crate) struct FetchedInst {
    pub pc: usize,
    pub inst: Inst,
    /// Conditional-branch predictor state (for training and repair).
    pub bp: Option<BpLookup>,
    /// Predicted next PC (fall-through, predicted target, or RAS target).
    pub pred_next: usize,
    /// Packing decision attached to a detach at fetch time.
    pub pack_factor: u32,
    /// Predicted successor start values for a packed detach:
    /// `(arch_reg, decide-time value, stride)`.
    pub pack_predictions: Vec<(usize, u64, i64)>,
    /// The dynamic deselector suppressed this hint at fetch (treat as NOP).
    pub suppressed: bool,
}

/// Destination rename record.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DstInfo {
    /// Architectural register index.
    pub arch: usize,
    /// Newly allocated physical register.
    pub new: PhysReg,
    /// Previous mapping; its reference is owned by this instruction until
    /// commit (released) or squash (restored into the map).
    pub old: PhysReg,
}

/// An instruction in the out-of-order window.
#[derive(Debug, Clone)]
pub(crate) struct DynInst {
    pub uid: Uid,
    pub tid: usize,
    pub pc: usize,
    pub inst: Inst,
    pub srcs: [Option<PhysReg>; 2],
    pub dst: Option<DstInfo>,

    // Execution state.
    pub issued: bool,
    pub completed: bool,
    /// Computed result value (register writes; store data bytes are kept in
    /// `store_data`).
    pub result: u64,
    /// The instruction faulted (out-of-bounds access); it never completes
    /// and is fatal if it reaches the head of the architectural threadlet.
    pub faulted: bool,

    // Control flow.
    pub bp: Option<BpLookup>,
    pub pred_next: usize,
    /// Resolved next PC (valid once executed, for control instructions).
    pub actual_next: usize,

    // Memory.
    pub eff_addr: Option<u64>,
    pub store_data: u64,
    /// The store has drained (to SSB or L1D).
    pub drained: bool,

    // LoopFrog bookkeeping.
    /// Rename-side region state *after* this instruction, for squash
    /// recovery of fetch/rename hint state.
    pub region_after: (Option<RegionId>, u32),
    /// Threadlet context spawned by this detach, if any.
    pub spawned: Option<usize>,
    /// This reattach ends the epoch (threadlet halts after committing it).
    pub is_halting_reattach: bool,
    /// This sync exits the region: successors are squashed at commit.
    pub is_sync_exit: bool,
    /// This detach deferred its spawn (pending); unwound on squash.
    pub made_pending: bool,
    /// Induction-variable mappings captured at a detach's rename; their
    /// values train the packing value predictor when the detach commits
    /// (guaranteed ready, and wrong-path detaches never train).
    pub iv_capture: Vec<(usize, PhysReg)>,
    /// This instruction performed the epoch's first write of its destination
    /// register (so wrong-path squash can unwind `written_regs`).
    pub epoch_first_write: bool,
    /// Architectural registers this instruction newly inserted into the
    /// epoch's read-before-write set (unwound on wrong-path squash).
    pub epoch_first_rbw: [Option<usize>; 2],
}

impl DynInst {
    /// Builds the in-flight record for `f`. The identity (`uid`) is
    /// assigned by [`crate::arena::InstArena::insert`]; until then the
    /// instruction carries [`Uid::INVALID`].
    pub fn new(tid: usize, f: &FetchedInst) -> DynInst {
        DynInst {
            uid: Uid::INVALID,
            tid,
            pc: f.pc,
            inst: f.inst,
            srcs: [None, None],
            dst: None,
            issued: false,
            completed: false,
            result: 0,
            faulted: false,
            bp: f.bp,
            pred_next: f.pred_next,
            actual_next: f.pred_next,
            eff_addr: None,
            store_data: 0,
            drained: false,
            region_after: (None, 0),
            spawned: None,
            is_halting_reattach: false,
            is_sync_exit: false,
            made_pending: false,
            iv_capture: Vec::new(),
            epoch_first_write: false,
            epoch_first_rbw: [None, None],
        }
    }
}

/// Whether an instruction requires an execution pipe / IQ entry. Takes the
/// raw decoded instruction so rename's resource pre-check can run before
/// the `DynInst` is built.
pub(crate) fn inst_needs_execute(inst: &Inst) -> bool {
    use lf_isa::Inst::*;
    match inst {
        Alu { .. }
        | Fpu { .. }
        | MovImm { .. }
        | Load { .. }
        | Store { .. }
        | Branch { .. }
        | JumpReg { .. } => true,
        Jump { .. } | Call { .. } | Hint { .. } | Nop | Halt => false,
    }
}
