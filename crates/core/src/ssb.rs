//! The Speculative State Buffer (paper §4.1).
//!
//! The SSB sits between the store buffer and the L1D. It buffers
//! speculatively written data per threadlet *slice*, serves multi-versioned
//! reads (newest value among the reader's own and older threadlets' slices,
//! falling back to architectural memory; Figure 5), and supports bulk
//! invalidation on squash and counter-based flush on threadlet commit.
//!
//! Data is organized into cache lines composed of granules (§4.1.1): a
//! per-line bitmask identifies valid granules, and a partially written
//! granule requires a read-fill of its unwritten bytes, which counts as a
//! read for conflict purposes (the false-sharing effect of §6.6 / Figure 10).
//!
//! A small, shared, fully associative victim buffer optionally extends the
//! effective associativity of the slices (§6.6).

use crate::config::SsbConfig;
use lf_isa::Memory;
use std::collections::HashMap;

/// Outcome of a speculative store attempting to drain into a slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The write was absorbed. `fill_reads` lists granule addresses that
    /// were only partially covered and required a read-fill of their
    /// unwritten bytes (these count as reads for conflict detection).
    Ok {
        /// Granules whose unwritten bytes were read-filled.
        fill_reads: Vec<u64>,
    },
    /// The slice (and victim buffer) had no room: the threadlet must squash
    /// (speculative writes cannot be discarded; §4.1.2).
    Overflow,
}

#[derive(Debug, Clone)]
struct LineData {
    bytes: Vec<u8>,
    valid: u64, // granule validity bitmask
}

#[derive(Debug, Clone, Default)]
struct Slice {
    lines: HashMap<u64, LineData>,
}

#[derive(Debug, Clone)]
struct VictimEntry {
    slice: usize,
    line_addr: u64,
    data: LineData,
}

/// The speculative state buffer.
#[derive(Debug, Clone)]
pub struct Ssb {
    cfg: SsbConfig,
    slices: Vec<Slice>,
    victim: Vec<VictimEntry>,
    lines_per_slice: usize,
    sets_per_slice: usize,
    /// Peak line occupancy observed per slice (statistics).
    peak_lines: Vec<usize>,
    overflows: u64,
}

impl Ssb {
    /// Creates an SSB with one slice per threadlet context.
    pub fn new(cfg: &SsbConfig, threadlets: usize) -> Ssb {
        let lines_per_slice = cfg.lines_per_slice(threadlets);
        let sets_per_slice = match cfg.assoc {
            Some(a) => (lines_per_slice / a).max(1),
            None => 1,
        };
        Ssb {
            cfg: cfg.clone(),
            slices: vec![Slice::default(); threadlets],
            victim: Vec::new(),
            lines_per_slice,
            sets_per_slice,
            peak_lines: vec![0; threadlets],
            overflows: 0,
        }
    }

    /// The configured granule size in bytes.
    pub fn granule(&self) -> u64 {
        self.cfg.granule as u64
    }

    /// The granule addresses covered by a byte access `[addr, addr+len)`.
    pub fn granules_of(&self, addr: u64, len: u64) -> Vec<u64> {
        let g = self.granule();
        let first = addr / g;
        let last = (addr + len - 1) / g;
        (first..=last).collect()
    }

    /// Lines currently held by `slice`.
    pub fn slice_lines(&self, slice: usize) -> usize {
        self.slices[slice].lines.len()
    }

    /// Total overflow events (threadlet squashes forced by capacity).
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Peak per-slice line occupancy.
    pub fn peak_lines(&self) -> &[usize] {
        &self.peak_lines
    }

    fn line_addr(&self, addr: u64) -> u64 {
        addr / self.cfg.line as u64
    }

    fn set_of(&self, line_addr: u64) -> u64 {
        line_addr % self.sets_per_slice as u64
    }

    /// Looks up the byte at `addr` in `slice` (including its victim-buffer
    /// entries). Returns `None` if the granule containing it is not valid.
    fn peek_byte(&self, slice: usize, addr: u64) -> Option<u8> {
        let la = self.line_addr(addr);
        let off = (addr % self.cfg.line as u64) as usize;
        let gbit = off / self.cfg.granule;
        let look = |d: &LineData| {
            if d.valid >> gbit & 1 == 1 {
                Some(d.bytes[off])
            } else {
                None
            }
        };
        if let Some(d) = self.slices[slice].lines.get(&la) {
            return look(d);
        }
        self.victim
            .iter()
            .find(|v| v.slice == slice && v.line_addr == la)
            .and_then(|v| look(&v.data))
    }

    /// Multi-versioned read (Figure 5): reads `len` bytes at `addr` as seen
    /// by a threadlet whose older-to-newer slice order (ending with its own
    /// slice) is `order`. Bytes not found in any slice come from `mem`.
    ///
    /// Returns the assembled bytes and whether *all* bytes came from SSB
    /// slices (in which case the parallel L1D lookup result is not needed).
    pub fn read(&self, order: &[usize], addr: u64, len: u64, mem: &Memory) -> (Vec<u8>, bool) {
        let mut out = Vec::with_capacity(len as usize);
        let mut all_ssb = true;
        for i in 0..len {
            let a = addr + i;
            // Newest-first: scan own slice backwards to oldest.
            let mut byte = None;
            for &s in order.iter().rev() {
                if let Some(b) = self.peek_byte(s, a) {
                    byte = Some(b);
                    break;
                }
            }
            match byte {
                Some(b) => out.push(b),
                None => {
                    all_ssb = false;
                    out.push(mem.read_u8(a).unwrap_or(0));
                }
            }
        }
        (out, all_ssb)
    }

    /// Whether `slice` can absorb a new line mapping to `line_addr`'s set
    /// without evicting (capacity and associativity), ignoring the victim
    /// buffer.
    fn has_room(&self, slice: usize, line_addr: u64) -> bool {
        let s = &self.slices[slice];
        if s.lines.len() >= self.lines_per_slice {
            return false;
        }
        match self.cfg.assoc {
            None => true,
            Some(a) => {
                let set = self.set_of(line_addr);
                s.lines.keys().filter(|&&l| self.set_of(l) == set).count() < a
            }
        }
    }

    /// Drains a speculative store of `data` at `addr` into `slice`.
    ///
    /// `older_view` supplies the byte value visible to this threadlet just
    /// before this store (from older slices or memory), used to read-fill
    /// partially written granules.
    pub fn write(
        &mut self,
        slice: usize,
        addr: u64,
        data: &[u8],
        older_view: impl Fn(u64) -> u8,
    ) -> WriteOutcome {
        let line_sz = self.cfg.line as u64;
        let gran = self.cfg.granule;
        let mut fill_reads = Vec::new();

        // The store may straddle line boundaries; handle line by line.
        let mut i = 0usize;
        while i < data.len() {
            let a = addr + i as u64;
            let la = self.line_addr(a);
            let line_base = la * line_sz;
            let off = (a - line_base) as usize;
            let n = ((line_sz as usize) - off).min(data.len() - i);

            // Locate or allocate the line (slice, then victim, then new).
            let in_slice = self.slices[slice].lines.contains_key(&la);
            let in_victim = self.victim.iter().position(|v| v.slice == slice && v.line_addr == la);
            if !in_slice && in_victim.is_none() {
                let fresh = LineData { bytes: vec![0; line_sz as usize], valid: 0 };
                if self.has_room(slice, la) {
                    self.slices[slice].lines.insert(la, fresh);
                } else if self.victim.len() < self.cfg.victim_entries {
                    self.victim.push(VictimEntry { slice, line_addr: la, data: fresh });
                } else {
                    self.overflows += 1;
                    return WriteOutcome::Overflow;
                }
            }

            // Compute which granules become newly valid but are only
            // partially covered by this write: they need a read-fill.
            let first_g = off / gran;
            let last_g = (off + n - 1) / gran;
            let (valid_before, bytes_ptr): (u64, &mut LineData) = {
                let d = if let Some(d) = self.slices[slice].lines.get_mut(&la) {
                    d
                } else {
                    let vi = self
                        .victim
                        .iter_mut()
                        .find(|v| v.slice == slice && v.line_addr == la)
                        .expect("line just ensured");
                    &mut vi.data
                };
                (d.valid, d)
            };
            for g in first_g..=last_g {
                let g_start = g * gran;
                let g_end = g_start + gran;
                let w_start = off.max(g_start);
                let w_end = (off + n).min(g_end);
                let fully_covered = w_start == g_start && w_end == g_end;
                let was_valid = valid_before >> g & 1 == 1;
                if !was_valid && !fully_covered {
                    // Read-fill the granule's unwritten bytes from the older
                    // view; the fill is an additional (false-sharing) read.
                    for b in g_start..g_end {
                        bytes_ptr.bytes[b] = older_view(line_base + b as u64);
                    }
                    fill_reads.push((line_base + g_start as u64) / gran as u64);
                }
                bytes_ptr.valid |= 1 << g;
            }
            // Apply the written bytes.
            bytes_ptr.bytes[off..off + n].copy_from_slice(&data[i..i + n]);

            i += n;
        }
        self.peak_lines[slice] = self.peak_lines[slice].max(self.slices[slice].lines.len());
        WriteOutcome::Ok { fill_reads }
    }

    /// Bulk-invalidates a squashed threadlet's slice and its victim entries.
    pub fn invalidate_slice(&mut self, slice: usize) {
        self.slices[slice].lines.clear();
        self.victim.retain(|v| v.slice != slice);
    }

    /// Removes and returns the slice contents at threadlet commit, for
    /// application to architectural memory. Returns `(line_addr, bytes,
    /// valid_mask)` tuples; the line count drives the flush-timing model.
    pub fn take_slice(&mut self, slice: usize) -> Vec<(u64, Vec<u8>, u64)> {
        let mut out: Vec<(u64, Vec<u8>, u64)> =
            self.slices[slice].lines.drain().map(|(la, d)| (la, d.bytes, d.valid)).collect();
        let mut vict = Vec::new();
        self.victim.retain(|v| {
            if v.slice == slice {
                vict.push((v.line_addr, v.data.bytes.clone(), v.data.valid));
                false
            } else {
                true
            }
        });
        out.extend(vict);
        out.sort_by_key(|(la, _, _)| *la);
        out
    }

    /// Structural invariants scanned by verify builds: valid masks confined
    /// to the line's granule count and never empty, data only in slices
    /// whose contexts are active (`active[slice]`), the architectural
    /// slice (`arch`, whose stores bypass the SSB) empty, and capacity
    /// bounds respected.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    #[cfg(feature = "verify")]
    pub fn check_invariants(&self, active: &[bool], arch: Option<usize>) -> Result<(), String> {
        let gpl = self.cfg.line / self.cfg.granule;
        let mask = if gpl >= 64 { u64::MAX } else { (1u64 << gpl) - 1 };
        let check_line = |slice: usize, la: u64, d: &LineData| -> Result<(), String> {
            if d.valid == 0 {
                return Err(format!("slice {slice} line {la:#x} has an empty valid mask"));
            }
            if d.valid & !mask != 0 {
                return Err(format!(
                    "slice {slice} line {la:#x} valid mask {:#x} exceeds {gpl} granules",
                    d.valid
                ));
            }
            Ok(())
        };
        for (i, s) in self.slices.iter().enumerate() {
            if s.lines.len() > self.lines_per_slice {
                return Err(format!(
                    "slice {i} holds {} lines, capacity {}",
                    s.lines.len(),
                    self.lines_per_slice
                ));
            }
            if !s.lines.is_empty() {
                if !active.get(i).copied().unwrap_or(false) {
                    return Err(format!("slice {i} holds data but its context is not active"));
                }
                if arch == Some(i) {
                    return Err(format!("slice {i} holds data but is architectural"));
                }
            }
            for (la, d) in &s.lines {
                check_line(i, *la, d)?;
            }
        }
        if self.victim.len() > self.cfg.victim_entries {
            return Err(format!(
                "victim buffer holds {} entries, capacity {}",
                self.victim.len(),
                self.cfg.victim_entries
            ));
        }
        for v in &self.victim {
            if !active.get(v.slice).copied().unwrap_or(false) || arch == Some(v.slice) {
                return Err(format!(
                    "victim entry for line {:#x} owned by non-speculative slice {}",
                    v.line_addr, v.slice
                ));
            }
            check_line(v.slice, v.line_addr, &v.data)?;
        }
        Ok(())
    }

    /// Applies one taken line to architectural memory, honoring the valid
    /// granule mask (byte-masked writeback; §4.1.1).
    pub fn apply_line(&self, mem: &mut Memory, line_addr: u64, bytes: &[u8], valid: u64) {
        let line_sz = self.cfg.line;
        let gran = self.cfg.granule;
        for g in 0..(line_sz / gran) {
            if valid >> g & 1 == 1 {
                for b in 0..gran {
                    let a = line_addr * line_sz as u64 + (g * gran + b) as u64;
                    // Lines past the end of the image can only arise from
                    // wrong-path stores, which are squashed before commit.
                    let _ = mem.write(a, 1, bytes[g * gran + b] as u64);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ssb4() -> (Ssb, Memory) {
        let cfg = SsbConfig { size_bytes: 1024, line: 32, granule: 4, ..SsbConfig::default() };
        (Ssb::new(&cfg, 4), Memory::new(4096))
    }

    fn wr(ssb: &mut Ssb, slice: usize, addr: u64, data: &[u8]) -> WriteOutcome {
        ssb.write(slice, addr, data, |_| 0xEE)
    }

    #[test]
    fn own_write_visible_to_own_read() {
        let (mut ssb, mem) = ssb4();
        wr(&mut ssb, 1, 100, &[1, 2, 3, 4]);
        let (bytes, all_ssb) = ssb.read(&[0, 1], 100, 4, &mem);
        assert_eq!(bytes, vec![1, 2, 3, 4]);
        assert!(all_ssb);
    }

    #[test]
    fn newest_older_value_wins_per_granule() {
        // Figure 5: reader sees the most recent value for each granule,
        // ignoring younger threadlets.
        let (mut ssb, mut mem) = ssb4();
        mem.write_u64(96, 0).unwrap();
        wr(&mut ssb, 0, 96, &[10, 10, 10, 10]); // oldest
        wr(&mut ssb, 1, 96, &[20, 20, 20, 20]); // newer
        wr(&mut ssb, 2, 96, &[30, 30, 30, 30]); // reader's own? no: younger
                                                // Reader is threadlet with order [0, 1] (its own slice is 1).
        let (bytes, _) = ssb.read(&[0, 1], 96, 4, &mem);
        assert_eq!(bytes, vec![20; 4], "own slice is newest visible");
        // Reader order [0] only sees the oldest.
        let (bytes, _) = ssb.read(&[0], 96, 4, &mem);
        assert_eq!(bytes, vec![10; 4]);
    }

    #[test]
    fn memory_fallback_for_uncovered_bytes() {
        let (mut ssb, mut mem) = ssb4();
        mem.write(200, 8, u64::from_le_bytes([9; 8])).unwrap();
        wr(&mut ssb, 0, 200, &[1, 1, 1, 1]); // covers first granule only
        let (bytes, all_ssb) = ssb.read(&[0], 200, 8, &mem);
        assert_eq!(bytes, vec![1, 1, 1, 1, 9, 9, 9, 9]);
        assert!(!all_ssb);
    }

    #[test]
    fn partial_granule_write_read_fills_and_reports() {
        let (mut ssb, mem) = ssb4();
        // 2-byte store into a 4-byte granule: the other 2 bytes read-fill
        // from the older view (0xEE) and the granule is reported.
        let out = wr(&mut ssb, 0, 100, &[7, 7]);
        match out {
            WriteOutcome::Ok { fill_reads } => assert_eq!(fill_reads, vec![25]), // 100/4
            other => panic!("{other:?}"),
        }
        let (bytes, all) = ssb.read(&[0], 100, 4, &mem);
        assert!(all, "whole granule valid after fill");
        assert_eq!(bytes, vec![7, 7, 0xEE, 0xEE]);
    }

    #[test]
    fn full_granule_write_reports_no_fill() {
        let (mut ssb, _) = ssb4();
        match wr(&mut ssb, 0, 100, &[1, 2, 3, 4]) {
            WriteOutcome::Ok { fill_reads } => assert!(fill_reads.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn straddling_line_boundary() {
        let (mut ssb, mem) = ssb4();
        // Lines are 32 B; write 8 bytes at 28 straddles lines 0 and 1.
        wr(&mut ssb, 0, 28, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let (bytes, all) = ssb.read(&[0], 28, 8, &mem);
        assert!(all);
        assert_eq!(bytes, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(ssb.slice_lines(0), 2);
    }

    #[test]
    fn capacity_overflow_squashes() {
        let cfg =
            SsbConfig { size_bytes: 4 * 32 * 2, line: 32, granule: 4, ..SsbConfig::default() };
        let mut ssb = Ssb::new(&cfg, 2); // 4 lines per slice
        for i in 0..4 {
            assert!(matches!(wr(&mut ssb, 0, i * 32, &[1; 4]), WriteOutcome::Ok { .. }));
        }
        assert_eq!(wr(&mut ssb, 0, 4 * 32, &[1; 4]), WriteOutcome::Overflow);
        assert_eq!(ssb.overflows(), 1);
        // Existing line still updatable at capacity.
        assert!(matches!(wr(&mut ssb, 0, 0, &[9; 4]), WriteOutcome::Ok { .. }));
    }

    #[test]
    fn low_associativity_overflows_earlier_and_victim_helps() {
        // 8 lines, 1-way: two lines mapping to the same set conflict.
        let cfg = SsbConfig {
            size_bytes: 8 * 32,
            line: 32,
            granule: 4,
            assoc: Some(1),
            victim_entries: 0,
            ..SsbConfig::default()
        };
        let mut ssb = Ssb::new(&cfg, 1);
        assert!(matches!(wr(&mut ssb, 0, 0, &[1; 4]), WriteOutcome::Ok { .. }));
        // line 8 maps to set 0 as well (8 sets → line 8 ≡ set 0).
        assert_eq!(wr(&mut ssb, 0, 8 * 32, &[1; 4]), WriteOutcome::Overflow);

        let cfg = SsbConfig { victim_entries: 2, ..cfg };
        let mut ssb = Ssb::new(&cfg, 1);
        assert!(matches!(wr(&mut ssb, 0, 0, &[1; 4]), WriteOutcome::Ok { .. }));
        assert!(matches!(wr(&mut ssb, 0, 8 * 32, &[2; 4]), WriteOutcome::Ok { .. }));
        let (bytes, _) = ssb.read(&[0], 8 * 32, 4, &Memory::new(1024));
        assert_eq!(bytes, vec![2; 4], "victim entry readable");
    }

    #[test]
    fn invalidate_slice_clears_data() {
        let (mut ssb, mem) = ssb4();
        wr(&mut ssb, 2, 64, &[5; 4]);
        ssb.invalidate_slice(2);
        let (bytes, all) = ssb.read(&[2], 64, 4, &mem);
        assert!(!all);
        assert_eq!(bytes, vec![0; 4]);
        assert_eq!(ssb.slice_lines(2), 0);
    }

    #[test]
    fn take_slice_and_apply_respects_valid_mask() {
        let (mut ssb, mut mem) = ssb4();
        mem.write(0, 8, u64::from_le_bytes([0xAA; 8])).unwrap();
        wr(&mut ssb, 0, 4, &[1, 2, 3, 4]); // second granule of line 0 only
        let lines = ssb.take_slice(0);
        assert_eq!(lines.len(), 1);
        for (la, bytes, valid) in &lines {
            ssb.apply_line(&mut mem, *la, bytes, *valid);
        }
        assert_eq!(mem.read(0, 4).unwrap(), u32::from_le_bytes([0xAA; 4]) as u64);
        assert_eq!(mem.read(4, 4).unwrap(), u32::from_le_bytes([1, 2, 3, 4]) as u64);
        assert_eq!(ssb.slice_lines(0), 0);
    }

    #[test]
    fn granules_of_spans() {
        let (ssb, _) = ssb4();
        assert_eq!(ssb.granules_of(0, 4), vec![0]);
        assert_eq!(ssb.granules_of(2, 4), vec![0, 1]);
        assert_eq!(ssb.granules_of(8, 1), vec![2]);
    }
}
