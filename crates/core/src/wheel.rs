//! Calendar-queue (timing-wheel) completion schedule.
//!
//! The engine schedules every issued instruction's completion at an
//! absolute cycle and drains exactly one cycle's events per tick. A
//! `BTreeMap<u64, Vec<Uid>>` pays tree rebalancing and a fresh `Vec`
//! allocation per (cycle, first event); the wheel replaces it with a
//! power-of-two ring of reusable buckets indexed by `cycle & mask`, so
//! scheduling is a push onto a warm `Vec` and draining is a `Vec::append`
//! that hands the bucket's elements over while keeping its capacity.
//!
//! Events beyond the wheel horizon (long memory-system latencies) spill
//! into a `BTreeMap` overflow and are drained directly from it at their
//! cycle — they are never migrated into the ring. Per-cycle event order
//! is preserved exactly as the `BTreeMap` kept it: an overflow entry for
//! cycle `c` was necessarily scheduled strictly earlier than any ring
//! entry for `c` (the horizon only recedes as `now` advances), so
//! draining overflow first reproduces global insertion order.

use crate::arena::Uid;
use std::collections::BTreeMap;

/// Ring size in cycles. Covers every fixed pipeline latency and all but
/// the longest memory-system round trips; rarer events spill to the
/// overflow map. Must be a power of two.
const HORIZON: u64 = 512;

/// The completion schedule.
#[derive(Debug)]
pub(crate) struct CompletionWheel {
    buckets: Vec<Vec<Uid>>,
    /// Cycles at or beyond `now + HORIZON` when scheduled.
    overflow: BTreeMap<u64, Vec<Uid>>,
    /// All events strictly before `now` have been drained.
    now: u64,
    len: usize,
    overflow_hits: u64,
}

impl CompletionWheel {
    pub(crate) fn new() -> CompletionWheel {
        CompletionWheel {
            buckets: (0..HORIZON).map(|_| Vec::new()).collect(),
            overflow: BTreeMap::new(),
            now: 0,
            len: 0,
            overflow_hits: 0,
        }
    }

    /// Pending events.
    #[allow(dead_code)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Events that spilled past the ring horizon into the `BTreeMap`
    /// overflow (each one pays tree insertion instead of a bucket push).
    pub(crate) fn overflow_hits(&self) -> u64 {
        self.overflow_hits
    }

    /// Schedules `uid` to complete at absolute cycle `at`.
    ///
    /// `at` must not precede the last drained cycle (the engine always
    /// schedules at least one cycle ahead).
    pub(crate) fn schedule(&mut self, at: u64, uid: Uid) {
        debug_assert!(at >= self.now, "completion scheduled into the past ({at} < {})", self.now);
        if at - self.now < HORIZON {
            self.buckets[(at % HORIZON) as usize].push(uid);
        } else {
            self.overflow.entry(at).or_default().push(uid);
            self.overflow_hits += 1;
        }
        self.len += 1;
    }

    /// Appends every event due at `cycle` to `out`, in scheduling order,
    /// and advances the wheel. Must be called with non-decreasing cycles;
    /// skipped cycles' events are dropped only if the caller skips them
    /// (the engine drains every cycle it simulates).
    pub(crate) fn drain_due(&mut self, cycle: u64, out: &mut Vec<Uid>) {
        debug_assert!(cycle >= self.now, "drain must move forward");
        while let Some(e) = self.overflow.first_entry() {
            debug_assert!(*e.key() >= cycle, "overflow event missed its cycle");
            if *e.key() != cycle {
                break;
            }
            let uids = e.remove();
            self.len -= uids.len();
            out.extend(uids);
        }
        let b = &mut self.buckets[(cycle % HORIZON) as usize];
        debug_assert!(
            b.iter().all(|_| true),
            "ring bucket may only hold events for exactly this cycle"
        );
        self.len -= b.len();
        out.append(b); // moves elements out, keeps the bucket's capacity
        self.now = cycle + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::InstArena;
    use crate::dyninst::{DynInst, FetchedInst};

    fn uid(arena: &mut InstArena) -> Uid {
        let f = FetchedInst {
            pc: 0,
            inst: lf_isa::Inst::Nop,
            bp: None,
            pred_next: 1,
            pack_factor: 1,
            pack_predictions: Vec::new(),
            suppressed: false,
        };
        arena.insert(DynInst::new(0, &f))
    }

    #[test]
    fn near_events_complete_in_order() {
        let mut arena = InstArena::new();
        let mut w = CompletionWheel::new();
        let (a, b, c) = (uid(&mut arena), uid(&mut arena), uid(&mut arena));
        w.schedule(3, a);
        w.schedule(3, b);
        w.schedule(1, c);
        let mut out = Vec::new();
        w.drain_due(0, &mut out);
        assert!(out.is_empty());
        w.drain_due(1, &mut out);
        assert_eq!(out, vec![c]);
        out.clear();
        w.drain_due(2, &mut out);
        w.drain_due(3, &mut out);
        assert_eq!(out, vec![a, b], "same-cycle order is insertion order");
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn far_events_overflow_and_return() {
        let mut arena = InstArena::new();
        let mut w = CompletionWheel::new();
        let far = uid(&mut arena);
        let near = uid(&mut arena);
        w.schedule(HORIZON * 3 + 7, far);
        w.schedule(2, near);
        let mut out = Vec::new();
        for c in 0..=HORIZON * 3 + 7 {
            out.clear();
            w.drain_due(c, &mut out);
            match c {
                2 => assert_eq!(out, vec![near]),
                c if c == HORIZON * 3 + 7 => assert_eq!(out, vec![far]),
                _ => assert!(out.is_empty(), "unexpected event at cycle {c}"),
            }
        }
    }

    #[test]
    fn overflow_drains_before_ring_for_the_same_cycle() {
        let mut arena = InstArena::new();
        let mut w = CompletionWheel::new();
        let early = uid(&mut arena);
        let late = uid(&mut arena);
        let at = HORIZON + 10;
        // Scheduled while `at` is beyond the horizon: overflow.
        w.schedule(at, early);
        // Advance until `at` is inside the horizon, then schedule again:
        // ring. BTreeMap order would be [early, late]; so must ours.
        let mut out = Vec::new();
        for c in 0..=20 {
            w.drain_due(c, &mut out);
        }
        assert!(out.is_empty());
        w.schedule(at, late);
        for c in 21..=at {
            w.drain_due(c, &mut out);
        }
        assert_eq!(out, vec![early, late]);
    }

    /// Property test pinning the wheel to `BTreeMap<u64, Vec<Uid>>`
    /// semantics: a random schedule interleaved with cycle advancement
    /// must drain identical uid sequences from both.
    #[test]
    fn randomized_against_btreemap() {
        let mut seed: u64 = 0xC0FF_EE00;
        let mut rnd = move |m: u64| {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) % m
        };
        for _trial in 0..30 {
            let mut arena = InstArena::new();
            let mut wheel = CompletionWheel::new();
            let mut model: BTreeMap<u64, Vec<Uid>> = BTreeMap::new();
            let mut cycle = 0u64;
            while cycle < 3000 {
                // A burst of schedules at the current cycle, with a long
                // tail of latencies straddling the horizon.
                for _ in 0..rnd(4) {
                    let latency = 1 + rnd(HORIZON * 2);
                    let u = uid(&mut arena);
                    wheel.schedule(cycle + latency, u);
                    model.entry(cycle + latency).or_default().push(u);
                }
                let mut got = Vec::new();
                wheel.drain_due(cycle, &mut got);
                let want = model.remove(&cycle).unwrap_or_default();
                assert_eq!(got, want, "drain order diverged from BTreeMap at cycle {cycle}");
                cycle += 1;
            }
            assert_eq!(wheel.len(), model.values().map(Vec::len).sum::<usize>());
        }
    }
}
